#pragma once
// Device profiles for the accelerator simulators. Structural constants
// (compute units, stream processors, warp sizes, clocks, unroll factors) are
// the published specifications of the paper's evaluation platforms (Tables
// I and II). Model constants marked "calibrated" are fitted so the timing
// models reproduce the paper's reported throughput curves; each records the
// paper location it is anchored to. EXPERIMENTS.md discusses the calibration.

#include <cstdint>
#include <string>

namespace omega::hw {

// ---------------------------------------------------------------------------
// GPU platforms (paper Table II)
// ---------------------------------------------------------------------------

struct GpuDeviceSpec {
  std::string name;
  std::string host_cpu;
  int compute_units = 0;       // CUs (AMD) / SMs (NVIDIA)
  int stream_processors = 0;   // total SPs / CUDA cores
  int warp_size = 32;          // wavefront/warp width Ws
  double core_clock_hz = 0.0;

  // --- timing-model constants -------------------------------------------
  /// Asymptotic kernel-only throughput (omega/s). Calibrated: Kernel II on
  /// the K80 "delivers up to 17.3 Gω/s"; Kernel I plateaus "at around
  /// 7 Gω/s" (paper §VI-C, Fig. 12).
  double peak_k1_omega_per_s = 0.0;
  double peak_k2_omega_per_s = 0.0;
  /// Occupancy ramp: effective rate = peak * n / (n + ramp_scale). Kernel II
  /// needs far more in-flight work to saturate (WILD work-items each loop).
  double ramp_scale_k1 = 0.0;
  double ramp_scale_k2 = 0.0;
  /// Per-enqueue fixed cost (s). Kernel II pays more: padded buffers and the
  /// work-item-load bookkeeping (paper §IV-C). Anchored to "with 1,000 SNPs,
  /// kernel I is 10% faster than kernel II on both systems".
  double launch_overhead_k1_s = 0.0;
  double launch_overhead_k2_s = 0.0;

  /// Host<->device link (PCIe) for the complete-omega model (Fig. 13).
  double pcie_bandwidth_bps = 0.0;  // bytes/s
  double pcie_latency_s = 0.0;
  /// Fraction of transfer time hidden by compute overlap (paper Fig. 14
  /// caption: "part of the data movement overhead is hidden by overlapping
  /// data transfers with kernel execution").
  double transfer_overlap_hidden = 0.5;

  /// Host-side buffer preparation: base packing bandwidth, degraded when the
  /// per-position working set spills the last-level cache (this is what
  /// bends Fig. 13 downward past ~7,000 SNPs).
  double host_pack_bandwidth_bps = 0.0;
  double host_llc_bytes = 0.0;
  double pack_cache_beta = 0.0;  // bw / (1 + beta * log2(bytes / llc))

  /// Padding granularity: buffers are padded to a multiple of the work-group
  /// size (paper §IV-C).
  std::size_t workgroup_size = 256;

  /// Dynamic two-kernel dispatch threshold, Eq. (4): Nthr = NCU * Ws * 32.
  [[nodiscard]] std::uint64_t nthr() const noexcept {
    return static_cast<std::uint64_t>(compute_units) *
           static_cast<std::uint64_t>(warp_size) * 32ull;
  }
};

/// System I: off-the-shelf laptop — AMD A10-5757M APU with a Radeon
/// HD8750M GPU (6 CUs, 384 SPs, wavefront 64).
GpuDeviceSpec radeon_hd8750m();

/// System II: Google Colab — Intel Xeon E5-2699v3 host with an NVIDIA Tesla
/// K80 (13 SMs usable, 2496 CUDA cores, warp 32).
GpuDeviceSpec tesla_k80();

// ---------------------------------------------------------------------------
// FPGA platforms (paper Table I)
// ---------------------------------------------------------------------------

struct FpgaResources {
  double bram = 0;  // BRAM 8K blocks
  double dsp = 0;   // DSP48E slices
  double ff = 0;    // flip-flops
  double lut = 0;   // LUTs
};

struct FpgaDeviceSpec {
  std::string name;
  int logic_cells_k = 0;  // device size (k logic cells), Table I
  int unroll_factor = 0;  // pipeline instances placed (Table I)
  double clock_hz = 0.0;

  /// Total device resources (Table I denominators).
  FpgaResources available;
  /// Resource model: used = base + per_instance * unroll (fitted to the two
  /// published design points, Table I).
  FpgaResources base_cost;
  FpgaResources per_instance_cost;

  // --- cycle-model constants ----------------------------------------------
  /// Latency of the Fig. 8 floating-point pipeline (cycles) plus the RS
  /// prefetch setup per accelerator invocation. Calibrated so the 90%-of-
  /// peak point lands where Figs. 10/11 place it (~4,500 iterations on the
  /// ZCU102, ~30,500 on the Alveo U200).
  int pipeline_latency_cycles = 0;
  int prefetch_cycles = 0;
  /// Effective external-memory bandwidth for streaming TS values when M
  /// resides in DRAM (bytes/s). Caps sustained throughput on real scans;
  /// the Figs. 10/11 microbenchmarks stream from on-chip buffers instead.
  double memory_bandwidth_bps = 0.0;

  /// Peak omega throughput: one omega per pipeline per cycle.
  [[nodiscard]] double peak_omega_per_s() const noexcept {
    return static_cast<double>(unroll_factor) * clock_hz;
  }
  [[nodiscard]] FpgaResources used() const noexcept {
    return {base_cost.bram + per_instance_cost.bram * unroll_factor,
            base_cost.dsp + per_instance_cost.dsp * unroll_factor,
            base_cost.ff + per_instance_cost.ff * unroll_factor,
            base_cost.lut + per_instance_cost.lut * unroll_factor};
  }
};

/// Zynq UltraScale+ ZCU102 evaluation board: unroll 4 @ 100 MHz.
FpgaDeviceSpec zcu102();
/// Alveo U200 data-center accelerator card: unroll 32 @ 250 MHz.
FpgaDeviceSpec alveo_u200();

// ---------------------------------------------------------------------------
// Reference CPUs (paper Table II / §VI-D)
// ---------------------------------------------------------------------------

struct CpuSpec {
  std::string name;
  int cores = 0;
  int threads = 0;
  double base_clock_hz = 0.0;
};

CpuSpec amd_a10_5757m();       // System I host, 4 cores @ 2.5 GHz
CpuSpec xeon_e5_2699v3();      // System II host (Colab slice), 2 cores
CpuSpec core_i7_6700hq();      // Table IV machine, 4 cores / 8 threads

}  // namespace omega::hw
