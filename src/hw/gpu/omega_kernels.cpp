#include "hw/gpu/omega_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/omega_config.h"
#include "hw/gpu/ndrange.h"

namespace omega::hw::gpu {
namespace {

constexpr float kEps = static_cast<float>(core::OmegaConfig::denominator_offset);

/// The device-side arithmetic shared by both kernels: consumes the packed
/// buffers exactly as the OpenCL kernels do (LR sums, km binomials, TS).
inline float omega_at(const core::PositionBuffers& buffers,
                      std::uint64_t flat) noexcept {
  const std::size_t ai = static_cast<std::size_t>(flat / buffers.num_right);
  const std::size_t bi = static_cast<std::size_t>(flat % buffers.num_right);
  const float ls = buffers.ls[ai];
  const float rs = buffers.rs[bi];
  const float within = ls + rs;
  const float numerator = within / (buffers.k[ai] + buffers.m_binom[bi]);
  // total - (ls + rs), not (total - ls) - rs: the symmetric form makes the
  // sub-region order switch bitwise value-neutral.
  const float cross = buffers.total[flat] - within;
  const float lr = static_cast<float>(buffers.l_counts[ai]) *
                   static_cast<float>(buffers.r_counts[bi]);
  return numerator / (cross / lr + kEps);
}

/// Host-side reduction preferring the lowest flat index on ties, which makes
/// the result order-identical to the sequential CPU loop.
KernelResult reduce(const std::vector<float>& omegas,
                    const std::vector<std::uint64_t>& indices,
                    std::uint64_t evaluated) {
  KernelResult result;
  result.max_omega = 0.0f;
  result.flat_index = 0;
  result.evaluated = evaluated;
  bool found = false;
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    const float value = omegas[i];
    if (!std::isfinite(value)) continue;
    if (!found || value > result.max_omega ||
        (value == result.max_omega && indices[i] < result.flat_index)) {
      result.max_omega = value;
      result.flat_index = indices[i];
      found = true;
    }
  }
  if (!found) result.max_omega = 0.0f;
  return result;
}

}  // namespace

std::size_t default_kernel2_work_items(int compute_units,
                                       int warp_size) noexcept {
  // Full-occupancy work-item count: 32 wavefronts/warps per CU is the
  // optimal-occupancy ceiling both vendors document (paper Eq. (4)).
  return static_cast<std::size_t>(compute_units) *
         static_cast<std::size_t>(warp_size) * 32;
}

KernelResult run_kernel1(par::ThreadPool& pool,
                         const core::PositionBuffers& buffers,
                         std::size_t workgroup_size) {
  const std::uint64_t combos = buffers.combinations();
  if (combos == 0) return {};
  NdRange range;
  range.global_size = static_cast<std::size_t>(combos);
  range.local_size = workgroup_size;

  // The omega output buffer, one slot per work-item (padding lanes hold
  // -inf so the reduction ignores them).
  std::vector<float> omegas(range.padded_global(),
                            -std::numeric_limits<float>::infinity());
  enqueue_ndrange(pool, range, [&](const WorkItem& item) {
    if (item.global_id >= combos) return;  // padding lane
    omegas[item.global_id] = omega_at(buffers, item.global_id);
  });

  std::vector<std::uint64_t> indices(omegas.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return reduce(omegas, indices, combos);
}

KernelResult run_kernel2(par::ThreadPool& pool,
                         const core::PositionBuffers& buffers,
                         std::size_t workgroup_size,
                         std::size_t target_work_items) {
  const std::uint64_t combos = buffers.combinations();
  if (combos == 0) return {};
  const std::size_t items =
      std::min<std::uint64_t>(combos, std::max<std::size_t>(1, target_work_items));

  NdRange range;
  range.global_size = items;
  range.local_size = workgroup_size;
  const std::size_t stride = range.padded_global();

  std::vector<float> omegas(stride, -std::numeric_limits<float>::infinity());
  std::vector<std::uint64_t> indices(stride, 0);

  enqueue_ndrange(pool, range, [&](const WorkItem& item) {
    // Strided loop: work-item g handles flats g, g+Gs, g+2Gs, ... so that
    // consecutive work-items touch consecutive TS elements (coalescing).
    float best = -std::numeric_limits<float>::infinity();
    std::uint64_t best_flat = 0;
    std::uint64_t flat = item.global_id;
    // x4 unrolled main loop (the paper's empirically chosen unroll factor).
    const std::uint64_t stride4 = 4ull * stride;
    for (; flat + 3ull * stride < combos; flat += stride4) {
      for (int u = 0; u < 4; ++u) {
        const std::uint64_t f = flat + static_cast<std::uint64_t>(u) * stride;
        const float value = omega_at(buffers, f);
        if (value > best || (value == best && f < best_flat)) {
          best = value;
          best_flat = f;
        }
      }
    }
    for (; flat < combos; flat += stride) {
      const float value = omega_at(buffers, flat);
      if (value > best || (value == best && flat < best_flat)) {
        best = value;
        best_flat = flat;
      }
    }
    if (item.global_id < stride) {
      omegas[item.global_id] = best;
      indices[item.global_id] = best_flat;
    }
  });
  return reduce(omegas, indices, combos);
}

}  // namespace omega::hw::gpu
