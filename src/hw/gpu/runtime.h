#pragma once
// OpenCL-like simulated runtime: buffers, an in-order command queue, events
// with wait lists, and a *modeled device timeline*. The paper's GPU
// implementation is OpenCL; this layer reproduces its host-side structure:
//
//   * Buffer          — device allocation (simulated as host storage);
//   * enqueue_write / enqueue_read — PCIe transfers, modeled on the DMA
//     ("transfer") engine: duration = latency + bytes / bandwidth;
//   * enqueue_kernel  — functional execution on the thread pool NOW, with a
//     caller-supplied modeled duration scheduled on the compute engine;
//   * events/wait lists — dependencies; a command starts at
//     max(its engine's free time, completion of everything it waits on).
//
// Two independent engines give the copy/compute overlap real GPUs have —
// the mechanism behind the paper's "part of the data movement overhead is
// hidden by overlapping data transfers with kernel execution" — so overlap
// *emerges* from the schedule instead of being a fudge factor. The
// closed-form model (timing_model.h) remains the cheap approximation used
// by the paper-scale benches; tests check the two agree.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/device_specs.h"
#include "hw/gpu/ndrange.h"
#include "par/thread_pool.h"

namespace omega::hw::gpu {

class Buffer {
 public:
  explicit Buffer(std::size_t bytes) : storage_(bytes) {}
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::byte* data() noexcept { return storage_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.data();
  }
  /// Typed view helpers.
  template <typename T>
  [[nodiscard]] T* as() noexcept {
    return reinterpret_cast<T*>(storage_.data());
  }
  template <typename T>
  [[nodiscard]] const T* as() const noexcept {
    return reinterpret_cast<const T*>(storage_.data());
  }

 private:
  std::vector<std::byte> storage_;
};

using EventId = std::size_t;

struct Event {
  enum class Kind { WriteBuffer, ReadBuffer, Kernel, HostWork, Marker };
  Kind kind = Kind::Marker;
  std::string label;
  double queued_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
  [[nodiscard]] double duration() const noexcept { return end_s - start_s; }
};

class CommandQueue {
 public:
  CommandQueue(GpuDeviceSpec spec, par::ThreadPool& pool);

  /// Host -> device copy; returns the transfer event.
  EventId enqueue_write(Buffer& destination, const void* source,
                        std::size_t bytes,
                        const std::vector<EventId>& wait_list = {});

  /// Device -> host copy.
  EventId enqueue_read(const Buffer& source, void* destination,
                       std::size_t bytes,
                       const std::vector<EventId>& wait_list = {});

  /// Launches `body` over `range` functionally (on the thread pool, now) and
  /// schedules `modeled_seconds` of compute-engine time.
  EventId enqueue_kernel(const std::string& label, const NdRange& range,
                         const std::function<void(const WorkItem&)>& body,
                         double modeled_seconds,
                         const std::vector<EventId>& wait_list = {});

  /// Serial host-side work (buffer packing etc.), scheduled on the host
  /// "engine": it delays dependent transfers without occupying the device.
  EventId enqueue_host(const std::string& label, double seconds,
                       const std::vector<EventId>& wait_list = {});

  /// Pure synchronization point (no engine time).
  EventId enqueue_marker(const std::vector<EventId>& wait_list);

  [[nodiscard]] const Event& event(EventId id) const { return events_.at(id); }
  [[nodiscard]] std::size_t commands() const noexcept { return events_.size(); }

  /// Makespan of everything enqueued so far.
  [[nodiscard]] double finish_time() const noexcept;
  /// Busy time per engine, and the span during which both are busy (the
  /// transfer time hidden behind compute).
  [[nodiscard]] double transfer_busy_seconds() const noexcept;
  [[nodiscard]] double compute_busy_seconds() const noexcept;
  [[nodiscard]] double overlap_seconds() const;

  [[nodiscard]] const GpuDeviceSpec& spec() const noexcept { return spec_; }

 private:
  double wait_barrier(const std::vector<EventId>& wait_list) const;
  EventId record(Event event);

  GpuDeviceSpec spec_;
  par::ThreadPool& pool_;
  std::vector<Event> events_;
  // Dual copy engines (the K80 generation has independent H2D and D2H
  // DMA units), one compute engine, one serial host lane.
  double h2d_engine_free_ = 0.0;
  double d2h_engine_free_ = 0.0;
  double compute_engine_free_ = 0.0;
  double host_engine_free_ = 0.0;
  double queued_clock_ = 0.0;  // monotone enqueue timestamps
};

}  // namespace omega::hw::gpu
