#pragma once
// GPU LD kernel: the SNP-comparison framework of Binder et al. (IPDPSW'19)
// that the paper integrates for the LD half of GPU-accelerated OmegaPlus.
// Pairwise counts are cast as a blocked matrix product C = A * B^T over the
// compressed SNP representation; on the simulated device each work-group
// owns a TILE x TILE block of C and each work-item produces one count with a
// word-wise AND+popcount loop (the compressed-data analogue of the GEMM
// k-loop).
//
// GpuLdEngine plugs this into the scanner as an ld::LdEngine, giving the
// "complete GPU-accelerated OmegaPlus" configuration: GPU LD (this kernel) +
// GPU omega (omega_kernels.h), exactly the released tool's division of
// labour (paper Fig. 3).

#include <cstdint>

#include "hw/device_specs.h"
#include "ld/gemm.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"

namespace omega::hw::gpu {

/// Computes the pair-count block [i0,i1) x [j0,j1) on the simulated device.
/// Sources select Data/Mask operands (pairwise-complete counting with
/// missing calls needs all four combinations, as in ld::pair_count_block_gemm).
void pair_count_block_gpu(par::ThreadPool& pool, const ld::SnpMatrix& snps,
                          std::size_t i0, std::size_t i1, std::size_t j0,
                          std::size_t j1, std::int32_t* out, std::size_t ld_out,
                          ld::PackSource a_source = ld::PackSource::Data,
                          ld::PackSource b_source = ld::PackSource::Data,
                          std::size_t tile = 16);

struct GpuLdAccounting {
  std::uint64_t pairs_computed = 0;
  std::uint64_t kernel_launches = 0;
  std::uint64_t bytes_transferred = 0;  // packed SNP words shipped per block
};

/// ld::LdEngine running on the simulated GPU.
class GpuLdEngine final : public ld::LdEngine {
 public:
  GpuLdEngine(const ld::SnpMatrix& snps, par::ThreadPool& pool,
              GpuDeviceSpec spec);

  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override;
  [[nodiscard]] std::string name() const override { return "gpu-gemm"; }
  [[nodiscard]] std::size_t num_sites() const override {
    return snps_.num_sites();
  }

  [[nodiscard]] const GpuLdAccounting& accounting() const noexcept {
    return accounting_;
  }

 private:
  const ld::SnpMatrix& snps_;
  par::ThreadPool& pool_;
  GpuDeviceSpec spec_;
  mutable GpuLdAccounting accounting_;
};

}  // namespace omega::hw::gpu
