#include "hw/gpu/gemm_ld_kernel.h"

#include <vector>

#include "hw/gpu/ndrange.h"
#include "util/bits.h"
#include "util/trace.h"

namespace omega::hw::gpu {

void pair_count_block_gpu(par::ThreadPool& pool, const ld::SnpMatrix& snps,
                          std::size_t i0, std::size_t i1, std::size_t j0,
                          std::size_t j1, std::int32_t* out, std::size_t ld_out,
                          ld::PackSource a_source, ld::PackSource b_source,
                          std::size_t tile) {
  const std::size_t m = i1 - i0;
  const std::size_t n = j1 - j0;
  if (m == 0 || n == 0) return;
  const std::size_t words = snps.words_per_site();

  // Work decomposition: one work-item per C element; work-groups are
  // tile x tile blocks laid out row-major across the (padded) C matrix so
  // that a group's items read the same `tile` A rows and B rows (the
  // device's shared-memory tile in the real kernel).
  const std::size_t tiles_i = (m + tile - 1) / tile;
  const std::size_t tiles_j = (n + tile - 1) / tile;
  NdRange range;
  range.global_size = tiles_i * tiles_j * tile * tile;
  range.local_size = tile * tile;

  auto source_row = [&](ld::PackSource source, std::size_t site) {
    return source == ld::PackSource::Data ? snps.row(site) : snps.mask(site);
  };

  enqueue_ndrange(pool, range, [&](const WorkItem& item) {
    const std::size_t tile_index = item.group_id;
    const std::size_t tile_i = tile_index / tiles_j;
    const std::size_t tile_j = tile_index % tiles_j;
    const std::size_t local_i = item.local_id / tile;
    const std::size_t local_j = item.local_id % tile;
    const std::size_t gi = tile_i * tile + local_i;
    const std::size_t gj = tile_j * tile + local_j;
    if (gi >= m || gj >= n) return;  // padding lanes
    const std::uint64_t* a = source_row(a_source, i0 + gi);
    const std::uint64_t* b = source_row(b_source, j0 + gj);
    out[gi * ld_out + gj] =
        static_cast<std::int32_t>(util::and_popcount(a, b, words));
  });
}

GpuLdEngine::GpuLdEngine(const ld::SnpMatrix& snps, par::ThreadPool& pool,
                         GpuDeviceSpec spec)
    : snps_(snps), pool_(pool), spec_(std::move(spec)) {}

void GpuLdEngine::r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                           std::size_t j1, float* out, std::size_t ld) const {
  const util::trace::Span span("ld.gpu-gemm.r2_block");
  const std::size_t m = i1 - i0;
  const std::size_t n_cols = j1 - j0;
  if (m == 0 || n_cols == 0) return;
  note_served(static_cast<std::uint64_t>(m) * n_cols);

  std::vector<std::int32_t> nij(m * n_cols);
  pair_count_block_gpu(pool_, snps_, i0, i1, j0, j1, nij.data(), n_cols);
  accounting_.pairs_computed += m * n_cols;
  accounting_.kernel_launches += 1;
  accounting_.bytes_transferred +=
      (m + n_cols) * snps_.words_per_site() * sizeof(std::uint64_t);

  if (snps_.has_missing()) {
    std::vector<std::int32_t> ni(m * n_cols), nj(m * n_cols), n(m * n_cols);
    pair_count_block_gpu(pool_, snps_, i0, i1, j0, j1, ni.data(), n_cols,
                         ld::PackSource::Data, ld::PackSource::Mask);
    pair_count_block_gpu(pool_, snps_, i0, i1, j0, j1, nj.data(), n_cols,
                         ld::PackSource::Mask, ld::PackSource::Data);
    pair_count_block_gpu(pool_, snps_, i0, i1, j0, j1, n.data(), n_cols,
                         ld::PackSource::Mask, ld::PackSource::Mask);
    accounting_.kernel_launches += 3;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n_cols; ++j) {
        const std::size_t idx = i * n_cols + j;
        out[i * ld + j] = ld::r2_from_counts_f(
            {n[idx], ni[idx], nj[idx], nij[idx]});
      }
    }
    return;
  }

  const auto samples = static_cast<std::int32_t>(snps_.num_samples());
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t ni = snps_.derived_count(i0 + i);
    for (std::size_t j = 0; j < n_cols; ++j) {
      out[i * ld + j] = ld::r2_from_counts_f(
          {samples, ni, snps_.derived_count(j0 + j), nij[i * n_cols + j]});
    }
  }
}

}  // namespace omega::hw::gpu
