#include "hw/gpu/timeline_pipeline.h"

#include "util/trace.h"

namespace omega::hw::gpu {

TimelineSummary schedule_complete_omega(const GpuDeviceSpec& spec,
                                        par::ThreadPool& pool,
                                        const core::ScanWorkload& workload) {
  const util::trace::Span span("gpu.timeline.schedule");
  CommandQueue queue(spec, pool);
  TimelineSummary summary;

  // One reusable device buffer pair (double buffering): writes for position
  // i+1 may start once the kernel of position i-1 released its buffer. With
  // an in-order transfer engine the constraint reduces to "write_{i+1} waits
  // on kernel_{i-1}".
  Buffer device_buffer(1);  // contents irrelevant to the timeline
  std::byte scratch{};
  std::vector<EventId> kernel_events;

  for (const auto& position : workload.positions) {
    if (position.combinations == 0) continue;
    ++summary.positions;
    summary.omega_evaluations += position.combinations;

    const double prep = host_prep_seconds(spec, position.omega_payload_bytes);
    const EventId packed = queue.enqueue_host("pack", prep);

    std::vector<EventId> write_deps{packed};
    if (kernel_events.size() >= 2) {
      write_deps.push_back(kernel_events[kernel_events.size() - 2]);
    }
    // The timeline only needs byte counts; route the padded payload through
    // a 1-byte scratch transfer and scale the modeled duration by hand via
    // repeated accounting — instead, simplest correct route: enqueue the
    // write with the real byte count against a buffer of that size.
    const std::uint64_t wire = padded_bytes(spec, position.omega_payload_bytes);
    Buffer wire_buffer(wire);
    std::vector<std::byte> staging(wire);
    const EventId written =
        queue.enqueue_write(wire_buffer, staging.data(), wire, write_deps);

    const auto choice = dispatch(spec, position.combinations);
    const double kernel_s = kernel_time(spec, choice, position.combinations);
    if (choice == KernelChoice::Kernel1) {
      ++summary.kernel1_launches;
      summary.kernel1_omegas += position.combinations;
      summary.kernel1_busy_s += kernel_s;
    } else {
      ++summary.kernel2_launches;
      summary.kernel2_omegas += position.combinations;
      summary.kernel2_busy_s += kernel_s;
    }
    NdRange range;
    range.global_size = 1;  // timing-only launch
    const EventId kernel = queue.enqueue_kernel(
        choice == KernelChoice::Kernel1 ? "omega-k1" : "omega-k2", range,
        [](const WorkItem&) {}, kernel_s, {written});
    kernel_events.push_back(kernel);

    // Result read: the per-position maxima are tiny; one float4-ish record.
    queue.enqueue_read(device_buffer, &scratch, 1, {kernel});
  }

  summary.makespan_s = queue.finish_time();
  summary.transfer_busy_s = queue.transfer_busy_seconds();
  summary.compute_busy_s = queue.compute_busy_seconds();
  summary.overlap_s = queue.overlap_seconds();
  for (std::size_t id = 0; id < queue.commands(); ++id) {
    if (queue.event(id).kind == Event::Kind::HostWork) {
      summary.host_busy_s += queue.event(id).duration();
    }
  }
  return summary;
}

}  // namespace omega::hw::gpu
