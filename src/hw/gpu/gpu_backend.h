#pragma once
// GPU omega backend: plugs the simulated device into the scanner. Per grid
// position it mirrors the paper's host flow (Fig. 3, GPU side):
//   1. sub-region order-switch — the SNP-richer sub-region becomes the inner
//      loop to maximize coalesced accesses (§IV-B);
//   2. pack the LR / km / TS buffers from M (core::pack_position);
//   3. dynamic two-kernel dispatch on Nthr (Eq. 4);
//   4. run the chosen functional kernel on the thread pool;
//   5. account modeled device time (timing_model.h) alongside the result.
//
// The order switch is value-neutral (Eq. (2) is symmetric in L and R), so
// results stay comparable with the CPU backend; it matters for the modeled
// memory pattern and is exposed as an ablation toggle.

#include <cstdint>
#include <functional>
#include <memory>

#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/gpu/omega_kernels.h"
#include "hw/gpu/timing_model.h"
#include "par/thread_pool.h"
#include "util/cancel.h"
#include "util/fault.h"

namespace omega::hw::gpu {

enum class KernelPolicy { Dynamic, ForceKernel1, ForceKernel2 };

struct GpuBackendOptions {
  KernelPolicy policy = KernelPolicy::Dynamic;
  bool order_switch = true;
  /// Cap on functionally executed combinations per position; above it the
  /// kernel samples... never: functional execution is exact. The cap guards
  /// against accidentally running paper-scale workloads functionally.
  std::uint64_t functional_cap = 1ull << 26;
  /// Deterministic fault injection (util/fault.h); disabled by default.
  /// Injected failures surface as core::BackendError / NaN-poisoned results
  /// for the scan driver's recovery engine.
  util::fault::FaultPlan fault_plan;
  /// When > 0: a position whose modeled device time exceeds this budget
  /// raises a Timeout BackendError (the watchdog a real OpenCL runtime would
  /// apply to a runaway kernel). 0 disables the check.
  double modeled_timeout_seconds = 0.0;
  /// Optional cooperative-cancellation token (util/cancel.h), polled at
  /// launch entry and again between dispatch and the kernel run — the points
  /// a real host would check before committing device work. A cancelled poll
  /// throws util::CancelledError, which the recovery engine deliberately does
  /// NOT retry (it is not a BackendError). Not owned; must outlive the scan.
  const util::CancelToken* cancel = nullptr;
  /// Scorer for positions above functional_cap (default: the scalar
  /// core::max_omega_search reference). The heterogeneous co-scheduler sets
  /// functional_cap = 0 and injects the scan's dispatched CPU kernel here so
  /// accelerator partitions score bitwise-identically to the CPU partition
  /// (the kernel bodies agree only up to summation-order ULPs).
  std::function<core::OmegaResult(const core::DpMatrix&,
                                  const core::GridPosition&)>
      host_scorer;
};

/// Accumulated device-model accounting for a scan.
struct GpuAccounting {
  double modeled_kernel_seconds = 0.0;
  double modeled_prep_seconds = 0.0;
  double modeled_transfer_seconds = 0.0;
  double modeled_total_seconds = 0.0;
  std::uint64_t positions_kernel1 = 0;
  std::uint64_t positions_kernel2 = 0;
  /// Omega evaluations routed to each kernel by the Eq. (4) dispatcher;
  /// omegas_kernel1 + omegas_kernel2 == omega_evaluations.
  std::uint64_t omegas_kernel1 = 0;
  std::uint64_t omegas_kernel2 = 0;
  std::uint64_t omega_evaluations = 0;
  std::uint64_t bytes_moved = 0;
  /// Host wall time spent packing buffers and choosing the kernel (a
  /// sub-bucket of the scan's omega stage).
  double dispatch_seconds = 0.0;
};

class GpuOmegaBackend final : public core::OmegaBackend {
 public:
  GpuOmegaBackend(const GpuDeviceSpec& spec, par::ThreadPool& pool,
                  GpuBackendOptions options = {});

  [[nodiscard]] std::string name() const override;
  core::OmegaResult max_omega(const core::DpMatrix& m,
                              const core::GridPosition& position) override;
  /// Maps the device-model accounting onto ScanProfile::gpu.
  void contribute(core::ScanProfile& profile) const override;

  [[nodiscard]] const GpuAccounting& accounting() const noexcept {
    return accounting_;
  }
  [[nodiscard]] const util::fault::FaultCounters& fault_counters()
      const noexcept {
    return injector_.counters();
  }

 private:
  GpuDeviceSpec spec_;
  par::ThreadPool& pool_;
  GpuBackendOptions options_;
  GpuAccounting accounting_;
  util::fault::FaultInjector injector_;
};

}  // namespace omega::hw::gpu
