#pragma once
// Analytical GPU timing model. The functional kernels (omega_kernels.h)
// establish *what* is computed; this model establishes *how long* the real
// device would take, from first principles:
//
//   kernel time(position)  = launch overhead + n / rate(n)
//   rate(n)                = peak * n / (n + ramp)        (occupancy ramp)
//
// with per-kernel peaks/ramps/overheads from the device spec (see
// device_specs.cpp for the calibration anchors). The complete-omega model
// (Fig. 13) adds host buffer preparation (cache-sensitive), padding, and the
// PCIe transfer with partial compute overlap (Fig. 14 caption).

#include <cstdint>

#include "hw/device_specs.h"

namespace omega::hw::gpu {

enum class KernelChoice { Kernel1, Kernel2 };

/// Device seconds for one position's omega maximization on the given kernel.
double kernel_time(const GpuDeviceSpec& spec, KernelChoice kernel,
                   std::uint64_t n_omega);

/// The dynamic two-kernel dispatch rule, Eq. (4).
[[nodiscard]] KernelChoice dispatch(const GpuDeviceSpec& spec,
                                    std::uint64_t n_omega);

/// Per-position cost breakdown of the complete GPU-accelerated omega
/// computation, i.e. including data preparation and movement (Fig. 13).
struct CompleteCost {
  double prep_s = 0.0;      // host-side packing of LR/km/TS from M
  double transfer_s = 0.0;  // PCIe, after padding
  double kernel_s = 0.0;    // device compute
  double total_s = 0.0;     // with transfer/compute overlap applied
};

CompleteCost complete_position_cost(const GpuDeviceSpec& spec,
                                    KernelChoice kernel, std::uint64_t n_omega,
                                    std::uint64_t payload_bytes);

/// Buffer padding applied before transfer: every buffer is padded to a
/// multiple of the work-group size (paper §IV-C). Approximated as one
/// work-group worth of floats per buffer (5 buffers).
[[nodiscard]] std::uint64_t padded_bytes(const GpuDeviceSpec& spec,
                                         std::uint64_t payload_bytes) noexcept;

/// Host-side buffer-packing time for one position (cache-sensitive; the
/// Fig. 13 droop). Shared by the closed-form model and the event timeline.
[[nodiscard]] double host_prep_seconds(const GpuDeviceSpec& spec,
                                       std::uint64_t payload_bytes) noexcept;

}  // namespace omega::hw::gpu
