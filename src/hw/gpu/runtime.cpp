#include "hw/gpu/runtime.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace omega::hw::gpu {

CommandQueue::CommandQueue(GpuDeviceSpec spec, par::ThreadPool& pool)
    : spec_(std::move(spec)), pool_(pool) {}

double CommandQueue::wait_barrier(const std::vector<EventId>& wait_list) const {
  double barrier = 0.0;
  for (const EventId id : wait_list) {
    barrier = std::max(barrier, events_.at(id).end_s);
  }
  return barrier;
}

EventId CommandQueue::record(Event event) {
  events_.push_back(std::move(event));
  return events_.size() - 1;
}

EventId CommandQueue::enqueue_write(Buffer& destination, const void* source,
                                    std::size_t bytes,
                                    const std::vector<EventId>& wait_list) {
  if (bytes > destination.size()) {
    throw std::out_of_range("enqueue_write: buffer overflow");
  }
  std::memcpy(destination.data(), source, bytes);  // functional effect

  Event event;
  event.kind = Event::Kind::WriteBuffer;
  event.label = "write " + std::to_string(bytes) + "B";
  event.queued_s = queued_clock_;
  event.start_s = std::max(h2d_engine_free_, wait_barrier(wait_list));
  event.end_s = event.start_s + spec_.pcie_latency_s +
                static_cast<double>(bytes) / spec_.pcie_bandwidth_bps;
  h2d_engine_free_ = event.end_s;
  return record(std::move(event));
}

EventId CommandQueue::enqueue_read(const Buffer& source, void* destination,
                                   std::size_t bytes,
                                   const std::vector<EventId>& wait_list) {
  if (bytes > source.size()) {
    throw std::out_of_range("enqueue_read: buffer overread");
  }
  std::memcpy(destination, source.data(), bytes);

  Event event;
  event.kind = Event::Kind::ReadBuffer;
  event.label = "read " + std::to_string(bytes) + "B";
  event.queued_s = queued_clock_;
  event.start_s = std::max(d2h_engine_free_, wait_barrier(wait_list));
  event.end_s = event.start_s + spec_.pcie_latency_s +
                static_cast<double>(bytes) / spec_.pcie_bandwidth_bps;
  d2h_engine_free_ = event.end_s;
  return record(std::move(event));
}

EventId CommandQueue::enqueue_kernel(
    const std::string& label, const NdRange& range,
    const std::function<void(const WorkItem&)>& body, double modeled_seconds,
    const std::vector<EventId>& wait_list) {
  enqueue_ndrange(pool_, range, body);  // functional effect, host-side

  Event event;
  event.kind = Event::Kind::Kernel;
  event.label = label;
  event.queued_s = queued_clock_;
  event.start_s = std::max(compute_engine_free_, wait_barrier(wait_list));
  event.end_s = event.start_s + modeled_seconds;
  compute_engine_free_ = event.end_s;
  return record(std::move(event));
}

EventId CommandQueue::enqueue_host(const std::string& label, double seconds,
                                   const std::vector<EventId>& wait_list) {
  Event event;
  event.kind = Event::Kind::HostWork;
  event.label = label;
  event.queued_s = queued_clock_;
  event.start_s = std::max(host_engine_free_, wait_barrier(wait_list));
  event.end_s = event.start_s + seconds;
  host_engine_free_ = event.end_s;
  return record(std::move(event));
}

EventId CommandQueue::enqueue_marker(const std::vector<EventId>& wait_list) {
  Event event;
  event.kind = Event::Kind::Marker;
  event.label = "marker";
  event.queued_s = queued_clock_;
  event.start_s = wait_barrier(wait_list);
  event.end_s = event.start_s;
  return record(std::move(event));
}

double CommandQueue::finish_time() const noexcept {
  double makespan = 0.0;
  for (const auto& event : events_) {
    makespan = std::max(makespan, event.end_s);
  }
  return makespan;
}

double CommandQueue::transfer_busy_seconds() const noexcept {
  double busy = 0.0;
  for (const auto& event : events_) {
    if (event.kind == Event::Kind::WriteBuffer ||
        event.kind == Event::Kind::ReadBuffer) {
      busy += event.duration();
    }
  }
  return busy;
}

double CommandQueue::compute_busy_seconds() const noexcept {
  double busy = 0.0;
  for (const auto& event : events_) {
    if (event.kind == Event::Kind::Kernel) busy += event.duration();
  }
  return busy;
}

double CommandQueue::overlap_seconds() const {
  // Both engines are in-order, so each engine's busy set is a list of
  // disjoint intervals; overlap is the total intersection.
  std::vector<std::pair<double, double>> transfer, compute;
  for (const auto& event : events_) {
    if (event.duration() <= 0.0) continue;
    if (event.kind == Event::Kind::Kernel) {
      compute.emplace_back(event.start_s, event.end_s);
    } else if (event.kind == Event::Kind::WriteBuffer ||
               event.kind == Event::Kind::ReadBuffer) {
      transfer.emplace_back(event.start_s, event.end_s);
    }
  }
  std::sort(transfer.begin(), transfer.end());
  std::sort(compute.begin(), compute.end());
  double overlap = 0.0;
  std::size_t i = 0, j = 0;
  while (i < transfer.size() && j < compute.size()) {
    const double lo = std::max(transfer[i].first, compute[j].first);
    const double hi = std::min(transfer[i].second, compute[j].second);
    if (hi > lo) overlap += hi - lo;
    if (transfer[i].second < compute[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

}  // namespace omega::hw::gpu
