#pragma once
// Event-timeline scheduling of the complete GPU omega computation: for every
// grid position, host packing -> buffer write -> kernel -> result read, all
// expressed as dependent commands on the simulated runtime. Positions
// pipeline naturally: the host packs position i+1 while the DMA engine ships
// position i and the compute engine crunches position i-1 — the overlap the
// paper describes, emerging from the schedule rather than from the
// closed-form model's fixed hiding fraction.

#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/gpu/runtime.h"
#include "hw/gpu/timing_model.h"

namespace omega::hw::gpu {

struct TimelineSummary {
  double makespan_s = 0.0;
  double host_busy_s = 0.0;      // buffer packing
  double transfer_busy_s = 0.0;  // PCIe writes + result reads
  double compute_busy_s = 0.0;   // kernels
  double overlap_s = 0.0;        // transfer hidden behind compute
  std::uint64_t positions = 0;
  std::uint64_t omega_evaluations = 0;
  /// Per-kernel record of every Eq. (4) dispatch() decision on the timeline
  /// and the simulated device time each kernel accumulated.
  std::uint64_t kernel1_launches = 0;
  std::uint64_t kernel2_launches = 0;
  std::uint64_t kernel1_omegas = 0;
  std::uint64_t kernel2_omegas = 0;
  double kernel1_busy_s = 0.0;
  double kernel2_busy_s = 0.0;

  [[nodiscard]] double throughput() const noexcept {
    return makespan_s > 0.0
               ? static_cast<double>(omega_evaluations) / makespan_s
               : 0.0;
  }
};

/// Schedules the whole scan workload (timing only — kernels are enqueued as
/// no-op bodies since the values are irrelevant to the timeline) and returns
/// the timeline summary.
TimelineSummary schedule_complete_omega(const GpuDeviceSpec& spec,
                                        par::ThreadPool& pool,
                                        const core::ScanWorkload& workload);

}  // namespace omega::hw::gpu
