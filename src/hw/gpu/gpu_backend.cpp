#include "hw/gpu/gpu_backend.h"

#include <limits>
#include <utility>
#include <vector>

#include "core/resilience.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::hw::gpu {
namespace {

/// Sub-region order switch: exchanges the L and R roles inside the packed
/// buffers (transposing TS) so that the inner loop runs over the SNP-richer
/// side. Value-neutral by the symmetry of Eq. (2).
core::PositionBuffers swap_sides(const core::PositionBuffers& buffers) {
  core::PositionBuffers swapped;
  swapped.num_left = buffers.num_right;
  swapped.num_right = buffers.num_left;
  swapped.ls = buffers.rs;
  swapped.rs = buffers.ls;
  swapped.k = buffers.m_binom;
  swapped.m_binom = buffers.k;
  swapped.l_counts = buffers.r_counts;
  swapped.r_counts = buffers.l_counts;
  swapped.total.resize(buffers.total.size());
  for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
    for (std::size_t bi = 0; bi < buffers.num_right; ++bi) {
      swapped.total[bi * swapped.num_right + ai] =
          buffers.total[ai * buffers.num_right + bi];
    }
  }
  return swapped;
}

}  // namespace

GpuOmegaBackend::GpuOmegaBackend(const GpuDeviceSpec& spec,
                                 par::ThreadPool& pool,
                                 GpuBackendOptions options)
    : spec_(spec),
      pool_(pool),
      options_(options),
      injector_(options.fault_plan) {}

std::string GpuOmegaBackend::name() const { return "gpu-sim:" + spec_.name; }

core::OmegaResult GpuOmegaBackend::max_omega(
    const core::DpMatrix& m, const core::GridPosition& position) {
  core::OmegaResult result;
  if (!position.valid) return result;

  // Cancel poll before committing any host work: the analogue of a host
  // checking its abort flag before enqueueing. CancelledError is not a
  // BackendError, so the recovery engine lets it propagate to the drain.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw util::CancelledError(options_.cancel->reason());
  }

  // Fault hook: injected failures fire before any work or accounting, the
  // way a failed clEnqueueNDRangeKernel would. TransientNan instead lets the
  // position run and poisons the returned score.
  bool poison_result = false;
  switch (injector_.next()) {
    case util::fault::FaultMode::KernelLaunch:
      throw core::BackendError(core::BackendErrorKind::KernelLaunch, name(),
                               "injected kernel-launch failure");
    case util::fault::FaultMode::Timeout:
      throw core::BackendError(core::BackendErrorKind::Timeout, name(),
                               "injected device timeout");
    case util::fault::FaultMode::DeviceLost:
      throw core::BackendError(core::BackendErrorKind::DeviceLost, name(),
                               "injected device loss");
    case util::fault::FaultMode::TransientNan:
      poison_result = true;
      break;
    default:
      break;
  }

  core::PositionBuffers buffers;
  std::uint64_t combos = 0;
  bool swapped = false;
  KernelChoice choice = KernelChoice::Kernel1;
  {
    // Host-side packing + Eq. (4) kernel selection: the "dispatch" stage.
    // Pack time is charged even for zero-combination positions — the host
    // pays for packing before it can know the position is empty.
    const util::trace::Span dispatch_span("gpu.dispatch");
    const util::Timer dispatch_timer;
    buffers = core::pack_position(m, position);
    combos = buffers.combinations();
    if (combos != 0) {
      swapped = options_.order_switch && buffers.num_left > buffers.num_right;
      if (swapped) buffers = swap_sides(buffers);

      switch (options_.policy) {
        case KernelPolicy::ForceKernel1:
          choice = KernelChoice::Kernel1;
          break;
        case KernelPolicy::ForceKernel2:
          choice = KernelChoice::Kernel2;
          break;
        case KernelPolicy::Dynamic:
        default:
          choice = dispatch(spec_, combos);
          break;
      }
    }
    accounting_.dispatch_seconds += dispatch_timer.seconds();
  }
  if (combos == 0) return result;

  // Second poll between dispatch and the kernel run: the last moment a real
  // host could abandon the position before paying for the launch.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw util::CancelledError(options_.cancel->reason());
  }

  // Functional execution (exact float arithmetic); guarded by the cap so a
  // paper-scale workload falls back to the CPU loop (identical values up to
  // float/double rounding) instead of running for hours.
  std::uint64_t flat = 0;
  if (combos <= options_.functional_cap) {
    KernelResult kernel_result;
    if (choice == KernelChoice::Kernel1) {
      const util::trace::Span span("gpu.kernel1");
      kernel_result = run_kernel1(pool_, buffers, spec_.workgroup_size);
    } else {
      const util::trace::Span span("gpu.kernel2");
      kernel_result = run_kernel2(
          pool_, buffers, spec_.workgroup_size,
          default_kernel2_work_items(spec_.compute_units, spec_.warp_size));
    }
    result.max_omega = static_cast<double>(kernel_result.max_omega);
    flat = kernel_result.flat_index;
    result.evaluated = kernel_result.evaluated;
    std::size_t ai = static_cast<std::size_t>(flat / buffers.num_right);
    std::size_t bi = static_cast<std::size_t>(flat % buffers.num_right);
    if (swapped) std::swap(ai, bi);
    result.best_a = position.lo + ai;
    result.best_b = position.b_min + bi;
  } else {
    result = options_.host_scorer ? options_.host_scorer(m, position)
                                  : core::max_omega_search(m, position);
  }

  const CompleteCost cost = complete_position_cost(
      spec_, choice, combos, buffers.payload_bytes());
  // Modeled watchdog: a position whose device time blows the budget is
  // treated as a failed launch — no result, no accounting — matching a
  // runtime that kills and reaps the kernel.
  if (options_.modeled_timeout_seconds > 0.0 &&
      cost.total_s > options_.modeled_timeout_seconds) {
    throw core::BackendError(core::BackendErrorKind::Timeout, name(),
                             "modeled device time exceeded budget");
  }
  if (poison_result) {
    result.max_omega = std::numeric_limits<double>::quiet_NaN();
  }

  // Device-model accounting. The histogram records one sample per completed
  // launch, so its count reconciles against kernel1_launches +
  // kernel2_launches (watchdog-killed launches are accounted in neither).
  static util::telemetry::Histogram& launch_hist =
      util::telemetry::histogram("gpu.launch_modeled_seconds");
  launch_hist.record(cost.total_s);
  if (choice == KernelChoice::Kernel1) {
    ++accounting_.positions_kernel1;
    accounting_.omegas_kernel1 += combos;
  } else {
    ++accounting_.positions_kernel2;
    accounting_.omegas_kernel2 += combos;
  }
  accounting_.modeled_kernel_seconds += cost.kernel_s;
  accounting_.modeled_prep_seconds += cost.prep_s;
  accounting_.modeled_transfer_seconds += cost.transfer_s;
  accounting_.modeled_total_seconds += cost.total_s;
  accounting_.omega_evaluations += combos;
  accounting_.bytes_moved += padded_bytes(spec_, buffers.payload_bytes());
  return result;
}

void GpuOmegaBackend::contribute(core::ScanProfile& profile) const {
  profile.gpu.kernel1_launches += accounting_.positions_kernel1;
  profile.gpu.kernel2_launches += accounting_.positions_kernel2;
  profile.gpu.kernel1_omegas += accounting_.omegas_kernel1;
  profile.gpu.kernel2_omegas += accounting_.omegas_kernel2;
  profile.gpu.modeled_kernel_seconds += accounting_.modeled_kernel_seconds;
  profile.gpu.modeled_prep_seconds += accounting_.modeled_prep_seconds;
  profile.gpu.modeled_transfer_seconds += accounting_.modeled_transfer_seconds;
  profile.gpu.modeled_total_seconds += accounting_.modeled_total_seconds;
  profile.gpu.bytes_moved += accounting_.bytes_moved;
  profile.stages.dispatch_seconds += accounting_.dispatch_seconds;
  const auto& faults = injector_.counters();
  profile.faults.faults_injected += faults.total_injected();
  profile.faults.injected_kernel_launch += faults.injected_kernel_launch;
  profile.faults.injected_timeout += faults.injected_timeout;
  profile.faults.injected_nan += faults.injected_nan;
  profile.faults.injected_device_lost += faults.injected_device_lost;
}

}  // namespace omega::hw::gpu
