#include "hw/gpu/timing_model.h"

#include <algorithm>
#include <cmath>

namespace omega::hw::gpu {

double kernel_time(const GpuDeviceSpec& spec, KernelChoice kernel,
                   std::uint64_t n_omega) {
  if (n_omega == 0) return 0.0;
  const double n = static_cast<double>(n_omega);
  const bool k1 = kernel == KernelChoice::Kernel1;
  const double peak = k1 ? spec.peak_k1_omega_per_s : spec.peak_k2_omega_per_s;
  const double ramp = k1 ? spec.ramp_scale_k1 : spec.ramp_scale_k2;
  const double overhead =
      k1 ? spec.launch_overhead_k1_s : spec.launch_overhead_k2_s;
  const double rate = peak * n / (n + ramp);
  return overhead + n / rate;
}

KernelChoice dispatch(const GpuDeviceSpec& spec, std::uint64_t n_omega) {
  return n_omega < spec.nthr() ? KernelChoice::Kernel1 : KernelChoice::Kernel2;
}

std::uint64_t padded_bytes(const GpuDeviceSpec& spec,
                           std::uint64_t payload_bytes) noexcept {
  const std::uint64_t granule = spec.workgroup_size * sizeof(float);
  // 5 device buffers (ls, rs, k, m, TS), each individually padded upward.
  const std::uint64_t padded =
      (payload_bytes + granule - 1) / granule * granule + 4 * granule;
  return padded;
}

double host_prep_seconds(const GpuDeviceSpec& spec,
                         std::uint64_t payload_bytes) noexcept {
  // Streaming writes of the TS matrix; once the per-position working set
  // spills the LLC the effective bandwidth degrades (the observed Fig. 13
  // droop past ~7,000 SNPs).
  double pack_bw = spec.host_pack_bandwidth_bps;
  const double bytes = static_cast<double>(payload_bytes);
  if (bytes > spec.host_llc_bytes) {
    pack_bw /= 1.0 + spec.pack_cache_beta * std::log2(bytes / spec.host_llc_bytes);
  }
  return bytes / pack_bw;
}

CompleteCost complete_position_cost(const GpuDeviceSpec& spec,
                                    KernelChoice kernel, std::uint64_t n_omega,
                                    std::uint64_t payload_bytes) {
  CompleteCost cost;
  if (n_omega == 0) return cost;
  const std::uint64_t wire_bytes = padded_bytes(spec, payload_bytes);
  cost.prep_s = host_prep_seconds(spec, payload_bytes);
  cost.transfer_s = spec.pcie_latency_s +
                    static_cast<double>(wire_bytes) / spec.pcie_bandwidth_bps;
  cost.kernel_s = kernel_time(spec, kernel, n_omega);

  // A fraction of the transfer overlaps kernel execution of the previous
  // position; the overlap cannot exceed the kernel time itself.
  const double hidden =
      std::min(cost.transfer_s * spec.transfer_overlap_hidden, cost.kernel_s);
  cost.total_s = cost.prep_s + cost.transfer_s + cost.kernel_s - hidden;
  return cost;
}

}  // namespace omega::hw::gpu
