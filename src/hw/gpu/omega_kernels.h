#pragma once
// Functional implementations of the paper's two GPU omega kernels (§IV-B,
// §IV-C). Both consume the per-position host buffers (LR = ls/rs, km =
// binomials, TS = total sums) packed by core::pack_position and produce the
// position's maximum omega and its flat combination index.
//
//   Kernel I  — one omega per work-item (small workloads, Fig. 4);
//   Kernel II — `wild` omegas per work-item with a x4-unrolled inner loop,
//               per-item running maximum, strided accesses arranged so
//               consecutive work-items read consecutive elements (Fig. 5).
//
// Arithmetic is single-precision (omega_from_sums_f), matching the device
// datapath, so CPU/GPU results can be compared exactly in tests.

#include <cstdint>

#include "core/omega_search.h"
#include "par/thread_pool.h"

namespace omega::hw::gpu {

struct KernelResult {
  float max_omega = 0.0f;
  std::uint64_t flat_index = 0;  // ai * num_right + bi
  std::uint64_t evaluated = 0;
};

/// Kernel I: global size = #combinations (padded to the work-group size).
KernelResult run_kernel1(par::ThreadPool& pool,
                         const core::PositionBuffers& buffers,
                         std::size_t workgroup_size);

/// Kernel II: global size ~ target_work_items, each handling
/// ceil(#combinations / global) combinations ("work-item load", WILD).
KernelResult run_kernel2(par::ThreadPool& pool,
                         const core::PositionBuffers& buffers,
                         std::size_t workgroup_size,
                         std::size_t target_work_items);

/// Default Kernel II work-item count ("initialized with an empirically
/// determined constant", §IV-C): enough work-items for full occupancy.
[[nodiscard]] std::size_t default_kernel2_work_items(int compute_units,
                                                     int warp_size) noexcept;

}  // namespace omega::hw::gpu
