#pragma once
// OpenCL-like NDRange execution model, simulated on the host thread pool.
// Work-items are grouped into work-groups of `local_size`; work-groups are
// distributed over the pool's workers (each worker plays a compute unit).
// Kernels are C++ callables receiving a WorkItem context — the functional
// half of the GPU substitution (timing is modeled separately, see
// timing_model.h).

#include <cstdint>
#include <functional>

#include "par/thread_pool.h"

namespace omega::hw::gpu {

struct WorkItem {
  std::size_t global_id = 0;
  std::size_t local_id = 0;
  std::size_t group_id = 0;
  std::size_t global_size = 0;
  std::size_t local_size = 0;
};

struct NdRange {
  std::size_t global_size = 0;
  std::size_t local_size = 256;

  /// OpenCL requires global % local == 0; padded_global rounds up, the
  /// kernel must mask off the padding itself (as the paper's kernels do).
  [[nodiscard]] std::size_t padded_global() const noexcept {
    return (global_size + local_size - 1) / local_size * local_size;
  }
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return padded_global() / local_size;
  }
};

/// Executes `kernel` for every work-item of the padded range. Work-groups
/// are scheduled dynamically over the pool.
void enqueue_ndrange(par::ThreadPool& pool, const NdRange& range,
                     const std::function<void(const WorkItem&)>& kernel);

}  // namespace omega::hw::gpu
