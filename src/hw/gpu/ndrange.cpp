#include "hw/gpu/ndrange.h"

namespace omega::hw::gpu {

void enqueue_ndrange(par::ThreadPool& pool, const NdRange& range,
                     const std::function<void(const WorkItem&)>& kernel) {
  if (range.global_size == 0) return;
  const std::size_t groups = range.num_groups();
  par::parallel_for(pool, 0, groups, 1, [&](std::size_t group) {
    WorkItem item;
    item.group_id = group;
    item.global_size = range.padded_global();
    item.local_size = range.local_size;
    for (std::size_t lane = 0; lane < range.local_size; ++lane) {
      item.local_id = lane;
      item.global_id = group * range.local_size + lane;
      kernel(item);
    }
  });
}

}  // namespace omega::hw::gpu
