#include "hw/device_specs.h"

namespace omega::hw {

GpuDeviceSpec radeon_hd8750m() {
  GpuDeviceSpec spec;
  spec.name = "AMD Radeon HD8750M";
  spec.host_cpu = "AMD A10-5757M @ 2.5 GHz";
  spec.compute_units = 6;
  spec.stream_processors = 384;
  spec.warp_size = 64;  // GCN wavefront
  spec.core_clock_hz = 620e6;
  // Calibrated so System I's Fig. 12 curves satisfy: K1 faster at 1,000
  // SNPs; dynamic up to ~2.59x faster than K1 by 20,000 SNPs.
  spec.peak_k1_omega_per_s = 2.65e9;
  spec.peak_k2_omega_per_s = 7.0e9;
  spec.ramp_scale_k1 = 1.8e5;
  spec.ramp_scale_k2 = 1.1e6;
  spec.launch_overhead_k1_s = 12e-6;
  spec.launch_overhead_k2_s = 13.2e-6;  // 1.1x K1: the 10%-at-1,000-SNPs anchor
  spec.pcie_bandwidth_bps = 3.0e9;      // PCIe 2.0-era laptop link, effective
  spec.pcie_latency_s = 12e-6;
  spec.transfer_overlap_hidden = 0.4;
  spec.host_pack_bandwidth_bps = 2.0e9;
  // Effective locality reach of the host packing loop (LLC + TLB/page
  // locality); calibrated so the Fig. 13 droop starts past ~7,000 SNPs
  // (~33 MB of per-position buffers).
  spec.host_llc_bytes = 64.0 * 1024 * 1024;
  spec.pack_cache_beta = 1.0;
  spec.workgroup_size = 256;
  return spec;
}

GpuDeviceSpec tesla_k80() {
  GpuDeviceSpec spec;
  spec.name = "NVIDIA Tesla K80";
  spec.host_cpu = "Intel Xeon E5-2699 v3 @ 2.3 GHz (Colab slice)";
  spec.compute_units = 13;
  spec.stream_processors = 2496;
  spec.warp_size = 32;
  spec.core_clock_hz = 875e6;  // boost clock (Colab enables autoboost)
  // Calibrated anchors (paper §VI-C): K1 plateau ~7 Gω/s, K2 up to
  // 17.3 Gω/s at 20,000 SNPs, dynamic tracking K2, K1 ~10% faster at 1,000
  // SNPs (per-position workloads of ~2.5e5 omegas under the exhaustive
  // Fig. 12 configuration).
  spec.peak_k1_omega_per_s = 7.4e9;
  spec.peak_k2_omega_per_s = 17.6e9;
  spec.ramp_scale_k1 = 2.0e5;
  spec.ramp_scale_k2 = 1.0e6;
  spec.launch_overhead_k1_s = 8e-6;
  spec.launch_overhead_k2_s = 8.8e-6;
  spec.pcie_bandwidth_bps = 6.0e9;  // PCIe 3.0 x16, effective host-pinned
  spec.pcie_latency_s = 8e-6;
  spec.transfer_overlap_hidden = 0.5;
  spec.host_pack_bandwidth_bps = 3.0e9;
  // Effective locality reach of the host packing loop; calibrated to place
  // the Fig. 13 peak near 7,000 SNPs (see EXPERIMENTS.md).
  spec.host_llc_bytes = 64.0 * 1024 * 1024;
  spec.pack_cache_beta = 1.0;
  spec.workgroup_size = 256;
  return spec;
}

FpgaDeviceSpec zcu102() {
  FpgaDeviceSpec spec;
  spec.name = "Zynq UltraScale+ ZCU102";
  spec.logic_cells_k = 600;
  spec.unroll_factor = 4;
  spec.clock_hz = 100e6;
  spec.available = {1824, 2520, 0.55e6, 0.27e6};
  // Fitted to Table I across the two published design points:
  //   BRAM: 36 = base + 4u ; 40 = base + 32u   -> u ~ 0.143, base ~ 35.4
  //   DSP:  48 = base + 4u ; 215 = base + 32u  -> u ~ 5.96,  base ~ 24.1
  //   FF:   12003 / 50841                      -> u ~ 1388,  base ~ 6452
  //   LUT:  12847 / 50584                      -> u ~ 1348,  base ~ 7455
  spec.base_cost = {35.4, 24.1, 6452, 7455};
  spec.per_instance_cost = {0.143, 5.96, 1388, 1348};
  // Structural pipeline depth is 80 stages (see fpga/pipeline.cpp schedule);
  // prefetch/AXI setup absorbs the rest. 90% of U*f at ~4,500 right-side
  // iterations (Fig. 10): N90 = 9 * U * (latency + prefetch) => ~125 cycles.
  spec.pipeline_latency_cycles = 80;
  spec.prefetch_cycles = 45;
  spec.memory_bandwidth_bps = 4.0e9;  // PS DDR4 effective share
  return spec;
}

FpgaDeviceSpec alveo_u200() {
  FpgaDeviceSpec spec;
  spec.name = "Alveo U200";
  spec.logic_cells_k = 892;
  spec.unroll_factor = 32;
  spec.clock_hz = 250e6;
  spec.available = {4320, 6840, 2.4e6, 1.2e6};
  spec.base_cost = {35.4, 24.1, 6452, 7455};
  spec.per_instance_cost = {0.143, 5.96, 1388, 1348};
  // 90% of U*f at ~30,500 iterations (Fig. 11): latency + prefetch ~ 105.
  spec.pipeline_latency_cycles = 80;
  spec.prefetch_cycles = 25;
  spec.memory_bandwidth_bps = 19.0e9;  // one DDR4-2400 bank, effective
  return spec;
}

CpuSpec amd_a10_5757m() { return {"AMD A10-5757M", 4, 4, 2.5e9}; }
CpuSpec xeon_e5_2699v3() { return {"Intel Xeon E5-2699 v3 (Colab)", 2, 2, 2.3e9}; }
CpuSpec core_i7_6700hq() { return {"Intel Core i7-6700HQ", 4, 8, 2.6e9}; }

}  // namespace omega::hw
