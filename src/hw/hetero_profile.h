#pragma once
// Default heterogeneous partition set for the co-scheduler
// (core/hetero_scheduler.h): the CPU span engine plus the paper's two
// simulated accelerators — Tesla K80 GPU (dynamic two-kernel timing model)
// and Alveo U200 FPGA (cycle model) — each sized by its own modeled
// throughput over the actual per-position workload.
//
// The accelerator backends are configured with functional_cap = 0 and a
// host_scorer that runs the scan's dispatched CPU kernel (the same body the
// CPU partition and a plain CPU scan execute — the kernel bodies agree only
// up to summation-order ULPs, so sharing one body is required, not just
// convenient) while the device cost models, fault injection, and accounting
// still accrue. That is what makes a hetero scan bitwise-identical to the
// plain CPU scan for any split.

#include "core/hetero_scheduler.h"
#include "hw/device_specs.h"
#include "par/thread_pool.h"
#include "util/cancel.h"
#include "util/fault.h"

namespace omega::hw {

struct HeteroProfileOptions {
  core::HeteroSplit split;
  /// Deterministic fault injection applied to both accelerator backends.
  util::fault::FaultPlan fault_plan;
  /// Cooperative-cancellation token forwarded to the accelerator backends.
  /// Not owned; must outlive every scan using the config.
  const util::CancelToken* cancel = nullptr;
  /// Host omega rate (scores/s) for the CPU partition's cost model and the
  /// FPGA unroll-remainder software share; the measured 1-core OmegaPlus
  /// rate is the right value (FpgaBackendOptions::software_omega_rate).
  double cpu_omega_rate = 70e6;
  /// The CPU omega kernel the scan runs (ScannerOptions::cpu_kernel). The
  /// accelerator backends score through this exact body so every partition
  /// is bitwise-identical to the serial CPU scan it replaces.
  core::CpuKernelKind cpu_kernel = core::CpuKernelKind::Auto;
};

/// Builds the CPU + tesla_k80 GPU-sim + alveo_u200 FPGA-sim configuration.
/// `gpu_pool` backs the GPU backend instances and must outlive every scan
/// that uses the returned config (the config itself must too — the scanner
/// holds it by pointer).
core::HeteroConfig default_hetero_config(const HeteroProfileOptions& options,
                                         par::ThreadPool& gpu_pool);

}  // namespace omega::hw
