#include "hw/ld_models.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace omega::hw {

double gpu_ld_speedup(std::size_t samples) {
  const double n = std::max<std::size_t>(samples, 2);
  // Fitted to Table III (see header). Clamped below at 1: the GPU never
  // loses to a single core on GEMM-shaped work at realistic sizes.
  return std::max(1.0, 0.056 * std::pow(n, 0.6));
}

double fpga_ld_throughput(std::size_t samples) {
  // Published operating points (Table III, FPGA LD column): throughput in
  // r2 scores/second at the three evaluated sample counts.
  struct Point {
    double samples;
    double throughput;
  };
  static constexpr std::array<Point, 3> points{{
      {500.0, 535.0e6},
      {7'000.0, 38.2e6},
      {60'000.0, 4.5e6},
  }};
  const double n = std::clamp(static_cast<double>(samples), points.front().samples,
                              points.back().samples);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    if (n <= points[i + 1].samples) {
      const double t = (std::log(n) - std::log(points[i].samples)) /
                       (std::log(points[i + 1].samples) - std::log(points[i].samples));
      return std::exp(std::log(points[i].throughput) * (1.0 - t) +
                      std::log(points[i + 1].throughput) * t);
    }
  }
  return points.back().throughput;
}

}  // namespace omega::hw
