#include "hw/hetero_profile.h"

#include <functional>
#include <memory>
#include <utility>

#include "hw/fpga/cycle_model.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/gpu/timing_model.h"

namespace omega::hw {

namespace {

/// Device-payload bytes for one position's complete GPU cost: the LR/km
/// side buffers (3 floats each) plus the omega output array — the same
/// accounting core/workload.cpp uses for the transfer estimate.
std::uint64_t gpu_payload_bytes(const core::GridPosition& position) {
  const std::uint64_t combos = position.combinations();
  return static_cast<std::uint64_t>(position.left_snps()) * 12 +
         static_cast<std::uint64_t>(position.right_snps()) * 12 +
         combos * sizeof(float);
}

/// Over-cap scorer running the scan's dispatched CPU kernel. One
/// CpuOmegaBackend per accelerator backend instance (it owns mutable kernel
/// scratch, and each partition worker owns its backend, so no sharing).
std::function<core::OmegaResult(const core::DpMatrix&,
                                const core::GridPosition&)>
make_host_scorer(core::CpuKernelKind kernel) {
  auto scorer = std::make_shared<core::CpuOmegaBackend>(kernel);
  return [scorer = std::move(scorer)](const core::DpMatrix& m,
                                      const core::GridPosition& position) {
    return scorer->max_omega(m, position);
  };
}

}  // namespace

core::HeteroConfig default_hetero_config(const HeteroProfileOptions& options,
                                         par::ThreadPool& gpu_pool) {
  core::HeteroConfig config;
  config.split = options.split;

  const double cpu_rate = options.cpu_omega_rate;
  config.cpu_modeled_seconds = [cpu_rate](const core::GridPosition& position) {
    if (!position.valid) return 0.0;
    return static_cast<double>(position.combinations()) / cpu_rate;
  };

  const GpuDeviceSpec gpu_spec = tesla_k80();
  core::HeteroPartitionSpec gpu_part;
  gpu_part.name = "gpu-sim:" + gpu_spec.name;
  gpu_part.modeled_seconds = [gpu_spec](const core::GridPosition& position) {
    if (!position.valid) return 0.0;
    const std::uint64_t combos = position.combinations();
    if (combos == 0) return 0.0;
    const gpu::KernelChoice choice = gpu::dispatch(gpu_spec, combos);
    return gpu::complete_position_cost(gpu_spec, choice, combos,
                                       gpu_payload_bytes(position))
        .total_s;
  };
  gpu_part.backend_factory = [gpu_spec, &gpu_pool,
                              fault_plan = options.fault_plan,
                              cancel = options.cancel,
                              kernel = options.cpu_kernel] {
    gpu::GpuBackendOptions backend_options;
    backend_options.functional_cap = 0;  // exact scoring (bitwise guarantee)
    backend_options.fault_plan = fault_plan;
    backend_options.cancel = cancel;
    backend_options.host_scorer = make_host_scorer(kernel);
    return std::unique_ptr<core::OmegaBackend>(
        std::make_unique<gpu::GpuOmegaBackend>(gpu_spec, gpu_pool,
                                               backend_options));
  };
  config.accelerators.push_back(std::move(gpu_part));

  const FpgaDeviceSpec fpga_spec = alveo_u200();
  core::HeteroPartitionSpec fpga_part;
  fpga_part.name = "fpga-sim:" + fpga_spec.name;
  fpga_part.modeled_seconds = [fpga_spec,
                               cpu_rate](const core::GridPosition& position) {
    if (!position.valid || position.combinations() == 0) return 0.0;
    const fpga::PositionCycles cycles = fpga::position_cycles(
        fpga_spec, position.left_snps(), position.right_snps(),
        /*ts_from_dram=*/true);
    return static_cast<double>(cycles.hw_cycles) / fpga_spec.clock_hz +
           static_cast<double>(cycles.sw_omegas) / cpu_rate;
  };
  fpga_part.backend_factory = [fpga_spec, cpu_rate,
                               fault_plan = options.fault_plan,
                               cancel = options.cancel,
                               kernel = options.cpu_kernel] {
    fpga::FpgaBackendOptions backend_options;
    backend_options.functional_cap = 0;  // exact scoring (bitwise guarantee)
    backend_options.software_omega_rate = cpu_rate;
    backend_options.fault_plan = fault_plan;
    backend_options.cancel = cancel;
    backend_options.host_scorer = make_host_scorer(kernel);
    return std::unique_ptr<core::OmegaBackend>(
        std::make_unique<fpga::FpgaOmegaBackend>(fpga_spec, backend_options));
  };
  config.accelerators.push_back(std::move(fpga_part));

  return config;
}

}  // namespace omega::hw
