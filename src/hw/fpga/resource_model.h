#pragma once
// Resource-utilization model reproducing Table I: the accelerator consumes a
// fixed base (AXI interfaces, control FSM, RS prefetch buffer) plus a
// per-pipeline-instance increment, both fitted to the two published design
// points (ZCU102 @ U=4 and Alveo U200 @ U=32). Also answers the design-space
// question the unroll-factor ablation asks: the largest unroll factor a
// device can host.

#include <string>
#include <vector>

#include "hw/device_specs.h"

namespace omega::hw::fpga {

struct UtilizationRow {
  std::string resource;  // "BRAM 8K", "DSP48E", "FF", "LUT"
  double used = 0.0;
  double available = 0.0;
  [[nodiscard]] double percent() const noexcept {
    return available > 0.0 ? 100.0 * used / available : 0.0;
  }
};

/// Utilization of `spec` at its configured unroll factor.
std::vector<UtilizationRow> utilization(const FpgaDeviceSpec& spec);

/// Utilization at an arbitrary unroll factor (ablation sweeps).
std::vector<UtilizationRow> utilization_at(const FpgaDeviceSpec& spec,
                                           int unroll_factor);

/// Largest unroll factor whose worst-case resource stays below
/// `budget_fraction` of the device (placement/routing headroom).
int max_unroll_factor(const FpgaDeviceSpec& spec, double budget_fraction = 0.8);

}  // namespace omega::hw::fpga
