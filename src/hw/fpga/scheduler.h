#pragma once
// Host-side scheduler for multiple omega-accelerator instances on one card.
// The LD-FPGA lineage the paper builds on runs "an iterative algorithm that
// schedules execution on the accelerator hardware based on the available
// number of accelerator instances" (Alachiotis & Weisz), and Bozikas et al.
// found that *data movement*, not logic, limits multi-accelerator scaling —
// both effects are modeled here:
//
//   * grid positions are list-scheduled onto the earliest-free instance
//     (longest-processing-time order optional);
//   * all instances share the card's external memory: the TS streaming
//     stall factor grows with the number of concurrently active instances,
//     so speedup saturates at bandwidth, not at area.

#include <cstdint>
#include <vector>

#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/cycle_model.h"

namespace omega::hw::fpga {

struct ScheduleResult {
  double makespan_s = 0.0;
  std::vector<double> instance_busy_s;  // per accelerator instance
  std::uint64_t positions = 0;
  std::uint64_t hw_omegas = 0;
  double shared_stall_factor = 1.0;

  /// Mean fraction of the makespan each instance spent busy.
  [[nodiscard]] double utilization() const noexcept;
  [[nodiscard]] double throughput() const noexcept {
    return makespan_s > 0.0 ? static_cast<double>(hw_omegas) / makespan_s : 0.0;
  }
};

struct SchedulerOptions {
  int instances = 1;
  /// Sort positions by descending work before scheduling (classic LPT; off
  /// reproduces in-genome-order scheduling).
  bool longest_first = true;
  bool ts_from_dram = true;
};

/// Schedules every valid grid position of `workload` across the instances.
ScheduleResult schedule_positions(const FpgaDeviceSpec& spec,
                                  const core::ScanWorkload& workload,
                                  const SchedulerOptions& options = {});

/// Largest instance count whose combined resources fit within
/// `budget_fraction` of the device (each instance replicates the full
/// unroll-U accelerator).
int max_instances(const FpgaDeviceSpec& spec, double budget_fraction = 0.8);

}  // namespace omega::hw::fpga
