#pragma once
// FPGA accelerator cycle model (paper §V): U pipeline instances process the
// right-side loop in groups of U iterations per clock; iterations the unroll
// factor does not divide are executed in software on the host ("The
// remaining iterations are executed in software"). The RS column is
// prefetched once per position and reused across outer iterations (the
// Fig. 9 memory optimization), so the per-invocation overhead is a single
// latency + prefetch charge.
//
// When the TS stream comes from external DRAM (a real scan, where matrix M
// lives in device memory), the inner loop throttles to the memory bandwidth:
// U pipelines consume U * 4 bytes of TS per cycle. The Figs. 10/11
// microbenchmarks stream from on-chip buffers and are not throttled.

#include <cstdint>

#include "hw/device_specs.h"

namespace omega::hw::fpga {

struct PositionCycles {
  std::uint64_t hw_cycles = 0;   // accelerator cycles incl. latency/prefetch
  std::uint64_t hw_omegas = 0;   // omega scores produced in hardware
  std::uint64_t sw_omegas = 0;   // unroll-remainder scores left to the host
  double stall_factor = 1.0;     // DRAM throttling applied to the inner loop
};

/// Cycles for one grid position: `num_left` outer iterations, `num_right`
/// right-side iterations each.
PositionCycles position_cycles(const FpgaDeviceSpec& spec,
                               std::uint64_t num_left, std::uint64_t num_right,
                               bool ts_from_dram);

/// Cycles for one microbenchmark invocation processing `iterations`
/// right-side iterations with on-chip data (Figs. 10/11 setting; the unroll
/// factor is assumed to divide `iterations`).
std::uint64_t invocation_cycles(const FpgaDeviceSpec& spec,
                                std::uint64_t iterations);

/// Accelerator throughput (omega/s) for a microbenchmark invocation.
double invocation_throughput(const FpgaDeviceSpec& spec,
                             std::uint64_t iterations);

}  // namespace omega::hw::fpga
