#include "hw/fpga/scheduler.h"

#include <algorithm>
#include <stdexcept>

#include "hw/fpga/resource_model.h"

namespace omega::hw::fpga {

double ScheduleResult::utilization() const noexcept {
  if (makespan_s <= 0.0 || instance_busy_s.empty()) return 0.0;
  double busy = 0.0;
  for (const double b : instance_busy_s) busy += b;
  return busy / (makespan_s * static_cast<double>(instance_busy_s.size()));
}

ScheduleResult schedule_positions(const FpgaDeviceSpec& spec,
                                  const core::ScanWorkload& workload,
                                  const SchedulerOptions& options) {
  if (options.instances < 1) {
    throw std::invalid_argument("scheduler: need >= 1 instance");
  }
  ScheduleResult result;
  result.instance_busy_s.assign(static_cast<std::size_t>(options.instances),
                                0.0);

  // Shared external memory: aggregate TS demand of all concurrently active
  // instances competes for the same bandwidth, scaling the per-instance
  // stall (pessimistically assumes all instances stream simultaneously —
  // the steady state of a saturated schedule).
  double shared_stall = 1.0;
  if (options.ts_from_dram) {
    const double demand = static_cast<double>(options.instances) *
                          static_cast<double>(spec.unroll_factor) * 4.0 *
                          spec.clock_hz;
    shared_stall = std::max(1.0, demand / spec.memory_bandwidth_bps);
  }
  result.shared_stall_factor = shared_stall;

  // Per-position durations (on-chip cycle model, then the shared stall).
  std::vector<double> durations;
  durations.reserve(workload.positions.size());
  for (const auto& position : workload.positions) {
    const auto& geometry = position.geometry;
    if (!geometry.valid) continue;
    const auto cycles = position_cycles(
        spec, geometry.a_max - geometry.lo + 1,
        geometry.hi - geometry.b_min + 1, /*ts_from_dram=*/false);
    result.hw_omegas += cycles.hw_omegas;
    ++result.positions;
    durations.push_back(static_cast<double>(cycles.hw_cycles) * shared_stall /
                        spec.clock_hz);
  }
  if (options.longest_first) {
    std::sort(durations.begin(), durations.end(), std::greater<>());
  }

  // List scheduling: each position goes to the earliest-free instance.
  for (const double duration : durations) {
    auto earliest = std::min_element(result.instance_busy_s.begin(),
                                     result.instance_busy_s.end());
    *earliest += duration;
  }
  result.makespan_s = result.instance_busy_s.empty()
                          ? 0.0
                          : *std::max_element(result.instance_busy_s.begin(),
                                              result.instance_busy_s.end());
  return result;
}

int max_instances(const FpgaDeviceSpec& spec, double budget_fraction) {
  int instances = 1;
  for (int candidate = 1; candidate <= 1024; ++candidate) {
    const auto rows =
        utilization_at(spec, spec.unroll_factor * candidate);
    const bool fits = std::all_of(rows.begin(), rows.end(),
                                  [&](const UtilizationRow& row) {
                                    return row.used <=
                                           budget_fraction * row.available;
                                  });
    if (!fits) break;
    instances = candidate;
  }
  return instances;
}

}  // namespace omega::hw::fpga
