#pragma once
// FPGA omega backend: drives U simulated pipeline instances through every
// window combination of a grid position, exactly as the synthesized design
// would — outer loop over left borders, inner right-side loop processed U
// iterations per clock, unroll remainder handled in host software. Produces
// bit-identical float omegas to the GPU kernels (same arithmetic order) and
// accumulates the cycle model alongside.

#include <cstdint>
#include <functional>

#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/cycle_model.h"
#include "hw/fpga/pipeline.h"
#include "util/cancel.h"
#include "util/fault.h"

namespace omega::hw::fpga {

struct FpgaBackendOptions {
  /// Model the TS stream as coming from device DRAM (true for real scans;
  /// the Figs. 10/11 microbenchmarks use on-chip data).
  bool ts_from_dram = true;
  /// Host rate for the unroll-remainder omegas (scores/s); the measured
  /// 1-core OmegaPlus rate is the right value here. Used only for modeled
  /// seconds, never for results.
  double software_omega_rate = 70e6;
  /// Guard against accidentally running paper-scale positions functionally.
  std::uint64_t functional_cap = 1ull << 26;
  /// Deterministic fault injection (util/fault.h); disabled by default.
  /// KernelLaunch here models a failed accelerator enqueue over XRT/DMA.
  util::fault::FaultPlan fault_plan;
  /// When > 0: a position whose modeled accelerator time exceeds this budget
  /// raises a Timeout BackendError. 0 disables the watchdog.
  double modeled_timeout_seconds = 0.0;
  /// Optional cooperative-cancellation token (util/cancel.h), polled at
  /// launch entry and again before the pipeline run. A cancelled poll throws
  /// util::CancelledError, which the recovery engine deliberately does NOT
  /// retry (it is not a BackendError). Not owned; must outlive the scan.
  const util::CancelToken* cancel = nullptr;
  /// Scorer for positions above functional_cap (default: the scalar
  /// core::max_omega_search reference). The heterogeneous co-scheduler sets
  /// functional_cap = 0 and injects the scan's dispatched CPU kernel here so
  /// accelerator partitions score bitwise-identically to the CPU partition
  /// (the kernel bodies agree only up to summation-order ULPs).
  std::function<core::OmegaResult(const core::DpMatrix&,
                                  const core::GridPosition&)>
      host_scorer;
};

struct FpgaAccounting {
  /// Host wall time spent packing position buffers (the FPGA analogue of
  /// the GPU dispatch stage). Charged for every position, including
  /// zero-combination ones — the host pays for packing before it can know
  /// the position is empty.
  double dispatch_seconds = 0.0;
  std::uint64_t modeled_cycles = 0;
  /// Cycles the inner loop lost to DRAM throttling (the stall_factor share
  /// of modeled_cycles above the ideal one-group-per-clock rate).
  std::uint64_t stall_cycles = 0;
  std::uint64_t hw_omegas = 0;
  std::uint64_t sw_omegas = 0;
  double modeled_hw_seconds = 0.0;
  double modeled_sw_seconds = 0.0;
  [[nodiscard]] double modeled_total_seconds() const noexcept {
    return modeled_hw_seconds + modeled_sw_seconds;
  }
};

class FpgaOmegaBackend final : public core::OmegaBackend {
 public:
  explicit FpgaOmegaBackend(const FpgaDeviceSpec& spec,
                            FpgaBackendOptions options = {});

  [[nodiscard]] std::string name() const override;
  core::OmegaResult max_omega(const core::DpMatrix& m,
                              const core::GridPosition& position) override;
  /// Maps the cycle-model accounting onto ScanProfile::fpga.
  void contribute(core::ScanProfile& profile) const override;

  [[nodiscard]] const FpgaAccounting& accounting() const noexcept {
    return accounting_;
  }
  [[nodiscard]] const util::fault::FaultCounters& fault_counters()
      const noexcept {
    return injector_.counters();
  }

 private:
  FpgaDeviceSpec spec_;
  FpgaBackendOptions options_;
  FpgaAccounting accounting_;
  util::fault::FaultInjector injector_;
};

}  // namespace omega::hw::fpga
