#include "hw/fpga/fpga_backend.h"

#include <limits>
#include <vector>

#include "core/omega_search.h"
#include "core/resilience.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::hw::fpga {

FpgaOmegaBackend::FpgaOmegaBackend(const FpgaDeviceSpec& spec,
                                   FpgaBackendOptions options)
    : spec_(spec), options_(options), injector_(options.fault_plan) {}

std::string FpgaOmegaBackend::name() const { return "fpga-sim:" + spec_.name; }

core::OmegaResult FpgaOmegaBackend::max_omega(
    const core::DpMatrix& m, const core::GridPosition& position) {
  const util::trace::Span span("fpga.position");
  core::OmegaResult result;
  if (!position.valid) return result;

  // Cancel poll before committing any host work; CancelledError bypasses the
  // recovery engine (not a BackendError) and propagates to the drain path.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw util::CancelledError(options_.cancel->reason());
  }

  // Fault hook: failures fire before any pipeline work or accounting, the
  // way a failed XRT enqueue / DMA transfer would.
  bool poison_result = false;
  switch (injector_.next()) {
    case util::fault::FaultMode::KernelLaunch:
      throw core::BackendError(core::BackendErrorKind::KernelLaunch, name(),
                               "injected accelerator-enqueue failure");
    case util::fault::FaultMode::Timeout:
      throw core::BackendError(core::BackendErrorKind::Timeout, name(),
                               "injected accelerator timeout");
    case util::fault::FaultMode::DeviceLost:
      throw core::BackendError(core::BackendErrorKind::DeviceLost, name(),
                               "injected device loss");
    case util::fault::FaultMode::TransientNan:
      poison_result = true;
      break;
    default:
      break;
  }

  // Host-side packing is the FPGA dispatch stage; time it on every path so
  // zero-combination positions still charge their pack cost (the same leak
  // the GPU backend had with its early return inside the timed block).
  core::PositionBuffers buffers;
  {
    const util::trace::Span dispatch_span("fpga.dispatch");
    const util::Timer dispatch_timer;
    buffers = core::pack_position(m, position);
    accounting_.dispatch_seconds += dispatch_timer.seconds();
  }
  const std::uint64_t combos = buffers.combinations();
  if (combos == 0) return result;

  // Second poll before the pipeline run — the last abandon point before the
  // accelerator would start consuming the streamed buffers.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    throw util::CancelledError(options_.cancel->reason());
  }

  const auto unroll = static_cast<std::size_t>(spec_.unroll_factor);
  float best = 0.0f;
  std::uint64_t best_flat = 0;
  bool found = false;
  auto consider = [&](float omega, std::uint64_t flat) {
    if (!found || omega > best || (omega == best && flat < best_flat)) {
      best = omega;
      best_flat = flat;
      found = true;
    }
  };

  if (combos <= options_.functional_cap) {
    std::vector<OmegaPipeline> lanes(unroll);
    auto make_input = [&](std::size_t ai, std::size_t bi) {
      PipelineInput input;
      const std::uint64_t flat =
          static_cast<std::uint64_t>(ai) * buffers.num_right + bi;
      input.total_sum = buffers.total[flat];
      input.left_sum = buffers.ls[ai];
      input.right_sum = buffers.rs[bi];
      input.k = buffers.k[ai];
      input.m = buffers.m_binom[bi];
      input.l = buffers.l_counts[ai];
      input.r = buffers.r_counts[bi];
      input.tag = flat;
      return input;
    };

    const std::size_t groups = buffers.num_right / unroll;
    const std::size_t remainder = buffers.num_right % unroll;
    for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
      // Hardware part: U lanes consume U consecutive right borders per clock.
      for (std::size_t group = 0; group < groups; ++group) {
        for (std::size_t lane = 0; lane < unroll; ++lane) {
          const PipelineInput input = make_input(ai, group * unroll + lane);
          if (const auto out = lanes[lane].tick(&input)) {
            consider(out->omega, out->tag);
          }
        }
      }
      // Software remainder (paper §V): same arithmetic, host-side.
      for (std::size_t bi = groups * unroll; bi < buffers.num_right; ++bi) {
        consider(pipeline_arithmetic(make_input(ai, bi)),
                 static_cast<std::uint64_t>(ai) * buffers.num_right + bi);
      }
      (void)remainder;
    }
    // Drain in-flight values.
    for (auto& lane : lanes) {
      while (!lane.drained()) {
        if (const auto out = lane.tick(nullptr)) consider(out->omega, out->tag);
      }
    }
    result.max_omega = static_cast<double>(best);
    const std::size_t ai = static_cast<std::size_t>(best_flat / buffers.num_right);
    const std::size_t bi = static_cast<std::size_t>(best_flat % buffers.num_right);
    result.best_a = position.lo + ai;
    result.best_b = position.b_min + bi;
    result.evaluated = combos;
  } else {
    result = options_.host_scorer ? options_.host_scorer(m, position)
                                  : core::max_omega_search(m, position);
  }

  const PositionCycles cycles = position_cycles(
      spec_, buffers.num_left, buffers.num_right, options_.ts_from_dram);
  // Modeled watchdog: enforce the per-position device-time budget before any
  // accounting, treating an over-budget position as a failed run.
  if (options_.modeled_timeout_seconds > 0.0) {
    const double modeled_s =
        static_cast<double>(cycles.hw_cycles) / spec_.clock_hz +
        static_cast<double>(cycles.sw_omegas) / options_.software_omega_rate;
    if (modeled_s > options_.modeled_timeout_seconds) {
      throw core::BackendError(core::BackendErrorKind::Timeout, name(),
                               "modeled accelerator time exceeded budget");
    }
  }
  if (poison_result && result.evaluated > 0) {
    result.max_omega = std::numeric_limits<double>::quiet_NaN();
  }
  accounting_.modeled_cycles += cycles.hw_cycles;
  // Stalls: the share of inner-loop cycles above the ideal (stall_factor 1)
  // one-group-per-clock schedule.
  if (cycles.stall_factor > 1.0) {
    const double throttled = static_cast<double>(cycles.hw_cycles) -
                             spec_.pipeline_latency_cycles -
                             spec_.prefetch_cycles;
    accounting_.stall_cycles += static_cast<std::uint64_t>(
        throttled * (1.0 - 1.0 / cycles.stall_factor));
  }
  accounting_.hw_omegas += cycles.hw_omegas;
  accounting_.sw_omegas += cycles.sw_omegas;
  const double hw_seconds =
      static_cast<double>(cycles.hw_cycles) / spec_.clock_hz;
  const double sw_seconds =
      static_cast<double>(cycles.sw_omegas) / options_.software_omega_rate;
  accounting_.modeled_hw_seconds += hw_seconds;
  accounting_.modeled_sw_seconds += sw_seconds;
  // One sample per completed position run (watchdog-killed runs excluded),
  // the FPGA analogue of gpu.launch_modeled_seconds.
  static util::telemetry::Histogram& launch_hist =
      util::telemetry::histogram("fpga.launch_modeled_seconds");
  launch_hist.record(hw_seconds + sw_seconds);
  return result;
}

void FpgaOmegaBackend::contribute(core::ScanProfile& profile) const {
  profile.fpga.pipeline_cycles += accounting_.modeled_cycles;
  profile.fpga.stall_cycles += accounting_.stall_cycles;
  profile.fpga.hw_omegas += accounting_.hw_omegas;
  profile.fpga.sw_omegas += accounting_.sw_omegas;
  profile.fpga.modeled_seconds += accounting_.modeled_total_seconds();
  profile.stages.dispatch_seconds += accounting_.dispatch_seconds;
  const auto& faults = injector_.counters();
  profile.faults.faults_injected += faults.total_injected();
  profile.faults.injected_kernel_launch += faults.injected_kernel_launch;
  profile.faults.injected_timeout += faults.injected_timeout;
  profile.faults.injected_nan += faults.injected_nan;
  profile.faults.injected_device_lost += faults.injected_device_lost;
}

}  // namespace omega::hw::fpga
