#include "hw/fpga/resource_model.h"

#include <algorithm>

namespace omega::hw::fpga {

std::vector<UtilizationRow> utilization_at(const FpgaDeviceSpec& spec,
                                           int unroll_factor) {
  const double u = unroll_factor;
  return {
      {"BRAM 8K", spec.base_cost.bram + spec.per_instance_cost.bram * u,
       spec.available.bram},
      {"DSP48E", spec.base_cost.dsp + spec.per_instance_cost.dsp * u,
       spec.available.dsp},
      {"FF", spec.base_cost.ff + spec.per_instance_cost.ff * u,
       spec.available.ff},
      {"LUT", spec.base_cost.lut + spec.per_instance_cost.lut * u,
       spec.available.lut},
  };
}

std::vector<UtilizationRow> utilization(const FpgaDeviceSpec& spec) {
  return utilization_at(spec, spec.unroll_factor);
}

int max_unroll_factor(const FpgaDeviceSpec& spec, double budget_fraction) {
  int unroll = 1;
  for (int candidate = 1; candidate <= 4096; candidate *= 2) {
    const auto rows = utilization_at(spec, candidate);
    const bool fits = std::all_of(rows.begin(), rows.end(),
                                  [&](const UtilizationRow& row) {
                                    return row.used <=
                                           budget_fraction * row.available;
                                  });
    if (!fits) break;
    unroll = candidate;
  }
  return unroll;
}

}  // namespace omega::hw::fpga
