#pragma once
// Cycle-stepped simulation of the custom omega processing pipeline (paper
// Fig. 8): a fully pipelined single-precision datapath with initiation
// interval 1 that accepts one (TS, LS, RS, k, m, l, r) tuple per clock and
// emits one omega score per clock after a fixed latency.
//
// The stage schedule mirrors a Vivado-HLS mapping with standard FP operator
// latencies (fadd/fsub 8, fmul 8, fdiv 28):
//
//   cycle  0  : operands registered
//   cycle  8  : t1 = LS + RS        t2 = k + m        lr = l*r
//   cycle 16  : t5 = TS - t1                          (t1/t2 divider busy)
//   cycle 36  : num = t1 / t2
//   cycle 44  : den0 = t5 / lr      (divider fed at cycle 16)
//   cycle 52  : den = den0 + eps
//   cycle 80  : omega = num / den   -> emitted
//
// Total structural latency: kPipelineDepth = 80 cycles, II = 1.

#include <cstdint>
#include <optional>
#include <vector>

namespace omega::hw::fpga {

struct PipelineInput {
  float total_sum = 0.0f;  // TS  (M(b, a))
  float left_sum = 0.0f;   // LS
  float right_sum = 0.0f;  // RS
  float k = 0.0f;          // C(l,2)
  float m = 0.0f;          // C(r,2)
  std::uint32_t l = 0;
  std::uint32_t r = 0;
  std::uint64_t tag = 0;   // flat combination index, carried along
};

struct PipelineOutput {
  float omega = 0.0f;
  std::uint64_t tag = 0;
};

class OmegaPipeline {
 public:
  static constexpr int kPipelineDepth = 80;

  OmegaPipeline();

  /// Advances one clock: optionally accepts a new input (II = 1 — one per
  /// tick) and returns the output emerging this cycle, if any.
  std::optional<PipelineOutput> tick(const PipelineInput* input);

  /// Cycles ticked so far.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  /// True when no in-flight values remain.
  [[nodiscard]] bool drained() const noexcept { return in_flight_ == 0; }

 private:
  struct Slot {
    bool valid = false;
    PipelineInput in;
    // Intermediates, written at their schedule stage.
    float t1 = 0, t2 = 0, lr = 0, t5 = 0, num = 0, den0 = 0, den = 0;
    float omega = 0;
  };
  std::vector<Slot> stages_;  // stages_[i] = value entering stage i
  std::uint64_t cycles_ = 0;
  int in_flight_ = 0;
};

/// One-shot evaluation through the same arithmetic (no timing); used for the
/// software-remainder iterations that the unroll factor leaves to the host.
[[nodiscard]] float pipeline_arithmetic(const PipelineInput& input) noexcept;

}  // namespace omega::hw::fpga
