#include "hw/fpga/cycle_model.h"

#include <algorithm>

namespace omega::hw::fpga {

PositionCycles position_cycles(const FpgaDeviceSpec& spec,
                               std::uint64_t num_left, std::uint64_t num_right,
                               bool ts_from_dram) {
  PositionCycles cycles;
  if (num_left == 0 || num_right == 0) return cycles;
  const auto unroll = static_cast<std::uint64_t>(spec.unroll_factor);
  const std::uint64_t groups = num_right / unroll;  // full-width groups
  const std::uint64_t remainder = num_right % unroll;

  cycles.hw_omegas = num_left * groups * unroll;
  cycles.sw_omegas = num_left * remainder;

  double stall = 1.0;
  if (ts_from_dram) {
    // U pipelines consume U * 4 bytes/cycle of TS; the stream throttles to
    // the effective external bandwidth.
    const double demand_bps =
        static_cast<double>(unroll) * 4.0 * spec.clock_hz;
    stall = std::max(1.0, demand_bps / spec.memory_bandwidth_bps);
  }
  cycles.stall_factor = stall;

  const double inner = static_cast<double>(num_left * groups) * stall;
  cycles.hw_cycles = static_cast<std::uint64_t>(spec.pipeline_latency_cycles) +
                     static_cast<std::uint64_t>(spec.prefetch_cycles) +
                     static_cast<std::uint64_t>(inner);
  return cycles;
}

std::uint64_t invocation_cycles(const FpgaDeviceSpec& spec,
                                std::uint64_t iterations) {
  const auto unroll = static_cast<std::uint64_t>(spec.unroll_factor);
  const std::uint64_t groups = (iterations + unroll - 1) / unroll;
  return static_cast<std::uint64_t>(spec.pipeline_latency_cycles) +
         static_cast<std::uint64_t>(spec.prefetch_cycles) + groups;
}

double invocation_throughput(const FpgaDeviceSpec& spec,
                             std::uint64_t iterations) {
  if (iterations == 0) return 0.0;
  const double seconds =
      static_cast<double>(invocation_cycles(spec, iterations)) / spec.clock_hz;
  return static_cast<double>(iterations) / seconds;
}

}  // namespace omega::hw::fpga
