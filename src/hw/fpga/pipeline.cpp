#include "hw/fpga/pipeline.h"

#include "core/omega_config.h"

namespace omega::hw::fpga {
namespace {
constexpr float kEps =
    static_cast<float>(core::OmegaConfig::denominator_offset);
// Stage positions of the Fig. 8 schedule (see header).
constexpr int kStageAdders = 8;
constexpr int kStageSub2 = 16;
constexpr int kStageNum = 36;
constexpr int kStageDen0 = 44;
constexpr int kStageDenEps = 52;
}  // namespace

OmegaPipeline::OmegaPipeline()
    : stages_(static_cast<std::size_t>(kPipelineDepth) + 1) {}

std::optional<PipelineOutput> OmegaPipeline::tick(const PipelineInput* input) {
  ++cycles_;

  // Shift the pipeline: process back-to-front so each slot moves one stage.
  std::optional<PipelineOutput> out;
  Slot& last = stages_[static_cast<std::size_t>(kPipelineDepth)];
  if (last.valid) {
    out = PipelineOutput{last.omega, last.in.tag};
    last.valid = false;
    --in_flight_;
  }
  for (int stage = kPipelineDepth; stage > 0; --stage) {
    Slot& dst = stages_[static_cast<std::size_t>(stage)];
    Slot& src = stages_[static_cast<std::size_t>(stage - 1)];
    if (!src.valid) continue;
    dst = src;
    src.valid = false;
    // Perform the operations scheduled at the stage the value just reached.
    switch (stage) {
      case kStageAdders:
        dst.t1 = dst.in.left_sum + dst.in.right_sum;
        dst.t2 = dst.in.k + dst.in.m;
        dst.lr = static_cast<float>(dst.in.l) * static_cast<float>(dst.in.r);
        break;
      case kStageSub2:
        // TS - (LS + RS): symmetric in L/R, so the order switch on the GPU
        // side and the FPGA datapath agree bitwise.
        dst.t5 = dst.in.total_sum - dst.t1;
        break;
      case kStageNum:
        dst.num = dst.t1 / dst.t2;
        break;
      case kStageDen0:
        dst.den0 = dst.t5 / dst.lr;
        break;
      case kStageDenEps:
        dst.den = dst.den0 + kEps;
        break;
      case kPipelineDepth:
        dst.omega = dst.num / dst.den;
        break;
      default:
        break;  // pure register stage
    }
  }
  if (input != nullptr) {
    Slot& head = stages_[0];
    head.valid = true;
    head.in = *input;
    ++in_flight_;
  }
  return out;
}

float pipeline_arithmetic(const PipelineInput& input) noexcept {
  const float t1 = input.left_sum + input.right_sum;
  const float t2 = input.k + input.m;
  const float lr = static_cast<float>(input.l) * static_cast<float>(input.r);
  const float t5 = input.total_sum - t1;
  const float num = t1 / t2;
  const float den = t5 / lr + kEps;
  return num / den;
}

}  // namespace omega::hw::fpga
