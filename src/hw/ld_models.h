#pragma once
// LD-side accelerator throughput models used by the complete-sweep-detection
// comparison (Fig. 14 / Table III).
//
// GPU LD: the paper integrates the Binder et al. BLIS/GEMM kernel; its edge
// over one CPU core grows with sample count (GEMM arithmetic intensity).
// Table III anchors: speedup 2.3x at 500 samples, 12.5x at 7,000, 38.9x at
// 60,000 — fitted by speedup(n) ~ 0.056 * n^0.6 (within ~10% of all three).
//
// FPGA LD: the paper does not run an FPGA LD system; it reuses the
// throughputs reported by Bozikas et al. (FPL'17) — "performance numbers
// reported by Bozikas et al. are used to provide an accurate estimate". We
// encode the same three published operating points and log-log interpolate
// between them, which is precisely the paper's own methodology.

#include <cstddef>

namespace omega::hw {

/// GPU GEMM-LD speedup over one CPU core as a function of sample count.
double gpu_ld_speedup(std::size_t samples);

/// FPGA LD throughput in r2 scores/second (Bozikas et al. operating points).
double fpga_ld_throughput(std::size_t samples);

}  // namespace omega::hw
