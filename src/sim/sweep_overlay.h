#pragma once
// Hitchhiking sweep overlay: transforms a neutral dataset so that it carries
// the three sweep signatures of the selective sweep theory (paper §II):
//   a) reduced variation near the sweep site (SNP thinning),
//   b) SFS shift toward high-frequency derived variants among carriers,
//   c) the Kim-Nielsen LD pattern: elevated LD within each flank, reduced LD
//      across the sweep site.
//
// Mechanism: a fraction of haplotypes ("carriers") descend from the single
// haplotype on which the beneficial mutation arose. Each carrier inherits the
// donor haplotype over a contiguous tract [p - L_i, p + R_i] around the sweep
// position p, with L_i and R_i independent exponentials — the standard
// recombination-escape model. Independence of the two tract lengths is what
// produces low LD *across* the site while both flanks individually show high
// LD, exactly the signal the omega statistic targets.
//
// This substitutes for running a sweep simulator (mssel/msms), which the
// paper's authors used only implicitly via prior power studies; the overlay
// exercises the identical detection code path.

#include <cstdint>

#include "io/dataset.h"

namespace omega::sim {

struct SweepConfig {
  std::int64_t sweep_position_bp = 500'000;
  /// Fraction of haplotypes carrying the beneficial allele (1.0 = complete
  /// sweep; slightly below 1 models an incomplete/ongoing sweep).
  double carrier_fraction = 0.95;
  /// Mean one-sided length (bp) of the homogenized tract around the sweep.
  double tract_mean_bp = 150'000.0;
  /// Probability of removing a SNP exactly at the sweep site; decays
  /// exponentially with distance (signature (a)).
  double thinning_max = 0.7;
  double thinning_scale_bp = 75'000.0;
  std::uint64_t seed = 7;
};

/// Returns a transformed copy; the input is untouched. Monomorphic sites
/// created by the homogenization are removed.
io::Dataset apply_sweep(const io::Dataset& neutral, const SweepConfig& config);

}  // namespace omega::sim
