#include "sim/demography.h"

#include <limits>
#include <stdexcept>

namespace omega::sim {

Demography::Demography(std::vector<Epoch> epochs) : epochs_(std::move(epochs)) {
  if (epochs_.empty() || epochs_.front().start_time != 0.0) {
    throw std::invalid_argument("demography: first epoch must start at 0");
  }
  for (std::size_t e = 1; e < epochs_.size(); ++e) {
    if (epochs_[e].start_time <= epochs_[e - 1].start_time) {
      throw std::invalid_argument("demography: epoch times must increase");
    }
  }
  for (const auto& epoch : epochs_) {
    if (epoch.relative_size <= 0.0) {
      throw std::invalid_argument("demography: sizes must be positive");
    }
  }
}

double Demography::size_at(double t) const noexcept {
  double size = epochs_.front().relative_size;
  for (const auto& epoch : epochs_) {
    if (epoch.start_time > t) break;
    size = epoch.relative_size;
  }
  return size;
}

double Demography::waiting_time(double now, double base_rate,
                                util::Xoshiro256& rng) const {
  if (base_rate <= 0.0) return std::numeric_limits<double>::infinity();
  double budget = rng.exponential(1.0);  // unit exponential to spend
  double t = now;
  double elapsed = 0.0;  // tracked separately to avoid t +/- now round-trips
  for (std::size_t e = 0; e <= epochs_.size(); ++e) {
    // Segment of constant size containing t.
    const double size = size_at(t);
    double segment_end = std::numeric_limits<double>::infinity();
    for (const auto& epoch : epochs_) {
      if (epoch.start_time > t) {
        segment_end = epoch.start_time;
        break;
      }
    }
    const double rate = base_rate / size;
    const double capacity =
        segment_end == std::numeric_limits<double>::infinity()
            ? std::numeric_limits<double>::infinity()
            : rate * (segment_end - t);
    if (budget <= capacity) {
      return elapsed + budget / rate;
    }
    budget -= capacity;
    elapsed += segment_end - t;
    t = segment_end;
  }
  return std::numeric_limits<double>::infinity();  // unreachable
}

std::vector<double> Demography::boundaries_between(double now,
                                                   double horizon) const {
  std::vector<double> times;
  for (const auto& epoch : epochs_) {
    if (epoch.start_time > now && epoch.start_time <= horizon) {
      times.push_back(epoch.start_time);
    }
  }
  return times;
}

Demography Demography::bottleneck(double start, double duration,
                                  double severity) {
  return Demography({{0.0, 1.0},
                     {start, severity},
                     {start + duration, 1.0}});
}

Demography Demography::expansion(double time, double ancestral_size) {
  return Demography({{0.0, 1.0}, {time, ancestral_size}});
}

}  // namespace omega::sim
