#include "sim/coalescent.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/tree.h"

namespace omega::sim {
namespace {

struct Segment {
  double lo_fraction;  // [lo, hi) of the unit locus
  double hi_fraction;
  double tree_length;  // total branch length of the marginal genealogy
};

/// One placed mutation: fractional position and the derived-carrier leaves.
struct Mutation {
  double fraction;
  std::vector<int> carriers;
};

void drop_mutations_on_tree(const Tree& tree, const Segment& segment,
                            std::size_t count, util::Xoshiro256& rng,
                            std::vector<Mutation>& out) {
  std::vector<int> carriers;
  for (std::size_t m = 0; m < count; ++m) {
    const auto point = tree.sample_branch_point(rng);
    tree.descendant_leaves(point.node, carriers);
    Mutation mutation;
    mutation.fraction = segment.lo_fraction +
                        rng.uniform() * (segment.hi_fraction - segment.lo_fraction);
    mutation.carriers = carriers;
    out.push_back(std::move(mutation));
  }
}

}  // namespace

io::Dataset simulate(const CoalescentConfig& config) {
  if (config.samples < 2) {
    throw std::invalid_argument("coalescent: need >= 2 samples");
  }
  util::Xoshiro256 rng(config.seed);

  // Walk the locus left to right, Kingman tree first. Breakpoints arrive at
  // a rate proportional to the *current* tree length (recombinations land on
  // branches), which is what keeps the marginal genealogy Kingman-
  // distributed along the sequence: applying one move per uniformly placed
  // breakpoint would instead sample the jump chain, whose stationary law is
  // length-biased. The rate is normalized so E[#breakpoints] ~ rho when the
  // tree is at its expected length 2 * H_{n-1}.
  Tree tree = Tree::kingman(config.samples, rng, config.demography);
  std::vector<Mutation> mutations;

  double expected_length = 0.0;
  for (std::size_t i = 1; i < config.samples; ++i) {
    expected_length += 1.0 / static_cast<double>(i);
  }
  expected_length *= 2.0;

  std::vector<Segment> segments;
  std::vector<Tree> trees;
  double x = 0.0;
  while (x < 1.0) {
    double next = 1.0;
    if (config.rho > 0.0) {
      const double rate = config.rho * tree.total_length() / expected_length;
      next = x + rng.exponential(rate);
    }
    const double hi = std::min(next, 1.0);
    if (hi > x) {
      segments.push_back({x, hi, tree.total_length()});
      trees.push_back(tree);  // snapshot the marginal genealogy
    }
    if (next >= 1.0) break;
    tree.smc_prune_recoalesce(rng, config.demography);
    x = next;
  }

  if (config.fixed_segsites.has_value()) {
    // ms -s: distribute exactly S mutations over segments with probability
    // proportional to (segment width) x (tree length).
    const std::size_t total = *config.fixed_segsites;
    std::vector<double> weight(segments.size());
    double weight_sum = 0.0;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      weight[s] = (segments[s].hi_fraction - segments[s].lo_fraction) *
                  segments[s].tree_length;
      weight_sum += weight[s];
    }
    // Sequential binomial thinning of the multinomial.
    std::size_t remaining = total;
    double remaining_weight = weight_sum;
    for (std::size_t s = 0; s < segments.size() && remaining > 0; ++s) {
      std::size_t take;
      if (s + 1 == segments.size() || remaining_weight <= 0.0) {
        take = remaining;
      } else {
        const double p = weight[s] / remaining_weight;
        // Binomial(remaining, p) via inversion on small counts, normal
        // approximation otherwise; exactness is not required, the row sum is
        // forced on the final segment.
        double expected = static_cast<double>(remaining) * p;
        if (remaining < 64) {
          take = 0;
          for (std::size_t i = 0; i < remaining; ++i) {
            if (rng.uniform() < p) ++take;
          }
        } else {
          const double sd = std::sqrt(expected * (1.0 - p));
          const double draw = expected + sd * rng.normal();
          take = static_cast<std::size_t>(std::clamp(
              draw, 0.0, static_cast<double>(remaining)));
        }
      }
      take = std::min(take, remaining);
      drop_mutations_on_tree(trees[s], segments[s], take, rng, mutations);
      remaining -= take;
      remaining_weight -= weight[s];
    }
  } else {
    for (std::size_t s = 0; s < segments.size(); ++s) {
      const double width = segments[s].hi_fraction - segments[s].lo_fraction;
      const double mean = config.theta / 2.0 * width * segments[s].tree_length;
      drop_mutations_on_tree(trees[s], segments[s], rng.poisson(mean), rng,
                             mutations);
    }
  }

  std::sort(mutations.begin(), mutations.end(),
            [](const Mutation& a, const Mutation& b) { return a.fraction < b.fraction; });

  // Materialize the dataset.
  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> sites;
  positions.reserve(mutations.size());
  sites.reserve(mutations.size());
  for (const auto& mutation : mutations) {
    auto pos = static_cast<std::int64_t>(
        std::llround(mutation.fraction * static_cast<double>(config.locus_length_bp)));
    if (!positions.empty() && pos <= positions.back()) pos = positions.back() + 1;
    positions.push_back(pos);
    std::vector<std::uint8_t> row(config.samples, 0);
    for (const int leaf : mutation.carriers) {
      row[static_cast<std::size_t>(leaf)] = 1;
    }
    sites.push_back(std::move(row));
  }
  const std::int64_t length =
      std::max<std::int64_t>(config.locus_length_bp,
                             positions.empty() ? 0 : positions.back());
  return io::Dataset(std::move(positions), std::move(sites), length);
}

std::vector<io::Dataset> simulate_replicates(const CoalescentConfig& config,
                                             std::size_t replicates) {
  std::vector<io::Dataset> out;
  out.reserve(replicates);
  util::Xoshiro256 seeder(config.seed);
  for (std::size_t r = 0; r < replicates; ++r) {
    CoalescentConfig one = config;
    one.seed = seeder();
    out.push_back(simulate(one));
  }
  return out;
}

}  // namespace omega::sim
