#include "sim/sweep_coalescent.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace omega::sim {
namespace {

/// Establishment frequency: below this the beneficial lineage behaves
/// neutrally and the sweep phase ends.
double establishment(double alpha) { return std::min(0.4, 1.0 / alpha); }

/// Local genealogy under construction: leaves 0..n-1, internal nodes append.
struct LocalTree {
  std::vector<int> parent;
  std::vector<double> time;
  std::vector<std::array<int, 2>> children;

  explicit LocalTree(std::size_t leaves)
      : parent(2 * leaves - 1, -1),
        time(2 * leaves - 1, 0.0),
        children(2 * leaves - 1, {-1, -1}) {}

  int next_node = 0;

  int merge(int a, int b, double at) {
    const int node = next_node++;
    parent[static_cast<std::size_t>(a)] = node;
    parent[static_cast<std::size_t>(b)] = node;
    time[static_cast<std::size_t>(node)] = at;
    children[static_cast<std::size_t>(node)] = {a, b};
    return node;
  }

  double total_length(int root) const {
    double length = 0.0;
    for (std::size_t v = 0; v < parent.size(); ++v) {
      if (parent[v] >= 0) {
        length += time[static_cast<std::size_t>(parent[v])] - time[v];
      }
    }
    (void)root;
    return length;
  }

  void leaves_below(int node, std::vector<int>& out) const {
    out.clear();
    std::vector<int> stack{node};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      if (children[static_cast<std::size_t>(v)][0] < 0) {
        out.push_back(v);
      } else {
        stack.push_back(children[static_cast<std::size_t>(v)][0]);
        stack.push_back(children[static_cast<std::size_t>(v)][1]);
      }
    }
  }
};

/// Removes index `i` from `v` by swap-remove and returns the element.
int take(std::vector<int>& v, std::size_t i) {
  const int value = v[i];
  v[i] = v.back();
  v.pop_back();
  return value;
}

}  // namespace

double sweep_trajectory(double tau, double alpha, double final_frequency) {
  const double x0 = std::min(final_frequency, 1.0 - 1e-9);
  return x0 / (x0 + (1.0 - x0) * std::exp(alpha * tau));
}

double sweep_duration(double alpha, double final_frequency) {
  const double x0 = std::min(final_frequency, 1.0 - 1e-9);
  const double eps = establishment(alpha);
  if (x0 <= eps) return 0.0;
  return std::log(x0 * (1.0 - eps) / (eps * (1.0 - x0))) / alpha;
}

io::Dataset simulate_sweep_coalescent(const SweepCoalescentConfig& config) {
  if (config.samples < 2) {
    throw std::invalid_argument("sweep coalescent: need >= 2 samples");
  }
  if (config.alpha <= 2.0) {
    throw std::invalid_argument("sweep coalescent: alpha must exceed 2");
  }
  if (config.final_frequency <= 0.0 || config.final_frequency > 1.0) {
    throw std::invalid_argument("sweep coalescent: final_frequency in (0,1]");
  }
  util::Xoshiro256 rng(config.seed);
  const std::size_t n = config.samples;
  const double tau_end = sweep_duration(config.alpha, config.final_frequency);

  // Carrier set: fixed across segments (the beneficial site is one locus).
  const double x0 = std::min(config.final_frequency, 1.0 - 1e-9);
  std::vector<char> carrier(n, 0);
  {
    auto count = static_cast<std::size_t>(
        std::llround(x0 * static_cast<double>(n)));
    count = std::max<std::size_t>(1, std::min(n, count));
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.bounded(i)]);
    }
    for (std::size_t i = 0; i < count; ++i) carrier[order[i]] = 1;
  }

  struct Mutation {
    double fraction;
    std::vector<int> carriers;
  };
  std::vector<Mutation> mutations;
  std::vector<int> scratch_leaves;

  const double locus = static_cast<double>(config.locus_length_bp);
  for (std::size_t segment = 0; segment < config.segments; ++segment) {
    const double lo = static_cast<double>(segment) /
                      static_cast<double>(config.segments);
    const double hi = static_cast<double>(segment + 1) /
                      static_cast<double>(config.segments);
    const double midpoint_bp = 0.5 * (lo + hi) * locus;
    const double distance_bp =
        std::abs(midpoint_bp - static_cast<double>(config.sweep_position_bp));
    // Background-switch rate for this segment's lineages.
    const double recomb_rate = config.rho * distance_bp / locus;

    LocalTree tree(n);
    tree.next_node = static_cast<int>(n);
    std::vector<int> linked, unlinked;
    for (std::size_t h = 0; h < n; ++h) {
      (carrier[h] ? linked : unlinked).push_back(static_cast<int>(h));
    }

    // --- Sweep phase: time-inhomogeneous Gillespie with a rate-refresh
    // grid over the deterministic trajectory. ---------------------------
    const int grid_steps = 512;
    double tau = 0.0;
    for (int step = 0; step < grid_steps; ++step) {
      const double grid_next =
          tau_end * static_cast<double>(step + 1) / grid_steps;
      while (tau < grid_next) {
        const double x =
            std::max(establishment(config.alpha),
                     sweep_trajectory(tau, config.alpha, config.final_frequency));
        const auto kb_linked = static_cast<double>(linked.size());
        const auto kb_free = static_cast<double>(unlinked.size());
        const double coal_linked =
            kb_linked * (kb_linked - 1.0) / 2.0 / x;
        const double coal_free =
            kb_free * (kb_free - 1.0) / 2.0 / std::max(1e-9, 1.0 - x);
        const double escape = kb_linked * recomb_rate * (1.0 - x);
        const double recapture = kb_free * recomb_rate * x;
        const double total = coal_linked + coal_free + escape + recapture;
        if (total <= 0.0) {
          tau = grid_next;
          break;
        }
        const double wait = rng.exponential(total);
        if (tau + wait > grid_next) {
          tau = grid_next;  // rates change; redraw beyond the grid point
          break;
        }
        tau += wait;
        const double pick = rng.uniform() * total;
        if (pick < coal_linked) {
          const int a = take(linked, rng.bounded(linked.size()));
          const int b = take(linked, rng.bounded(linked.size()));
          linked.push_back(tree.merge(a, b, tau));
        } else if (pick < coal_linked + coal_free) {
          const int a = take(unlinked, rng.bounded(unlinked.size()));
          const int b = take(unlinked, rng.bounded(unlinked.size()));
          unlinked.push_back(tree.merge(a, b, tau));
        } else if (pick < coal_linked + coal_free + escape) {
          unlinked.push_back(take(linked, rng.bounded(linked.size())));
        } else {
          linked.push_back(take(unlinked, rng.bounded(unlinked.size())));
        }
      }
      if (linked.size() + unlinked.size() <= 1) break;
    }

    // Establishment: surviving beneficial lineages descend from the single
    // founder — coalesce them at tau_end (star approximation).
    while (linked.size() > 1) {
      const int a = take(linked, rng.bounded(linked.size()));
      const int b = take(linked, rng.bounded(linked.size()));
      linked.push_back(tree.merge(a, b, tau_end));
    }
    std::vector<int> active = unlinked;
    active.insert(active.end(), linked.begin(), linked.end());

    // --- Neutral phase: standard Kingman to the MRCA. -------------------
    double now = std::max(tau, tau_end);
    while (active.size() > 1) {
      const auto k = static_cast<double>(active.size());
      now += rng.exponential(k * (k - 1.0) / 2.0);
      const int a = take(active, rng.bounded(active.size()));
      const int b = take(active, rng.bounded(active.size()));
      active.push_back(tree.merge(a, b, now));
    }

    // --- Mutations on the segment's genealogy. ---------------------------
    const double segment_theta = config.theta * (hi - lo);
    const double length = tree.total_length(active.front());
    const std::uint64_t count = rng.poisson(segment_theta / 2.0 * length);
    for (std::uint64_t m = 0; m < count; ++m) {
      // Branch proportional to length.
      double target = rng.uniform() * length;
      int chosen = -1;
      for (std::size_t v = 0; v < tree.parent.size() && chosen < 0; ++v) {
        if (tree.parent[v] < 0) continue;
        const double branch =
            tree.time[static_cast<std::size_t>(tree.parent[v])] - tree.time[v];
        if (target <= branch) {
          chosen = static_cast<int>(v);
        } else {
          target -= branch;
        }
      }
      if (chosen < 0) continue;  // floating-point tail
      tree.leaves_below(chosen, scratch_leaves);
      if (scratch_leaves.empty() || scratch_leaves.size() >= n) continue;
      Mutation mutation;
      mutation.fraction = lo + rng.uniform() * (hi - lo);
      mutation.carriers = scratch_leaves;
      mutations.push_back(std::move(mutation));
    }
  }

  std::sort(mutations.begin(), mutations.end(),
            [](const Mutation& a, const Mutation& b) {
              return a.fraction < b.fraction;
            });
  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> sites;
  positions.reserve(mutations.size());
  sites.reserve(mutations.size());
  for (const auto& mutation : mutations) {
    auto bp = static_cast<std::int64_t>(std::llround(mutation.fraction * locus));
    if (!positions.empty() && bp <= positions.back()) bp = positions.back() + 1;
    positions.push_back(bp);
    std::vector<std::uint8_t> row(n, 0);
    for (const int leaf : mutation.carriers) {
      row[static_cast<std::size_t>(leaf)] = 1;
    }
    sites.push_back(std::move(row));
  }
  const std::int64_t length_bp =
      std::max<std::int64_t>(config.locus_length_bp,
                             positions.empty() ? 0 : positions.back());
  return io::Dataset(std::move(positions), std::move(sites), length_bp);
}

}  // namespace omega::sim
