#include "sim/dataset_factory.h"

#include <stdexcept>

#include "sim/coalescent.h"

namespace omega::sim {

io::Dataset make_dataset(const DatasetSpec& spec) {
  if (spec.snps == 0) throw std::invalid_argument("dataset spec: snps == 0");
  CoalescentConfig config;
  config.samples = spec.samples;
  config.rho = spec.rho;
  config.locus_length_bp = spec.locus_length_bp;
  config.fixed_segsites = spec.snps;
  config.seed = spec.seed;
  config.demography = spec.demography;
  io::Dataset dataset = simulate(config);
  // Fixed-S simulation always yields polymorphic sites (every mutation sits
  // below the root), so the count is exact by construction.
  if (dataset.num_sites() != spec.snps) {
    throw std::logic_error("dataset factory: segsites mismatch");
  }
  return dataset;
}

}  // namespace omega::sim
