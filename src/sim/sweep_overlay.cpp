#include "sim/sweep_overlay.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/prng.h"

namespace omega::sim {

io::Dataset apply_sweep(const io::Dataset& neutral, const SweepConfig& config) {
  if (config.carrier_fraction <= 0.0 || config.carrier_fraction > 1.0) {
    throw std::invalid_argument("sweep: carrier_fraction must be in (0,1]");
  }
  util::Xoshiro256 rng(config.seed);
  const std::size_t samples = neutral.num_samples();
  const std::size_t sites = neutral.num_sites();

  // Choose the donor haplotype and the carrier set.
  const auto donor = static_cast<std::size_t>(rng.bounded(samples));
  std::vector<std::size_t> order(samples);
  for (std::size_t i = 0; i < samples; ++i) order[i] = i;
  for (std::size_t i = samples; i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }
  const auto carrier_count = static_cast<std::size_t>(
      std::llround(config.carrier_fraction * static_cast<double>(samples)));
  std::vector<std::uint8_t> is_carrier(samples, 0);
  for (std::size_t i = 0; i < carrier_count && i < samples; ++i) {
    is_carrier[order[i]] = 1;
  }
  is_carrier[donor] = 1;

  // Per-carrier tract bounds around the sweep position.
  std::vector<std::int64_t> tract_lo(samples, 0);
  std::vector<std::int64_t> tract_hi(samples, 0);
  for (std::size_t h = 0; h < samples; ++h) {
    if (!is_carrier[h]) continue;
    const double left = rng.exponential(1.0 / config.tract_mean_bp);
    const double right = rng.exponential(1.0 / config.tract_mean_bp);
    tract_lo[h] = config.sweep_position_bp - static_cast<std::int64_t>(left);
    tract_hi[h] = config.sweep_position_bp + static_cast<std::int64_t>(right);
  }
  // The donor trivially carries its own full haplotype.
  tract_lo[donor] = 0;
  tract_hi[donor] = neutral.locus_length_bp();

  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> out_sites;
  positions.reserve(sites);
  out_sites.reserve(sites);

  for (std::size_t s = 0; s < sites; ++s) {
    const std::int64_t pos = neutral.position(s);
    const double dist = std::abs(static_cast<double>(pos - config.sweep_position_bp));

    // Signature (a): thin SNPs near the sweep site.
    const double drop_probability =
        config.thinning_max * std::exp(-dist / config.thinning_scale_bp);
    if (rng.uniform() < drop_probability) continue;

    std::vector<std::uint8_t> row(samples);
    const std::uint8_t donor_allele = neutral.allele(s, donor);
    for (std::size_t h = 0; h < samples; ++h) {
      const bool within_tract =
          is_carrier[h] && pos >= tract_lo[h] && pos <= tract_hi[h];
      row[h] = within_tract ? donor_allele : neutral.allele(s, h);
    }
    positions.push_back(pos);
    out_sites.push_back(std::move(row));
  }

  io::Dataset out(std::move(positions), std::move(out_sites),
                  neutral.locus_length_bp());
  out.remove_monomorphic();
  return out;
}

}  // namespace omega::sim
