#pragma once
// Binary coalescent genealogy over n sampled haplotypes.
//
// Node layout: ids [0, n) are leaves at time 0; internal nodes occupy
// [n, 2n-1). The tree supports the two operations the simulator needs:
//   * Kingman simulation (build from scratch),
//   * SMC'-style subtree-prune-and-recoalesce, which transforms the marginal
//     genealogy at a recombination breakpoint while preserving the Kingman
//     marginal distribution (McVean & Cardin 2005).
// Times are in coalescent units of 2N generations, so the pairwise
// coalescence rate is 1 and E[total length] = 2 * H_{n-1}.

#include <array>
#include <cstdint>
#include <vector>

#include "sim/demography.h"
#include "util/prng.h"

namespace omega::sim {

class Tree {
 public:
  /// Builds a Kingman coalescent tree over `samples` leaves. A non-trivial
  /// demography rescales coalescence rates by 1/size(t).
  static Tree kingman(std::size_t samples, util::Xoshiro256& rng,
                      const Demography& demography = {});

  [[nodiscard]] std::size_t num_leaves() const noexcept { return leaves_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return parent_.size(); }
  [[nodiscard]] int root() const noexcept { return root_; }
  [[nodiscard]] double node_time(int node) const { return time_[static_cast<std::size_t>(node)]; }
  [[nodiscard]] int parent(int node) const { return parent_[static_cast<std::size_t>(node)]; }

  /// Sum of all branch lengths.
  [[nodiscard]] double total_length() const;

  /// Leaves below `node`, appended to `out` (cleared first).
  void descendant_leaves(int node, std::vector<int>& out) const;

  /// Samples a point uniformly on the branches: returns (node, height) where
  /// the point is on the edge from `node` to its parent.
  struct BranchPoint {
    int node;
    double height;
  };
  [[nodiscard]] BranchPoint sample_branch_point(util::Xoshiro256& rng) const;

  /// One SMC'-style recombination transition: detach the lineage at a
  /// uniformly chosen branch point and re-coalesce it into the remaining
  /// genealogy at the Kingman rate (scaled by 1/size(t) under a non-trivial
  /// demography). Node count stays 2n-1.
  void smc_prune_recoalesce(util::Xoshiro256& rng,
                            const Demography& demography = {});

  /// Structural invariants (binary internal nodes, child/parent coherence,
  /// increasing times along root paths). Throws std::logic_error on failure.
  void check_invariants() const;

 private:
  Tree(std::size_t leaves);

  void set_children(int node, int a, int b);
  /// Replaces child `old_child` of `node` with `new_child`.
  void replace_child(int node, int old_child, int new_child);

  std::size_t leaves_ = 0;
  int root_ = -1;
  std::vector<int> parent_;                 // -1 for root
  std::vector<std::array<int, 2>> child_;   // {-1,-1} for leaves
  std::vector<double> time_;
};

}  // namespace omega::sim
