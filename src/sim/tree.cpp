#include "sim/tree.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace omega::sim {

Tree::Tree(std::size_t leaves)
    : leaves_(leaves),
      parent_(2 * leaves - 1, -1),
      child_(2 * leaves - 1, {-1, -1}),
      time_(2 * leaves - 1, 0.0) {}

Tree Tree::kingman(std::size_t samples, util::Xoshiro256& rng,
                   const Demography& demography) {
  if (samples < 2) throw std::invalid_argument("kingman: need >= 2 samples");
  Tree tree(samples);
  std::vector<int> active(samples);
  for (std::size_t i = 0; i < samples; ++i) active[i] = static_cast<int>(i);

  double now = 0.0;
  int next_node = static_cast<int>(samples);
  while (active.size() > 1) {
    const auto k = static_cast<double>(active.size());
    now += demography.waiting_time(now, k * (k - 1.0) / 2.0, rng);
    // Choose an unordered pair uniformly.
    const auto i = static_cast<std::size_t>(rng.bounded(active.size()));
    auto j = static_cast<std::size_t>(rng.bounded(active.size() - 1));
    if (j >= i) ++j;
    const int a = active[i];
    const int b = active[j];
    const int u = next_node++;
    tree.time_[static_cast<std::size_t>(u)] = now;
    tree.set_children(u, a, b);
    // Replace the pair by the new node with swap-removes (order within the
    // active set is irrelevant; erase() would make the build O(n^2)).
    const std::size_t hi_index = std::max(i, j);
    const std::size_t lo_index = std::min(i, j);
    active[hi_index] = active.back();
    active.pop_back();
    active[lo_index] = u;
  }
  tree.root_ = active.front();
  return tree;
}

void Tree::set_children(int node, int a, int b) {
  child_[static_cast<std::size_t>(node)] = {a, b};
  parent_[static_cast<std::size_t>(a)] = node;
  parent_[static_cast<std::size_t>(b)] = node;
}

void Tree::replace_child(int node, int old_child, int new_child) {
  auto& kids = child_[static_cast<std::size_t>(node)];
  if (kids[0] == old_child) {
    kids[0] = new_child;
  } else if (kids[1] == old_child) {
    kids[1] = new_child;
  } else {
    throw std::logic_error("replace_child: not a child");
  }
  parent_[static_cast<std::size_t>(new_child)] = node;
}

double Tree::total_length() const {
  double length = 0.0;
  for (std::size_t v = 0; v < parent_.size(); ++v) {
    const int p = parent_[v];
    if (p >= 0) {
      length += time_[static_cast<std::size_t>(p)] - time_[v];
    }
  }
  return length;
}

void Tree::descendant_leaves(int node, std::vector<int>& out) const {
  out.clear();
  std::vector<int> stack{node};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    const auto& kids = child_[static_cast<std::size_t>(v)];
    if (kids[0] < 0) {
      out.push_back(v);
    } else {
      stack.push_back(kids[0]);
      stack.push_back(kids[1]);
    }
  }
}

Tree::BranchPoint Tree::sample_branch_point(util::Xoshiro256& rng) const {
  const double target = rng.uniform() * total_length();
  double cumulative = 0.0;
  for (std::size_t v = 0; v < parent_.size(); ++v) {
    const int p = parent_[v];
    if (p < 0) continue;
    const double len = time_[static_cast<std::size_t>(p)] - time_[v];
    if (cumulative + len >= target) {
      return {static_cast<int>(v), time_[v] + (target - cumulative)};
    }
    cumulative += len;
  }
  // Floating-point slack: fall back to the last real edge.
  for (std::size_t v = parent_.size(); v-- > 0;) {
    if (parent_[v] >= 0) {
      return {static_cast<int>(v), time_[v]};
    }
  }
  throw std::logic_error("sample_branch_point: no edges");
}

void Tree::smc_prune_recoalesce(util::Xoshiro256& rng,
                                const Demography& demography) {
  const BranchPoint cut = sample_branch_point(rng);
  const int v = cut.node;
  const int p = parent_[static_cast<std::size_t>(v)];
  const auto& pkids = child_[static_cast<std::size_t>(p)];
  const int sibling = pkids[0] == v ? pkids[1] : pkids[0];
  const int grand = parent_[static_cast<std::size_t>(p)];

  // Splice p out of the remaining tree; v floats from height cut.height.
  if (grand >= 0) {
    replace_child(grand, p, sibling);
  } else {
    root_ = sibling;
    parent_[static_cast<std::size_t>(sibling)] = -1;
  }
  // Detach both the floating lineage and the recycled node so neither shows
  // up as a phantom edge while we scan the remaining genealogy.
  parent_[static_cast<std::size_t>(v)] = -1;
  parent_[static_cast<std::size_t>(p)] = -1;

  // Collect the remaining tree's edges as (start, end] time intervals, plus
  // the open-ended lineage above the remaining root.
  struct Edge {
    int node;
    double lo, hi;
  };
  std::vector<Edge> edges;
  edges.reserve(parent_.size());
  for (std::size_t u = 0; u < parent_.size(); ++u) {
    const int q = parent_[u];
    if (q < 0) continue;
    if (static_cast<int>(u) == v) continue;
    edges.push_back({static_cast<int>(u), time_[u],
                     time_[static_cast<std::size_t>(q)]});
  }
  const double root_time = time_[static_cast<std::size_t>(root_)];

  // Event times where the lineage count changes, at or above the cut height.
  std::vector<double> events;
  events.reserve(2 * edges.size() + 2);
  events.push_back(cut.height);
  for (const auto& e : edges) {
    if (e.lo > cut.height) events.push_back(e.lo);
    if (e.hi > cut.height) events.push_back(e.hi);
  }
  events.push_back(root_time);
  // Epoch boundaries are rate-change points for the interval walk.
  const double last_edge_time =
      events.empty() ? cut.height : *std::max_element(events.begin(), events.end());
  for (const double boundary :
       demography.boundaries_between(cut.height, last_edge_time)) {
    events.push_back(boundary);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  auto lineages_at = [&](double t) {
    // Number of remaining-tree lineages crossing time t (root lineage counts
    // as 1 for t >= root_time).
    if (t >= root_time) return std::size_t{1};
    std::size_t k = 0;
    for (const auto& e : edges) {
      if (e.lo <= t && t < e.hi) ++k;
    }
    return k;
  };

  // Walk intervals upward; within each, the floating lineage coalesces at
  // rate k (pairwise rate 1 with each of k lineages).
  double t = cut.height;
  double coal_time = -1.0;
  for (std::size_t idx = 0; idx + 1 <= events.size(); ++idx) {
    const double hi = idx + 1 < events.size()
                          ? events[idx + 1]
                          : std::numeric_limits<double>::infinity();
    if (events[idx] < t) continue;
    t = std::max(t, events[idx]);
    const std::size_t k = lineages_at(t);
    if (k == 0) continue;  // defensive; cannot happen below root
    // Constant rate k / size(t) within the interval (epoch boundaries are
    // events too).
    const double wait =
        rng.exponential(static_cast<double>(k) / demography.size_at(t));
    if (t + wait < hi) {
      coal_time = t + wait;
      break;
    }
    t = hi;
  }
  if (coal_time < 0.0) {
    // Above the last event only the root lineage remains: base rate 1,
    // time-changed through any remaining epochs.
    t = std::max(t, root_time);
    coal_time = t + demography.waiting_time(t, 1.0, rng);
  }

  // Pick the partner lineage uniformly among those crossing coal_time.
  int partner = -1;
  if (coal_time >= root_time) {
    partner = root_;
  } else {
    std::vector<int> crossing;
    for (const auto& e : edges) {
      if (e.lo <= coal_time && coal_time < e.hi) crossing.push_back(e.node);
    }
    partner = crossing[rng.bounded(crossing.size())];
  }

  // Reuse p as the new internal node at coal_time.
  time_[static_cast<std::size_t>(p)] = coal_time;
  const int partner_parent = parent_[static_cast<std::size_t>(partner)];
  if (partner_parent >= 0) {
    replace_child(partner_parent, partner, p);
  } else {
    parent_[static_cast<std::size_t>(p)] = -1;
    root_ = p;
  }
  set_children(p, v, partner);
}

void Tree::check_invariants() const {
  std::size_t root_count = 0;
  for (std::size_t v = 0; v < parent_.size(); ++v) {
    const int p = parent_[v];
    if (p < 0) {
      ++root_count;
      if (static_cast<int>(v) != root_) {
        throw std::logic_error("tree: stray parentless node");
      }
      continue;
    }
    if (time_[static_cast<std::size_t>(p)] < time_[v]) {
      throw std::logic_error("tree: parent older-than-child violated");
    }
    const auto& kids = child_[static_cast<std::size_t>(p)];
    if (kids[0] != static_cast<int>(v) && kids[1] != static_cast<int>(v)) {
      throw std::logic_error("tree: parent/child link mismatch");
    }
  }
  if (root_count != 1) throw std::logic_error("tree: must have exactly one root");
  for (std::size_t v = leaves_; v < child_.size(); ++v) {
    if (child_[v][0] < 0 || child_[v][1] < 0) {
      throw std::logic_error("tree: internal node missing children");
    }
  }
  // Every leaf reaches the root.
  for (std::size_t leaf = 0; leaf < leaves_; ++leaf) {
    int v = static_cast<int>(leaf);
    std::size_t hops = 0;
    while (parent_[static_cast<std::size_t>(v)] >= 0) {
      v = parent_[static_cast<std::size_t>(v)];
      if (++hops > parent_.size()) throw std::logic_error("tree: cycle");
    }
    if (v != root_) throw std::logic_error("tree: leaf detached from root");
  }
}

}  // namespace omega::sim
