#pragma once
// Neutral coalescent simulator replacing Hudson's `ms` in the paper's
// experimental setup (see DESIGN.md, substitution table).
//
// Model:
//  * without recombination (rho == 0): exact Kingman coalescent; mutations
//    are dropped on branches at rate theta/2 per unit branch length, so
//    E[segregating sites] = theta * H_{n-1}, matching ms's -t convention;
//  * with recombination (rho > 0): the locus is cut at Poisson(rho)
//    breakpoints; the marginal genealogy changes at each breakpoint through
//    an SMC'-style prune-and-recoalesce move (McVean & Cardin 2005
//    approximation of the ancestral recombination graph). LD consequently
//    decays with distance, and SNP density varies along the locus — the two
//    properties the paper's workloads depend on.
//  * fixed_segsites mimics ms's -s flag: exactly S sites are placed,
//    distributed over segments proportional to segment length x tree length.

#include <cstdint>
#include <optional>

#include "io/dataset.h"
#include "sim/demography.h"
#include "util/prng.h"

namespace omega::sim {

struct CoalescentConfig {
  std::size_t samples = 50;
  /// Population-scaled mutation rate for the whole locus (ms -t).
  double theta = 100.0;
  /// Expected number of recombination breakpoints along the locus.
  double rho = 0.0;
  std::int64_t locus_length_bp = 1'000'000;
  /// ms -s: condition on exactly this many segregating sites.
  std::optional<std::size_t> fixed_segsites;
  /// Population-size history (default: equilibrium).
  Demography demography;
  std::uint64_t seed = 1;
};

/// Simulates one replicate.
io::Dataset simulate(const CoalescentConfig& config);

/// Simulates `replicates` independent datasets (seeds derived from
/// config.seed).
std::vector<io::Dataset> simulate_replicates(const CoalescentConfig& config,
                                             std::size_t replicates);

}  // namespace omega::sim
