#pragma once
// Convenience layer producing the exact dataset shapes used throughout the
// paper's evaluation (e.g. "50 sequences, 1,000..20,000 SNPs", "13,000 SNPs
// and 7,000 sequences"). Wraps the coalescent with ms's -s (fixed segregating
// sites) semantics so benches get deterministic shapes.

#include <cstdint>

#include "io/dataset.h"
#include "sim/demography.h"

namespace omega::sim {

struct DatasetSpec {
  std::size_t snps = 1'000;
  std::size_t samples = 50;
  std::int64_t locus_length_bp = 1'000'000;
  /// Expected recombination breakpoints; controls SNP-density non-uniformity
  /// and the number of distinct marginal genealogies.
  double rho = 50.0;
  std::uint64_t seed = 1;
  /// Population-size history (default: equilibrium).
  Demography demography;
};

/// Simulates a neutral dataset with exactly `spec.snps` polymorphic sites.
io::Dataset make_dataset(const DatasetSpec& spec);

}  // namespace omega::sim
