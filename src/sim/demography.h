#pragma once
// Piecewise-constant population-size history for the coalescent. The power
// studies the paper builds on (Crisci et al.) evaluate sweep detectors under
// *non-equilibrium* neutral models — bottlenecks and expansions — because
// those mimic sweep signatures and inflate false positives; supporting them
// makes the simulator usable for the same analyses.
//
// Time runs backward from the present in units of 2N0 generations; sizes are
// relative to N0. With k lineages at time t the coalescence rate is
// C(k,2) / size(t), so an epoch of size 0.1 coalesces 10x faster.

#include <vector>

#include "util/prng.h"

namespace omega::sim {

struct Epoch {
  double start_time = 0.0;    // backward time at which this epoch begins
  double relative_size = 1.0; // population size relative to N0
};

class Demography {
 public:
  /// Equilibrium (constant size 1).
  Demography() = default;
  /// Epochs must have strictly increasing start times; the first must start
  /// at 0. Throws std::invalid_argument otherwise.
  explicit Demography(std::vector<Epoch> epochs);

  /// Relative size at backward time t.
  [[nodiscard]] double size_at(double t) const noexcept;

  /// Samples the waiting time from `now` until an event that occurs with
  /// instantaneous rate `base_rate / size(t)` (time-change of a unit
  /// exponential across the piecewise-constant epochs).
  [[nodiscard]] double waiting_time(double now, double base_rate,
                                    util::Xoshiro256& rng) const;

  /// Epoch boundary times after `now` and at or below `horizon` (the SMC'
  /// interval walk inserts these as rate-change events).
  [[nodiscard]] std::vector<double> boundaries_between(double now,
                                                       double horizon) const;

  [[nodiscard]] bool is_equilibrium() const noexcept {
    return epochs_.size() == 1 && epochs_.front().relative_size == 1.0;
  }

  /// Convenience factories for the classic scenarios.
  static Demography bottleneck(double start, double duration, double severity);
  static Demography expansion(double time, double ancestral_size);

 private:
  std::vector<Epoch> epochs_{{0.0, 1.0}};
};

}  // namespace omega::sim
