#pragma once
// Structured-coalescent selective sweep simulator (msms/mbs-style): instead
// of overlaying a hitchhiking signature on neutral data (sweep_overlay.h),
// genealogies are simulated backward in time *through* the sweep,
// conditioning on a deterministic logistic trajectory of the beneficial
// allele frequency x(tau):
//
//   * lineages are structured into the beneficial background (linked, B) and
//     the wild-type background (unlinked, b);
//   * within-B pairs coalesce at rate C(kB,2)/x(tau) — explosive as x -> 0,
//     which is what produces the star-like genealogy and diversity loss;
//   * within-b pairs coalesce at rate C(kb,2)/(1 - x(tau));
//   * a lineage at recombination distance R from the sweep site switches
//     background at rate R * (1-x) (escape) or R * x (recapture) — escape is
//     what lets flanking variation survive, with independent escape times on
//     the two flanks producing the Kim-Nielsen LD pattern the omega
//     statistic targets;
//   * after the sweep phase (x below ~1/alpha) the remaining lineages finish
//     under the standard Kingman coalescent.
//
// The locus is discretized into segments, each with its own genealogy
// (linked to the others through the shared carrier set and trajectory but
// otherwise independent — the standard approximation of trajectory-
// conditioned sweep simulators without a full ARG).

#include <cstdint>

#include "io/dataset.h"
#include "util/prng.h"

namespace omega::sim {

struct SweepCoalescentConfig {
  std::size_t samples = 50;
  /// Selection strength alpha = 2Ns. Larger alpha = faster sweep = smaller
  /// escape probability = wider footprint.
  double alpha = 1'000.0;
  /// Beneficial-allele frequency at sampling time (1.0 = complete sweep).
  double final_frequency = 0.99;
  /// Population-scaled mutation rate for the whole locus (as ms -t).
  double theta = 100.0;
  /// Population-scaled recombination rate for the whole locus (as ms -r);
  /// a lineage in a segment at distance d bp from the sweep site switches
  /// backgrounds at rate rho * d / locus_length.
  double rho = 500.0;
  std::int64_t locus_length_bp = 1'000'000;
  std::int64_t sweep_position_bp = 500'000;
  /// Locus discretization (genealogies simulated per segment).
  std::size_t segments = 40;
  std::uint64_t seed = 1;
};

/// Simulates one replicate. The derived dataset contains only the neutral
/// polymorphisms (the beneficial site itself is not emitted).
io::Dataset simulate_sweep_coalescent(const SweepCoalescentConfig& config);

/// The deterministic logistic trajectory used by the simulator, exposed for
/// tests: frequency of the beneficial allele at backward time tau, starting
/// from `final_frequency` at tau = 0.
double sweep_trajectory(double tau, double alpha, double final_frequency);

/// Backward time at which the trajectory reaches the establishment
/// frequency 1/alpha (the end of the sweep phase).
double sweep_duration(double alpha, double final_frequency);

}  // namespace omega::sim
