#pragma once
// quickLD-style LD analysis (Theodoris et al., the paper's LD substrate
// lineage): the full set of classical pairwise LD statistics (D, D', r2)
// and a tiled region-by-region scan that handles pairs between *distant*
// genomic regions without materializing a quadratic matrix — the two-step
// parse/process design quickLD introduced to scale past memory limits.
//
// Summaries (mean r2, high-LD fraction, top pairs) are accumulated per tile,
// so a scan of two regions with hundreds of thousands of pairs needs O(tile)
// memory.

#include <cstdint>
#include <vector>

#include "ld/r2.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"

namespace omega::ld {

/// The classical pairwise statistics for one SNP pair.
struct LdStatistics {
  double d = 0.0;        // coefficient of disequilibrium p_ij - p_i p_j
  double d_prime = 0.0;  // Lewontin's normalization, in [-1, 1]
  double r2 = 0.0;       // squared correlation, in [0, 1]
};

/// From pairwise-complete counts. Monomorphic pairs yield all-zero stats.
[[nodiscard]] LdStatistics ld_statistics(const PairCounts& counts) noexcept;

/// A high-LD pair surfaced by the scan.
struct LdPair {
  std::size_t site_a = 0;
  std::size_t site_b = 0;
  LdStatistics stats;
};

struct LdScanOptions {
  /// Pairs with r2 >= this threshold count as "high LD" and are eligible
  /// for the top list.
  double high_ld_threshold = 0.2;
  /// Number of top-r2 pairs retained.
  std::size_t top_pairs = 10;
  /// Tile edge for the blocked traversal.
  std::size_t tile = 128;
  /// Sites with minor-allele frequency below this are skipped (quickLD's
  /// --maf pre-filter).
  double min_maf = 0.0;
};

struct LdScanResult {
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t pairs_skipped_maf = 0;
  std::uint64_t high_ld_pairs = 0;
  double mean_r2 = 0.0;
  double max_r2 = 0.0;
  /// Descending by r2.
  std::vector<LdPair> top;
};

/// Scans all pairs (a, b) with a in [a_begin, a_end), b in [b_begin, b_end).
/// Overlapping ranges are handled: self-pairs and duplicate unordered pairs
/// are evaluated once (a < b within the overlap).
LdScanResult ld_region_scan(const SnpMatrix& snps, std::size_t a_begin,
                            std::size_t a_end, std::size_t b_begin,
                            std::size_t b_end, const LdScanOptions& options = {});

/// Tile-parallel variant; identical result up to top-list tie order.
LdScanResult ld_region_scan_parallel(par::ThreadPool& pool,
                                     const SnpMatrix& snps, std::size_t a_begin,
                                     std::size_t a_end, std::size_t b_begin,
                                     std::size_t b_end,
                                     const LdScanOptions& options = {});

}  // namespace omega::ld
