#include "ld/ld_engine.h"

#include "util/bits.h"
#include "util/trace.h"

namespace omega::ld {

namespace {
/// How many j rows ahead the inner popcount loops hint the prefetcher. The
/// word streams are short (samples/64 words), so each pair resolves quickly
/// and a few-row lead keeps the next rows in flight without thrashing L1.
constexpr std::size_t kPrefetchRows = 4;
}  // namespace

void PopcountLd::r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                          std::size_t j1, float* out, std::size_t ld) const {
  const util::trace::Span span("ld.popcount.r2_block");
  note_served(static_cast<std::uint64_t>(i1 - i0) * (j1 - j0));
  if (snps_.has_missing()) {
    // Pairwise-complete counting (4 AND+popcount streams per pair).
    for (std::size_t i = i0; i < i1; ++i) {
      float* row = out + (i - i0) * ld;
      for (std::size_t j = j0; j < j1; ++j) {
        if (j + kPrefetchRows < j1) {
          util::prefetch_read(snps_.row(j + kPrefetchRows));
          util::prefetch_read(snps_.mask(j + kPrefetchRows));
        }
        row[j - j0] = r2_from_counts_f(snps_.pair_counts_complete(i, j));
      }
    }
    return;
  }
  const auto n = static_cast<std::int32_t>(snps_.num_samples());
  for (std::size_t i = i0; i < i1; ++i) {
    float* row = out + (i - i0) * ld;
    const std::int32_t ni = snps_.derived_count(i);
    for (std::size_t j = j0; j < j1; ++j) {
      if (j + kPrefetchRows < j1) {
        util::prefetch_read(snps_.row(j + kPrefetchRows));
      }
      const PairCounts counts{n, ni, snps_.derived_count(j),
                              snps_.pair_count(i, j)};
      row[j - j0] = r2_from_counts_f(counts);
    }
  }
}

void GemmLd::r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                      std::size_t j1, float* out, std::size_t ld) const {
  const util::trace::Span span("ld.gemm.r2_block");
  note_served(static_cast<std::uint64_t>(i1 - i0) * (j1 - j0));
  const std::size_t m = i1 - i0;
  const std::size_t n_cols = j1 - j0;
  if (m == 0 || n_cols == 0) return;
  // Reusable count scratch, mirroring DpMatrix::r2_scratch_ — but per thread
  // rather than per engine, because multithreaded scans share one engine
  // across workers (member scratch would be a data race). assign() keeps the
  // capacity across calls, so the four m x n buffers the missing-data path
  // needs are heap-allocated once per thread instead of once per call.
  struct Scratch {
    std::vector<std::int32_t> counts, ni, nj, n;
  };
  static thread_local Scratch scratch;
  std::vector<std::int32_t>& counts = scratch.counts;
  counts.assign(m * n_cols, 0);
  pair_count_block_gemm(snps_, i0, i1, j0, j1, counts.data(), n_cols, blocking_);

  if (snps_.has_missing()) {
    // Pairwise-complete counting as three further GEMMs over the Data/Mask
    // operand combinations (the DLA cast extends directly to missing data).
    std::vector<std::int32_t>& ni_pair = scratch.ni;
    std::vector<std::int32_t>& nj_pair = scratch.nj;
    std::vector<std::int32_t>& n_pair = scratch.n;
    ni_pair.assign(m * n_cols, 0);
    nj_pair.assign(m * n_cols, 0);
    n_pair.assign(m * n_cols, 0);
    pair_count_block_gemm(snps_, i0, i1, j0, j1, ni_pair.data(), n_cols,
                          blocking_, PackSource::Data, PackSource::Mask);
    pair_count_block_gemm(snps_, i0, i1, j0, j1, nj_pair.data(), n_cols,
                          blocking_, PackSource::Mask, PackSource::Data);
    pair_count_block_gemm(snps_, i0, i1, j0, j1, n_pair.data(), n_cols,
                          blocking_, PackSource::Mask, PackSource::Mask);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n_cols; ++j) {
        const std::size_t idx = i * n_cols + j;
        const PairCounts pair{n_pair[idx], ni_pair[idx], nj_pair[idx],
                              counts[idx]};
        out[i * ld + j] = r2_from_counts_f(pair);
      }
    }
    return;
  }

  const auto n = static_cast<std::int32_t>(snps_.num_samples());
  for (std::size_t i = 0; i < m; ++i) {
    const std::int32_t ni = snps_.derived_count(i0 + i);
    for (std::size_t j = 0; j < n_cols; ++j) {
      const PairCounts pair{n, ni, snps_.derived_count(j0 + j),
                            counts[i * n_cols + j]};
      out[i * ld + j] = r2_from_counts_f(pair);
    }
  }
}

void NaiveLd::r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                       std::size_t j1, float* out, std::size_t ld) const {
  const util::trace::Span span("ld.naive.r2_block");
  note_served(static_cast<std::uint64_t>(i1 - i0) * (j1 - j0));
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t j = j0; j < j1; ++j) {
      if (j + kPrefetchRows < j1) {
        util::prefetch_read(dataset_.site(j + kPrefetchRows).data());
      }
      out[(i - i0) * ld + (j - j0)] =
          static_cast<float>(r2_naive(dataset_, i, j));
    }
  }
}

}  // namespace omega::ld
