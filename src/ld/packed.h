#pragma once
// Bit-packed blocked LD engine (ROADMAP item 2): the PLINK-style answer to
// GemmLd's byte panels. Operands stay 1 bit per genotype end-to-end — 256
// genotypes per AVX2 vector — and the MR x NR microkernel is VPAND +
// vectorized popcount (vpshufb nibble-LUT + vpsadbw, with a Harley-Seal
// carry-save reduction once the sample dimension is deep enough to amortize
// it). A scalar std::popcount-over-u64 body backs the same loop nest on
// hosts/binaries without AVX2; selection happens once at engine construction
// through util/cpu_features, mirroring the omega_kernel_avx2.cpp per-TU
// dispatch pattern.
//
// Missing data: rows are packed as fused [data | mask] panels and the fused
// microkernel produces all four pairwise-complete count streams
// (data.data, data.mask, mask.data, mask.mask) in ONE pass — where GemmLd
// runs four independent GEMM sweeps.
//
// Panel cache: packing is lazy and cached per site-range block, so the
// B-panels of a chunk are packed exactly once and every subsequent
// DpMatrix::extend against the same chunk is all cache hits (counters
// ld.panel_cache.{hits,misses} in the telemetry registry). The cache is
// keyed by site range over the engine's immutable SnpMatrix; a chunk switch
// builds a new engine and thereby invalidates it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"

namespace omega::ld {

/// Cache/register blocking of the packed engine. Depth (sample) blocking is
/// in 64-bit words: kc_words = 512 keeps one row slice at 4 KiB, so an NR
/// B-sliver sits in L1 while MR A-rows stream against it.
struct PackedBlocking {
  std::size_t mc = 128;        // A-tile height in sites (ic loop)
  std::size_t nc = 256;        // B-tile width in sites (jc loop)
  std::size_t kc_words = 512;  // depth slice in u64 words (pc loop)
  /// Pack/cache granularity: sites per lazily-packed panel block.
  std::size_t sites_per_panel = 256;
  // Register blocking of the microkernel.
  static constexpr std::size_t mr = 8;
  static constexpr std::size_t nr = 4;
};

/// Which microkernel body the packed engine runs. Auto resolves to Avx2 when
/// the binary carries the AVX2 TU and the host supports it.
enum class PackedIsa { Auto, Scalar, Avx2 };

/// True when the AVX2 microkernel is compiled in and the host can run it.
[[nodiscard]] bool packed_avx2_available() noexcept;

/// The body PackedIsa::Auto resolves to on this binary/host ("avx2" or
/// "scalar"); stamped into the metrics "ld" block and BENCH_LD.json.
[[nodiscard]] const char* packed_isa_name(PackedIsa isa);

namespace packed_detail {

/// MR x NR count microkernel: c[i * ldc + j] += popcount(A_i & B_j) over
/// `words` words, for i < m (<= mr), j < n (<= nr). Row r of a panel starts
/// at panel + r * stride_words; callers offset `panel` by the current depth
/// slice and keep `stride_words` at the full row stride.
using TileCountsFn = void (*)(const std::uint64_t* a_panel,
                              const std::uint64_t* b_panel,
                              std::size_t stride_words, std::size_t words,
                              std::size_t m, std::size_t n, std::uint32_t* c,
                              std::size_t ldc);

/// Fused pairwise-complete microkernel over [data | mask] rows (mask at
/// row + mask_offset words): accumulates the four streams into
/// c[(i * ldc + j) * 4 + {0: n11, 1: ni, 2: nj, 3: n}] in one pass.
using TileFusedFn = void (*)(const std::uint64_t* a_panel,
                             const std::uint64_t* b_panel,
                             std::size_t stride_words, std::size_t mask_offset,
                             std::size_t words, std::size_t m, std::size_t n,
                             std::uint32_t* c, std::size_t ldc);

struct PackedKernels {
  TileCountsFn tile = nullptr;
  TileFusedFn tile_fused = nullptr;
  const char* isa = "scalar";
};

/// Scalar std::popcount bodies (always available; the test oracle for the
/// AVX2 TU).
[[nodiscard]] const PackedKernels& scalar_kernels() noexcept;
/// AVX2 bodies; only valid to call when packed_avx2_available().
[[nodiscard]] const PackedKernels& avx2_kernels() noexcept;
/// Resolves `isa` (Auto -> best available). Throws std::runtime_error when
/// Avx2 is forced on a binary/host that cannot run it.
[[nodiscard]] const PackedKernels& resolve_kernels(PackedIsa isa);

}  // namespace packed_detail

/// The bit-packed blocked engine (non-owning view of the matrix).
class PackedLd final : public LdEngine {
 public:
  explicit PackedLd(const SnpMatrix& snps, PackedBlocking blocking = {},
                    PackedIsa isa = PackedIsa::Auto);

  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override;
  [[nodiscard]] std::string name() const override { return "packed"; }
  [[nodiscard]] std::size_t num_sites() const override {
    return snps_.num_sites();
  }

  /// The microkernel body this instance resolved to ("avx2" | "scalar").
  [[nodiscard]] const char* isa() const noexcept { return kernels_.isa; }

  /// Panel-cache accounting over this engine's lifetime (also mirrored into
  /// the process-wide telemetry counters ld.panel_cache.{misses,hits}).
  [[nodiscard]] std::uint64_t panel_packs() const noexcept {
    return packs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t panel_hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  /// Packs (and caches) every panel block overlapping [begin, end); returns
  /// the number of blocks packed by this call (0 = all hits).
  std::size_t ensure_packed(std::size_t begin, std::size_t end) const;

  /// Start of site `s`'s packed row inside the arena.
  [[nodiscard]] const std::uint64_t* arena_row(std::size_t s) const noexcept {
    return arena_.get() + s * stride_words_;
  }

  const SnpMatrix& snps_;
  PackedBlocking blocking_;
  packed_detail::PackedKernels kernels_;
  bool fused_ = false;          // missing data -> fused [data | mask] rows
  std::size_t padded_words_ = 0;  // row words rounded up to a vector multiple
  std::size_t stride_words_ = 0;  // padded_words_ * (fused_ ? 2 : 1)
  std::size_t num_blocks_ = 0;    // ceil(sites / sites_per_panel)

  // The arena and the per-block packed flags are the panel cache: blocks are
  // packed lazily under pack_mutex_ and readers spin-free on the acquire
  // flags, so concurrent workers of a multithreaded scan share one cache.
  mutable std::unique_ptr<std::uint64_t[]> arena_;
  mutable std::unique_ptr<std::atomic<bool>[]> block_packed_;
  mutable std::mutex pack_mutex_;
  mutable std::atomic<std::uint64_t> packs_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
};

}  // namespace omega::ld
