#pragma once
// Bit-packed, site-major SNP matrix: row s is the derived-allele indicator
// vector of SNP s across samples, packed 64 samples per word. This is the
// representation the LD engines operate on; pairwise co-occurrence counts
// reduce to AND+popcount over rows (Alachiotis, Popovici & Low 2016 cast the
// same counts as dense linear algebra — see GemmLd).
//
// Missing data: each site additionally carries a validity mask (bit set =
// called sample). Data bits are stored pre-masked (missing => 0), so for
// complete datasets the mask machinery costs nothing; with missing calls the
// engines switch to pairwise-complete counts (OmegaPlus's policy):
//
//   n    = popcount(mask_i & mask_j)
//   n_i  = popcount(data_i & mask_j)
//   n_j  = popcount(mask_i & data_j)
//   n_ij = popcount(data_i & data_j)

#include <cstdint>
#include <vector>

#include "io/dataset.h"
#include "ld/r2.h"

namespace omega::ld {

class SnpMatrix {
 public:
  SnpMatrix() = default;
  explicit SnpMatrix(const io::Dataset& dataset);

  [[nodiscard]] std::size_t num_sites() const noexcept { return sites_; }
  [[nodiscard]] std::size_t num_samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t words_per_site() const noexcept { return words_; }
  /// True when any site has missing calls (engines pick the pairwise-complete
  /// path).
  [[nodiscard]] bool has_missing() const noexcept { return has_missing_; }

  /// Packed words of one site's (pre-masked) indicator vector.
  [[nodiscard]] const std::uint64_t* row(std::size_t site) const noexcept {
    return data_.data() + site * words_;
  }
  /// Packed validity mask of one site (all-ones when nothing is missing).
  [[nodiscard]] const std::uint64_t* mask(std::size_t site) const noexcept {
    return mask_.data() + site * words_;
  }

  /// Cached derived-allele count of a site (over its valid samples).
  [[nodiscard]] std::int32_t derived_count(std::size_t site) const noexcept {
    return derived_[site];
  }
  /// Cached valid-call count of a site.
  [[nodiscard]] std::int32_t valid_count(std::size_t site) const noexcept {
    return valid_[site];
  }

  /// Co-occurrence count n11 over pairwise-complete samples.
  [[nodiscard]] std::int32_t pair_count(std::size_t a, std::size_t b) const noexcept;

  /// Full pairwise-complete count set for Eq. (1) with missing data.
  [[nodiscard]] PairCounts pair_counts_complete(std::size_t a,
                                                std::size_t b) const noexcept;

  /// Unpacks one site into a 0/1 byte vector (GEMM packing path); missing
  /// samples unpack as 0 (they are pre-masked).
  void unpack_row(std::size_t site, std::uint8_t* out) const noexcept;
  /// Unpacks one site's validity mask into a 0/1 byte vector.
  void unpack_mask(std::size_t site, std::uint8_t* out) const noexcept;

  /// Memory footprint in bytes (packed words + count caches).
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  std::size_t sites_ = 0;
  std::size_t samples_ = 0;
  std::size_t words_ = 0;
  bool has_missing_ = false;
  std::vector<std::uint64_t> data_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::int32_t> derived_;
  std::vector<std::int32_t> valid_;
};

}  // namespace omega::ld
