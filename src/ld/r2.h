#pragma once
// Pearson-correlation LD measure, Eq. (1) of the paper:
//
//   r2_ij = (p_ij - p_i p_j)^2 / ( p_i (1-p_i) p_j (1-p_j) )
//
// computed from integer counts. Monomorphic sites (p == 0 or 1) make the
// denominator vanish; following OmegaPlus, r2 is defined as 0 in that case
// (such sites contribute no linkage information).

#include <cstdint>

#include "io/dataset.h"

namespace omega::ld {

struct PairCounts {
  /// Pairwise-complete sample count (== total samples when no data is
  /// missing at either SNP).
  std::int32_t samples;
  std::int32_t ni;   // derived count at SNP i over those samples
  std::int32_t nj;   // derived count at SNP j over those samples
  std::int32_t nij;  // co-occurrence count
};

/// Eq. (1) in double precision (reference / CPU path).
[[nodiscard]] double r2_from_counts(const PairCounts& counts) noexcept;

/// Eq. (1) in single precision (accelerator paths; the paper's FPGA/GPU
/// datapaths are float).
[[nodiscard]] float r2_from_counts_f(const PairCounts& counts) noexcept;

/// Direct evaluation from an unpacked dataset; O(samples). Test oracle.
[[nodiscard]] double r2_naive(const io::Dataset& dataset, std::size_t i,
                              std::size_t j);

}  // namespace omega::ld
