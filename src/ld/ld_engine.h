#pragma once
// LD engine interface: supplies r2 values for SNP pairs to the omega DP
// layer. Three production engines mirror the LD computation strategies in
// the paper's lineage:
//   * PopcountLd  — bit-parallel AND+popcount per pair (OmegaPlus CPU path),
//   * GemmLd      — BLIS-style blocked GEMM over 0/1 byte panels (the dense-
//                   linear-algebra cast used by the GPU LD kernel),
//   * PackedLd    — bit-packed blocked engine (ld/packed.h): GemmLd's loop
//                   nest with panels kept at 1 bit/genotype, an AVX2 or
//                   scalar popcount microkernel, and a cross-extend panel
//                   cache. The production default (LdBackendKind::Auto).
// All produce identical counts; they differ only in throughput profile.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ld/gemm.h"
#include "ld/r2.h"
#include "ld/snp_matrix.h"

namespace omega::ld {

class LdEngine {
 public:
  virtual ~LdEngine() = default;

  /// Fills out[(i-i0)*ld + (j-j0)] = r2(site i, site j) for the block
  /// [i0,i1) x [j0,j1).
  virtual void r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                        std::size_t j1, float* out, std::size_t ld) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t num_sites() const = 0;

  /// r2 values this engine instance has served over its lifetime (per-backend
  /// fetch counter for the observability layer). Thread-safe: multithreaded
  /// scans share one engine across workers.
  [[nodiscard]] std::uint64_t r2_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Single-pair convenience.
  [[nodiscard]] float r2(std::size_t i, std::size_t j) const {
    float value = 0.0f;
    r2_block(i, i + 1, j, j + 1, &value, 1);
    return value;
  }

 protected:
  /// Implementations call this once per r2_block with the block's pair count.
  void note_served(std::uint64_t pairs) const noexcept {
    served_.fetch_add(pairs, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> served_{0};
};

/// AND+popcount engine over the bit-packed matrix (non-owning view).
class PopcountLd final : public LdEngine {
 public:
  explicit PopcountLd(const SnpMatrix& snps) : snps_(snps) {}
  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override;
  [[nodiscard]] std::string name() const override { return "popcount"; }
  [[nodiscard]] std::size_t num_sites() const override { return snps_.num_sites(); }

 private:
  const SnpMatrix& snps_;
};

/// Blocked-GEMM engine (non-owning view).
class GemmLd final : public LdEngine {
 public:
  explicit GemmLd(const SnpMatrix& snps, GemmBlocking blocking = {})
      : snps_(snps), blocking_(blocking) {}
  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override;
  [[nodiscard]] std::string name() const override { return "gemm"; }
  [[nodiscard]] std::size_t num_sites() const override { return snps_.num_sites(); }

 private:
  const SnpMatrix& snps_;
  GemmBlocking blocking_;
};

/// Index-translation adapter for the streaming scanner: lets an engine built
/// over one chunk of the alignment serve r2 requests addressed in global SNP
/// indices. The chunk's first site has global index `offset`; every request
/// is shifted down by it. The omega/DP layer is untouched — it keeps global
/// indexing whether the scan is in-memory or streamed, which is what makes
/// the two bitwise comparable.
class OffsetLd final : public LdEngine {
 public:
  /// `inner` serves chunk-local indices [0, inner.num_sites()); the adapter
  /// serves global indices [offset, offset + inner.num_sites()).
  OffsetLd(const LdEngine& inner, std::size_t offset)
      : inner_(inner), offset_(offset) {}

  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override {
    // note_served is deliberately not called: the inner engine already
    // counts, and the fetch totals must match the in-memory scan's.
    inner_.r2_block(i0 - offset_, i1 - offset_, j0 - offset_, j1 - offset_,
                    out, ld);
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] std::size_t num_sites() const override {
    return offset_ + inner_.num_sites();
  }

 private:
  const LdEngine& inner_;
  std::size_t offset_;
};

/// Unpacked O(samples)-per-pair oracle straight off the Dataset; tests only.
class NaiveLd final : public LdEngine {
 public:
  explicit NaiveLd(const io::Dataset& dataset) : dataset_(dataset) {}
  void r2_block(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
                float* out, std::size_t ld) const override;
  [[nodiscard]] std::string name() const override { return "naive"; }
  [[nodiscard]] std::size_t num_sites() const override {
    return dataset_.num_sites();
  }

 private:
  const io::Dataset& dataset_;
};

}  // namespace omega::ld
