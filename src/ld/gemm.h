#pragma once
// BLIS-style blocked integer GEMM used to cast LD computation as dense linear
// algebra (Alachiotis, Popovici & Low, IPDPSW'16; Binder et al., IPDPSW'19;
// the GPU LD path of the paper). Computes co-occurrence counts
//
//   C[i][j] = sum_k A[i][k] * B[j][k]          (A, B : 0/1 byte matrices)
//
// i.e. C = A * B^T, with the classic 5-loop BLIS structure: KC x MC panel of
// A and KC x NC panel of B are packed into contiguous buffers, then an
// MR x NR register-blocked microkernel accumulates int32 tiles. Packing reads
// directly from the bit-packed SnpMatrix so the unpacked matrix never exists
// in full.

#include <cstdint>
#include <vector>

#include "ld/snp_matrix.h"

namespace omega::ld {

struct GemmBlocking {
  // Cache blocking: KC x MC A-panel ~ L2, KC x NR B-sliver ~ L1.
  std::size_t mc = 256;
  std::size_t nc = 512;
  std::size_t kc = 1024;
  // Register blocking of the microkernel.
  static constexpr std::size_t mr = 8;
  static constexpr std::size_t nr = 8;
};

/// Which per-site bit vector a GEMM operand reads: the (pre-masked) derived
/// indicator, or the validity mask. Pairwise-complete counting with missing
/// data needs all four Data/Mask combinations.
enum class PackSource { Data, Mask };

/// Computes the co-occurrence count block
///   out[(i - i_begin) * ld_out + (j - j_begin)] =
///       sum_k A_src(i, k) * B_src(j, k)
/// for i in [i_begin, i_end), j in [j_begin, j_end).
void pair_count_block_gemm(const SnpMatrix& snps, std::size_t i_begin,
                           std::size_t i_end, std::size_t j_begin,
                           std::size_t j_end, std::int32_t* out,
                           std::size_t ld_out,
                           const GemmBlocking& blocking = {},
                           PackSource a_source = PackSource::Data,
                           PackSource b_source = PackSource::Data);

/// Reference implementation (AND+popcount per pair) for cross-validation.
void pair_count_block_popcount(const SnpMatrix& snps, std::size_t i_begin,
                               std::size_t i_end, std::size_t j_begin,
                               std::size_t j_end, std::int32_t* out,
                               std::size_t ld_out);

}  // namespace omega::ld
