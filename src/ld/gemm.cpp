#include "ld/gemm.h"

#include <algorithm>
#include <cstring>

#include "util/bits.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omega::ld {
namespace {

/// Pair counts the auxiliary block functions have produced, process-wide —
/// the note_served analogue for count paths that run outside an engine
/// instance (cross-validation, benches), so served-pair accounting stays
/// consistent across every LD code path.
util::telemetry::Counter& pair_counts_counter() {
  static util::telemetry::Counter& counter =
      util::telemetry::counter("ld.pair_counts_served");
  return counter;
}

/// Prefetch lead of the popcount block loop, matching the engines'.
constexpr std::size_t kBlockPrefetchRows = 4;

constexpr std::size_t MR = GemmBlocking::mr;
constexpr std::size_t NR = GemmBlocking::nr;

/// Packs rows [row_begin, row_begin + rows) of the SNP matrix, sample-range
/// [k_begin, k_begin + depth), into MR-wide column-interleaved panels:
/// panel layout is ceil(rows/MR) blocks, each depth x MR, so the microkernel
/// streams it with unit stride. Missing rows in the final block are zero.
void pack_panel(const SnpMatrix& snps, PackSource source,
                std::size_t row_begin, std::size_t rows, std::size_t k_begin,
                std::size_t depth, std::size_t reg_block, std::uint8_t* packed) {
  const std::size_t blocks = (rows + reg_block - 1) / reg_block;
  std::memset(packed, 0, blocks * reg_block * depth);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t block = r / reg_block;
    const std::size_t lane = r % reg_block;
    const std::uint64_t* words = source == PackSource::Data
                                     ? snps.row(row_begin + r)
                                     : snps.mask(row_begin + r);
    std::uint8_t* dst = packed + block * reg_block * depth;
    for (std::size_t k = 0; k < depth; ++k) {
      const std::size_t sample = k_begin + k;
      dst[k * reg_block + lane] =
          static_cast<std::uint8_t>((words[sample / 64] >> (sample % 64)) & 1ull);
    }
  }
}

/// MR x NR microkernel: accumulates depth rank-1 updates into the int32 tile.
/// a: depth x MR interleaved, b: depth x NR interleaved. Operands are 0/1
/// bits, so the rank-1 update ai * bk[j] degenerates to a predicated add:
/// widen bk once per k and add it into the rows whose a-lane is set. The
/// inner j loop is a fixed-trip-count u8->i32 widening add with unit stride —
/// exactly the shape the autovectorizer turns into packed adds — and the
/// multiply leaves the loop entirely.
void microkernel(const std::uint8_t* a, const std::uint8_t* b, std::size_t depth,
                 std::int32_t* c, std::size_t ldc) {
  std::int32_t acc[MR][NR] = {};
  for (std::size_t k = 0; k < depth; ++k) {
    const std::uint8_t* ak = a + k * MR;
    const std::uint8_t* bk = b + k * NR;
    std::int32_t bw[NR];
    for (std::size_t j = 0; j < NR; ++j) bw[j] = bk[j];
    for (std::size_t i = 0; i < MR; ++i) {
      if (ak[i]) {
        for (std::size_t j = 0; j < NR; ++j) acc[i][j] += bw[j];
      }
    }
  }
  for (std::size_t i = 0; i < MR; ++i) {
    for (std::size_t j = 0; j < NR; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

/// Edge-tile variant writing only the valid m x n sub-tile.
void microkernel_edge(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t depth, std::int32_t* c, std::size_t ldc,
                      std::size_t m, std::size_t n) {
  std::int32_t acc[MR][NR] = {};
  for (std::size_t k = 0; k < depth; ++k) {
    const std::uint8_t* ak = a + k * MR;
    const std::uint8_t* bk = b + k * NR;
    std::int32_t bw[NR] = {};
    for (std::size_t j = 0; j < n; ++j) bw[j] = bk[j];
    for (std::size_t i = 0; i < m; ++i) {
      if (ak[i]) {
        for (std::size_t j = 0; j < n; ++j) acc[i][j] += bw[j];
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] += acc[i][j];
    }
  }
}

}  // namespace

void pair_count_block_gemm(const SnpMatrix& snps, std::size_t i_begin,
                           std::size_t i_end, std::size_t j_begin,
                           std::size_t j_end, std::int32_t* out,
                           std::size_t ld_out, const GemmBlocking& blocking,
                           PackSource a_source, PackSource b_source) {
  const util::trace::Span span("ld.gemm.pair_count_block");
  const std::size_t m_total = i_end - i_begin;
  const std::size_t n_total = j_end - j_begin;
  const std::size_t k_total = snps.num_samples();
  if (m_total == 0 || n_total == 0) return;
  pair_counts_counter().add(static_cast<std::uint64_t>(m_total) * n_total);

  for (std::size_t r = 0; r < m_total; ++r) {
    std::memset(out + r * ld_out, 0, n_total * sizeof(std::int32_t));
  }

  // Per-thread packing scratch (engines calling in here are shared across
  // scan workers); assign() preserves capacity, so panel buffers stop being
  // a per-call heap allocation.
  static thread_local std::vector<std::uint8_t> a_panel;
  static thread_local std::vector<std::uint8_t> b_panel;
  a_panel.resize(((blocking.mc + MR - 1) / MR) * MR * blocking.kc);
  b_panel.resize(((blocking.nc + NR - 1) / NR) * NR * blocking.kc);

  // Loop 5 (NC columns) -> loop 4 (KC depth) -> loop 3 (MC rows)
  //   -> loop 2 (NR slivers) -> loop 1 (MR slivers) -> microkernel.
  for (std::size_t jc = 0; jc < n_total; jc += blocking.nc) {
    const std::size_t nc = std::min(blocking.nc, n_total - jc);
    for (std::size_t pc = 0; pc < k_total; pc += blocking.kc) {
      const std::size_t kc = std::min(blocking.kc, k_total - pc);
      pack_panel(snps, b_source, j_begin + jc, nc, pc, kc, NR, b_panel.data());
      for (std::size_t ic = 0; ic < m_total; ic += blocking.mc) {
        const std::size_t mc = std::min(blocking.mc, m_total - ic);
        pack_panel(snps, a_source, i_begin + ic, mc, pc, kc, MR, a_panel.data());
        const std::size_t m_blocks = (mc + MR - 1) / MR;
        const std::size_t n_blocks = (nc + NR - 1) / NR;
        for (std::size_t jb = 0; jb < n_blocks; ++jb) {
          const std::uint8_t* b_sliver = b_panel.data() + jb * NR * kc;
          const std::size_t n_valid = std::min(NR, nc - jb * NR);
          for (std::size_t ib = 0; ib < m_blocks; ++ib) {
            const std::uint8_t* a_sliver = a_panel.data() + ib * MR * kc;
            const std::size_t m_valid = std::min(MR, mc - ib * MR);
            std::int32_t* c_tile =
                out + (ic + ib * MR) * ld_out + (jc + jb * NR);
            if (m_valid == MR && n_valid == NR) {
              microkernel(a_sliver, b_sliver, kc, c_tile, ld_out);
            } else {
              microkernel_edge(a_sliver, b_sliver, kc, c_tile, ld_out, m_valid,
                               n_valid);
            }
          }
        }
      }
    }
  }
}

void pair_count_block_popcount(const SnpMatrix& snps, std::size_t i_begin,
                               std::size_t i_end, std::size_t j_begin,
                               std::size_t j_end, std::int32_t* out,
                               std::size_t ld_out) {
  const util::trace::Span span("ld.popcount.pair_count_block");
  if (i_end > i_begin && j_end > j_begin) {
    pair_counts_counter().add(static_cast<std::uint64_t>(i_end - i_begin) *
                              (j_end - j_begin));
  }
  for (std::size_t i = i_begin; i < i_end; ++i) {
    std::int32_t* row = out + (i - i_begin) * ld_out;
    for (std::size_t j = j_begin; j < j_end; ++j) {
      if (j + kBlockPrefetchRows < j_end) {
        util::prefetch_read(snps.row(j + kBlockPrefetchRows));
      }
      row[j - j_begin] = snps.pair_count(i, j);
    }
  }
}

}  // namespace omega::ld
