#include "ld/snp_matrix.h"

#include "util/bits.h"

namespace omega::ld {

SnpMatrix::SnpMatrix(const io::Dataset& dataset)
    : sites_(dataset.num_sites()),
      samples_(dataset.num_samples()),
      words_(util::words_for_bits(dataset.num_samples())) {
  data_.assign(sites_ * words_, 0);
  mask_.assign(sites_ * words_, 0);
  derived_.assign(sites_, 0);
  valid_.assign(sites_, 0);
  for (std::size_t s = 0; s < sites_; ++s) {
    std::uint64_t* row_words = data_.data() + s * words_;
    std::uint64_t* mask_words = mask_.data() + s * words_;
    const auto& alleles = dataset.site(s);
    std::int32_t derived = 0;
    std::int32_t valid = 0;
    for (std::size_t h = 0; h < samples_; ++h) {
      const std::uint8_t allele = alleles[h];
      if (allele == io::Dataset::kMissing) {
        has_missing_ = true;
        continue;
      }
      mask_words[h / 64] |= (1ull << (h % 64));
      ++valid;
      if (allele != 0) {
        row_words[h / 64] |= (1ull << (h % 64));
        ++derived;
      }
    }
    derived_[s] = derived;
    valid_[s] = valid;
  }
}

std::int32_t SnpMatrix::pair_count(std::size_t a, std::size_t b) const noexcept {
  // Data bits are pre-masked, so data_a & data_b is already restricted to
  // pairwise-complete samples.
  return static_cast<std::int32_t>(util::and_popcount(row(a), row(b), words_));
}

PairCounts SnpMatrix::pair_counts_complete(std::size_t a,
                                           std::size_t b) const noexcept {
  if (!has_missing_) {
    return {static_cast<std::int32_t>(samples_), derived_[a], derived_[b],
            pair_count(a, b)};
  }
  const std::uint64_t* da = row(a);
  const std::uint64_t* db = row(b);
  const std::uint64_t* ma = mask(a);
  const std::uint64_t* mb = mask(b);
  std::int32_t n = 0, ni = 0, nj = 0, nij = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    n += util::popcount64(ma[w] & mb[w]);
    ni += util::popcount64(da[w] & mb[w]);
    nj += util::popcount64(ma[w] & db[w]);
    nij += util::popcount64(da[w] & db[w]);
  }
  return {n, ni, nj, nij};
}

void SnpMatrix::unpack_row(std::size_t site, std::uint8_t* out) const noexcept {
  const std::uint64_t* row_words = row(site);
  for (std::size_t h = 0; h < samples_; ++h) {
    out[h] = static_cast<std::uint8_t>((row_words[h / 64] >> (h % 64)) & 1ull);
  }
}

void SnpMatrix::unpack_mask(std::size_t site, std::uint8_t* out) const noexcept {
  const std::uint64_t* mask_words = mask(site);
  for (std::size_t h = 0; h < samples_; ++h) {
    out[h] = static_cast<std::uint8_t>((mask_words[h / 64] >> (h % 64)) & 1ull);
  }
}

std::size_t SnpMatrix::bytes() const noexcept {
  return (data_.size() + mask_.size()) * sizeof(std::uint64_t) +
         (derived_.size() + valid_.size()) * sizeof(std::int32_t);
}

}  // namespace omega::ld
