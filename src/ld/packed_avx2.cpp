// AVX2 microkernel bodies of the packed LD engine, compiled in their own
// translation unit with per-file -mavx2 (see src/ld/CMakeLists.txt). Nothing
// here is called unless util/cpu_features reports AVX2 at runtime — the same
// per-TU dispatch contract as core/omega_kernel_avx2.cpp. When the compiler
// cannot target AVX2 the TU compiles to nothing and packed.cpp supplies the
// scalar-aliased fallback symbol.
//
// Popcount strategy (Mula/Kurz/Lemire lineage): vpshufb nibble-LUT gives
// per-byte counts, vpsadbw folds them into four u64 lanes; for deep sample
// dimensions (>= 64 words per slice) a Harley-Seal carry-save adder tree
// compresses 16 AND-ed vectors per full popcount, cutting the LUT work 16x.

#include "ld/packed.h"

#if defined(OMEGA_LD_HAVE_AVX2_TU)

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace omega::ld::packed_detail {
namespace {

inline __m256i load_and(const std::uint64_t* a, const std::uint64_t* b) {
  return _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)));
}

/// Per-64-bit-lane popcount of a 256-bit vector: nibble lookup (vpshufb)
/// produces per-byte counts, vpsadbw against zero sums each 8-byte group.
inline __m256i popcount256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(bytes, _mm256_setzero_si256());
}

/// Carry-save adder: (h, l) = a + b + c as a 2-bit redundant sum per lane.
inline void csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// popcount(a & b) over `words` u64 words. Harley-Seal over 64-word blocks
/// when the depth is there; plain LUT-popcount accumulation otherwise.
std::uint64_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  __m256i total = _mm256_setzero_si256();
  std::size_t w = 0;
  if (words >= 64) {
    __m256i ones = _mm256_setzero_si256();
    __m256i twos = _mm256_setzero_si256();
    __m256i fours = _mm256_setzero_si256();
    __m256i eights = _mm256_setzero_si256();
    for (; w + 64 <= words; w += 64) {
      __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
      csa(twos_a, ones, ones, load_and(a + w, b + w),
          load_and(a + w + 4, b + w + 4));
      csa(twos_b, ones, ones, load_and(a + w + 8, b + w + 8),
          load_and(a + w + 12, b + w + 12));
      csa(fours_a, twos, twos, twos_a, twos_b);
      csa(twos_a, ones, ones, load_and(a + w + 16, b + w + 16),
          load_and(a + w + 20, b + w + 20));
      csa(twos_b, ones, ones, load_and(a + w + 24, b + w + 24),
          load_and(a + w + 28, b + w + 28));
      csa(fours_b, twos, twos, twos_a, twos_b);
      csa(eights_a, fours, fours, fours_a, fours_b);
      csa(twos_a, ones, ones, load_and(a + w + 32, b + w + 32),
          load_and(a + w + 36, b + w + 36));
      csa(twos_b, ones, ones, load_and(a + w + 40, b + w + 40),
          load_and(a + w + 44, b + w + 44));
      csa(fours_a, twos, twos, twos_a, twos_b);
      csa(twos_a, ones, ones, load_and(a + w + 48, b + w + 48),
          load_and(a + w + 52, b + w + 52));
      csa(twos_b, ones, ones, load_and(a + w + 56, b + w + 56),
          load_and(a + w + 60, b + w + 60));
      csa(fours_b, twos, twos, twos_a, twos_b);
      csa(eights_b, fours, fours, fours_a, fours_b);
      csa(sixteens, eights, eights, eights_a, eights_b);
      total = _mm256_add_epi64(total, popcount256(sixteens));
    }
    total = _mm256_slli_epi64(total, 4);
    total =
        _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(eights), 3));
    total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(fours), 2));
    total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(twos), 1));
    total = _mm256_add_epi64(total, popcount256(ones));
  }
  for (; w + 4 <= words; w += 4) {
    total = _mm256_add_epi64(total, popcount256(load_and(a + w, b + w)));
  }
  std::uint64_t sum = hsum_epi64(total);
  for (; w < words; ++w) {
    sum += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
  }
  return sum;
}

void tile_counts_avx2(const std::uint64_t* a_panel,
                      const std::uint64_t* b_panel, std::size_t stride_words,
                      std::size_t words, std::size_t m, std::size_t n,
                      std::uint32_t* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t* a = a_panel + i * stride_words;
    for (std::size_t j = 0; j < n; ++j) {
      c[i * ldc + j] += static_cast<std::uint32_t>(
          and_popcount_avx2(a, b_panel + j * stride_words, words));
    }
  }
}

void tile_fused_avx2(const std::uint64_t* a_panel,
                     const std::uint64_t* b_panel, std::size_t stride_words,
                     std::size_t mask_offset, std::size_t words, std::size_t m,
                     std::size_t n, std::uint32_t* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t* ad = a_panel + i * stride_words;
    const std::uint64_t* am = ad + mask_offset;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t* bd = b_panel + j * stride_words;
      const std::uint64_t* bm = bd + mask_offset;
      // One pass, four independent accumulator chains (data.data, data.mask,
      // mask.data, mask.mask) — the ILP here is what makes the fused path
      // beat four separate sweeps even before the memory-traffic win.
      __m256i t11 = _mm256_setzero_si256();
      __m256i tni = _mm256_setzero_si256();
      __m256i tnj = _mm256_setzero_si256();
      __m256i tnn = _mm256_setzero_si256();
      std::size_t w = 0;
      for (; w + 4 <= words; w += 4) {
        const __m256i da =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ad + w));
        const __m256i ma =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(am + w));
        const __m256i db =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bd + w));
        const __m256i mb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bm + w));
        t11 = _mm256_add_epi64(t11, popcount256(_mm256_and_si256(da, db)));
        tni = _mm256_add_epi64(tni, popcount256(_mm256_and_si256(da, mb)));
        tnj = _mm256_add_epi64(tnj, popcount256(_mm256_and_si256(ma, db)));
        tnn = _mm256_add_epi64(tnn, popcount256(_mm256_and_si256(ma, mb)));
      }
      std::uint64_t n11 = hsum_epi64(t11);
      std::uint64_t ni = hsum_epi64(tni);
      std::uint64_t nj = hsum_epi64(tnj);
      std::uint64_t nn = hsum_epi64(tnn);
      for (; w < words; ++w) {
        n11 += static_cast<std::uint64_t>(std::popcount(ad[w] & bd[w]));
        ni += static_cast<std::uint64_t>(std::popcount(ad[w] & bm[w]));
        nj += static_cast<std::uint64_t>(std::popcount(am[w] & bd[w]));
        nn += static_cast<std::uint64_t>(std::popcount(am[w] & bm[w]));
      }
      std::uint32_t* cell = c + (i * ldc + j) * 4;
      cell[0] += static_cast<std::uint32_t>(n11);
      cell[1] += static_cast<std::uint32_t>(ni);
      cell[2] += static_cast<std::uint32_t>(nj);
      cell[3] += static_cast<std::uint32_t>(nn);
    }
  }
}

}  // namespace

const PackedKernels& avx2_kernels() noexcept {
  static const PackedKernels kernels{tile_counts_avx2, tile_fused_avx2,
                                     "avx2"};
  return kernels;
}

}  // namespace omega::ld::packed_detail

#endif  // OMEGA_LD_HAVE_AVX2_TU
