#include "ld/packed.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/cpu_features.h"
#include "util/perf_counters.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::ld {
namespace packed_detail {
namespace {

// Rows are padded to a multiple of this many u64 words (one cache line, two
// AVX2 vectors) so the vector bodies never need a scalar tail: the pad words
// are zero in both data and mask and contribute nothing to any count stream.
constexpr std::size_t kRowPadWords = 8;

void tile_counts_scalar(const std::uint64_t* a_panel,
                        const std::uint64_t* b_panel, std::size_t stride_words,
                        std::size_t words, std::size_t m, std::size_t n,
                        std::uint32_t* c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t* a = a_panel + i * stride_words;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t* b = b_panel + j * stride_words;
      std::uint64_t sum = 0;
      for (std::size_t w = 0; w < words; ++w) {
        sum += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
      }
      c[i * ldc + j] += static_cast<std::uint32_t>(sum);
    }
  }
}

void tile_fused_scalar(const std::uint64_t* a_panel,
                       const std::uint64_t* b_panel, std::size_t stride_words,
                       std::size_t mask_offset, std::size_t words,
                       std::size_t m, std::size_t n, std::uint32_t* c,
                       std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t* ad = a_panel + i * stride_words;
    const std::uint64_t* am = ad + mask_offset;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t* bd = b_panel + j * stride_words;
      const std::uint64_t* bm = bd + mask_offset;
      std::uint64_t n11 = 0, ni = 0, nj = 0, nn = 0;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t da = ad[w];
        const std::uint64_t ma = am[w];
        const std::uint64_t db = bd[w];
        const std::uint64_t mb = bm[w];
        n11 += static_cast<std::uint64_t>(std::popcount(da & db));
        ni += static_cast<std::uint64_t>(std::popcount(da & mb));
        nj += static_cast<std::uint64_t>(std::popcount(ma & db));
        nn += static_cast<std::uint64_t>(std::popcount(ma & mb));
      }
      std::uint32_t* cell = c + (i * ldc + j) * 4;
      cell[0] += static_cast<std::uint32_t>(n11);
      cell[1] += static_cast<std::uint32_t>(ni);
      cell[2] += static_cast<std::uint32_t>(nj);
      cell[3] += static_cast<std::uint32_t>(nn);
    }
  }
}

}  // namespace

const PackedKernels& scalar_kernels() noexcept {
  static const PackedKernels kernels{tile_counts_scalar, tile_fused_scalar,
                                     "scalar"};
  return kernels;
}

#if !defined(OMEGA_LD_HAVE_AVX2_TU)
// The compiler could not target AVX2, so the vector TU compiled to nothing;
// resolve_kernels never hands these out (packed_avx2_available() is false),
// but the symbol must exist for the link.
const PackedKernels& avx2_kernels() noexcept { return scalar_kernels(); }
#endif

const PackedKernels& resolve_kernels(PackedIsa isa) {
  switch (isa) {
    case PackedIsa::Scalar:
      return scalar_kernels();
    case PackedIsa::Avx2:
      if (!packed_avx2_available()) {
        throw std::runtime_error(
            "packed LD engine: AVX2 requested but this binary/host cannot "
            "run it");
      }
      return avx2_kernels();
    case PackedIsa::Auto:
      return packed_avx2_available() ? avx2_kernels() : scalar_kernels();
  }
  throw std::logic_error("unknown PackedIsa");
}

}  // namespace packed_detail

bool packed_avx2_available() noexcept {
#if defined(OMEGA_LD_HAVE_AVX2_TU)
  return util::cpu_features().avx2;
#else
  return false;
#endif
}

const char* packed_isa_name(PackedIsa isa) {
  return packed_detail::resolve_kernels(isa).isa;
}

PackedLd::PackedLd(const SnpMatrix& snps, PackedBlocking blocking,
                   PackedIsa isa)
    : snps_(snps),
      blocking_(blocking),
      kernels_(packed_detail::resolve_kernels(isa)),
      fused_(snps.has_missing()) {
  blocking_.mc = std::max<std::size_t>(blocking_.mc, PackedBlocking::mr);
  blocking_.nc = std::max<std::size_t>(blocking_.nc, PackedBlocking::nr);
  blocking_.kc_words = std::max<std::size_t>(blocking_.kc_words, 1);
  blocking_.sites_per_panel = std::max<std::size_t>(blocking_.sites_per_panel, 1);

  const std::size_t words = snps_.words_per_site();
  padded_words_ = (words + packed_detail::kRowPadWords - 1) /
                  packed_detail::kRowPadWords * packed_detail::kRowPadWords;
  if (padded_words_ == 0) padded_words_ = packed_detail::kRowPadWords;
  stride_words_ = padded_words_ * (fused_ ? 2 : 1);
  const std::size_t sites = snps_.num_sites();
  num_blocks_ =
      (sites + blocking_.sites_per_panel - 1) / blocking_.sites_per_panel;
  if (sites > 0) {
    arena_ = std::make_unique<std::uint64_t[]>(sites * stride_words_);
    block_packed_ = std::make_unique<std::atomic<bool>[]>(num_blocks_);
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      block_packed_[b].store(false, std::memory_order_relaxed);
    }
  }
}

std::size_t PackedLd::ensure_packed(std::size_t begin, std::size_t end) const {
  static util::telemetry::Counter& hit_counter =
      util::telemetry::counter("ld.panel_cache.hits");
  static util::telemetry::Counter& miss_counter =
      util::telemetry::counter("ld.panel_cache.misses");
  if (begin >= end) return 0;
  const std::size_t first = begin / blocking_.sites_per_panel;
  const std::size_t last = (end - 1) / blocking_.sites_per_panel;

  // Fast path: every requested block already packed (the cross-extend case:
  // after the first extend against a chunk, subsequent calls are all hits).
  bool all_packed = true;
  for (std::size_t b = first; b <= last; ++b) {
    if (!block_packed_[b].load(std::memory_order_acquire)) {
      all_packed = false;
      break;
    }
  }
  if (all_packed) {
    const std::uint64_t blocks = last - first + 1;
    hits_.fetch_add(blocks, std::memory_order_relaxed);
    hit_counter.add(blocks);
    return 0;
  }

  std::size_t packed_now = 0;
  std::uint64_t hits_now = 0;
  const std::size_t words = snps_.words_per_site();
  const std::lock_guard<std::mutex> lock(pack_mutex_);
  for (std::size_t b = first; b <= last; ++b) {
    if (block_packed_[b].load(std::memory_order_relaxed)) {
      ++hits_now;
      continue;
    }
    const std::size_t s0 = b * blocking_.sites_per_panel;
    const std::size_t s1 =
        std::min(s0 + blocking_.sites_per_panel, snps_.num_sites());
    for (std::size_t s = s0; s < s1; ++s) {
      std::uint64_t* row = arena_.get() + s * stride_words_;
      std::memcpy(row, snps_.row(s), words * sizeof(std::uint64_t));
      std::memset(row + words, 0,
                  (padded_words_ - words) * sizeof(std::uint64_t));
      if (fused_) {
        std::uint64_t* mask = row + padded_words_;
        std::memcpy(mask, snps_.mask(s), words * sizeof(std::uint64_t));
        std::memset(mask + words, 0,
                    (padded_words_ - words) * sizeof(std::uint64_t));
      }
    }
    block_packed_[b].store(true, std::memory_order_release);
    ++packed_now;
  }
  packs_.fetch_add(packed_now, std::memory_order_relaxed);
  miss_counter.add(packed_now);
  if (hits_now > 0) {
    hits_.fetch_add(hits_now, std::memory_order_relaxed);
    hit_counter.add(hits_now);
  }
  return packed_now;
}

void PackedLd::r2_block(std::size_t i0, std::size_t i1, std::size_t j0,
                        std::size_t j1, float* out, std::size_t ld) const {
  static util::telemetry::Histogram& pack_hist =
      util::telemetry::histogram("ld.pack_seconds");
  static util::telemetry::Histogram& kernel_hist =
      util::telemetry::histogram("ld.kernel_seconds");
  // Hardware-counter scopes cover exactly the histograms' timed regions so
  // perf.ld.pack/ld.kernel scope counts reconcile with the histogram counts.
  static util::perf::StageCounters& pack_perf = util::perf::stage("ld.pack");
  static util::perf::StageCounters& kernel_perf =
      util::perf::stage("ld.kernel");
  const util::trace::Span span("ld.packed.r2_block");
  note_served(static_cast<std::uint64_t>(i1 - i0) * (j1 - j0));
  const std::size_t m = i1 - i0;
  const std::size_t n = j1 - j0;
  if (m == 0 || n == 0) return;

  {
    const util::perf::StageScope perf_scope(pack_perf);
    const util::Timer pack_timer;
    ensure_packed(i0, i1);
    ensure_packed(j0, j1);
    pack_hist.record(pack_timer.seconds());
  }

  const util::perf::StageScope kernel_perf_scope(kernel_perf);
  const util::Timer kernel_timer;
  constexpr std::size_t MR = PackedBlocking::mr;
  constexpr std::size_t NR = PackedBlocking::nr;
  const std::size_t lanes = fused_ ? 4 : 1;

  // Per-thread count scratch: engines are shared across scan workers, so the
  // accumulator cannot live in the (const) engine itself.
  static thread_local std::vector<std::uint32_t> counts;
  counts.assign(m * n * lanes, 0);

  // BLIS-shaped pc (depth words) -> jc (B sites) -> ic (A sites) loop nest
  // over the packed arena, NR/MR slivers feeding the microkernel. Depth
  // blocking splits each pair's popcount into kc_words partial sums; integer
  // addition commutes, so the counts (and hence r2) are independent of the
  // blocking parameters.
  for (std::size_t pc = 0; pc < padded_words_; pc += blocking_.kc_words) {
    const std::size_t kw = std::min(blocking_.kc_words, padded_words_ - pc);
    for (std::size_t jc = 0; jc < n; jc += blocking_.nc) {
      const std::size_t ncb = std::min(blocking_.nc, n - jc);
      for (std::size_t ic = 0; ic < m; ic += blocking_.mc) {
        const std::size_t mcb = std::min(blocking_.mc, m - ic);
        for (std::size_t jb = 0; jb < ncb; jb += NR) {
          const std::size_t nrb = std::min(NR, ncb - jb);
          const std::uint64_t* b_panel = arena_row(j0 + jc + jb) + pc;
          for (std::size_t ib = 0; ib < mcb; ib += MR) {
            const std::size_t mrb = std::min(MR, mcb - ib);
            const std::uint64_t* a_panel = arena_row(i0 + ic + ib) + pc;
            std::uint32_t* c_tile =
                counts.data() + ((ic + ib) * n + (jc + jb)) * lanes;
            if (fused_) {
              kernels_.tile_fused(a_panel, b_panel, stride_words_,
                                  padded_words_, kw, mrb, nrb, c_tile, n);
            } else {
              kernels_.tile(a_panel, b_panel, stride_words_, kw, mrb, nrb,
                            c_tile, n);
            }
          }
        }
      }
    }
  }

  // Counts -> r2 through the same r2_from_counts_f every engine uses, so the
  // floats are bitwise identical to PopcountLd/GemmLd/NaiveLd.
  if (fused_) {
    for (std::size_t i = 0; i < m; ++i) {
      float* row = out + i * ld;
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t* cell = counts.data() + (i * n + j) * 4;
        const PairCounts pair{static_cast<std::int32_t>(cell[3]),
                              static_cast<std::int32_t>(cell[1]),
                              static_cast<std::int32_t>(cell[2]),
                              static_cast<std::int32_t>(cell[0])};
        row[j] = r2_from_counts_f(pair);
      }
    }
  } else {
    const auto n_samples = static_cast<std::int32_t>(snps_.num_samples());
    for (std::size_t i = 0; i < m; ++i) {
      float* row = out + i * ld;
      const std::int32_t ni = snps_.derived_count(i0 + i);
      for (std::size_t j = 0; j < n; ++j) {
        const PairCounts pair{n_samples, ni, snps_.derived_count(j0 + j),
                              static_cast<std::int32_t>(counts[i * n + j])};
        row[j] = r2_from_counts_f(pair);
      }
    }
  }
  kernel_hist.record(kernel_timer.seconds());
}

}  // namespace omega::ld
