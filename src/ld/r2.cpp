#include "ld/r2.h"

namespace omega::ld {

double r2_from_counts(const PairCounts& counts) noexcept {
  if (counts.samples < 2) return 0.0;  // no pairwise-complete information
  const double n = counts.samples;
  const double pi = counts.ni / n;
  const double pj = counts.nj / n;
  const double pij = counts.nij / n;
  const double denom = pi * (1.0 - pi) * pj * (1.0 - pj);
  if (denom <= 0.0) return 0.0;
  const double d = pij - pi * pj;
  return d * d / denom;
}

float r2_from_counts_f(const PairCounts& counts) noexcept {
  if (counts.samples < 2) return 0.0f;  // no pairwise-complete information
  const float n = static_cast<float>(counts.samples);
  const float pi = static_cast<float>(counts.ni) / n;
  const float pj = static_cast<float>(counts.nj) / n;
  const float pij = static_cast<float>(counts.nij) / n;
  const float denom = pi * (1.0f - pi) * pj * (1.0f - pj);
  if (denom <= 0.0f) return 0.0f;
  const float d = pij - pi * pj;
  return d * d / denom;
}

double r2_naive(const io::Dataset& dataset, std::size_t i, std::size_t j) {
  const auto& a = dataset.site(i);
  const auto& b = dataset.site(j);
  // Pairwise-complete: only samples called at both sites contribute.
  PairCounts counts{0, 0, 0, 0};
  for (std::size_t h = 0; h < a.size(); ++h) {
    if (a[h] == io::Dataset::kMissing || b[h] == io::Dataset::kMissing) {
      continue;
    }
    ++counts.samples;
    counts.ni += a[h];
    counts.nj += b[h];
    counts.nij += static_cast<std::int32_t>(a[h] & b[h]);
  }
  return r2_from_counts(counts);
}

}  // namespace omega::ld
