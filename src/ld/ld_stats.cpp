#include "ld/ld_stats.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace omega::ld {
namespace {

/// Should the unordered pair (a, b) be evaluated in this traversal?
/// Region overlap rule: evaluate once, never the self-pair.
bool admissible(std::size_t a, std::size_t b, std::size_t b_begin,
                std::size_t b_end) {
  if (a == b) return false;
  // If the mirrored pair (b as an 'a' index, a as a 'b' index) is also part
  // of the traversal, keep only the a < b orientation.
  const bool mirrored = b >= b_begin && b < b_end && a >= b_begin && a < b_end;
  return !mirrored || a < b;
}

/// Accumulator merged across tiles.
struct Accumulator {
  std::uint64_t pairs = 0;
  std::uint64_t skipped = 0;
  std::uint64_t high = 0;
  double sum_r2 = 0.0;
  double max_r2 = 0.0;
  std::vector<LdPair> top;  // unsorted pool, pruned to capacity

  void add(const Accumulator& other, std::size_t capacity) {
    pairs += other.pairs;
    skipped += other.skipped;
    high += other.high;
    sum_r2 += other.sum_r2;
    max_r2 = std::max(max_r2, other.max_r2);
    top.insert(top.end(), other.top.begin(), other.top.end());
    prune(capacity);
  }

  void prune(std::size_t capacity) {
    if (top.size() <= capacity) return;
    std::partial_sort(top.begin(), top.begin() + static_cast<std::ptrdiff_t>(capacity),
                      top.end(), [](const LdPair& x, const LdPair& y) {
                        return x.stats.r2 > y.stats.r2;
                      });
    top.resize(capacity);
  }
};

double site_maf(const SnpMatrix& snps, std::size_t site) {
  const double valid = snps.valid_count(site);
  if (valid <= 0.0) return 0.0;
  const double derived = snps.derived_count(site);
  return std::min(derived, valid - derived) / valid;
}

void scan_tile(const SnpMatrix& snps, std::size_t a0, std::size_t a1,
               std::size_t b0, std::size_t b1, std::size_t region_b_begin,
               std::size_t region_b_end, const LdScanOptions& options,
               Accumulator& acc) {
  for (std::size_t a = a0; a < a1; ++a) {
    if (site_maf(snps, a) < options.min_maf) {
      for (std::size_t b = b0; b < b1; ++b) {
        if (admissible(a, b, region_b_begin, region_b_end)) ++acc.skipped;
      }
      continue;
    }
    for (std::size_t b = b0; b < b1; ++b) {
      if (!admissible(a, b, region_b_begin, region_b_end)) continue;
      if (site_maf(snps, b) < options.min_maf) {
        ++acc.skipped;
        continue;
      }
      const auto stats = ld_statistics(snps.pair_counts_complete(a, b));
      ++acc.pairs;
      acc.sum_r2 += stats.r2;
      acc.max_r2 = std::max(acc.max_r2, stats.r2);
      if (stats.r2 >= options.high_ld_threshold) {
        ++acc.high;
        acc.top.push_back({a, b, stats});
        if (acc.top.size() > 4 * options.top_pairs + 16) {
          acc.prune(options.top_pairs);
        }
      }
    }
  }
}

LdScanResult finish(Accumulator acc, const LdScanOptions& options) {
  acc.prune(options.top_pairs);
  std::sort(acc.top.begin(), acc.top.end(),
            [](const LdPair& x, const LdPair& y) {
              if (x.stats.r2 != y.stats.r2) return x.stats.r2 > y.stats.r2;
              if (x.site_a != y.site_a) return x.site_a < y.site_a;
              return x.site_b < y.site_b;
            });
  LdScanResult result;
  result.pairs_evaluated = acc.pairs;
  result.pairs_skipped_maf = acc.skipped;
  result.high_ld_pairs = acc.high;
  result.mean_r2 = acc.pairs > 0 ? acc.sum_r2 / static_cast<double>(acc.pairs) : 0.0;
  result.max_r2 = acc.max_r2;
  result.top = std::move(acc.top);
  return result;
}

}  // namespace

LdStatistics ld_statistics(const PairCounts& counts) noexcept {
  LdStatistics stats;
  if (counts.samples < 2) return stats;
  const double n = counts.samples;
  const double pi = counts.ni / n;
  const double pj = counts.nj / n;
  const double pij = counts.nij / n;
  const double d = pij - pi * pj;
  stats.d = d;
  const double denominator = pi * (1.0 - pi) * pj * (1.0 - pj);
  if (denominator > 0.0) {
    stats.r2 = d * d / denominator;
    const double d_max = d >= 0.0
                             ? std::min(pi * (1.0 - pj), pj * (1.0 - pi))
                             : std::min(pi * pj, (1.0 - pi) * (1.0 - pj));
    stats.d_prime = d_max > 0.0 ? d / d_max : 0.0;
  }
  return stats;
}

LdScanResult ld_region_scan(const SnpMatrix& snps, std::size_t a_begin,
                            std::size_t a_end, std::size_t b_begin,
                            std::size_t b_end, const LdScanOptions& options) {
  Accumulator acc;
  const std::size_t tile = std::max<std::size_t>(1, options.tile);
  for (std::size_t a0 = a_begin; a0 < a_end; a0 += tile) {
    const std::size_t a1 = std::min(a_end, a0 + tile);
    for (std::size_t b0 = b_begin; b0 < b_end; b0 += tile) {
      const std::size_t b1 = std::min(b_end, b0 + tile);
      scan_tile(snps, a0, a1, b0, b1, b_begin, b_end, options, acc);
    }
  }
  return finish(std::move(acc), options);
}

LdScanResult ld_region_scan_parallel(par::ThreadPool& pool,
                                     const SnpMatrix& snps, std::size_t a_begin,
                                     std::size_t a_end, std::size_t b_begin,
                                     std::size_t b_end,
                                     const LdScanOptions& options) {
  const std::size_t tile = std::max<std::size_t>(1, options.tile);
  const std::size_t a_tiles = (a_end - a_begin + tile - 1) / tile;
  if (a_end <= a_begin) return finish(Accumulator{}, options);

  std::vector<Accumulator> partials(a_tiles);
  par::parallel_for(pool, 0, a_tiles, 1, [&](std::size_t index) {
    const std::size_t a0 = a_begin + index * tile;
    const std::size_t a1 = std::min(a_end, a0 + tile);
    for (std::size_t b0 = b_begin; b0 < b_end; b0 += tile) {
      const std::size_t b1 = std::min(b_end, b0 + tile);
      scan_tile(snps, a0, a1, b0, b1, b_begin, b_end, options, partials[index]);
    }
  });
  Accumulator merged;
  for (auto& partial : partials) merged.add(partial, options.top_pairs);
  return finish(std::move(merged), options);
}

}  // namespace omega::ld
