#include "core/hetero_scheduler.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/resilience.h"
#include "core/workload.h"
#include "util/cancel.h"
#include "util/perf_counters.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::core {

// ---------------------------------------------------------------------------
// HeteroSplit
// ---------------------------------------------------------------------------

HeteroSplit HeteroSplit::parse(std::string_view text) {
  HeteroSplit split;
  if (text == "auto" || text.empty()) return split;
  split.auto_split = false;

  double values[3] = {0.0, 0.0, 0.0};
  std::size_t field = 0;
  std::size_t start = 0;
  const std::string owned(text);
  for (std::size_t i = 0; i <= owned.size(); ++i) {
    if (i < owned.size() && owned[i] != ':') continue;
    if (field >= 3) {
      throw std::invalid_argument("hetero split: expected cpu:gpu:fpga, got '" +
                                  owned + "'");
    }
    const std::string token = owned.substr(start, i - start);
    try {
      std::size_t consumed = 0;
      values[field] = std::stod(token, &consumed);
      if (consumed != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      throw std::invalid_argument("hetero split: bad weight '" + token +
                                  "' in '" + owned + "'");
    }
    if (values[field] < 0.0) {
      throw std::invalid_argument("hetero split: negative weight in '" +
                                  owned + "'");
    }
    ++field;
    start = i + 1;
  }
  if (field != 3) {
    throw std::invalid_argument("hetero split: expected cpu:gpu:fpga, got '" +
                                owned + "'");
  }
  split.cpu = values[0];
  split.gpu = values[1];
  split.fpga = values[2];
  if (split.cpu + split.gpu + split.fpga <= 0.0) {
    throw std::invalid_argument("hetero split: all weights are zero in '" +
                                owned + "'");
  }
  return split;
}

std::string HeteroSplit::name() const {
  if (auto_split) return "auto";
  auto fmt = [](double value) {
    std::string text = std::to_string(value);
    // Trim trailing zeros (and a bare '.') so "2.000000" reads as "2".
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
    return text;
  };
  return fmt(cpu) + ":" + fmt(gpu) + ":" + fmt(fpga);
}

void HeteroConfig::validate() const {
  if (!cpu_modeled_seconds) {
    throw std::invalid_argument("hetero: cpu_modeled_seconds model missing");
  }
  for (const HeteroPartitionSpec& spec : accelerators) {
    if (spec.name.empty()) {
      throw std::invalid_argument("hetero: accelerator partition needs a name");
    }
    if (!spec.modeled_seconds) {
      throw std::invalid_argument("hetero: partition '" + spec.name +
                                  "' has no cost model");
    }
    if (!spec.backend_factory) {
      throw std::invalid_argument("hetero: partition '" + spec.name +
                                  "' has no backend factory");
    }
  }
  if (straggler_multiplier <= 0.0 || straggler_min_seconds < 0.0) {
    throw std::invalid_argument("hetero: nonsensical straggler policy");
  }
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

HeteroPlan plan_hetero_split(const std::vector<GridPosition>& grid,
                             std::size_t begin, std::size_t end,
                             const HeteroConfig& config) {
  end = std::min(end, grid.size());
  begin = std::min(begin, end);
  const std::size_t parts = 1 + config.accelerators.size();

  HeteroPlan plan;
  plan.segments.resize(parts);
  plan.segments[0].backend = "cpu";
  for (std::size_t p = 0; p + 1 < parts; ++p) {
    plan.segments[p + 1].backend = config.accelerators[p].name;
  }
  for (HeteroSegmentPlan& segment : plan.segments) {
    segment.begin = begin;
    segment.end = begin;
  }
  if (begin >= end) return plan;

  std::uint64_t total_cost = 0;
  std::uint64_t total_valid = 0;
  for (std::size_t g = begin; g < end; ++g) {
    total_cost += estimate_position_cost(grid[g]);
    if (grid[g].valid) ++total_valid;
  }
  // Degenerate-grid guard: all-invalid or all-zero-cost ranges cannot be
  // split proportionally to cost, so budget one unit per valid position.
  plan.equal_fallback = total_cost == 0;
  const auto budget_total = static_cast<double>(
      plan.equal_fallback ? total_valid : total_cost);

  // Partition weights. Auto: the per-partition modeled time for this exact
  // range — throughput is work/time and the work numerator is common, so
  // weight ∝ 1 / modeled seconds. Fixed: the user's cpu:gpu:fpga triple,
  // mapped to [cpu, accelerators[0], accelerators[1]].
  std::vector<double> weights(parts, 0.0);
  if (config.split.auto_split) {
    std::vector<double> modeled(parts, 0.0);
    for (std::size_t g = begin; g < end; ++g) {
      if (!grid[g].valid) continue;
      modeled[0] += config.cpu_modeled_seconds(grid[g]);
      for (std::size_t p = 0; p + 1 < parts; ++p) {
        modeled[p + 1] += config.accelerators[p].modeled_seconds(grid[g]);
      }
    }
    for (std::size_t p = 0; p < parts; ++p) {
      weights[p] = modeled[p] > 0.0 ? 1.0 / modeled[p] : 0.0;
    }
  } else {
    weights[0] = config.split.cpu;
    if (parts > 1) weights[1] = config.split.gpu;
    if (parts > 2) weights[2] = config.split.fpga;
  }
  double weight_sum = 0.0;
  for (const double w : weights) weight_sum += w;
  if (weight_sum <= 0.0) {
    // No model produced a finite time (degenerate grid): split equally.
    std::fill(weights.begin(), weights.end(), 1.0);
    weight_sum = static_cast<double>(parts);
  }
  for (double& w : weights) w /= weight_sum;

  // Contiguous segments in partition order, cut where the cumulative budget
  // crosses each partition's prefix share. Zero-weight partitions close
  // immediately as empty segments.
  std::size_t seg = 0;
  double prefix = weights[0];
  double cum = 0.0;
  plan.segments[0].begin = begin;
  for (std::size_t g = begin; g < end; ++g) {
    while (seg + 1 < parts && cum >= prefix * budget_total) {
      plan.segments[seg].end = g;
      ++seg;
      prefix += weights[seg];
      plan.segments[seg].begin = g;
    }
    cum += static_cast<double>(
        plan.equal_fallback ? (grid[g].valid ? 1 : 0)
                            : estimate_position_cost(grid[g]));
  }
  plan.segments[seg].end = end;
  for (std::size_t p = seg + 1; p < parts; ++p) {
    plan.segments[p].begin = end;
    plan.segments[p].end = end;
  }

  for (std::size_t p = 0; p < parts; ++p) {
    HeteroSegmentPlan& segment = plan.segments[p];
    segment.weight = weights[p];
    const HeteroCostModel& model =
        p == 0 ? config.cpu_modeled_seconds
               : config.accelerators[p - 1].modeled_seconds;
    for (std::size_t g = segment.begin; g < segment.end; ++g) {
      if (!grid[g].valid) continue;
      ++segment.planned_positions;
      segment.modeled_seconds += model(grid[g]);
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// HeteroExecutor
// ---------------------------------------------------------------------------

namespace {

std::optional<detail::ScanSpan> pop_span(std::mutex& mutex,
                                         std::vector<detail::ScanSpan>& spans) {
  const std::lock_guard<std::mutex> lock(mutex);
  if (spans.empty()) return std::nullopt;
  detail::ScanSpan span = spans.back();
  spans.pop_back();
  return span;
}

}  // namespace

HeteroExecutor::HeteroExecutor(const HeteroConfig& config,
                               const RecoveryPolicy& recovery,
                               CpuKernelKind kernel, bool reuse,
                               std::size_t threads)
    : config_(config), recovery_(recovery), reuse_(reuse) {
  config_.validate();
  const std::size_t n_accel = config_.accelerators.size();
  // Each accelerator partition consumes one worker slot; the CPU partition
  // gets whatever the thread budget leaves, but always at least one worker —
  // it is the re-dispatch target of last resort.
  cpu_workers_ = threads > n_accel ? threads - n_accel : 1;
  const std::size_t total = cpu_workers_ + n_accel;
  backends_.reserve(total);
  for (std::size_t w = 0; w < cpu_workers_; ++w) {
    backends_.push_back(std::make_unique<CpuOmegaBackend>(kernel));
  }
  for (const HeteroPartitionSpec& spec : config_.accelerators) {
    auto backend = spec.backend_factory();
    if (recovery_.fallback_to_cpu) {
      backend = std::make_unique<FallbackBackend>(std::move(backend), kernel);
    }
    backends_.push_back(std::move(backend));
  }
  states_.resize(total);
  profiles_.resize(total);
  rates_.resize(1 + n_accel);
  stats_.enabled = true;
  stats_.split = config_.split.name();
  stats_.partitions.resize(1 + n_accel);
  stats_.partitions[0].backend = "cpu";
  for (std::size_t p = 0; p < n_accel; ++p) {
    stats_.partitions[p + 1].backend = config_.accelerators[p].name;
  }
}

void HeteroExecutor::invalidate_matrices() noexcept {
  for (detail::SpanWorkerState& state : states_) state.live = false;
}

void HeteroExecutor::run_cpu_worker(
    std::size_t worker, const std::vector<GridPosition>& grid,
    const std::vector<detail::ScanSpan>& spans, par::StealScheduler& scheduler,
    const ld::LdEngine& engine, std::vector<PositionScore>& scores,
    SchedWorkerStats& wstats, RedispatchQueue& redispatch,
    util::ProgressReporter* progress, const detail::CancelState* cancel) {
  OmegaBackend& backend = *backends_[worker];
  detail::SpanWorkerState& state = states_[worker];
  ScanProfile& profile = profiles_[worker];
  auto scan_span = [&](const detail::ScanSpan& span) {
    for (std::size_t g = span.begin; g < span.end; ++g) {
      if (cancel != nullptr && cancel->should_stop()) return;
      const GridPosition& position = grid[g];
      PositionScore& score = scores[g];
      score.position_bp = position.position_bp;
      if (!position.valid || score.valid || score.quarantined) continue;
      detail::advance_matrix(state.matrix, state.live, reuse_, position,
                             engine, profile.stages);
      detail::score_position(backend, state.matrix, position, recovery_,
                             profile, score, progress);
      ++wstats.positions;
    }
  };
  try {
    while (const auto claim = scheduler.claim(worker)) {
      if (cancel != nullptr && cancel->should_stop()) return;
      ++wstats.spans;
      if (claim->stolen) ++wstats.steals;
      scan_span(spans[claim->item]);
    }
    // Own segment is dry: absorb whatever the accelerators have re-dispatched
    // so far. Remainders pushed after this worker returns are mopped up by
    // the second wave in run().
    while (const auto span = pop_span(redispatch.mutex, redispatch.spans)) {
      if (cancel != nullptr && cancel->should_stop()) return;
      ++wstats.spans;
      scan_span(*span);
    }
  } catch (const util::CancelledError&) {
    // A backend observed the cancel mid-launch: the position in flight stays
    // unscored and this worker stops claiming (drain semantics).
  }
}

void HeteroExecutor::run_accelerator(
    std::size_t partition, const std::vector<GridPosition>& grid,
    const std::vector<detail::ScanSpan>& spans, const ld::LdEngine& engine,
    std::vector<PositionScore>& scores, SchedWorkerStats& wstats,
    RedispatchQueue& redispatch, util::ProgressReporter* progress,
    const detail::CancelState* cancel) {
  const std::size_t worker = cpu_workers_ + partition;
  OmegaBackend& backend = *backends_[worker];
  detail::SpanWorkerState& state = states_[worker];
  ScanProfile& profile = profiles_[worker];
  const HeteroCostModel& model = config_.accelerators[partition].modeled_seconds;

  // Push the unsettled remainder [g, end) of a span back to the CPU
  // partition. Settled positions are skipped on re-scan, so the handoff is
  // idempotent; counters are folded under the queue lock.
  auto push_remainder = [&](std::size_t g, std::size_t end, bool straggler) {
    detail::ScanSpan remainder;
    remainder.begin = g;
    remainder.end = end;
    std::uint64_t positions = 0;
    for (std::size_t i = g; i < end; ++i) {
      if (grid[i].valid && !scores[i].valid && !scores[i].quarantined) {
        ++positions;
        remainder.cost += estimate_position_cost(grid[i]);
      }
    }
    const std::lock_guard<std::mutex> lock(redispatch.mutex);
    redispatch.spans.push_back(remainder);
    ++stats_.redispatched_spans;
    stats_.redispatched_positions += positions;
    if (straggler) {
      ++stats_.straggler_spans;
    } else {
      ++stats_.faulted_spans;
    }
  };

  try {
    for (const detail::ScanSpan& span : spans) {
      if (cancel != nullptr && cancel->should_stop()) return;
      ++wstats.spans;
      // Modeled straggler deadline for this span: the launch-queue analogue
      // of the per-position modeled watchdog.
      double modeled_span_seconds = 0.0;
      for (std::size_t g = span.begin; g < span.end; ++g) {
        if (grid[g].valid) modeled_span_seconds += model(grid[g]);
      }
      const double deadline =
          config_.straggler_multiplier * modeled_span_seconds +
          config_.straggler_min_seconds;
      const util::Timer span_timer;
      for (std::size_t g = span.begin; g < span.end; ++g) {
        if (cancel != nullptr && cancel->should_stop()) return;
        const GridPosition& position = grid[g];
        PositionScore& score = scores[g];
        score.position_bp = position.position_bp;
        if (!position.valid || score.valid || score.quarantined) continue;
        if (span_timer.seconds() > deadline) {
          push_remainder(g, span.end, /*straggler=*/true);
          break;
        }
        detail::advance_matrix(state.matrix, state.live, reuse_, position,
                               engine, profile.stages);
        const std::uint64_t faults_before =
            profile.faults.errors_caught + profile.faults.invalid_results;
        RecoveryOutcome outcome;
        {
          const util::trace::Span trace_span("scan.omega.search");
          static util::perf::StageCounters& search_perf =
              util::perf::stage("scan.omega_search");
          const util::perf::StageScope perf_scope(search_perf);
          const util::Timer timer;
          outcome = recover_max_omega(backend, state.matrix, position,
                                      recovery_, profile.faults);
          profile.stages.omega_search_seconds += timer.seconds();
        }
        const std::uint64_t faults_delta = profile.faults.errors_caught +
                                           profile.faults.invalid_results -
                                           faults_before;
        if (!outcome.ok) {
          // Recovery gave up on this partition — but the CPU is a
          // bit-identical fallback, so re-dispatch instead of quarantining:
          // undo the recover_max_omega quarantine charge and hand the
          // remainder over.
          --profile.faults.quarantined_positions;
          if (progress != nullptr && faults_delta > 0) {
            util::ProgressReporter::Delta delta;
            delta.faults = faults_delta;
            progress->advance(delta);
          }
          push_remainder(g, span.end, /*straggler=*/false);
          break;
        }
        score.max_omega = outcome.result.max_omega;
        score.best_a = outcome.result.best_a;
        score.best_b = outcome.result.best_b;
        score.evaluated = outcome.result.evaluated;
        score.valid = true;
        profile.omega_evaluations += outcome.result.evaluated;
        ++profile.positions_scanned;
        ++wstats.positions;
        if (progress != nullptr) {
          util::ProgressReporter::Delta delta;
          delta.positions = 1;
          delta.faults = faults_delta;
          progress->advance(delta);
        }
      }
    }
  } catch (const util::CancelledError&) {
    // Mid-launch cancel: stop this partition; CPU workers drain their own.
  }
}

void HeteroExecutor::run(const std::vector<GridPosition>& grid,
                         std::size_t begin, std::size_t end,
                         par::ThreadPool& pool, const ld::LdEngine& engine,
                         std::vector<PositionScore>& scores, SchedStats& sched,
                         util::ProgressReporter* progress,
                         const detail::CancelState* cancel) {
  const util::trace::Span run_span("hetero.run");
  const std::size_t n_accel = config_.accelerators.size();
  const std::size_t total = total_workers();
  if (sched.workers_detail.size() < total) sched.workers_detail.resize(total);

  const HeteroPlan plan = plan_hetero_split(grid, begin, end, config_);
  ++stats_.plans;
  static util::telemetry::Counter& plans_total =
      util::telemetry::counter("hetero.plans_total");
  plans_total.add(1);
  for (std::size_t p = 0; p < plan.segments.size(); ++p) {
    HeteroPartitionStats& part = stats_.partitions[p];
    part.weight = plan.segments[p].weight;
    part.planned_positions += plan.segments[p].planned_positions;
    part.modeled_seconds += plan.segments[p].modeled_seconds;
  }

  // CPU segment: work-stealing spans across the CPU workers, seeded in
  // contiguous cost-balanced runs exactly like scan_spans_parallel.
  const HeteroSegmentPlan& cpu_segment = plan.segments[0];
  const std::vector<detail::ScanSpan> cpu_spans = detail::build_scan_spans(
      grid, cpu_segment.begin, cpu_segment.end, cpu_workers_);
  stats_.partitions[0].spans += cpu_spans.size();
  par::StealScheduler scheduler(cpu_workers_);
  {
    std::uint64_t total_cost = 0;
    for (const detail::ScanSpan& span : cpu_spans) total_cost += span.cost;
    const bool equal = total_cost == 0;
    const std::uint64_t budget =
        equal ? static_cast<std::uint64_t>(cpu_spans.size()) : total_cost;
    std::vector<std::size_t> run_items;
    std::size_t worker = 0;
    std::uint64_t cum = 0;
    for (std::size_t s = 0; s < cpu_spans.size(); ++s) {
      run_items.push_back(s);
      cum += equal ? 1 : cpu_spans[s].cost;
      if (worker + 1 < cpu_workers_ &&
          cum * cpu_workers_ >=
              (static_cast<std::uint64_t>(worker) + 1) * budget) {
        scheduler.assign(worker, std::move(run_items));
        run_items = {};
        ++worker;
      }
    }
    scheduler.assign(std::min(worker, cpu_workers_ - 1),
                     std::move(run_items));
  }

  // Accelerator segments: one ordered launch queue each, split into a few
  // spans so the straggler deadline has useful granularity.
  std::vector<std::vector<detail::ScanSpan>> accel_spans(n_accel);
  for (std::size_t p = 0; p < n_accel; ++p) {
    const HeteroSegmentPlan& segment = plan.segments[p + 1];
    accel_spans[p] =
        detail::build_scan_spans(grid, segment.begin, segment.end, 1);
    stats_.partitions[p + 1].spans += accel_spans[p].size();
  }

  RedispatchQueue redispatch;
  std::vector<double> busy(total, 0.0);
  std::vector<std::uint64_t> settled_before(total, 0);
  for (std::size_t w = 0; w < total; ++w) {
    settled_before[w] = sched.workers_detail[w].positions;
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(total);
  for (std::size_t w = 0; w < cpu_workers_; ++w) {
    tasks.emplace_back([&, w] {
      const util::trace::Span worker_span("hetero.cpu_worker");
      const util::Timer timer;
      run_cpu_worker(w, grid, cpu_spans, scheduler, engine, scores,
                     sched.workers_detail[w], redispatch, progress, cancel);
      busy[w] += timer.seconds();
      sched.workers_detail[w].busy_seconds += timer.seconds();
    });
  }
  for (std::size_t p = 0; p < n_accel; ++p) {
    tasks.emplace_back([&, p] {
      const util::trace::Span worker_span("hetero.accelerator");
      const util::Timer timer;
      run_accelerator(p, grid, accel_spans[p], engine, scores,
                      sched.workers_detail[cpu_workers_ + p], redispatch,
                      progress, cancel);
      busy[cpu_workers_ + p] += timer.seconds();
      sched.workers_detail[cpu_workers_ + p].busy_seconds += timer.seconds();
    });
  }
  pool.run_blocking(std::move(tasks));

  // Mop-up wave: remainders pushed after the CPU workers' opportunistic
  // drain returned. The accelerators are done, so one pass settles the
  // queue; a cancelled scan leaves it unscored (drain semantics).
  if (!redispatch.spans.empty() &&
      (cancel == nullptr || !cancel->should_stop())) {
    std::vector<std::function<void()>> mopup;
    mopup.reserve(cpu_workers_);
    for (std::size_t w = 0; w < cpu_workers_; ++w) {
      mopup.emplace_back([&, w] {
        const util::Timer timer;
        OmegaBackend& backend = *backends_[w];
        detail::SpanWorkerState& state = states_[w];
        ScanProfile& profile = profiles_[w];
        SchedWorkerStats& wstats = sched.workers_detail[w];
        try {
          while (const auto span =
                     pop_span(redispatch.mutex, redispatch.spans)) {
            if (cancel != nullptr && cancel->should_stop()) break;
            ++wstats.spans;
            for (std::size_t g = span->begin; g < span->end; ++g) {
              if (cancel != nullptr && cancel->should_stop()) break;
              const GridPosition& position = grid[g];
              PositionScore& score = scores[g];
              score.position_bp = position.position_bp;
              if (!position.valid || score.valid || score.quarantined) {
                continue;
              }
              detail::advance_matrix(state.matrix, state.live, reuse_,
                                     position, engine, profile.stages);
              detail::score_position(backend, state.matrix, position,
                                     recovery_, profile, score, progress);
              ++wstats.positions;
            }
          }
        } catch (const util::CancelledError&) {
        }
        busy[w] += timer.seconds();
        wstats.busy_seconds += timer.seconds();
      });
    }
    pool.run_blocking(std::move(mopup));
  }

  // Partition accounting for this run: the CPU partition's measured time is
  // its slowest worker (its wall-clock critical path); each accelerator is
  // its single task.
  double cpu_busy = 0.0;
  std::uint64_t cpu_settled = 0;
  for (std::size_t w = 0; w < cpu_workers_; ++w) {
    cpu_busy = std::max(cpu_busy, busy[w]);
    cpu_settled += sched.workers_detail[w].positions - settled_before[w];
  }
  stats_.partitions[0].measured_seconds += cpu_busy;
  stats_.partitions[0].actual_positions += cpu_settled;
  for (std::size_t p = 0; p < n_accel; ++p) {
    const std::size_t w = cpu_workers_ + p;
    stats_.partitions[p + 1].measured_seconds += busy[w];
    stats_.partitions[p + 1].actual_positions +=
        sched.workers_detail[w].positions - settled_before[w];
  }

  // Measured-rate EWMAs, one observation per partition per plan run: the
  // positions this run settled over the partition's busy wall time. The
  // estimators persist across stream chunks, so the stamped values are the
  // whole-scan EWMAs; the gauges mirror them for live exposition (telemetry
  // only — never a bench diff gate).
  for (std::size_t p = 0; p < 1 + n_accel; ++p) {
    const std::uint64_t settled =
        p == 0 ? cpu_settled
               : sched.workers_detail[cpu_workers_ + p - 1].positions -
                     settled_before[cpu_workers_ + p - 1];
    const double seconds = p == 0 ? cpu_busy : busy[cpu_workers_ + p - 1];
    rates_[p].observe(settled, seconds);
    HeteroPartitionStats& part = stats_.partitions[p];
    part.measured_rate_per_s = rates_[p].rate_per_s();
    part.rate_observations = rates_[p].observations();
    if (rates_[p].observations() > 0) {
      util::telemetry::gauge("hetero." + part.backend + ".rate_per_s")
          .set(rates_[p].rate_per_s());
    }
  }

  // Totals recomputed from per-worker detail (scan_spans_parallel contract)
  // so repeated per-chunk calls stay consistent.
  sched.spans = 0;
  sched.steals = 0;
  for (const SchedWorkerStats& w : sched.workers_detail) {
    sched.spans += w.spans;
    sched.steals += w.steals;
  }
}

void HeteroExecutor::finalize(ScanProfile& profile) {
  // Finalize *copies* of the worker profiles: the matrices are read-only
  // here and OmegaBackend::contribute is const, so this is repeat-safe — the
  // streaming driver snapshots cumulative totals per checkpoint exactly this
  // way (stream_scanner.cpp's snapshot_totals contract).
  for (std::size_t w = 0; w < backends_.size(); ++w) {
    ScanProfile worker = profiles_[w];
    detail::finalize_span_worker(worker, states_[w], *backends_[w]);
    detail::merge_worker_profile(profile, worker);
  }
  profile.omega_backend = "hetero";
  merge_hetero_stats(profile.hetero, stats_);
}

void merge_hetero_stats(HeteroStats& into, const HeteroStats& from) {
  if (!from.enabled) return;
  into.enabled = true;
  if (!from.split.empty()) into.split = from.split;
  into.plans += from.plans;
  into.redispatched_spans += from.redispatched_spans;
  into.redispatched_positions += from.redispatched_positions;
  into.straggler_spans += from.straggler_spans;
  into.faulted_spans += from.faulted_spans;
  for (const HeteroPartitionStats& part : from.partitions) {
    HeteroPartitionStats* dst = nullptr;
    for (HeteroPartitionStats& candidate : into.partitions) {
      if (candidate.backend == part.backend) {
        dst = &candidate;
        break;
      }
    }
    if (dst == nullptr) {
      HeteroPartitionStats fresh;
      fresh.backend = part.backend;
      into.partitions.push_back(std::move(fresh));
      dst = &into.partitions.back();
    }
    dst->weight = part.weight;  // latest plan's share
    dst->planned_positions += part.planned_positions;
    dst->actual_positions += part.actual_positions;
    dst->spans += part.spans;
    dst->modeled_seconds += part.modeled_seconds;
    dst->measured_seconds += part.measured_seconds;
    // Latest estimate wins (HeteroPartitionStats contract): a run that made
    // observations supersedes whatever a resumed checkpoint carried, while a
    // run that never settled anything keeps the resumed estimate.
    if (part.rate_observations > 0) {
      dst->measured_rate_per_s = part.measured_rate_per_s;
    }
    dst->rate_observations += part.rate_observations;
  }
}

}  // namespace omega::core
