#pragma once
// Eq. (2): the omega statistic from the three regional r2 sums.
//
//          ( C(l,2) + C(r,2) )^-1 * ( LS + RS )
//   omega = ------------------------------------
//               ( l * r )^-1 * TS_cross
//
// where LS/RS are the within-region sums, TS_cross the between-region sum,
// l and r the sub-region SNP counts. The denominator carries OmegaPlus's
// epsilon so a vanishing cross-region sum yields a large, finite score.

#include <cstdint>

#include "core/omega_config.h"

namespace omega::core {

/// C(k, 2) as a double (k >= 0).
[[nodiscard]] constexpr double choose2(std::size_t k) noexcept {
  return static_cast<double>(k) * static_cast<double>(k - (k > 0 ? 1 : 0)) / 2.0;
}

/// Double-precision omega (CPU reference and scanner path).
[[nodiscard]] inline double omega_from_sums(double left_sum, double right_sum,
                                            double cross_sum, std::size_t l,
                                            std::size_t r) noexcept {
  const double pairs = choose2(l) + choose2(r);
  if (pairs <= 0.0) return 0.0;
  const double numerator = (left_sum + right_sum) / pairs;
  const double denominator =
      cross_sum / (static_cast<double>(l) * static_cast<double>(r)) +
      OmegaConfig::denominator_offset;
  return numerator / denominator;
}

/// Single-precision omega — the exact arithmetic the GPU kernels and the
/// FPGA pipeline (Fig. 8) implement.
[[nodiscard]] inline float omega_from_sums_f(float left_sum, float right_sum,
                                             float cross_sum, std::uint32_t l,
                                             std::uint32_t r) noexcept {
  const float lf = static_cast<float>(l);
  const float rf = static_cast<float>(r);
  const float pairs = lf * (lf - 1.0f) / 2.0f + rf * (rf - 1.0f) / 2.0f;
  if (pairs <= 0.0f) return 0.0f;
  const float numerator = (left_sum + right_sum) / pairs;
  const float denominator = cross_sum / (lf * rf) +
                            static_cast<float>(OmegaConfig::denominator_offset);
  return numerator / denominator;
}

}  // namespace omega::core
