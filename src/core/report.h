#pragma once
// OmegaPlus-compatible output files. A run named <name> produces:
//
//   OmegaPlus_Report.<name> — one "position<TAB>omega" line per grid
//                             position (the file downstream plotting and
//                             power analyses consume);
//   OmegaPlus_Info.<name>   — run parameters, dataset shape, profiling
//                             summary, and the best-scoring windows.
//
// Matching the reference tool's file naming lets existing OmegaPlus
// post-processing scripts run unchanged against this implementation.

#include <iosfwd>
#include <string>

#include "core/scanner.h"
#include "io/dataset.h"

namespace omega::core {

void write_report(std::ostream& out, const ScanResult& result);

void write_info(std::ostream& out, const std::string& run_name,
                const io::Dataset& dataset, const ScannerOptions& options,
                const ScanResult& result, const std::string& backend_name);

/// Dataset-free form for streamed runs, which never hold the whole alignment:
/// `dataset_summary` replaces the shape line (e.g. "120000 sites x 64
/// haplotypes (streamed)") and `has_missing` the missing-data note.
void write_info(std::ostream& out, const std::string& run_name,
                const std::string& dataset_summary, bool has_missing,
                const ScannerOptions& options, const ScanResult& result,
                const std::string& backend_name);

/// Writes both files into `directory` (created by the caller); returns the
/// report path.
std::string write_run_files(const std::string& directory,
                            const std::string& run_name, const io::Dataset& dataset,
                            const ScannerOptions& options,
                            const ScanResult& result,
                            const std::string& backend_name);

/// Dataset-free form for streamed runs (see the write_info overload).
std::string write_run_files(const std::string& directory,
                            const std::string& run_name,
                            const std::string& dataset_summary,
                            bool has_missing, const ScannerOptions& options,
                            const ScanResult& result,
                            const std::string& backend_name);

/// Parses a Report file back into (position, omega) pairs — round-trip
/// support for power studies over many replicates.
std::vector<std::pair<std::int64_t, double>> read_report(std::istream& in);

}  // namespace omega::core
