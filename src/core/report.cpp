#include "core/report.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/ios_guard.h"

namespace omega::core {

void write_report(std::ostream& out, const ScanResult& result) {
  const util::IosFormatGuard format_guard(out);
  out << std::setprecision(6) << std::fixed;
  for (const auto& score : result.scores) {
    out << score.position_bp << '\t' << (score.valid ? score.max_omega : 0.0)
        << '\n';
  }
}

void write_info(std::ostream& out, const std::string& run_name,
                const std::string& dataset_summary, bool has_missing,
                const ScannerOptions& options, const ScanResult& result,
                const std::string& backend_name) {
  const util::IosFormatGuard format_guard(out);
  const auto& config = options.config;
  out << "OmegaPlus (libomega reimplementation) run: " << run_name << "\n\n";
  out << "Dataset:      " << dataset_summary << "\n";
  out << "Missing data: " << (has_missing ? "yes (pairwise-complete r2)" : "no")
      << "\n";
  out << "Grid size:    " << config.grid_size << "\n";
  out << "Window unit:  "
      << (config.window_unit == WindowUnit::BasePairs ? "bp" : "SNPs")
      << "\n";
  out << "Max window:   " << config.max_window << "\n";
  out << "Min window:   " << config.min_window << "\n";
  if (config.max_snps_per_side > 0) {
    out << "Side cap:     " << config.max_snps_per_side << " SNPs\n";
  }
  out << "Threads:      " << options.threads << "\n";
  // Prefer the name of the engine that actually served the scan (resolves
  // Auto and custom factories); fall back to the requested kind for results
  // assembled without a profile.
  out << "LD engine:    "
      << (!result.profile.ld_backend.empty()
              ? result.profile.ld_backend
              : ld_backend_name(resolve_ld_backend(options.ld)))
      << "\n";
  out << "Backend:      " << backend_name << "\n\n";

  const auto& profile = result.profile;
  out << std::setprecision(3) << std::fixed;
  out << "Total time:   " << profile.total_seconds << " s\n";
  out << "LD time:      " << profile.ld_seconds << " s ("
      << profile.r2_fetched << " r2 values)\n";
  out << "Omega time:   " << profile.omega_seconds << " s ("
      << profile.omega_evaluations << " omega evaluations)\n";
  out << "Omega rate:   " << profile.omega_throughput() / 1e6 << " Mw/s\n";

  // Fault-recovery summary (only when the scan saw trouble, so healthy runs
  // keep the historical Info layout).
  const auto& faults = profile.faults;
  if (faults.faults_injected > 0 || faults.errors_caught > 0 ||
      faults.invalid_results > 0 || faults.quarantined_positions > 0 ||
      faults.degradations > 0) {
    out << "Recovery:     " << faults.faults_injected << " faults injected, "
        << faults.retries << " retries, " << faults.quarantined_positions
        << " quarantined, " << faults.degradations << " degradations ("
        << faults.backoff_virtual_seconds << " s virtual backoff)\n";
  }

  // Streaming summary (only for streamed runs, keeping the in-memory Info
  // layout untouched).
  const auto& stream = profile.stream;
  if (stream.chunks > 0) {
    out << "Streaming:    " << stream.chunks << " chunks (target "
        << stream.chunk_sites_target << " sites), peak resident "
        << stream.peak_resident_sites << " sites, "
        << static_cast<int>(stream.io_overlap_ratio() * 100.0)
        << "% IO hidden\n";
  }
  out << "\n";

  out << "Top windows:\n";
  out << std::setprecision(6);
  for (const auto& score : result.top(5)) {
    if (!score.valid) continue;
    out << "  position " << score.position_bp << "  omega " << score.max_omega
        << "  window [SNP " << score.best_a << " .. SNP " << score.best_b
        << "]\n";
  }
}

void write_info(std::ostream& out, const std::string& run_name,
                const io::Dataset& dataset, const ScannerOptions& options,
                const ScanResult& result, const std::string& backend_name) {
  write_info(out, run_name, dataset.shape_string(), dataset.has_missing(),
             options, result, backend_name);
}

std::string write_run_files(const std::string& directory,
                            const std::string& run_name,
                            const std::string& dataset_summary,
                            bool has_missing, const ScannerOptions& options,
                            const ScanResult& result,
                            const std::string& backend_name) {
  const std::string report_path =
      directory + "/OmegaPlus_Report." + run_name;
  const std::string info_path = directory + "/OmegaPlus_Info." + run_name;
  std::ofstream report(report_path);
  if (!report) throw std::runtime_error("cannot write " + report_path);
  write_report(report, result);
  std::ofstream info(info_path);
  if (!info) throw std::runtime_error("cannot write " + info_path);
  write_info(info, run_name, dataset_summary, has_missing, options, result,
             backend_name);
  return report_path;
}

std::string write_run_files(const std::string& directory,
                            const std::string& run_name, const io::Dataset& dataset,
                            const ScannerOptions& options,
                            const ScanResult& result,
                            const std::string& backend_name) {
  return write_run_files(directory, run_name, dataset.shape_string(),
                         dataset.has_missing(), options, result, backend_name);
}

std::vector<std::pair<std::int64_t, double>> read_report(std::istream& in) {
  std::vector<std::pair<std::int64_t, double>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::int64_t position = 0;
    double omega_value = 0.0;
    if (!(fields >> position >> omega_value)) {
      throw std::runtime_error("report: malformed line: " + line);
    }
    rows.emplace_back(position, omega_value);
  }
  return rows;
}

}  // namespace omega::core
