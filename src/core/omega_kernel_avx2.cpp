// AVX2+FMA omega-kernel bodies. This translation unit is compiled with
// per-file -mavx2 -mfma (see src/core/CMakeLists.txt) and is entered only
// after runtime CPUID detection (util/cpu_features.h), so the rest of the
// binary stays runnable on baseline x86-64 hosts.
//
// Argmax strategy: each of the four fp64 (eight fp32) lanes tracks its own
// running maximum and the (a, b) indices of its *first* strictly-greater
// occurrence, exactly like the scalar reference does over its subsequence.
// Because lanes advance in b-major / a-ascending order, each lane's record
// is the lexicographically smallest occurrence of its lane maximum, and the
// final cross-lane reduce — greatest value, ties to the smallest (b, a) —
// reproduces the reference "first strict maximum in scan order" result
// bit-for-bit. The loop tail is handled by a scalar carbon copy whose
// candidate joins the same reduce.

#include "core/omega_kernel_cpu.h"

#if defined(OMEGA_HAVE_AVX2_TU)

#include <immintrin.h>

#include "core/omega_math.h"

namespace omega::core::detail {
namespace {

/// Lex-(b, a) candidate reduce shared by the final combines. A value of 0
/// never displaces anything (the reference only records strictly positive
/// improvements over its zero init).
struct BestCandidate {
  double value = 0.0;
  std::size_t a = 0;
  std::size_t b = 0;

  void consider(double v, std::size_t av, std::size_t bv) noexcept {
    const bool better =
        v > value ||
        (v > 0.0 && v == value && (bv < b || (bv == b && av < a)));
    if (better) {
      value = v;
      a = av;
      b = bv;
    }
  }
};

}  // namespace

OmegaResult omega_search_avx2_f64(const DpMatrix& m,
                                  const GridPosition& position,
                                  std::size_t b_begin, std::size_t b_end,
                                  const OmegaKernelScratch& scratch) {
  OmegaResult result;
  const std::size_t c = position.c;
  const std::size_t n_left = position.a_max - position.lo + 1;
  const std::size_t n4 = n_left & ~static_cast<std::size_t>(3);
  const double eps = OmegaConfig::denominator_offset;

  const double* ls = scratch.ls.data();
  const double* kl = scratch.kl.data();
  const double* l_d = scratch.l_d.data();

  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d viota = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  __m256d vbest = vzero;
  __m256d vbest_a = vzero;  // ai as double (exact below 2^53)
  __m256d vbest_b = vzero;  // global b as double

  double tail_best = 0.0;
  std::size_t tail_a = 0, tail_b = 0;

  for (std::size_t b = b_begin; b <= b_end; ++b) {
    const double rs = m.at_fast(b, c + 1);
    const double r_d = static_cast<double>(b - c);
    const double kr = choose2(b - c);
    const double* row_b = m.row_data(b) + (position.lo - m.base());

    const __m256d vrs = _mm256_set1_pd(rs);
    const __m256d vr = _mm256_set1_pd(r_d);
    const __m256d vkr = _mm256_set1_pd(kr);
    const __m256d vb = _mm256_set1_pd(static_cast<double>(b));

    for (std::size_t ai = 0; ai < n4; ai += 4) {
      const __m256d vls = _mm256_loadu_pd(ls + ai);
      const __m256d vkl = _mm256_loadu_pd(kl + ai);
      const __m256d vl = _mm256_loadu_pd(l_d + ai);
      const __m256d vtotal = _mm256_loadu_pd(row_b + ai);

      const __m256d vlr = _mm256_mul_pd(vl, vr);
      const __m256d vsum = _mm256_add_pd(vls, vrs);
      const __m256d vcross = _mm256_sub_pd(vtotal, vsum);
      const __m256d vpairs = _mm256_add_pd(vkl, vkr);
      const __m256d vnum = _mm256_mul_pd(vsum, vlr);
      const __m256d vden =
          _mm256_mul_pd(vpairs, _mm256_fmadd_pd(veps, vlr, vcross));
      __m256d vomega = _mm256_div_pd(vnum, vden);
      // Degenerate l == r == 1 windows (pairs == 0) score 0; the AND also
      // clears any NaN bits those lanes produced.
      const __m256d vvalid = _mm256_cmp_pd(vpairs, vzero, _CMP_GT_OQ);
      vomega = _mm256_and_pd(vomega, vvalid);

      const __m256d vgt = _mm256_cmp_pd(vomega, vbest, _CMP_GT_OQ);
      if (_mm256_movemask_pd(vgt) != 0) {
        const __m256d va =
            _mm256_add_pd(_mm256_set1_pd(static_cast<double>(ai)), viota);
        vbest = _mm256_blendv_pd(vbest, vomega, vgt);
        vbest_a = _mm256_blendv_pd(vbest_a, va, vgt);
        vbest_b = _mm256_blendv_pd(vbest_b, vb, vgt);
      }
    }

    for (std::size_t ai = n4; ai < n_left; ++ai) {
      const double lr = l_d[ai] * r_d;
      const double sum = ls[ai] + rs;
      const double cross = row_b[ai] - sum;
      const double pairs = kl[ai] + kr;
      const double w =
          pairs > 0.0 ? (sum * lr) / (pairs * (eps * lr + cross)) : 0.0;
      if (w > tail_best) {
        tail_best = w;
        tail_a = ai;
        tail_b = b;
      }
    }
  }

  result.evaluated =
      static_cast<std::uint64_t>(b_end - b_begin + 1) * n_left;

  double vals[4], avals[4], bvals[4];
  _mm256_storeu_pd(vals, vbest);
  _mm256_storeu_pd(avals, vbest_a);
  _mm256_storeu_pd(bvals, vbest_b);
  BestCandidate best;
  for (int lane = 0; lane < 4; ++lane) {
    best.consider(vals[lane],
                  position.lo + static_cast<std::size_t>(avals[lane]),
                  static_cast<std::size_t>(bvals[lane]));
  }
  best.consider(tail_best, position.lo + tail_a, tail_b);

  result.max_omega = best.value;
  if (best.value > 0.0) {
    result.best_a = best.a;
    result.best_b = best.b;
  }
  return result;
}

OmegaResult omega_search_avx2_f32(const PositionBuffers& buffers,
                                  const GridPosition& position,
                                  const std::vector<float>& r_f) {
  OmegaResult result;
  const std::size_t nl = buffers.num_left;
  const std::size_t nr = buffers.num_right;
  const std::size_t n8 = nr & ~static_cast<std::size_t>(7);
  const float eps = static_cast<float>(OmegaConfig::denominator_offset);

  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vzero = _mm256_setzero_ps();
  const __m256 viota =
      _mm256_set_ps(7.0f, 6.0f, 5.0f, 4.0f, 3.0f, 2.0f, 1.0f, 0.0f);
  __m256 vbest = vzero;
  __m256 vbest_ai = vzero;
  __m256 vbest_bi = vzero;

  float tail_best = 0.0f;
  std::size_t tail_ai = 0, tail_bi = 0;

  for (std::size_t ai = 0; ai < nl; ++ai) {
    const float lsa = buffers.ls[ai];
    const float ka = buffers.k[ai];
    const float lf = static_cast<float>(buffers.l_counts[ai]);
    const float* trow = buffers.total.data() + ai * nr;

    const __m256 vls = _mm256_set1_ps(lsa);
    const __m256 vka = _mm256_set1_ps(ka);
    const __m256 vlf = _mm256_set1_ps(lf);
    const __m256 vai = _mm256_set1_ps(static_cast<float>(ai));

    for (std::size_t bi = 0; bi < n8; bi += 8) {
      const __m256 vrs = _mm256_loadu_ps(buffers.rs.data() + bi);
      const __m256 vmb = _mm256_loadu_ps(buffers.m_binom.data() + bi);
      const __m256 vrf = _mm256_loadu_ps(r_f.data() + bi);
      const __m256 vtot = _mm256_loadu_ps(trow + bi);

      // Exact op-for-op transcription of omega_from_sums_f — three divides,
      // no FMA contraction — so every lane matches the scalar GPU/FPGA
      // reference arithmetic bit-for-bit.
      const __m256 vwithin = _mm256_add_ps(vls, vrs);
      const __m256 vpairs = _mm256_add_ps(vka, vmb);
      const __m256 vcross = _mm256_sub_ps(vtot, vwithin);
      const __m256 vlr = _mm256_mul_ps(vlf, vrf);
      const __m256 vnum = _mm256_div_ps(vwithin, vpairs);
      const __m256 vden = _mm256_add_ps(_mm256_div_ps(vcross, vlr), veps);
      __m256 vomega = _mm256_div_ps(vnum, vden);
      const __m256 vvalid = _mm256_cmp_ps(vpairs, vzero, _CMP_GT_OQ);
      vomega = _mm256_and_ps(vomega, vvalid);

      const __m256 vgt = _mm256_cmp_ps(vomega, vbest, _CMP_GT_OQ);
      if (_mm256_movemask_ps(vgt) != 0) {
        const __m256 vbidx =
            _mm256_add_ps(_mm256_set1_ps(static_cast<float>(bi)), viota);
        vbest = _mm256_blendv_ps(vbest, vomega, vgt);
        vbest_ai = _mm256_blendv_ps(vbest_ai, vai, vgt);
        vbest_bi = _mm256_blendv_ps(vbest_bi, vbidx, vgt);
      }
    }

    for (std::size_t bi = n8; bi < nr; ++bi) {
      const float within = lsa + buffers.rs[bi];
      const float w =
          omega_from_sums_f(lsa, buffers.rs[bi], trow[bi] - within,
                            buffers.l_counts[ai], buffers.r_counts[bi]);
      if (w > tail_best) {
        tail_best = w;
        tail_ai = ai;
        tail_bi = bi;
      }
    }
  }

  result.evaluated = static_cast<std::uint64_t>(nl) * nr;

  float vals[8], aivals[8], bivals[8];
  _mm256_storeu_ps(vals, vbest);
  _mm256_storeu_ps(aivals, vbest_ai);
  _mm256_storeu_ps(bivals, vbest_bi);
  // Scan order here is ai-major, so the tie-break key is (a, b) — mirror it
  // by feeding BestCandidate swapped (its lex key is (b, a)).
  BestCandidate best;
  for (int lane = 0; lane < 8; ++lane) {
    best.consider(static_cast<double>(vals[lane]),
                  static_cast<std::size_t>(bivals[lane]),
                  static_cast<std::size_t>(aivals[lane]));
  }
  best.consider(static_cast<double>(tail_best), tail_bi, tail_ai);

  result.max_omega = best.value;
  if (best.value > 0.0) {
    result.best_a = position.lo + best.b;   // .b holds ai (swapped key)
    result.best_b = position.b_min + best.a;  // .a holds bi
  }
  return result;
}

}  // namespace omega::core::detail

#endif  // OMEGA_HAVE_AVX2_TU
