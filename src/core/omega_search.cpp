#include "core/omega_search.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "core/omega_math.h"

namespace omega::core {

OmegaResult max_omega_search(const DpMatrix& m, const GridPosition& position) {
  // Loop order: right border b outer, left border a inner. For a fixed b,
  // M(b, a) walks row b of the packed triangle contiguously and M(c, a)
  // walks row c contiguously, so the scan streams two rows per outer
  // iteration instead of striding across the whole matrix — the CPU-side
  // analogue of the paper's "two columns per iteration of i" layout
  // observation (Fig. 9). Results are order-independent (strict max).
  if (!position.valid) return {};
  return max_omega_search_range(m, position, position.b_min, position.hi);
}

OmegaResult max_omega_search_range(const DpMatrix& m,
                                   const GridPosition& position,
                                   std::size_t b_begin, std::size_t b_end) {
  OmegaResult result;
  const std::size_t c = position.c;
  for (std::size_t b = b_begin; b <= b_end; ++b) {
    const double right_sum = m.at_fast(b, c + 1);
    const std::size_t r = b - c;
    for (std::size_t a = position.lo; a <= position.a_max; ++a) {
      const double left_sum = m.at_fast(c, a);
      const double cross_sum = m.at_fast(b, a) - (left_sum + right_sum);
      const std::size_t l = c - a + 1;
      const double omega = omega_from_sums(left_sum, right_sum, cross_sum, l, r);
      ++result.evaluated;
      if (omega > result.max_omega) {
        result.max_omega = omega;
        result.best_a = a;
        result.best_b = b;
      }
    }
  }
  return result;
}

OmegaResult max_omega_search_parallel(par::ThreadPool& pool, const DpMatrix& m,
                                      const GridPosition& position) {
  OmegaResult result;
  if (!position.valid) return result;
  const std::size_t b_count = position.hi - position.b_min + 1;
  const std::size_t lanes = pool.size() + 1;
  const std::size_t chunk = (b_count + lanes - 1) / lanes;

  std::vector<OmegaResult> partials(lanes);
  std::vector<std::function<void()>> tasks;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t begin = position.b_min + lane * chunk;
    if (begin > position.hi) break;
    const std::size_t end = std::min(position.hi, begin + chunk - 1);
    tasks.emplace_back([&, lane, begin, end] {
      partials[lane] = max_omega_search_range(m, position, begin, end);
    });
  }
  pool.run_blocking(std::move(tasks));

  // Reduce in lane order: lower b ranges first, so ties resolve exactly as
  // in the sequential b-major scan.
  for (const auto& partial : partials) {
    result.evaluated += partial.evaluated;
    if (partial.evaluated > 0 && partial.max_omega > result.max_omega) {
      result.max_omega = partial.max_omega;
      result.best_a = partial.best_a;
      result.best_b = partial.best_b;
    }
  }
  return result;
}

std::size_t PositionBuffers::payload_bytes() const noexcept {
  return ls.size() * sizeof(float) + rs.size() * sizeof(float) +
         k.size() * sizeof(float) + m_binom.size() * sizeof(float) +
         l_counts.size() * sizeof(std::uint32_t) +
         r_counts.size() * sizeof(std::uint32_t) + total.size() * sizeof(float);
}

PositionBuffers pack_position(const DpMatrix& m, const GridPosition& position) {
  PositionBuffers buffers;
  if (!position.valid) return buffers;
  const std::size_t c = position.c;
  buffers.num_left = position.a_max - position.lo + 1;
  buffers.num_right = position.hi - position.b_min + 1;

  buffers.ls.resize(buffers.num_left);
  buffers.k.resize(buffers.num_left);
  buffers.l_counts.resize(buffers.num_left);
  for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
    const std::size_t a = position.lo + ai;
    const std::size_t l = c - a + 1;
    buffers.ls[ai] = static_cast<float>(m.at_fast(c, a));
    buffers.k[ai] = static_cast<float>(choose2(l));
    buffers.l_counts[ai] = static_cast<std::uint32_t>(l);
  }

  buffers.rs.resize(buffers.num_right);
  buffers.m_binom.resize(buffers.num_right);
  buffers.r_counts.resize(buffers.num_right);
  for (std::size_t bi = 0; bi < buffers.num_right; ++bi) {
    const std::size_t b = position.b_min + bi;
    const std::size_t r = b - c;
    buffers.rs[bi] = static_cast<float>(m.at_fast(b, c + 1));
    buffers.m_binom[bi] = static_cast<float>(choose2(r));
    buffers.r_counts[bi] = static_cast<std::uint32_t>(r);
  }

  buffers.total.resize(buffers.num_left * buffers.num_right);
  // Outer loop over b so M(b, a) streams row b contiguously; the strided
  // writes land in the (much smaller) output buffer.
  for (std::size_t bi = 0; bi < buffers.num_right; ++bi) {
    const std::size_t b = position.b_min + bi;
    for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
      const std::size_t a = position.lo + ai;
      buffers.total[ai * buffers.num_right + bi] =
          static_cast<float>(m.at_fast(b, a));
    }
  }
  return buffers;
}

}  // namespace omega::core
