#pragma once
// Streaming chunked scan driver: runs the OmegaPlus whole-genome scan over a
// ChunkReader instead of a resident Dataset, bounding genotype memory to
// roughly two chunks (current + prefetched) while producing output that is
// bitwise identical to scan() on the same data — scores, argmax windows,
// evaluation counts, even the fault-injection PRNG sequence.
//
// Why identical (docs/STREAMING.md expands on this):
//   * the omega grid is built from the reader's position index, which holds
//     exactly the coordinates an in-memory load would produce;
//   * the DP matrix and every backend already address SNPs by global index;
//     a per-chunk LD engine is wrapped in ld::OffsetLd so global requests
//     land on chunk-local data. Nothing downstream can tell the difference;
//   * chunks overlap by the window extent, and each grid position is scored
//     from the one chunk that fully contains its [lo, hi] range, so the DP
//     recurrence sees the same r2 values in the same order;
//   * the matrix itself persists across chunk seams: the usual relocation
//     carries the overlapping sub-triangle into the next chunk.
//
// Pipeline: a 1-thread IO pool materializes chunk k+1 while compute scans
// chunk k (double buffering). With options.threads > 1 the compute side runs
// the work-stealing span engine (core/span_engine.h) *within* the resident
// chunk — workers share the one materialized chunk, so the memory bound
// holds, and prefetch still overlaps. A chunk whose scan throws a
// non-BackendError exception is retried, then its unscored positions are
// quarantined and the stream continues — same never-abort contract as the
// per-position recovery engine.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/grid.h"
#include "core/omega_config.h"
#include "core/scanner.h"
#include "io/chunk_reader.h"

namespace omega::core {

struct StreamScanOptions {
  /// Target sites per chunk (the memory bound). A single grid position whose
  /// window spans more sites gets a chunk of exactly its window — windows
  /// are never split.
  std::size_t chunk_sites = 100'000;
  /// Prefetch the next chunk on the IO thread while scanning the current one.
  /// Off: chunks are fetched inline (halves resident memory, serializes IO).
  bool double_buffer = true;
  /// Whole-chunk re-scan attempts after a non-BackendError failure before
  /// the chunk's unscored positions are quarantined.
  std::size_t chunk_retries = 1;
  /// Checkpoint file for the crash-safe runtime (core/checkpoint.h); empty
  /// disables checkpointing. Written atomically (temp + rename) once at
  /// stream start and again after every committed chunk, flushed on a
  /// cancelled drain, and left in place on completion.
  std::string checkpoint_path;
  /// Resume from `checkpoint_path`: validate the dataset fingerprint and
  /// config hash, preload every committed score, and continue at the first
  /// uncommitted chunk. Throws std::runtime_error when the checkpoint is
  /// missing, malformed, or belongs to a different dataset/config. Requires
  /// checkpoint_path.
  bool resume = false;
  /// Source file recorded in the checkpoint fingerprint (path + size);
  /// empty for in-memory readers.
  std::string source_path;

  /// Throws std::invalid_argument on nonsensical settings.
  void validate() const;
};

/// One pipeline step: the site range to materialize and the contiguous grid
/// positions scored from it. Every valid position g in [grid_begin, grid_end)
/// satisfies sites.begin <= lo(g) and hi(g) < sites.end.
struct StreamChunkPlan {
  io::SiteRange sites;
  std::size_t grid_begin = 0;
  std::size_t grid_end = 0;
};

/// The full stream schedule: the grid (identical to the in-memory scan's)
/// plus the chunk decomposition covering it.
struct StreamPlan {
  std::vector<GridPosition> grid;
  std::vector<StreamChunkPlan> chunks;

  /// Site ranges in pipeline order — the argument to ChunkReader::plan().
  [[nodiscard]] std::vector<io::SiteRange> site_ranges() const;
  /// Sites materialized twice because consecutive chunks overlap.
  [[nodiscard]] std::uint64_t overlap_sites() const;
};

/// Greedy chunk planner: walks the grid in order, packing consecutive valid
/// positions into a chunk while the covering site span stays within
/// `chunk_sites`; a position whose own window exceeds the target gets a
/// dedicated chunk. Invalid positions are carried along with the chunk
/// ranges (they consume no sites). Works for bp-unit windows too — per-
/// position extents come from the positions index, not from a fixed stride.
StreamPlan plan_stream_chunks(const std::vector<std::int64_t>& positions_bp,
                              const OmegaConfig& config,
                              std::size_t chunk_sites);

/// Runs the streaming scan. options.threads follows the ScannerOptions
/// convention (0 = auto via resolve_scan_threads, 1 = serial, > 1 = the
/// work-stealing span engine over the resident chunk's grid positions; the
/// IO thread is always extra).
///
/// `backend_factory` matches scan()'s: nullptr means the CPU nested loop.
/// One backend instance per compute worker is created for the whole stream,
/// so accelerator degradation (FallbackBackend) persists across chunks just
/// as it persists across positions in-memory. Serial streams are bitwise
/// identical to serial scan(); multithreaded streams are bitwise identical
/// to the multithreaded scan (same per-position guarantee, per-worker fault
/// PRNG sequences depend on the schedule).
ScanResult stream_scan(io::ChunkReader& reader, const ScannerOptions& options,
                       const StreamScanOptions& stream_options = {},
                       const std::function<std::unique_ptr<OmegaBackend>()>&
                           backend_factory = {});

}  // namespace omega::core
