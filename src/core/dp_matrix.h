#pragma once
// The dynamic-programming matrix M of Eq. (3):
//
//   M(i, j) = sum of r2_{p,q} over all SNP pairs j <= q < p <= i
//
// built with the OmegaPlus recurrence
//
//   M(i, i)   = 0
//   M(i, i-1) = r2(i, i-1)
//   M(i, j)   = M(i, j+1) + M(i-1, j) - M(i-1, j+1) + r2(i, j)
//
// and supporting the tool's data-reuse optimization: when consecutive grid
// regions overlap, already computed entries are *relocated* (the sub-triangle
// for the overlapping SNP range is kept; M(i,j) only depends on r2 values
// inside [j, i], so the relocated entries stay valid) and only rows for new
// SNPs are computed.
//
// Storage is a packed lower triangle addressed by *global* SNP indices so the
// scanner never translates coordinates. Entries are double: the CPU side is
// the precision reference; accelerator backends consume float casts of these
// sums exactly as OmegaPlus's host code feeds its accelerators.

#include <cstdint>
#include <vector>

#include "ld/ld_engine.h"

namespace omega::par {
class ThreadPool;
}

namespace omega::core {

/// Lifetime reuse accounting of one DpMatrix (observability layer): how the
/// matrix was advanced across grid positions and how many Eq. (3) cells the
/// relocation optimization saved versus recomputed.
struct DpMatrixStats {
  std::uint64_t resets = 0;            // reset() calls (full rebuilds)
  std::uint64_t relocations = 0;       // relocate() calls that kept cells
  std::uint64_t cells_reused = 0;      // entries carried over by relocation
  std::uint64_t cells_recomputed = 0;  // entries computed by extend()
};

class DpMatrix {
 public:
  DpMatrix() = default;

  /// Empties the matrix and anchors it at `base` (global index of local 0).
  void reset(std::size_t base);

  [[nodiscard]] std::size_t base() const noexcept { return base_; }
  /// One past the last covered global SNP index.
  [[nodiscard]] std::size_t end() const noexcept { return base_ + count_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// M(gi, gj) for base() <= gj <= gi < end(). M(gi, gi) == 0.
  [[nodiscard]] double at(std::size_t gi, std::size_t gj) const;

  /// Sum of r2 over all pairs within the inclusive global range [glo, ghi].
  [[nodiscard]] double range_sum(std::size_t glo, std::size_t ghi) const {
    return at(ghi, glo);
  }

  /// Unchecked accessor for the omega nested loop (the scan hot path); the
  /// caller guarantees base() <= gj <= gi < end().
  [[nodiscard]] double at_fast(std::size_t gi, std::size_t gj) const noexcept {
    const std::size_t i = gi - base_;
    const std::size_t j = gj - base_;
    return i == j ? 0.0 : storage_[row_offset(i) + j];
  }

  /// Raw contiguous slice of row `gi` of the packed triangle: entry k is
  /// M(gi, base() + k) for k = 0 .. gi - base() - 1. The diagonal M(gi, gi)
  /// is implicit (zero) and NOT part of the slice — vectorized kernels must
  /// only read columns strictly below gi. Caller guarantees
  /// base() <= gi < end().
  [[nodiscard]] const double* row_data(std::size_t gi) const noexcept {
    return storage_.data() + row_offset(gi - base_);
  }

  /// Drops all state before `new_base` (new_base >= base). The kept
  /// sub-triangle is moved in place — this is the OmegaPlus relocation.
  void relocate(std::size_t new_base);

  /// Grows coverage to [base, new_end) computing new rows via the Eq. (3)
  /// recurrence in telescoped form: row i equals row i-1 plus the suffix-sum
  /// of row i's fresh r2 values, so the per-cell 4-term dependency chain
  /// becomes one suffix scan per row (independent across rows) followed by a
  /// vectorizable row add. r2 values for the new rows are fetched in one
  /// block from the engine (which is where the GEMM engine gets its batch
  /// efficiency) into a reusable scratch buffer. When `pool` is non-null,
  /// large extends tile the suffix-scan phase across it; results are
  /// bit-identical with or without a pool (per-row summation order is
  /// fixed).
  void extend(std::size_t new_end, const ld::LdEngine& engine,
              par::ThreadPool* pool = nullptr);

  /// Number of r2 values fetched over the object's lifetime (reuse metric).
  [[nodiscard]] std::uint64_t r2_fetches() const noexcept { return r2_fetches_; }

  /// Lifetime reset/relocate/extend accounting (reuse observability).
  [[nodiscard]] const DpMatrixStats& stats() const noexcept { return stats_; }

  /// Bytes currently held by the triangle.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return storage_.size() * sizeof(double);
  }

 private:
  /// Offset of local row i (which stores entries j = 0 .. i-1).
  [[nodiscard]] static std::size_t row_offset(std::size_t i) noexcept {
    return i * (i - 1) / 2;
  }

  std::size_t base_ = 0;
  std::size_t count_ = 0;
  std::vector<double> storage_;  // packed lower triangle, diagonal implicit 0
  std::vector<float> r2_scratch_;  // reusable extend() fetch buffer
  std::uint64_t r2_fetches_ = 0;
  DpMatrixStats stats_;
};

}  // namespace omega::core
