#pragma once
// Brute-force oracle for the omega statistic: computes every pairwise r2
// directly from the unpacked dataset (double precision) and evaluates each
// window combination by explicit summation — no DP matrix, no relocation, no
// packing. Deliberately the most independent possible implementation; the
// test suite validates every optimized backend against it.

#include "core/grid.h"
#include "core/omega_search.h"
#include "io/dataset.h"

namespace omega::core {

/// O(W^2 * samples + combinations * W^2); test scales only.
OmegaResult brute_force_position(const io::Dataset& dataset,
                                 const GridPosition& position);

/// Single omega value for explicit borders (a..c | c+1..b), brute force.
double brute_force_omega(const io::Dataset& dataset, std::size_t a,
                         std::size_t c, std::size_t b);

}  // namespace omega::core
