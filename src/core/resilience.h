#pragma once
// Fault-tolerant scan runtime: structured backend errors, the retry/backoff +
// quarantine recovery engine, and the CPU-degradation decorator.
//
// Failure semantics (docs/ROBUSTNESS.md has the full state machine):
//
//   * A backend signals failure by throwing BackendError. KernelLaunch and
//     Timeout are transient (retryable); DeviceLost is terminal for the
//     backend instance.
//   * recover_max_omega() retries transient failures up to
//     RecoveryPolicy::max_retries with exponential backoff charged to a
//     virtual clock (no wall-sleep), validates results for NaN/Inf poisoning,
//     and quarantines the position when retries are exhausted — the grid
//     position is marked invalid instead of aborting the whole-genome scan.
//   * FallbackBackend wraps an accelerator backend and demotes it to the CPU
//     nested loop mid-scan on DeviceLost, producing bit-identical omegas on
//     the degraded positions (the CPU loop is the reference arithmetic).
//
// Every recovery action is counted in ScanProfile::faults (metrics schema v3)
// and emitted as a trace instant when tracing is on.

#include <memory>
#include <stdexcept>
#include <string>

#include "core/scanner.h"

namespace omega::core {

enum class BackendErrorKind {
  KernelLaunch,  // launch/enqueue failed before any work ran
  Timeout,       // modeled device time exceeded its budget
  DeviceLost,    // device dropped permanently; instance is unusable
};

[[nodiscard]] const char* backend_error_kind_name(BackendErrorKind kind) noexcept;

/// Structured backend failure. Thrown by accelerator backends (fault
/// injection or modeled-timeout enforcement) and consumed by the recovery
/// engine; anything else escaping a backend is a programming error and
/// propagates out of the scan.
class BackendError : public std::runtime_error {
 public:
  BackendError(BackendErrorKind kind, std::string backend, const std::string& detail);

  [[nodiscard]] BackendErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& backend() const noexcept { return backend_; }
  /// Transient errors are worth retrying on the same instance; DeviceLost is
  /// not (the instance never recovers).
  [[nodiscard]] bool retryable() const noexcept {
    return kind_ != BackendErrorKind::DeviceLost;
  }

 private:
  BackendErrorKind kind_;
  std::string backend_;
};

/// Decorator implementing graceful degradation: delegates to the primary
/// (accelerator) backend until it throws DeviceLost, then permanently demotes
/// to the CPU nested loop — including recomputing the position that observed
/// the loss, so no result is dropped. Transient errors pass through to the
/// recovery engine untouched.
class FallbackBackend final : public OmegaBackend {
 public:
  /// `kind` selects the CPU kernel body used after degradation (the scan
  /// driver passes its resolved --cpu-kernel choice so degraded positions use
  /// the same arithmetic the pure-CPU scan would).
  explicit FallbackBackend(std::unique_ptr<OmegaBackend> primary,
                           CpuKernelKind kind = CpuKernelKind::Auto);

  [[nodiscard]] std::string name() const override;
  OmegaResult max_omega(const DpMatrix& m,
                        const GridPosition& position) override;
  void contribute(ScanProfile& profile) const override;

  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

 private:
  std::unique_ptr<OmegaBackend> primary_;
  CpuOmegaBackend cpu_;
  bool degraded_ = false;
};

/// Outcome of one recovered position. `ok == false` means the position was
/// quarantined after the policy gave up; `result` is then default-initialized.
struct RecoveryOutcome {
  OmegaResult result;
  bool ok = false;
  /// Attempts beyond the first that this position consumed.
  std::size_t retries = 0;
};

/// Runs backend.max_omega(m, position) under the recovery policy: transient
/// BackendErrors and (optionally) non-finite results are retried with
/// virtual-clock exponential backoff; exhaustion or a non-retryable error
/// quarantines the position. Counters land in `stats`.
RecoveryOutcome recover_max_omega(OmegaBackend& backend, const DpMatrix& m,
                                  const GridPosition& position,
                                  const RecoveryPolicy& policy,
                                  FaultRecoveryStats& stats);

}  // namespace omega::core
