#include "core/metrics_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/table.h"

namespace omega::core::metrics {

namespace {

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

/// Identity/context keys that are not comparable measurements. Skipped only
/// at the document root (an embedded scan document's "name" is fair game).
bool skip_root_key(std::string_view key) noexcept {
  return key == "schema" || key == "schema_version" || key == "name" ||
         key == "bench" || key == "host";
}

/// Subtrees whose values are distributions rather than scalar measurements;
/// skipped at ANY depth — bench documents embed whole scan-metrics documents
/// under results.<key>, nesting their telemetry/trace blocks.
bool skip_distribution(std::string_view key) noexcept {
  return key == "telemetry" || key == "trace";
}

void flatten(const JsonValue& value, const std::string& prefix,
             std::vector<std::pair<std::string, double>>& out) {
  switch (value.kind()) {
    case JsonValue::Kind::Int:
    case JsonValue::Kind::Double:
      out.emplace_back(prefix, value.as_double());
      return;
    case JsonValue::Kind::Object:
      for (const auto& [key, member] : value.members()) {
        if (prefix.empty() && skip_root_key(key)) continue;
        if (skip_distribution(key)) continue;
        flatten(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      return;
    case JsonValue::Kind::Array: {
      std::size_t index = 0;
      for (const JsonValue& item : value.items()) {
        flatten(item, prefix + "[" + std::to_string(index) + "]", out);
        ++index;
      }
      return;
    }
    default:
      return;  // strings/bools/nulls are not measurements
  }
}

const JsonValue* host_field(const JsonValue& doc, std::string_view field) {
  const JsonValue* host = doc.find("host");
  if (host == nullptr || !host->is_object()) return nullptr;
  const JsonValue* value = host->find(field);
  return (value != nullptr && value->kind() == JsonValue::Kind::String)
             ? value
             : nullptr;
}

std::string percent(double change) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", change * 100.0);
  return buffer;
}

}  // namespace

Direction metric_direction(std::string_view path) noexcept {
  // Rates first: "omega_throughput_per_s" contains no time token, but
  // "io_overlap_ratio" must not be classified by a future "io_seconds"-style
  // rule, so higher-is-better tokens take precedence.
  if (contains(path, "per_s") || contains(path, "throughput") ||
      contains(path, "speedup") || contains(path, "rate") ||
      contains(path, "ratio")) {
    return Direction::HigherIsBetter;
  }
  if (contains(path, "seconds") || contains(path, "_ns") ||
      contains(path, "cycles") || contains(path, "stall")) {
    return Direction::LowerIsBetter;
  }
  return Direction::Informational;
}

std::size_t DiffReport::regressions() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [](const MetricDelta& d) { return d.regressed; }));
}

DiffReport diff_metrics(const JsonValue& baseline, const JsonValue& candidate,
                        const DiffOptions& options) {
  DiffReport report;

  const JsonValue* base_schema = baseline.find("schema");
  const JsonValue* cand_schema = candidate.find("schema");
  if (base_schema != nullptr && cand_schema != nullptr &&
      *base_schema != *cand_schema) {
    report.error = "schema mismatch: " + base_schema->as_string() + " vs " +
                   cand_schema->as_string();
    return report;
  }
  const JsonValue* base_version = baseline.find("schema_version");
  const JsonValue* cand_version = candidate.find("schema_version");
  if (!options.allow_schema_drift && base_version != nullptr &&
      cand_version != nullptr && *base_version != *cand_version) {
    report.error =
        "schema version mismatch: " + std::to_string(base_version->as_int()) +
        " vs " + std::to_string(cand_version->as_int()) +
        " — pass --allow-schema-drift to diff the intersecting keys";
    return report;
  }

  if (!options.allow_cross_host) {
    for (const char* field : {"hostname", "cpu"}) {
      const JsonValue* base_field = host_field(baseline, field);
      const JsonValue* cand_field = host_field(candidate, field);
      if (base_field != nullptr && cand_field != nullptr &&
          base_field->as_string() != cand_field->as_string()) {
        report.error = std::string("host mismatch (") + field + "): \"" +
                       base_field->as_string() + "\" vs \"" +
                       cand_field->as_string() +
                       "\" — pass --allow-cross-host to compare anyway";
        return report;
      }
    }
  }

  std::vector<std::pair<std::string, double>> base_leaves;
  std::vector<std::pair<std::string, double>> cand_leaves;
  flatten(baseline, "", base_leaves);
  flatten(candidate, "", cand_leaves);

  for (const auto& [path, base_value] : base_leaves) {
    const auto it = std::find_if(
        cand_leaves.begin(), cand_leaves.end(),
        [&path = path](const auto& leaf) { return leaf.first == path; });
    if (it == cand_leaves.end()) continue;  // structure changed; not gating

    MetricDelta delta;
    delta.path = path;
    delta.baseline = base_value;
    delta.candidate = it->second;
    delta.direction = metric_direction(path);
    delta.change = base_value != 0.0
                       ? (it->second - base_value) / std::abs(base_value)
                       : 0.0;

    const bool matches_watch =
        std::any_of(options.watch.begin(), options.watch.end(),
                    [&path = path](const std::string& needle) {
                      return contains(path, needle);
                    });
    delta.watched = options.watch.empty()
                        ? delta.direction != Direction::Informational
                        : matches_watch;

    if (delta.watched) {
      // Sub-floor time baselines have unbounded relative noise; never gate
      // on them.
      const bool floored = contains(path, "seconds") &&
                           delta.baseline < options.min_seconds;
      if (!floored) {
        switch (delta.direction) {
          case Direction::LowerIsBetter:
            delta.regressed =
                delta.baseline > 0.0 &&
                delta.candidate > delta.baseline * (1.0 + options.threshold);
            break;
          case Direction::HigherIsBetter:
            delta.regressed =
                delta.baseline > 0.0 &&
                delta.candidate < delta.baseline * (1.0 - options.threshold);
            break;
          case Direction::Informational:
            delta.regressed =
                (delta.baseline != 0.0 &&
                 std::abs(delta.change) > options.threshold) ||
                (delta.baseline == 0.0 && delta.candidate != 0.0);
            break;
        }
      }
    }
    if (delta.regressed) report.regressed = true;
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

JsonValue render_diff_json(const DiffReport& report, bool all) {
  const auto direction_name = [](Direction direction) -> const char* {
    switch (direction) {
      case Direction::LowerIsBetter:
        return "lower_is_better";
      case Direction::HigherIsBetter:
        return "higher_is_better";
      case Direction::Informational:
        return "informational";
    }
    return "informational";
  };
  JsonValue doc = JsonValue::object();
  doc.set("schema", "omega.metrics.diff");
  doc.set("schema_version", 1);
  doc.set("verdict", !report.error.empty() ? "refused"
                     : report.regressed   ? "regressed"
                                          : "ok");
  if (!report.error.empty()) doc.set("error", report.error);
  doc.set("regressions", static_cast<std::uint64_t>(report.regressions()));
  JsonValue deltas = JsonValue::array();
  for (const MetricDelta& delta : report.deltas) {
    const bool interesting =
        all || delta.regressed || (delta.watched && delta.change != 0.0);
    if (!interesting) continue;
    JsonValue entry = JsonValue::object();
    entry.set("path", delta.path);
    entry.set("baseline", delta.baseline);
    entry.set("candidate", delta.candidate);
    entry.set("change", delta.change);
    entry.set("direction", direction_name(delta.direction));
    entry.set("watched", delta.watched);
    entry.set("regressed", delta.regressed);
    deltas.push_back(std::move(entry));
  }
  doc.set("deltas", std::move(deltas));
  return doc;
}

std::string render_diff_table(const DiffReport& report, bool all) {
  if (!report.error.empty()) return "error: " + report.error + "\n";
  util::Table table({"metric", "baseline", "candidate", "change", "flag"});
  for (const MetricDelta& delta : report.deltas) {
    const bool interesting =
        all || delta.regressed || (delta.watched && delta.change != 0.0);
    if (!interesting) continue;
    const char* flag = delta.regressed ? "REGRESSED"
                       : delta.watched ? "ok"
                                       : "";
    table.add_row({delta.path, util::Table::num(delta.baseline, 6),
                   util::Table::num(delta.candidate, 6),
                   percent(delta.change), flag});
  }
  return table.str();
}

}  // namespace omega::core::metrics
