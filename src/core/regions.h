#pragma once
// Post-processing of the omega landscape: consecutive above-threshold grid
// positions merge into candidate *regions* (whole-genome scans report swept
// regions, not isolated grid points), with the peak position and score per
// region. This is the step between a Report file and a biological claim.

#include <cstdint>
#include <vector>

#include "core/scanner.h"

namespace omega::core {

struct CandidateRegion {
  std::int64_t start_bp = 0;  // first above-threshold grid position
  std::int64_t end_bp = 0;    // last above-threshold grid position
  std::int64_t peak_bp = 0;
  double peak_omega = 0.0;
  std::size_t grid_positions = 0;  // contiguous positions merged

  [[nodiscard]] std::int64_t span_bp() const noexcept {
    return end_bp - start_bp;
  }
};

/// Merges contiguous grid positions with omega >= threshold. Two runs of
/// above-threshold positions separated by at most `max_gap` below-threshold
/// positions are joined (sweeps often dip at their own center where
/// cross-region LD vanishes). Regions are returned in genome order.
std::vector<CandidateRegion> merge_regions(const ScanResult& result,
                                           double threshold,
                                           std::size_t max_gap = 0);

/// Threshold from the landscape itself: the given quantile of the valid
/// per-position maxima (e.g. 0.95 flags the top 5% of positions).
double landscape_quantile(const ScanResult& result, double quantile);

}  // namespace omega::core
