#pragma once
// Comparison engine behind tools/omega_metrics_diff: flattens two metrics
// documents (omega.scan.metrics or omega.bench) into dotted numeric paths,
// classifies each path's improvement direction from its name, and flags
// regressions beyond a relative threshold. Lives in core (not the tool) so
// the regression logic is unit-testable on fixture JsonValues and reusable
// by future CI harnesses.

#include <string>
#include <string_view>
#include <vector>

#include "core/metrics_json.h"

namespace omega::core::metrics {

/// Which way "better" points for a metric, inferred from its path.
enum class Direction {
  LowerIsBetter,   // times: *seconds*, *_ns*, *cycles*, *stall*
  HigherIsBetter,  // rates: *per_s*, *throughput*, *speedup*, *rate*, *ratio*
  Informational,   // counters and geometry: compared but never gating alone
};

[[nodiscard]] Direction metric_direction(std::string_view path) noexcept;

struct DiffOptions {
  /// Relative change beyond which a watched metric counts as regressed
  /// (0.20 = 20% worse).
  double threshold = 0.20;
  /// Time metrics with a baseline below this floor are never gating — their
  /// relative noise is unbounded.
  double min_seconds = 1e-4;
  /// Substring filters selecting which paths gate the exit code. Empty: every
  /// LowerIsBetter/HigherIsBetter metric is watched. A watch filter also
  /// promotes Informational metrics it matches to gating.
  std::vector<std::string> watch;
  /// Compare documents from different hosts instead of refusing.
  bool allow_cross_host = false;
  /// Compare documents across schema versions instead of refusing: only the
  /// intersecting metric paths are diffed (the flatten pass already skips
  /// paths missing from either side), so a v9 baseline keeps gating a v10
  /// run. Same-schema-name and same-host checks still apply.
  bool allow_schema_drift = false;
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  /// Relative change (candidate - baseline) / |baseline|; 0 when the baseline
  /// is zero (the absolute values still tell the story).
  double change = 0.0;
  Direction direction = Direction::Informational;
  bool watched = false;
  bool regressed = false;
};

struct DiffReport {
  std::vector<MetricDelta> deltas;  // document order
  /// Fatal comparison refusal (host mismatch, schema mismatch); when
  /// non-empty, deltas are empty and `regressed` is false — the caller maps
  /// this to its own exit code.
  std::string error;
  bool regressed = false;

  [[nodiscard]] std::size_t regressions() const noexcept;
};

/// Compares two parsed metrics documents. Numeric leaves are flattened to
/// dotted paths; non-numeric leaves, the "telemetry"/"trace" subtrees
/// (distributions need their own tooling), and identity fields (schema,
/// name, host) are skipped. When both documents carry a "host" block and
/// options.allow_cross_host is false, differing hostname/cpu fields refuse
/// the comparison (DiffReport::error).
[[nodiscard]] DiffReport diff_metrics(const JsonValue& baseline,
                                      const JsonValue& candidate,
                                      const DiffOptions& options = {});

/// Renders the per-stage comparison table (watched + regressed + changed
/// rows; pass `all` to include every delta).
[[nodiscard]] std::string render_diff_table(const DiffReport& report,
                                            bool all = false);

/// Machine-readable rendering of one comparison ("omega.metrics.diff"
/// document): the verdict ("ok" | "regressed" | "refused"), the refusal
/// error when present, the regression count, and the per-key deltas with
/// direction/watched/regressed flags. Row selection matches
/// render_diff_table (pass `all` to include every delta), so the JSON and
/// table views of the same report always agree.
[[nodiscard]] JsonValue render_diff_json(const DiffReport& report,
                                         bool all = false);

}  // namespace omega::core::metrics
