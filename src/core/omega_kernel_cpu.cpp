#include "core/omega_kernel_cpu.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "core/omega_math.h"
#include "util/cpu_features.h"

namespace omega::core {

const char* cpu_kernel_name(CpuKernelKind kind) noexcept {
  switch (kind) {
    case CpuKernelKind::Auto: return "auto";
    case CpuKernelKind::Scalar: return "scalar";
    case CpuKernelKind::Portable: return "portable";
    case CpuKernelKind::Avx2: return "avx2";
  }
  return "unknown";
}

CpuKernelKind cpu_kernel_from_name(const std::string& name) {
  if (name == "auto") return CpuKernelKind::Auto;
  if (name == "scalar") return CpuKernelKind::Scalar;
  if (name == "portable") return CpuKernelKind::Portable;
  if (name == "avx2") return CpuKernelKind::Avx2;
  throw std::invalid_argument("unknown cpu kernel '" + name +
                              "' (expected auto | scalar | portable | avx2)");
}

bool cpu_kernel_avx2_available() noexcept {
#if defined(OMEGA_HAVE_AVX2_TU)
  return util::cpu_has_avx2_fma();
#else
  return false;
#endif
}

CpuKernelKind resolve_cpu_kernel(CpuKernelKind requested) {
  switch (requested) {
    case CpuKernelKind::Auto:
      return cpu_kernel_avx2_available() ? CpuKernelKind::Avx2
                                         : CpuKernelKind::Portable;
    case CpuKernelKind::Avx2:
      if (!cpu_kernel_avx2_available()) {
        throw std::runtime_error(
            "cpu kernel 'avx2' requested but unavailable (" +
            std::string(
#if defined(OMEGA_HAVE_AVX2_TU)
                "host CPU lacks AVX2+FMA"
#else
                "binary built without AVX2 support"
#endif
                ) +
            "); use --cpu-kernel=auto");
      }
      return CpuKernelKind::Avx2;
    case CpuKernelKind::Scalar:
    case CpuKernelKind::Portable:
      return requested;
  }
  throw std::logic_error("resolve_cpu_kernel: unknown kind");
}

void CpuKernelCounters::add(CpuKernelKind kind,
                            std::uint64_t evaluations) noexcept {
  switch (kind) {
    case CpuKernelKind::Scalar: scalar_evaluations += evaluations; break;
    case CpuKernelKind::Portable: portable_evaluations += evaluations; break;
    case CpuKernelKind::Avx2: avx2_evaluations += evaluations; break;
    case CpuKernelKind::Auto: break;  // unresolved kinds never run
  }
}

void OmegaKernelScratch::prepare(const DpMatrix& m,
                                 const GridPosition& position) {
  const std::size_t n_left = position.a_max - position.lo + 1;
  ls.resize(n_left);
  kl.resize(n_left);
  l_d.resize(n_left);
  const std::size_t c = position.c;
  for (std::size_t ai = 0; ai < n_left; ++ai) {
    const std::size_t a = position.lo + ai;
    const std::size_t l = c - a + 1;
    // at_fast (not a raw row read): degenerate hand-built positions allow
    // a == c, where LS is the implicit zero diagonal entry.
    ls[ai] = m.at_fast(c, a);
    kl[ai] = choose2(l);
    l_d[ai] = static_cast<double>(l);
  }
}

namespace {

/// Portable fused-divide body: two passes per right border — a branch-free
/// omega computation into the scratch row (autovectorizable: every operation
/// is a lane-wise add/mul/div over the SoA tables and the contiguous row-b
/// slice), then a scalar argmax scan preserving the reference tie-break.
OmegaResult portable_search_range(const DpMatrix& m,
                                  const GridPosition& position,
                                  std::size_t b_begin, std::size_t b_end,
                                  OmegaKernelScratch& scratch) {
  OmegaResult result;
  const std::size_t c = position.c;
  const std::size_t n_left = position.a_max - position.lo + 1;
  const double eps = OmegaConfig::denominator_offset;
  scratch.omega.resize(n_left);
  double* buf = scratch.omega.data();
  const double* ls = scratch.ls.data();
  const double* kl = scratch.kl.data();
  const double* l_d = scratch.l_d.data();

  for (std::size_t b = b_begin; b <= b_end; ++b) {
    const double rs = m.at_fast(b, c + 1);
    const double r_d = static_cast<double>(b - c);
    const double kr = choose2(b - c);
    // a < b always (a <= c < b), so the row-b slice never touches the
    // implicit diagonal and a raw contiguous read is safe.
    const double* row_b = m.row_data(b) + (position.lo - m.base());
    for (std::size_t ai = 0; ai < n_left; ++ai) {
      const double lr = l_d[ai] * r_d;
      const double sum = ls[ai] + rs;
      const double cross = row_b[ai] - sum;
      const double pairs = kl[ai] + kr;
      // Fused form of Eq. (2): one divide per omega. pairs == 0 only for
      // degenerate l == r == 1 windows, where the reference scores 0.
      buf[ai] = pairs > 0.0 ? (sum * lr) / (pairs * (cross + eps * lr)) : 0.0;
    }
    result.evaluated += n_left;
    for (std::size_t ai = 0; ai < n_left; ++ai) {
      if (buf[ai] > result.max_omega) {
        result.max_omega = buf[ai];
        result.best_a = position.lo + ai;
        result.best_b = b;
      }
    }
  }
  return result;
}

}  // namespace

OmegaResult omega_kernel_search_range(const DpMatrix& m,
                                      const GridPosition& position,
                                      std::size_t b_begin, std::size_t b_end,
                                      CpuKernelKind kind,
                                      OmegaKernelScratch& scratch) {
  if (!position.valid || b_begin > b_end) return {};
  switch (kind) {
    case CpuKernelKind::Scalar:
      return max_omega_search_range(m, position, b_begin, b_end);
    case CpuKernelKind::Portable:
      scratch.prepare(m, position);
      return portable_search_range(m, position, b_begin, b_end, scratch);
    case CpuKernelKind::Avx2:
#if defined(OMEGA_HAVE_AVX2_TU)
      scratch.prepare(m, position);
      return detail::omega_search_avx2_f64(m, position, b_begin, b_end,
                                           scratch);
#else
      throw std::logic_error(
          "omega_kernel_search_range: avx2 kernel not compiled in");
#endif
    case CpuKernelKind::Auto:
      break;
  }
  throw std::logic_error(
      "omega_kernel_search_range: kind must be resolved before dispatch");
}

OmegaResult omega_kernel_search(const DpMatrix& m, const GridPosition& position,
                                CpuKernelKind kind,
                                OmegaKernelScratch& scratch) {
  if (!position.valid) return {};
  return omega_kernel_search_range(m, position, position.b_min, position.hi,
                                   kind, scratch);
}

OmegaResult omega_kernel_search_parallel(
    par::ThreadPool& pool, const DpMatrix& m, const GridPosition& position,
    CpuKernelKind kind, std::vector<OmegaKernelScratch>& lane_scratch) {
  OmegaResult result;
  if (!position.valid) return result;
  const std::size_t b_count = position.hi - position.b_min + 1;
  const std::size_t lanes = pool.size() + 1;
  const std::size_t chunk = (b_count + lanes - 1) / lanes;
  if (lane_scratch.size() < lanes) lane_scratch.resize(lanes);

  std::vector<OmegaResult> partials(lanes);
  std::vector<std::function<void()>> tasks;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t begin = position.b_min + lane * chunk;
    if (begin > position.hi) break;
    const std::size_t end = std::min(position.hi, begin + chunk - 1);
    tasks.emplace_back([&, lane, begin, end] {
      partials[lane] = omega_kernel_search_range(m, position, begin, end, kind,
                                                 lane_scratch[lane]);
    });
  }
  pool.run_blocking(std::move(tasks));

  // Lane-order reduce: lower b ranges first, so ties resolve exactly as in
  // the sequential b-major scan of the same kernel kind.
  for (const auto& partial : partials) {
    result.evaluated += partial.evaluated;
    if (partial.evaluated > 0 && partial.max_omega > result.max_omega) {
      result.max_omega = partial.max_omega;
      result.best_a = partial.best_a;
      result.best_b = partial.best_b;
    }
  }
  return result;
}

OmegaResult omega_kernel_search_f32(const PositionBuffers& buffers,
                                    const GridPosition& position,
                                    CpuKernelKind kind) {
  OmegaResult result;
  if (!position.valid || buffers.num_left == 0 || buffers.num_right == 0) {
    return result;
  }
  const std::size_t nl = buffers.num_left;
  const std::size_t nr = buffers.num_right;
  result.evaluated = static_cast<std::uint64_t>(nl) * nr;

  float best = 0.0f;
  std::size_t best_ai = 0, best_bi = 0;
  bool found = false;

  if (kind == CpuKernelKind::Avx2) {
#if defined(OMEGA_HAVE_AVX2_TU)
    std::vector<float> r_f(nr);
    for (std::size_t bi = 0; bi < nr; ++bi) {
      r_f[bi] = static_cast<float>(buffers.r_counts[bi]);
    }
    OmegaResult wide = detail::omega_search_avx2_f32(buffers, position, r_f);
    wide.evaluated = result.evaluated;
    return wide;
#else
    throw std::logic_error(
        "omega_kernel_search_f32: avx2 kernel not compiled in");
#endif
  }
  if (kind == CpuKernelKind::Auto) {
    throw std::logic_error(
        "omega_kernel_search_f32: kind must be resolved before dispatch");
  }

  // Scalar and Portable share the exact omega_from_sums_f arithmetic; the
  // portable body spells the ops out over the precomputed C(l,2)/C(r,2)
  // tables (bit-identical — the binomials are exact in float after a single
  // rounding either way) so the compiler can lift the ai-invariant terms.
  const float eps = static_cast<float>(OmegaConfig::denominator_offset);
  for (std::size_t ai = 0; ai < nl; ++ai) {
    const float lsa = buffers.ls[ai];
    const float ka = buffers.k[ai];
    const float lf = static_cast<float>(buffers.l_counts[ai]);
    const float* trow = buffers.total.data() + ai * nr;
    for (std::size_t bi = 0; bi < nr; ++bi) {
      float w;
      if (kind == CpuKernelKind::Scalar) {
        const float within = lsa + buffers.rs[bi];
        w = omega_from_sums_f(lsa, buffers.rs[bi], trow[bi] - within,
                              buffers.l_counts[ai], buffers.r_counts[bi]);
      } else {
        const float within = lsa + buffers.rs[bi];
        const float pairs = ka + buffers.m_binom[bi];
        if (pairs <= 0.0f) {
          w = 0.0f;
        } else {
          const float cross = trow[bi] - within;
          const float lr = lf * static_cast<float>(buffers.r_counts[bi]);
          const float numerator = within / pairs;
          const float denominator = cross / lr + eps;
          w = numerator / denominator;
        }
      }
      if (w > best) {
        best = w;
        best_ai = ai;
        best_bi = bi;
        found = true;
      }
    }
  }
  result.max_omega = static_cast<double>(best);
  if (found) {
    result.best_a = position.lo + best_ai;
    result.best_b = position.b_min + best_bi;
  }
  return result;
}

}  // namespace omega::core
