#pragma once
// Scan parameters mirroring OmegaPlus's command line: number of grid
// positions, minimum/maximum window extents, and numeric conventions.

#include <cstdint>
#include <stdexcept>

namespace omega::core {

/// Window extents can be given in base pairs (OmegaPlus -minwin/-maxwin) or
/// directly in SNP counts (the unit the paper's GPU evaluation uses:
/// "maximum window size of 20,000 SNPs and minimum window size of 1,000
/// SNPs").
enum class WindowUnit { BasePairs, Snps };

struct OmegaConfig {
  /// Number of equidistant omega positions along the dataset (OmegaPlus
  /// -grid).
  std::size_t grid_size = 1'000;

  WindowUnit window_unit = WindowUnit::BasePairs;
  /// Total window extent; each side of an omega position may reach at most
  /// max_window / 2 from the position.
  std::int64_t max_window = 200'000;
  /// Each evaluated window must reach at least min_window / 2 out on both
  /// sides (OmegaPlus border semantics).
  std::int64_t min_window = 2;

  /// Safety cap on SNPs per sub-region; bounds the O(W^2) DP matrix. 0 = no
  /// cap. (OmegaPlus has no explicit cap and simply allocates; a cap makes
  /// laptop-scale runs predictable.)
  std::size_t max_snps_per_side = 0;

  /// Both sub-regions need at least this many SNPs for Eq. (2) to be defined
  /// (the binomial coefficients vanish below 2).
  static constexpr std::size_t min_side_snps = 2;

  /// OmegaPlus's DENOMINATOR_OFFSET: added to the omega denominator to keep
  /// positions with zero cross-region LD finite (they score very high, as
  /// they should — that is the sweep signal).
  static constexpr double denominator_offset = 1e-5;

  void validate() const {
    if (grid_size == 0) throw std::invalid_argument("config: grid_size == 0");
    if (max_window < min_window) {
      throw std::invalid_argument("config: max_window < min_window");
    }
    if (min_window < 0) throw std::invalid_argument("config: min_window < 0");
  }
};

}  // namespace omega::core
