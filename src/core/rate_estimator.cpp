#include "core/rate_estimator.h"

namespace omega::core {

RateEstimator::RateEstimator(double alpha) noexcept
    : alpha_(alpha > 0.0 && alpha <= 1.0 ? alpha : 0.3) {}

void RateEstimator::observe(std::uint64_t positions,
                            double seconds) noexcept {
  if (positions == 0 || !(seconds > 0.0)) return;
  const double rate = static_cast<double>(positions) / seconds;
  ewma_ = observations_ == 0 ? rate : alpha_ * rate + (1.0 - alpha_) * ewma_;
  ++observations_;
}

void RateEstimator::reset() noexcept {
  ewma_ = 0.0;
  observations_ = 0;
}

}  // namespace omega::core
