#pragma once
// Full OmegaPlus workflow (paper Fig. 3): for every grid position, relocate
// the DP matrix over the overlapping SNP range (data-reuse optimization),
// compute r2 for fresh pairs through an LD engine, update M with the Eq. (3)
// recurrence, and run the omega maximization on the selected backend.
//
// Backends plug in through OmegaBackend, so the identical scan driver runs
// on the CPU nested loop, the GPU execution-model simulator, or the FPGA
// pipeline simulator, and results can be compared bit-for-bit at the level
// of reported max-omega windows.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_config.h"
#include "core/omega_kernel_cpu.h"
#include "core/omega_search.h"
#include "io/dataset.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "util/cancel.h"
#include "util/telemetry.h"

namespace omega::util {
class ProgressReporter;
}

namespace omega::core {

struct ScanProfile;
struct HeteroConfig;

/// omega-maximization backend for one grid position.
class OmegaBackend {
 public:
  virtual ~OmegaBackend() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual OmegaResult max_omega(const DpMatrix& m,
                                const GridPosition& position) = 0;
  /// Merges backend-internal accounting (accelerator counters, modeled
  /// device time) into the scan profile. The scan driver calls this once per
  /// backend instance after its last max_omega call.
  virtual void contribute(ScanProfile& profile) const { (void)profile; }
};

/// The CPU omega loop, routed through the dispatched kernel layer
/// (core/omega_kernel_cpu.h): Auto resolves to the AVX2 body when the binary
/// and host support it, the portable fused loop otherwise, and the scalar
/// reference only on explicit request. Evaluation counts per kernel body are
/// merged into ScanProfile::kernel via contribute().
class CpuOmegaBackend final : public OmegaBackend {
 public:
  /// Resolves Auto against this binary/host.
  CpuOmegaBackend();
  /// Resolves `kind`; throws std::runtime_error when Avx2 is forced on a
  /// host that cannot run it.
  explicit CpuOmegaBackend(CpuKernelKind kind);

  [[nodiscard]] std::string name() const override { return "cpu"; }
  OmegaResult max_omega(const DpMatrix& m,
                        const GridPosition& position) override;
  void contribute(ScanProfile& profile) const override;

  /// The concrete kernel this backend runs (never Auto).
  [[nodiscard]] CpuKernelKind kernel() const noexcept { return kind_; }

 private:
  CpuKernelKind kind_;
  OmegaKernelScratch scratch_;
  CpuKernelCounters counters_;
  std::uint64_t positions_ = 0;
};

/// Adapter delegating to a caller-owned backend. scan() destroys the
/// backends its factory produces when it returns; callers that want to
/// inspect backend state afterwards (accelerator accounting) own the real
/// backend and hand scan() borrowed views:
///
///   GpuOmegaBackend backend(spec, pool);
///   scan(dataset, options, [&] { return borrow_backend(backend); });
///   backend.accounting();  // safe
///
/// Only for single-threaded scans (options.threads == 1) unless the inner
/// backend is thread-safe: a multithreaded scan invokes the factory per
/// worker and every borrowed view would alias the same object.
class BorrowedBackend final : public OmegaBackend {
 public:
  explicit BorrowedBackend(OmegaBackend& inner) : inner_(inner) {}
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  OmegaResult max_omega(const DpMatrix& m,
                        const GridPosition& position) override {
    return inner_.max_omega(m, position);
  }
  void contribute(ScanProfile& profile) const override {
    inner_.contribute(profile);
  }

 private:
  OmegaBackend& inner_;
};

inline std::unique_ptr<OmegaBackend> borrow_backend(OmegaBackend& backend) {
  return std::make_unique<BorrowedBackend>(backend);
}

/// LD engine selector. Auto resolves (via resolve_ld_backend) to Packed —
/// the bit-packed blocked engine with runtime AVX2/scalar microkernel
/// dispatch (ld/packed.h). Every kind produces bitwise-identical r2, so the
/// choice affects throughput only; Naive is the unpacked test oracle.
enum class LdBackendKind { Naive, Popcount, Gemm, Packed, Auto };

/// Resolves Auto to the concrete engine kind this build prefers (Packed; the
/// engine itself dispatches AVX2 vs scalar per host). Concrete kinds pass
/// through.
[[nodiscard]] LdBackendKind resolve_ld_backend(LdBackendKind kind) noexcept;

/// Stable engine-kind names ("naive" | "popcount" | "gemm" | "packed" |
/// "auto") — used by the CLI, the checkpoint config hash, and the report.
[[nodiscard]] const char* ld_backend_name(LdBackendKind kind) noexcept;

/// Inverse of ld_backend_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] LdBackendKind ld_backend_from_name(std::string_view name);

/// Recovery policy for backend failures (core/resilience.h has the engine).
/// Backoff is accounted against a virtual clock — the scan never wall-sleeps,
/// so fault-heavy tests stay fast while the metrics still report how long a
/// real deployment would have waited.
struct RecoveryPolicy {
  /// Retries per position after the first failed attempt; exhaustion
  /// quarantines the position (valid = false, quarantined = true).
  std::size_t max_retries = 3;
  double backoff_initial_seconds = 1e-3;
  double backoff_multiplier = 2.0;
  /// Treat non-finite omega results (NaN/Inf from a flaky datapath) as
  /// transient failures subject to the same retry/quarantine path.
  bool validate_results = true;
  /// After a device-lost error, demote the backend to the CPU nested loop
  /// for the rest of its chunk instead of quarantining everything.
  bool fallback_to_cpu = true;

  /// Throws std::invalid_argument on nonsensical settings.
  void validate() const;
};

struct ScannerOptions {
  OmegaConfig config;
  LdBackendKind ld = LdBackendKind::Popcount;
  /// Optional custom LD engine overriding `ld` — e.g. the simulated-GPU GEMM
  /// engine for the complete GPU-accelerated OmegaPlus configuration. The
  /// factory receives the scan's bit-packed matrix (alive for the scan).
  std::function<std::unique_ptr<ld::LdEngine>(const ld::SnpMatrix&)> ld_factory;
  /// Worker-thread count. THE thread-count convention (CLI, scan(), and
  /// stream_scan() all defer here): 1 = serial, > 1 = the work-stealing
  /// multithreaded scan (grid partitioned into relocation-coherent spans,
  /// one DP matrix + backend instance per worker) — the generic
  /// parallelization scheme of the multithreaded OmegaPlus evaluated in
  /// Table IV — and 0 = auto-detect: resolved to
  /// std::thread::hardware_concurrency() once, up front, by
  /// resolve_scan_threads(); the *resolved* count is what the profile and
  /// backend name report.
  std::size_t threads = 1;
  /// Multithreading strategy (Alachiotis & Pavlidis 2016 performance guide):
  /// GridChunks scales with many grid positions; InnerPosition parallelizes
  /// the per-position omega loop instead (one shared DP matrix; profitable
  /// for few positions with large windows). InnerPosition requires the CPU
  /// backend.
  enum class MtStrategy { GridChunks, InnerPosition };
  MtStrategy mt_strategy = MtStrategy::GridChunks;
  /// Disables M relocation between positions (ablation switch; OmegaPlus
  /// always reuses).
  bool reuse = true;
  /// Fault-recovery behaviour of the scan driver (retry/backoff, result
  /// validation, quarantine, CPU degradation). Default-on and free when the
  /// backend never fails.
  RecoveryPolicy recovery;
  /// Which CPU omega-kernel body evaluates grid positions (and serves as the
  /// degradation target of accelerator backends). Auto resolves at scan
  /// setup; forcing Avx2 on an unsupported binary/host makes scan() throw
  /// std::runtime_error before any position is evaluated.
  CpuKernelKind cpu_kernel = CpuKernelKind::Auto;
  /// Optional live progress reporter (util/progress.h). The scan drivers call
  /// begin()/advance()/finish() on it: one advance per scored position (with
  /// retry/quarantine deltas) plus one per streamed chunk. Not owned; must
  /// outlive the scan. The reporter rate-limits internally, so the per-
  /// position overhead is a mutex-guarded accumulate.
  util::ProgressReporter* progress = nullptr;
  /// Optional cooperative-cancellation token (util/cancel.h). Not owned; must
  /// outlive the scan. The drivers poll it between positions (and the
  /// simulator backends poll it around kernel launches), so a request drains
  /// cleanly: workers finish their current position, the partial result is
  /// returned with profile.runtime describing what was skipped, and nothing
  /// throws out of scan()/stream_scan().
  util::CancelToken* cancel = nullptr;
  /// Wall-clock budget for the scan; <= 0 disables. Expiry is converted into
  /// a cancellation (reason Deadline) on `cancel` — or on an internal token
  /// when none was supplied — so deadlines and signals share one drain path.
  double deadline_seconds = 0.0;
  /// Clock the deadline measures against (seconds, monotonic). Defaults to
  /// the steady clock; injectable so deadline expiry is testable without
  /// sleeping, mirroring the retry engine's virtual clock.
  util::Deadline::Clock deadline_clock;
  /// Heterogeneous co-scheduling (core/hetero_scheduler.h): when non-null,
  /// the scan splits the grid across the CPU span engine and the configured
  /// accelerator partitions concurrently, sized by modeled throughput, with
  /// straggler/fault re-dispatch back to the CPU. Results stay bitwise-
  /// identical to the plain CPU scan. Overrides mt_strategy and
  /// backend_factory; `threads` still bounds the total worker count. Not
  /// owned; must outlive the scan.
  const HeteroConfig* hetero = nullptr;
};

struct PositionScore {
  std::int64_t position_bp = 0;
  double max_omega = 0.0;
  std::size_t best_a = 0;
  std::size_t best_b = 0;
  std::uint64_t evaluated = 0;
  bool valid = false;
  /// Recovery gave up on this position (retries exhausted or device lost
  /// with fallback disabled); always paired with valid == false, so best()
  /// and top() skip it via the PR-1 invalid-score machinery.
  bool quarantined = false;
};

/// Per-stage time buckets (profile v2). The three DP-matrix stages add up to
/// the legacy LD bucket; omega_search is the backend max-omega loop.
/// dispatch_seconds is an *informational sub-bucket of omega_search* — the
/// accelerator backends' host-side packing + kernel-selection overhead — and
/// is therefore excluded from sum().
struct StageTimes {
  double ld_reset_seconds = 0.0;     // full DP-matrix rebuilds
  double ld_relocate_seconds = 0.0;  // in-place triangle moves (data reuse)
  double ld_extend_seconds = 0.0;    // r2 fetches + Eq. (3) recurrence
  double omega_search_seconds = 0.0; // backend omega maximization
  double dispatch_seconds = 0.0;     // accelerator pack + kernel dispatch
  [[nodiscard]] double ld_total() const noexcept {
    return ld_reset_seconds + ld_relocate_seconds + ld_extend_seconds;
  }
  [[nodiscard]] double sum() const noexcept {
    return ld_total() + omega_search_seconds;
  }
};

/// DP-matrix relocation effectiveness (the paper's data-reuse optimization):
/// how often consecutive grid positions reused the overlapping sub-triangle
/// and how many M cells that reuse saved.
struct RelocationStats {
  std::uint64_t resets = 0;       // positions that rebuilt M from scratch
  std::uint64_t relocations = 0;  // positions that kept the overlap (hits)
  std::uint64_t cells_reused = 0;      // M entries carried over by relocation
  std::uint64_t cells_recomputed = 0;  // M entries computed by extend()
};

/// Simulated-GPU counters: the Eq. (4) two-kernel dispatch and the modeled
/// device timeline.
struct GpuProfile {
  std::uint64_t kernel1_launches = 0;
  std::uint64_t kernel2_launches = 0;
  std::uint64_t kernel1_omegas = 0;  // omegas dispatched to Kernel I
  std::uint64_t kernel2_omegas = 0;  // omegas dispatched to Kernel II
  double modeled_kernel_seconds = 0.0;
  double modeled_prep_seconds = 0.0;
  double modeled_transfer_seconds = 0.0;
  double modeled_total_seconds = 0.0;
  std::uint64_t bytes_moved = 0;
};

/// Fault-tolerance counters (profile v3): what the injectors produced and
/// what the recovery engine did about it. All-zero in a healthy scan.
struct FaultRecoveryStats {
  std::uint64_t faults_injected = 0;  // total from backend fault injectors
  std::uint64_t injected_kernel_launch = 0;
  std::uint64_t injected_timeout = 0;
  std::uint64_t injected_nan = 0;
  std::uint64_t injected_device_lost = 0;
  /// BackendError exceptions the recovery engine caught (injected or real).
  std::uint64_t errors_caught = 0;
  /// Non-finite omega results rejected by result validation.
  std::uint64_t invalid_results = 0;
  std::uint64_t retries = 0;
  std::uint64_t quarantined_positions = 0;
  /// Device-lost events that demoted a backend instance to the CPU loop.
  std::uint64_t degradations = 0;
  /// Exponential-backoff wait accounted against the virtual clock (the scan
  /// never wall-sleeps).
  double backoff_virtual_seconds = 0.0;
};

/// CPU omega-kernel dispatch record (profile/metrics schema v4): which kernel
/// was requested, what the dispatcher selected for this binary/host, and how
/// many Eq. (2) evaluations each kernel body performed. Evaluation counters
/// stay zero when an accelerator backend handled every position (they count
/// the CPU kernel layer only, including fault-degradation work).
struct CpuKernelStats {
  std::string requested;  // "auto" | "scalar" | "portable" | "avx2"
  std::string selected;   // concrete kernel Auto resolved to
  bool avx2_supported = false;  // binary + host can run the AVX2 body
  std::uint64_t positions = 0;  // grid positions evaluated by the CPU kernel
  std::uint64_t scalar_evaluations = 0;
  std::uint64_t portable_evaluations = 0;
  std::uint64_t avx2_evaluations = 0;
};

/// Streaming-scan accounting (profile/metrics schema v5): chunk geometry of
/// the bounded-memory pipeline and how well chunk IO overlapped compute.
/// All-zero when the scan ran in-memory.
struct StreamStats {
  std::uint64_t chunks = 0;             // chunks the stream plan produced
  std::uint64_t chunk_sites_target = 0; // requested sites-per-chunk bound
  std::uint64_t total_sites = 0;        // filtered sites across the stream
  /// Sites materialized more than once because consecutive chunks share the
  /// window-overlap region.
  std::uint64_t overlap_sites = 0;
  /// Max sites resident at once: current chunk + the prefetched next chunk
  /// under double buffering. The memory bound the subsystem exists for.
  std::uint64_t peak_resident_sites = 0;
  /// Chunk seams crossed with the DP matrix relocated rather than rebuilt.
  /// Serial streams only: with per-worker matrices (threads > 1) the seam is
  /// not a single observable, so multithreaded streams report 0.
  std::uint64_t seam_carryovers = 0;
  /// Chunks whose scan failed even after the chunk-level retry; their grid
  /// positions are quarantined and the stream continues.
  std::uint64_t failed_chunks = 0;
  double io_seconds = 0.0;        // chunk read/materialize time (IO thread)
  double io_stall_seconds = 0.0;  // compute thread blocked waiting on IO
  double compute_seconds = 0.0;   // per-chunk scan time (compute thread)

  /// Fraction of IO time hidden behind compute (1 = fully overlapped,
  /// 0 = fully serialized).
  [[nodiscard]] double io_overlap_ratio() const noexcept {
    if (io_seconds <= 0.0) return 0.0;
    const double hidden = io_seconds - io_stall_seconds;
    return hidden > 0.0 ? hidden / io_seconds : 0.0;
  }
};

/// Per-worker accounting of the work-stealing scan engine (schema v7).
struct SchedWorkerStats {
  std::uint64_t spans = 0;      // spans this worker claimed (own + stolen)
  std::uint64_t steals = 0;     // claims served from another worker's queue
  std::uint64_t positions = 0;  // valid positions this worker scored
  double busy_seconds = 0.0;    // wall time inside claimed spans
};

/// Work-stealing scheduler accounting (profile/metrics schema v7): how the
/// grid was partitioned into relocation-coherent spans and how evenly the
/// workers shared them. Serial scans report workers == 1 and spans == 0 (no
/// scheduler ran); streaming scans accumulate across chunks.
struct SchedStats {
  /// ScannerOptions::threads as the caller set it (0 = auto requested).
  std::uint64_t requested_threads = 0;
  /// Resolved worker count the scan actually ran with.
  std::uint64_t workers = 0;
  std::uint64_t spans = 0;   // spans built across the scan
  std::uint64_t steals = 0;  // cross-queue claims
  /// Per-worker detail, indexed by worker id; empty for serial scans.
  std::vector<SchedWorkerStats> workers_detail;

  /// Workers that claimed at least one span. Under stealing a worker can be
  /// fully robbed before its first claim, so this may be < workers.
  [[nodiscard]] std::uint64_t active_workers() const noexcept {
    std::uint64_t active = 0;
    for (const SchedWorkerStats& w : workers_detail) {
      if (w.spans > 0) ++active;
    }
    return active;
  }
};

/// Crash-safe runtime accounting (profile/metrics schema v8): cancellation,
/// deadline, and checkpoint/resume activity of one run. Deliberately NOT
/// accumulated across a resume (unlike every other profile block): each run
/// reports its own runtime behaviour, with resume_validations/chunks_resumed
/// describing how the run started.
struct RuntimeStats {
  /// The scan stopped before scoring every valid grid position (cancellation
  /// or deadline); skipped positions are neither valid nor quarantined.
  bool partial = false;
  bool cancelled = false;
  /// util::cancel_reason_name of the observed request; "" when !cancelled.
  std::string cancel_reason;
  /// "none" (no deadline set), "met", "expired", or "preempted" (a deadline
  /// was set but a different cancel reason fired first).
  std::string deadline_outcome = "none";
  double deadline_seconds = 0.0;
  /// Drain latency: first observation of the cancel request inside the scan
  /// driver until the partial result was assembled. 0 when !cancelled.
  double cancel_latency_seconds = 0.0;
  /// Valid grid positions left unscored by an early stop.
  std::uint64_t positions_skipped = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;  // summed over all writes this run
  /// Fingerprint + config-hash validations passed while loading a checkpoint
  /// (1 for a resumed run, 0 otherwise).
  std::uint64_t resume_validations = 0;
  /// Committed chunks preloaded from the checkpoint instead of rescanned.
  std::uint64_t chunks_resumed = 0;
};

/// LD-engine accounting (profile/metrics schema v9): which engine (and which
/// requested kind) served the scan's r2 fetches, the packed engine's
/// microkernel ISA and panel-cache effectiveness, and how the LD time splits
/// between packing panels and running the count kernels. Derived from the
/// scan's telemetry delta (ld.panel_cache.* counters, ld.pack_seconds /
/// ld.kernel_seconds histograms), so streamed scans accumulate across
/// per-chunk engines and resumes accumulate across runs. pack/kernel seconds
/// stay zero for engines without a pack phase (popcount/naive/gemm).
struct LdStats {
  std::string requested;  // options.ld as asked ("auto", ...; "custom")
  std::string engine;     // resolved engine name (== ld_backend)
  std::string isa;        // packed microkernel body: "avx2" | "scalar" | ""
  std::uint64_t panel_packs = 0;  // panel-cache misses (blocks packed)
  std::uint64_t panel_hits = 0;   // panel-cache hits (blocks reused)
  double pack_seconds = 0.0;      // time packing bit panels
  double kernel_seconds = 0.0;    // time in the count microkernels
};

/// Per-stage hardware-counter totals (profile/metrics schema v11). Filled by
/// the drivers from the scan's telemetry delta over the
/// perf.<stage>.{scopes,cycles,...} counters that util/perf_counters.h
/// StageScopes record, so — exactly like the v9 "ld" block — streamed scans
/// accumulate across chunks and resumes accumulate across runs. The stage
/// set mirrors the instrumented latency histograms: scan.reset / relocate /
/// extend / omega_search, ld.pack / ld.kernel, stream.chunk_fetch — each
/// stage's `scopes` equals the matching histogram's sample count.
struct PerfStageStats {
  std::string stage;
  std::uint64_t scopes = 0;        // StageScopes entered (== histogram count)
  std::uint64_t cycles = 0;        // 0 under the clock-only fallback
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  double task_clock_seconds = 0.0;  // thread CPU time inside the scopes

  /// Instructions per cycle; 0 when no hardware counts were read.
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  /// Cache misses per thousand instructions (MPKI).
  [[nodiscard]] double cache_mpki() const noexcept {
    return instructions > 0 ? 1000.0 * static_cast<double>(cache_misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
  }
  /// Branch misses per thousand instructions.
  [[nodiscard]] double branch_mpki() const noexcept {
    return instructions > 0 ? 1000.0 * static_cast<double>(branch_misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
  }
};

/// Hardware-counter profile of the scan (profile/metrics schema v11):
/// disabled (empty) unless util::perf::enable() — the CLI's --perf-counters
/// — was armed. `source` distinguishes real perf_event groups from the
/// rusage/steady-clock fallback a denied host degrades to.
struct PerfStats {
  bool enabled = false;
  std::string source;  // "perf_event" | "fallback" | "" when disabled
  /// Stage-name-sorted entries; only stages that recorded scopes appear.
  std::vector<PerfStageStats> stages;

  [[nodiscard]] const PerfStageStats* find(
      std::string_view stage_name) const noexcept {
    for (const PerfStageStats& entry : stages) {
      if (entry.stage == stage_name) return &entry;
    }
    return nullptr;
  }
};

/// Per-partition accounting of the heterogeneous co-scheduler (schema v10):
/// what the planner promised each backend and what it actually delivered.
struct HeteroPartitionStats {
  std::string backend;  // "cpu" or the accelerator partition name
  /// Normalized planned share of the estimated grid cost.
  double weight = 0.0;
  /// Valid positions the plan assigned to this partition (accumulated over
  /// planner invocations — one per stream chunk).
  std::uint64_t planned_positions = 0;
  /// Positions this partition actually settled (the CPU partition also
  /// counts re-dispatched positions it absorbed).
  std::uint64_t actual_positions = 0;
  std::uint64_t spans = 0;  // spans built for this partition's segments
  /// Cost model's prediction for the planned segments vs. the partition's
  /// measured busy wall time (max over its workers, summed across runs).
  double modeled_seconds = 0.0;
  double measured_seconds = 0.0;
  /// EWMA of measured throughput (core/rate_estimator.h), folded in once per
  /// planner run — the measured-vs-modeled error signal next to
  /// modeled_seconds (v11). Latest estimate wins across chunk merges and
  /// checkpoint resumes; 0 until the partition settles its first positions.
  double measured_rate_per_s = 0.0;
  std::uint64_t rate_observations = 0;
};

/// Heterogeneous co-scheduler accounting (profile/metrics schema v10):
/// all-zero/disabled unless the scan ran with --backend=hetero.
struct HeteroStats {
  bool enabled = false;
  std::string split;  // HeteroSplit::name(): "auto" or "c:g:f"
  std::uint64_t plans = 0;  // planner invocations (per chunk when streaming)
  /// Accelerator spans whose unsettled remainder went back to the CPU, and
  /// the positions those remainders carried.
  std::uint64_t redispatched_spans = 0;
  std::uint64_t redispatched_positions = 0;
  std::uint64_t straggler_spans = 0;  // re-dispatch cause: modeled deadline
  std::uint64_t faulted_spans = 0;    // re-dispatch cause: recovery gave up
  /// CPU partition first, then each accelerator in configuration order.
  std::vector<HeteroPartitionStats> partitions;
};

/// Simulated-FPGA counters: pipeline occupancy of the §V design.
struct FpgaProfile {
  std::uint64_t pipeline_cycles = 0;  // total accelerator cycles
  std::uint64_t stall_cycles = 0;     // cycles lost to DRAM throttling
  std::uint64_t hw_omegas = 0;        // scores produced in hardware
  std::uint64_t sw_omegas = 0;        // unroll-remainder scores on the host
  double modeled_seconds = 0.0;
};

struct ScanProfile {
  /// Bucket times. Single-threaded scans: wall clock. Multithreaded scans:
  /// CPU-seconds summed across workers — combine with total_seconds (always
  /// wall clock) and the bucket shares for elapsed-time rates.
  double ld_seconds = 0.0;     // r2 computation + Eq. (3) update of M
  double omega_seconds = 0.0;  // omega maximization (backend)
  double total_seconds = 0.0;  // whole scan, wall clock
  std::uint64_t omega_evaluations = 0;
  std::uint64_t r2_fetched = 0;

  // --- v2 observability ---------------------------------------------------
  /// Per-stage breakdown; stages.ld_total() == ld_seconds and
  /// stages.omega_search_seconds == omega_seconds by construction.
  StageTimes stages;
  RelocationStats relocation;
  /// Accelerator counters; all-zero unless the corresponding simulated
  /// backend ran (merged via OmegaBackend::contribute).
  GpuProfile gpu;
  FpgaProfile fpga;
  /// Fault-injection and recovery accounting (v3).
  FaultRecoveryStats faults;
  /// CPU kernel dispatch decision and per-body evaluation counts (v4).
  CpuKernelStats kernel;
  /// Streaming chunk pipeline accounting (v5); all-zero for in-memory scans.
  StreamStats stream;
  /// Work-stealing scheduler accounting (v7); workers == 1, spans == 0 for
  /// serial scans.
  SchedStats sched;
  /// Cancellation/deadline/checkpoint accounting (v8); defaults describe an
  /// uninterrupted, checkpoint-free run.
  RuntimeStats runtime;
  /// LD engine + packed-panel-cache accounting (v9), filled by the drivers
  /// from the scan's telemetry delta at finalize.
  LdStats ld;
  /// Heterogeneous co-scheduler accounting (v10); disabled unless the scan
  /// ran with a HeteroConfig.
  HeteroStats hetero;
  /// Hardware-counter per-stage profile (v11); disabled unless
  /// util::perf::enable() was armed (CLI --perf-counters).
  PerfStats perf;
  /// Distributional telemetry attributed to this scan (v6): the delta of the
  /// process-wide util/telemetry registry between scan start and end —
  /// queue-depth, task/chunk/retry-latency histograms, overlap-ratio gauges
  /// (docs/OBSERVABILITY.md). Gauges carry end-of-scan values. Deltas from
  /// concurrent scans in one process overlap; single-scan processes (the CLI,
  /// the benches) attribute exactly.
  util::telemetry::RegistrySnapshot telemetry;
  /// Grid positions actually evaluated (valid positions).
  std::uint64_t positions_scanned = 0;
  /// Names recorded by the scan driver: the LD engine serving r2 fetches and
  /// the omega backend. Multi-worker scans record the first worker's backend
  /// (all workers use identically configured instances).
  std::string ld_backend;
  std::string omega_backend;

  /// Fraction of compute time spent in the omega bucket.
  [[nodiscard]] double omega_share() const noexcept {
    const double compute = ld_seconds + omega_seconds;
    return compute > 0.0 ? omega_seconds / compute : 0.0;
  }
  /// Elapsed-time omega throughput: evaluations over the omega share of the
  /// wall clock (exact for single-threaded scans, the honest estimate for
  /// multithreaded ones).
  [[nodiscard]] double omega_throughput() const noexcept {
    const double wall = total_seconds * omega_share();
    return wall > 0.0 ? static_cast<double>(omega_evaluations) / wall : 0.0;
  }
  [[nodiscard]] double ld_throughput() const noexcept {
    const double wall = total_seconds * (1.0 - omega_share());
    return wall > 0.0 ? static_cast<double>(r2_fetched) / wall : 0.0;
  }
};

struct ScanResult {
  std::vector<PositionScore> scores;
  ScanProfile profile;

  /// Highest-scoring position (throws on empty scan).
  [[nodiscard]] const PositionScore& best() const;
  /// Scores sorted by descending omega, truncated to k.
  [[nodiscard]] std::vector<PositionScore> top(std::size_t k) const;
  /// True when at least one position holds a valid score — false for empty
  /// scans and for fault-heavy scans where every position was quarantined;
  /// callers should check this before best().
  [[nodiscard]] bool has_valid() const noexcept;
};

/// Runs a scan. `backend_factory` supplies one backend per worker thread
/// (nullptr: CPU nested loop). With options.threads > 1 the factory is
/// invoked once per worker.
ScanResult scan(const io::Dataset& dataset, const ScannerOptions& options,
                const std::function<std::unique_ptr<OmegaBackend>()>&
                    backend_factory = {});

/// Resolves the ScannerOptions::threads convention (documented there):
/// 0 -> std::thread::hardware_concurrency() (minimum 1), anything else
/// passes through. scan(), stream_scan(), and the CLI all call this exactly
/// once so profiles and backend names always carry the resolved count.
[[nodiscard]] std::size_t resolve_scan_threads(std::size_t requested) noexcept;

/// Resolves ScannerOptions::ld to a concrete engine over `snps` (or the
/// Dataset for the naive oracle). Shared with the streaming driver, which
/// builds one engine per chunk.
std::unique_ptr<ld::LdEngine> make_ld_engine(LdBackendKind kind,
                                             const io::Dataset& dataset,
                                             const ld::SnpMatrix& snps);

}  // namespace omega::core
