#pragma once
// Internal glue shared by the two scan drivers: the in-memory scan
// (scanner.cpp) and the streaming chunked scan (stream_scanner.cpp). Both
// must advance the DP matrix, run the recovery-wrapped backend search, and
// account profiles through the exact same code — any divergence here would
// silently break the streamed-equals-in-memory bitwise guarantee the
// streaming subsystem is tested against.
//
// Not installed API; include only from src/core/*.cpp.

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/scanner.h"
#include "ld/ld_engine.h"
#include "par/thread_pool.h"

namespace omega::core::detail {

/// Advances the DP matrix to `position`: the single home of the
/// reset-vs-relocate policy, shared by every MT strategy and by the stream
/// driver so the relocation behaviour cannot silently diverge between them.
/// Stage wall time is accumulated into `stages`.
void advance_matrix(DpMatrix& m, bool& m_live, bool reuse,
                    const GridPosition& position, const ld::LdEngine& engine,
                    StageTimes& stages, par::ThreadPool* pool = nullptr);

/// Folds the matrix's relocation/fetch counters into the profile.
void merge_matrix_stats(ScanProfile& profile, const DpMatrix& m);

/// Folds a worker's (or chunk's) profile into the scan-wide one. Times add
/// up as CPU-seconds across workers (ScanProfile's documented multithreaded
/// semantics); counters add exactly.
void merge_worker_profile(ScanProfile& into, const ScanProfile& from);

/// Runs the recovery-wrapped omega search for one valid grid position and
/// records the outcome into `score` (valid on success, quarantined on
/// exhaustion) and `profile` (omega_search_seconds, evaluations,
/// positions_scanned, fault counters). When `progress` is non-null, reports
/// one position (plus fault/quarantine deltas) to it. Returns score.valid.
bool score_position(OmegaBackend& backend, const DpMatrix& m,
                    const GridPosition& position,
                    const RecoveryPolicy& recovery, ScanProfile& profile,
                    PositionScore& score,
                    util::ProgressReporter* progress = nullptr);

}  // namespace omega::core::detail
