#pragma once
// Internal glue shared by the two scan drivers: the in-memory scan
// (scanner.cpp) and the streaming chunked scan (stream_scanner.cpp). Both
// must advance the DP matrix, run the recovery-wrapped backend search, and
// account profiles through the exact same code — any divergence here would
// silently break the streamed-equals-in-memory bitwise guarantee the
// streaming subsystem is tested against.
//
// Not installed API; include only from src/core/*.cpp.

#include <atomic>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/scanner.h"
#include "ld/ld_engine.h"
#include "par/thread_pool.h"
#include "util/cancel.h"
#include "util/timer.h"

namespace omega::core::detail {

/// Shared cancellation view of one scan: the caller's token (or the driver's
/// internal one when only a deadline was set) plus the scan deadline. The
/// drivers and span workers poll should_stop() between positions; deadline
/// expiry is converted into a token request so every layer — including the
/// simulator backends holding only the token — observes a single flag, and
/// signals and deadlines share the drain path. The first poll that observes
/// the request stamps `observed_seconds` (against `since_start`), which the
/// runtime finalizer turns into the drain latency.
struct CancelState {
  util::CancelToken* token = nullptr;
  util::Deadline deadline;
  /// Started at driver entry; the latency reference.
  util::Timer since_start;
  mutable std::atomic<bool> observed{false};
  mutable std::atomic<double> observed_seconds{0.0};

  [[nodiscard]] bool enabled() const noexcept { return token != nullptr; }

  /// True once the scan should stop. Thread-safe: token access is atomic and
  /// the deadline clock must tolerate concurrent calls (the steady clock and
  /// the tests' virtual clocks do).
  [[nodiscard]] bool should_stop() const {
    if (token == nullptr) return false;
    bool stop = token->cancelled();
    if (!stop && deadline.enabled() && deadline.expired()) {
      token->request(util::CancelReason::Deadline);
      stop = true;
    }
    if (stop) {
      bool expected = false;
      if (observed.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
        observed_seconds.store(since_start.seconds(),
                               std::memory_order_release);
      }
    }
    return stop;
  }
};

/// Populates the scan's CancelState from the options: the caller's token, or
/// an internal one when only a deadline was set (so expiry still has a flag
/// to raise), or disabled entirely. In-place because CancelState holds
/// atomics and cannot be returned by value. `internal` must outlive the scan.
void init_cancel_state(CancelState& cancel, const ScannerOptions& options,
                       util::CancelToken& internal);

/// End-of-scan runtime accounting shared by scan() and stream_scan():
/// cancellation flags/reason/latency, deadline outcome, and the
/// skipped-position census that defines `partial`. Records the drain latency
/// into the "runtime.cancel_latency_seconds" telemetry histogram.
void finalize_runtime(ScanProfile& profile, const CancelState& cancel,
                      double deadline_seconds,
                      const std::vector<GridPosition>& grid,
                      const std::vector<PositionScore>& scores);

/// End-of-scan LD accounting shared by scan() and stream_scan(): fills
/// ScanProfile::ld (schema v9) from the options and the scan-attributed
/// telemetry delta. Call after profile.telemetry has been assigned.
void finalize_ld_stats(ScanProfile& profile, const ScannerOptions& options);

/// End-of-scan hardware-counter accounting shared by scan() and
/// stream_scan(): fills ScanProfile::perf (schema v11) from the
/// scan-attributed telemetry delta's perf.<stage>.* counters. Like
/// finalize_ld_stats, call after profile.telemetry has been assigned; the
/// block stays disabled when util::perf was never enabled.
void finalize_perf_stats(ScanProfile& profile);

/// Advances the DP matrix to `position`: the single home of the
/// reset-vs-relocate policy, shared by every MT strategy and by the stream
/// driver so the relocation behaviour cannot silently diverge between them.
/// Stage wall time is accumulated into `stages`.
void advance_matrix(DpMatrix& m, bool& m_live, bool reuse,
                    const GridPosition& position, const ld::LdEngine& engine,
                    StageTimes& stages, par::ThreadPool* pool = nullptr);

/// Folds the matrix's relocation/fetch counters into the profile.
void merge_matrix_stats(ScanProfile& profile, const DpMatrix& m);

/// Folds a worker's (or chunk's) profile into the scan-wide one. Times add
/// up as CPU-seconds across workers (ScanProfile's documented multithreaded
/// semantics); counters add exactly.
void merge_worker_profile(ScanProfile& into, const ScanProfile& from);

/// Runs the recovery-wrapped omega search for one valid grid position and
/// records the outcome into `score` (valid on success, quarantined on
/// exhaustion) and `profile` (omega_search_seconds, evaluations,
/// positions_scanned, fault counters). When `progress` is non-null, reports
/// one position (plus fault/quarantine deltas) to it. Returns score.valid.
bool score_position(OmegaBackend& backend, const DpMatrix& m,
                    const GridPosition& position,
                    const RecoveryPolicy& recovery, ScanProfile& profile,
                    PositionScore& score,
                    util::ProgressReporter* progress = nullptr);

}  // namespace omega::core::detail
