#include "core/reference.h"

#include <vector>

#include "core/omega_math.h"
#include "ld/r2.h"

namespace omega::core {
namespace {

/// Dense pairwise r2 over the inclusive index range [lo, hi].
std::vector<double> pairwise_r2(const io::Dataset& dataset, std::size_t lo,
                                std::size_t hi) {
  const std::size_t w = hi - lo + 1;
  std::vector<double> r2(w * w, 0.0);
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double value = ld::r2_naive(dataset, lo + i, lo + j);
      r2[i * w + j] = value;
      r2[j * w + i] = value;
    }
  }
  return r2;
}

double sum_within(const std::vector<double>& r2, std::size_t w, std::size_t i0,
                  std::size_t i1) {
  double sum = 0.0;
  for (std::size_t i = i0; i <= i1; ++i) {
    for (std::size_t j = i0; j < i; ++j) {
      sum += r2[i * w + j];
    }
  }
  return sum;
}

double sum_between(const std::vector<double>& r2, std::size_t w, std::size_t i0,
                   std::size_t i1, std::size_t j0, std::size_t j1) {
  double sum = 0.0;
  for (std::size_t i = i0; i <= i1; ++i) {
    for (std::size_t j = j0; j <= j1; ++j) {
      sum += r2[i * w + j];
    }
  }
  return sum;
}

}  // namespace

OmegaResult brute_force_position(const io::Dataset& dataset,
                                 const GridPosition& position) {
  OmegaResult result;
  if (!position.valid) return result;
  const std::size_t lo = position.lo;
  const std::size_t w = position.hi - lo + 1;
  const auto r2 = pairwise_r2(dataset, lo, position.hi);
  const std::size_t c = position.c - lo;  // local split

  for (std::size_t a = 0; a <= position.a_max - lo; ++a) {
    for (std::size_t b = position.b_min - lo; b <= position.hi - lo; ++b) {
      const double left_sum = sum_within(r2, w, a, c);
      const double right_sum = sum_within(r2, w, c + 1, b);
      const double cross_sum = sum_between(r2, w, a, c, c + 1, b);
      const std::size_t l = c - a + 1;
      const std::size_t r = b - c;
      const double omega = omega_from_sums(left_sum, right_sum, cross_sum, l, r);
      ++result.evaluated;
      if (omega > result.max_omega) {
        result.max_omega = omega;
        result.best_a = lo + a;
        result.best_b = lo + b;
      }
    }
  }
  return result;
}

double brute_force_omega(const io::Dataset& dataset, std::size_t a,
                         std::size_t c, std::size_t b) {
  const auto r2 = pairwise_r2(dataset, a, b);
  const std::size_t w = b - a + 1;
  const std::size_t c_local = c - a;
  const double left_sum = sum_within(r2, w, 0, c_local);
  const double right_sum = sum_within(r2, w, c_local + 1, w - 1);
  const double cross_sum = sum_between(r2, w, 0, c_local, c_local + 1, w - 1);
  return omega_from_sums(left_sum, right_sum, cross_sum, c_local + 1,
                         w - 1 - c_local);
}

}  // namespace omega::core
