#include "core/workload.h"

#include <algorithm>

namespace omega::core {

ScanWorkload analyze_workload(const io::Dataset& dataset,
                              const OmegaConfig& config) {
  ScanWorkload workload;
  const auto grid = build_grid(dataset, config);
  workload.positions.reserve(grid.size());

  // Mirror the scanner's M coverage to count fresh r2 fetches.
  std::size_t covered_base = 0;
  std::size_t covered_end = 0;  // exclusive; == base when empty
  bool covered = false;

  for (const auto& position : grid) {
    PositionWorkload item;
    item.geometry = position;
    if (position.valid) {
      item.combinations = position.combinations();
      const std::size_t lo = position.lo;
      const std::size_t hi_end = position.hi + 1;
      const std::size_t width = hi_end - lo;

      // Without reuse: DpMatrix built from empty fetches rows x (width-1).
      item.r2_without_reuse =
          static_cast<std::uint64_t>(width) * (width - 1);

      // With reuse: relocate to lo, then extend to hi_end. Grid positions
      // move strictly forward, so lo >= covered_base always holds.
      std::size_t fresh_rows = width;
      if (covered && lo >= covered_base) {
        if (hi_end <= covered_end) {
          fresh_rows = 0;  // fully covered already
        } else if (lo <= covered_end) {
          fresh_rows = hi_end - covered_end;  // contiguous growth
        }
        // else: gap — relocation empties the matrix, full rebuild (width).
      }
      item.r2_with_reuse =
          fresh_rows == 0 ? 0
                          : static_cast<std::uint64_t>(fresh_rows) * (width - 1);
      covered_base = lo;
      covered_end = std::max(covered ? covered_end : hi_end, hi_end);
      covered = true;

      const std::size_t num_left = position.a_max - position.lo + 1;
      const std::size_t num_right = position.hi - position.b_min + 1;
      // ls + k + l_counts per left border; rs + m + r_counts per right
      // border; one float per combination for TS.
      item.omega_payload_bytes =
          static_cast<std::uint64_t>(num_left) * 12 +
          static_cast<std::uint64_t>(num_right) * 12 +
          item.combinations * sizeof(float);
      workload.max_right_iterations =
          std::max(workload.max_right_iterations, num_right);
    }
    workload.total_combinations += item.combinations;
    workload.total_r2_with_reuse += item.r2_with_reuse;
    workload.total_r2_without_reuse += item.r2_without_reuse;
    workload.total_omega_payload_bytes += item.omega_payload_bytes;
    workload.positions.push_back(item);
  }
  return workload;
}

std::uint64_t estimate_position_cost(const GridPosition& position) noexcept {
  if (!position.valid) return 0;
  const auto width = static_cast<std::uint64_t>(position.hi - position.lo + 1);
  return position.combinations() + width;
}

}  // namespace omega::core
