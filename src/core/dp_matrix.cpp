#include "core/dp_matrix.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "par/thread_pool.h"

namespace omega::core {

void DpMatrix::reset(std::size_t base) {
  base_ = base;
  count_ = 0;
  storage_.clear();
  ++stats_.resets;
}

double DpMatrix::at(std::size_t gi, std::size_t gj) const {
  if (gi < base_ || gi >= end() || gj < base_ || gj > gi) {
    throw std::out_of_range(
        "DpMatrix::at(" + std::to_string(gi) + ", " + std::to_string(gj) +
        ") outside covered range [" + std::to_string(base_) + ", " +
        std::to_string(end()) + ") with j <= i");
  }
  const std::size_t i = gi - base_;
  const std::size_t j = gj - base_;
  if (i == j) return 0.0;
  return storage_[row_offset(i) + j];
}

void DpMatrix::relocate(std::size_t new_base) {
  if (new_base < base_) {
    throw std::invalid_argument("DpMatrix::relocate cannot move base backward");
  }
  const std::size_t delta = new_base - base_;
  if (delta == 0) {
    // Same anchor: the whole triangle is reused as-is.
    ++stats_.relocations;
    stats_.cells_reused += storage_.size();
    return;
  }
  if (delta >= count_) {
    reset(new_base);  // no overlap survives; counts as a reset
    return;
  }
  const std::size_t new_count = count_ - delta;
  ++stats_.relocations;
  stats_.cells_reused += row_offset(new_count);
  // Row i' of the relocated triangle holds old row (i' + delta) entries
  // [delta, delta + i'). Rows move front-to-back; the destination offset is
  // always strictly below the source, so in-place copies are safe.
  for (std::size_t i = 1; i < new_count; ++i) {
    std::memmove(storage_.data() + row_offset(i),
                 storage_.data() + row_offset(i + delta) + delta,
                 i * sizeof(double));
  }
  count_ = new_count;
  base_ = new_base;
  storage_.resize(row_offset(new_count));
}

void DpMatrix::extend(std::size_t new_end, const ld::LdEngine& engine,
                      par::ThreadPool* pool) {
  // No new rows: return before touching storage or the engine.
  if (new_end <= end()) return;
  const std::size_t old_count = count_;
  const std::size_t new_count = new_end - base_;
  const std::size_t new_rows = new_count - old_count;
  stats_.cells_recomputed += row_offset(new_count) - row_offset(old_count);
  storage_.resize(row_offset(new_count));

  // Fetch r2 for all (new row, column) pairs in one engine call; columns span
  // the full final width so the recurrence below has every value it needs.
  // The fetch buffer is a member scratch: extend() runs once per grid
  // position, and reallocating tens of MB per position dominated small scans.
  const std::size_t ld_r2 = new_count - 1;  // columns 0 .. new_count-2
  if (ld_r2 > 0) {
    if (r2_scratch_.size() < new_rows * ld_r2) {
      r2_scratch_.resize(new_rows * ld_r2);
    }
    engine.r2_block(base_ + old_count, base_ + new_count, base_,
                    base_ + new_count - 1, r2_scratch_.data(), ld_r2);
    r2_fetches_ += static_cast<std::uint64_t>(new_rows) * ld_r2;
  }

  // Eq. (3) in telescoped form. The recurrence
  //   M(i, j) = M(i, j+1) + M(i-1, j) - M(i-1, j+1) + r2(i, j)
  // telescopes (subtract M(i-1, j) and induct down from the M(i, i) = 0
  // boundary) to
  //   M(i, j) = M(i-1, j) + sum_{q = j}^{i-1} r2(i, q),
  // i.e. row i is row i-1 plus the suffix-sum of row i's r2 values. Phase 1
  // computes the suffix scans — independent across rows, so large extends
  // tile them over the pool; the descending per-row order is fixed, keeping
  // the float results identical for any pool size and any matrix base
  // (relocation tests compare them bitwise). Phase 2 adds each previous row
  // in ascending order — a unit-stride vector add replacing the old 4-term
  // per-cell chain.
  const std::size_t first = old_count == 0 ? 1 : old_count;
  const auto suffix_row = [&](std::size_t i) {
    double* row = storage_.data() + row_offset(i);
    const float* r2_row = r2_scratch_.data() + (i - old_count) * ld_r2;
    double acc = 0.0;
    for (std::size_t j = i; j-- > 0;) {
      acc += static_cast<double>(r2_row[j]);
      row[j] = acc;
    }
  };
  constexpr std::size_t kMinRowsForPool = 64;
  if (pool != nullptr && pool->size() > 0 &&
      new_count - first >= kMinRowsForPool) {
    par::parallel_for(*pool, first, new_count, 8, suffix_row);
  } else {
    for (std::size_t i = first; i < new_count; ++i) suffix_row(i);
  }
  for (std::size_t i = first; i < new_count; ++i) {
    double* row = storage_.data() + row_offset(i);
    const double* prev = storage_.data() + row_offset(i - 1);
    // Previous row holds columns 0 .. i-2; column i-1 adds the implicit
    // zero diagonal M(i-1, i-1), so the suffix value already stored is final.
    for (std::size_t j = 0; j + 1 < i; ++j) row[j] += prev[j];
  }
  count_ = new_count;
}

}  // namespace omega::core
