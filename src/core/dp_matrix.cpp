#include "core/dp_matrix.h"

#include <cstring>
#include <stdexcept>

namespace omega::core {

void DpMatrix::reset(std::size_t base) {
  base_ = base;
  count_ = 0;
  storage_.clear();
  ++stats_.resets;
}

double DpMatrix::at(std::size_t gi, std::size_t gj) const {
  if (gi < base_ || gi >= end() || gj < base_ || gj > gi) {
    throw std::out_of_range("DpMatrix::at outside covered range");
  }
  const std::size_t i = gi - base_;
  const std::size_t j = gj - base_;
  if (i == j) return 0.0;
  return storage_[row_offset(i) + j];
}

void DpMatrix::relocate(std::size_t new_base) {
  if (new_base < base_) {
    throw std::invalid_argument("DpMatrix::relocate cannot move base backward");
  }
  const std::size_t delta = new_base - base_;
  if (delta == 0) {
    // Same anchor: the whole triangle is reused as-is.
    ++stats_.relocations;
    stats_.cells_reused += storage_.size();
    return;
  }
  if (delta >= count_) {
    reset(new_base);  // no overlap survives; counts as a reset
    return;
  }
  const std::size_t new_count = count_ - delta;
  ++stats_.relocations;
  stats_.cells_reused += row_offset(new_count);
  // Row i' of the relocated triangle holds old row (i' + delta) entries
  // [delta, delta + i'). Rows move front-to-back; the destination offset is
  // always strictly below the source, so in-place copies are safe.
  for (std::size_t i = 1; i < new_count; ++i) {
    std::memmove(storage_.data() + row_offset(i),
                 storage_.data() + row_offset(i + delta) + delta,
                 i * sizeof(double));
  }
  count_ = new_count;
  base_ = new_base;
  storage_.resize(row_offset(new_count));
}

void DpMatrix::extend(std::size_t new_end, const ld::LdEngine& engine) {
  if (new_end <= end()) return;
  const std::size_t old_count = count_;
  const std::size_t new_count = new_end - base_;
  stats_.cells_recomputed += row_offset(new_count) - row_offset(old_count);
  storage_.resize(row_offset(new_count));

  // Fetch r2 for all (new row, column) pairs in one engine call; columns span
  // the full final width so the recurrence below has every value it needs.
  const std::size_t new_rows = new_count - old_count;
  std::vector<float> r2(new_rows * (new_count - 1));
  const std::size_t ld_r2 = new_count - 1;  // columns 0 .. new_count-2
  if (ld_r2 > 0) {
    engine.r2_block(base_ + old_count, base_ + new_count, base_,
                    base_ + new_count - 1, r2.data(), ld_r2);
    r2_fetches_ += new_rows * ld_r2;
  }

  for (std::size_t i = old_count == 0 ? 1 : old_count; i < new_count; ++i) {
    double* row = storage_.data() + row_offset(i);
    const double* prev = i >= 2 ? storage_.data() + row_offset(i - 1) : nullptr;
    const float* r2_row = r2.data() + (i - old_count) * ld_r2;
    // Eq. (3): fill j from i-1 downward.
    row[i - 1] = static_cast<double>(r2_row[i - 1]);
    for (std::size_t j = i - 1; j-- > 0;) {
      const double m_prev_j = prev[j];                          // M(i-1, j)
      const double m_prev_j1 = j + 1 == i - 1 ? 0.0 : prev[j + 1];  // M(i-1, j+1)
      row[j] = row[j + 1] + m_prev_j - m_prev_j1 +
               static_cast<double>(r2_row[j]);
    }
  }
  count_ = new_count;
}

}  // namespace omega::core
