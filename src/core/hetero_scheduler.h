#pragma once
// Heterogeneous co-scheduler (ROADMAP item 3): one scan split across the CPU
// span engine and the simulated accelerator backends at the same time, sized
// by each backend's modeled throughput for the actual per-position workload.
//
// The planner walks the grid's estimated cost vector (core/workload) and
// cuts it into one contiguous, relocation-coherent segment per partition —
// CPU first, then each accelerator in config order — proportionally to the
// partition weights (auto: modeled throughput from the hw timing/cycle
// models; fixed: --hetero-split=cpu:gpu:fpga). Each segment is sub-split
// into spans (core/span_engine), and all partitions execute concurrently on
// one shared ThreadPool: the CPU segment under the work-stealing scheduler,
// each accelerator as a single ordered launch queue.
//
// Straggler / fault re-dispatch: an accelerator span that quarantine-exhausts
// a position, or whose wall time exceeds its modeled deadline, pushes its
// unsettled remainder onto a re-dispatch queue that the CPU workers drain —
// first opportunistically while the batch is still running, then in a
// mop-up wave after it. Settled positions are never rescored (the streaming
// chunk-retry "skip settled" contract), so re-dispatch is idempotent.
//
// Bitwise guarantee: accelerator partitions run their simulator backends
// with functional_cap = 0, which routes every scoring decision through
// core::max_omega_search — the double-precision reference that every CPU
// kernel body is EXPECT_EQ-identical to — while the device cost models,
// fault injection, and accounting still accrue. A hetero scan is therefore
// bitwise-identical to the serial CPU scan for any split, with or without
// re-dispatch.
//
// Not installed API; include from src/core/*.cpp, sweep/, the CLI, tests.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/grid.h"
#include "core/rate_estimator.h"
#include "core/scan_driver.h"
#include "core/scanner.h"
#include "core/span_engine.h"
#include "ld/ld_engine.h"
#include "par/thread_pool.h"

namespace omega::util {
class ProgressReporter;
}

namespace omega::core {

/// Partition weights. Auto sizes partitions by modeled throughput over the
/// actual grid; fixed weights are normalized shares of the estimated cost.
struct HeteroSplit {
  bool auto_split = true;
  double cpu = 1.0;
  double gpu = 1.0;
  double fpga = 1.0;

  /// Parses "auto" or "CPU:GPU:FPGA" weight triples ("2:1:1", "1:0:0", ...).
  /// Throws std::invalid_argument on malformed or negative input, or when
  /// every weight is zero.
  static HeteroSplit parse(std::string_view text);

  /// Canonical display name: "auto" or the normalized "c:g:f" triple.
  [[nodiscard]] std::string name() const;
};

/// Modeled seconds one partition's backend would spend on one grid position.
/// Invalid positions must cost 0.
using HeteroCostModel = std::function<double(const GridPosition&)>;

/// One accelerator partition: a display name, the device cost model that
/// sizes its grid share (and arms the straggler deadline), and a factory for
/// its backend instance. The factory MUST configure the backend for exact
/// scoring (functional_cap = 0 on the simulators) or hetero results diverge
/// from the CPU scan.
struct HeteroPartitionSpec {
  std::string name;
  HeteroCostModel modeled_seconds;
  std::function<std::unique_ptr<OmegaBackend>()> backend_factory;
};

struct HeteroConfig {
  HeteroSplit split;
  /// Modeled CPU seconds per position (weights the CPU partition under
  /// auto_split; a simple evaluations/rate model is fine).
  HeteroCostModel cpu_modeled_seconds;
  /// Accelerator partitions in grid order after the CPU segment. May be
  /// empty, in which case hetero degenerates to the plain span engine.
  std::vector<HeteroPartitionSpec> accelerators;
  /// Straggler deadline per accelerator span: wall seconds beyond
  /// multiplier * modeled-span-seconds + min re-dispatch the unsettled
  /// remainder to the CPU. The generous defaults only fire on real stalls,
  /// not model noise.
  double straggler_multiplier = 8.0;
  double straggler_min_seconds = 0.25;

  /// Throws std::invalid_argument on missing models/factories or a
  /// nonsensical straggler policy.
  void validate() const;
};

/// One partition's contiguous slice of the planned range.
struct HeteroSegmentPlan {
  std::string backend;  // "cpu" or HeteroPartitionSpec::name
  std::size_t begin = 0;  // grid index, inclusive
  std::size_t end = 0;    // grid index, exclusive
  double weight = 0.0;    // normalized planned share
  std::uint64_t planned_positions = 0;  // valid positions in [begin, end)
  double modeled_seconds = 0.0;  // partition model summed over the segment
};

struct HeteroPlan {
  /// CPU segment first, then one per accelerator, tiling [begin, end) in
  /// grid order. A zero-weight partition gets an empty segment.
  std::vector<HeteroSegmentPlan> segments;
  /// Every valid position estimated to zero cost: the planner fell back to
  /// deterministic equal-position-count segments.
  bool equal_fallback = false;
};

/// Deterministically partitions grid range [begin, end) for `config`: auto
/// weights from modeled throughput (estimated cost over modeled seconds per
/// partition), fixed weights normalized as given, then contiguous segments
/// by cumulative estimated cost (valid-position count when the grid's total
/// cost is zero — the degenerate-grid guard).
[[nodiscard]] HeteroPlan plan_hetero_split(
    const std::vector<GridPosition>& grid, std::size_t begin, std::size_t end,
    const HeteroConfig& config);

/// Drives one scan's heterogeneous execution. Owns the per-worker backends,
/// DP matrices, and profiles so the streaming driver can call run() once per
/// chunk with seam carryover intact; scan() calls it once for the whole
/// grid. Worker layout: cpu_workers() CPU span workers, then one worker per
/// accelerator partition.
class HeteroExecutor {
 public:
  /// `threads` is the resolved scan thread count; the CPU partition gets
  /// max(1, threads - accelerators) workers so the total task count stays at
  /// the user's budget (never below accelerators + 1).
  HeteroExecutor(const HeteroConfig& config, const RecoveryPolicy& recovery,
                 CpuKernelKind kernel, bool reuse, std::size_t threads);

  [[nodiscard]] std::size_t cpu_workers() const noexcept {
    return cpu_workers_;
  }
  /// cpu_workers() + one per accelerator: size the shared pool to
  /// total_workers() - 1 and call run() on the remaining thread.
  [[nodiscard]] std::size_t total_workers() const noexcept {
    return cpu_workers_ + config_.accelerators.size();
  }
  /// Canonical backend name for the checkpoint config hash: hetero resumes
  /// must interoperate with plain CPU runs, so this is "cpu" (the split,
  /// like the thread count, must not change the hash).
  [[nodiscard]] static const char* canonical_backend_name() noexcept {
    return "cpu";
  }

  /// Plans and executes grid range [begin, end). `pool` must hold at least
  /// total_workers() - 1 threads; `scores` spans the whole grid. Callable
  /// repeatedly over disjoint ranges (the streaming driver's per-chunk
  /// calls); worker matrices persist between calls.
  void run(const std::vector<GridPosition>& grid, std::size_t begin,
           std::size_t end, par::ThreadPool& pool, const ld::LdEngine& engine,
           std::vector<PositionScore>& scores, SchedStats& sched,
           util::ProgressReporter* progress, const detail::CancelState* cancel);

  /// Marks every worker matrix dead (streaming chunk-retry contract after an
  /// exception escaped run()).
  void invalidate_matrices() noexcept;

  /// End-of-scan bookkeeping: finalizes a *copy* of every worker profile,
  /// merges them into `profile`, and folds the accumulated HeteroStats in
  /// (profile.omega_backend becomes "hetero"). Repeat-safe on successive
  /// snapshots of the same base profile — the streaming driver calls it per
  /// checkpoint on a totals copy and once at stream end on the real one.
  void finalize(ScanProfile& profile);

  /// Accumulated co-scheduler accounting so far (finalize() stamps this
  /// into the profile).
  [[nodiscard]] const HeteroStats& stats() const noexcept { return stats_; }

 private:
  struct RedispatchQueue {
    std::mutex mutex;
    std::vector<detail::ScanSpan> spans;
  };

  void run_cpu_worker(std::size_t worker, const std::vector<GridPosition>& grid,
                      const std::vector<detail::ScanSpan>& spans,
                      par::StealScheduler& scheduler, const ld::LdEngine& engine,
                      std::vector<PositionScore>& scores,
                      SchedWorkerStats& wstats, RedispatchQueue& redispatch,
                      util::ProgressReporter* progress,
                      const detail::CancelState* cancel);
  void run_accelerator(std::size_t partition,
                       const std::vector<GridPosition>& grid,
                       const std::vector<detail::ScanSpan>& spans,
                       const ld::LdEngine& engine,
                       std::vector<PositionScore>& scores,
                       SchedWorkerStats& wstats, RedispatchQueue& redispatch,
                       util::ProgressReporter* progress,
                       const detail::CancelState* cancel);

  HeteroConfig config_;
  RecoveryPolicy recovery_;
  bool reuse_ = true;
  std::size_t cpu_workers_ = 1;
  std::vector<std::unique_ptr<OmegaBackend>> backends_;  // total_workers()
  std::vector<detail::SpanWorkerState> states_;
  std::vector<ScanProfile> profiles_;
  HeteroStats stats_;
  /// One measured-throughput EWMA per partition (CPU first), observed once
  /// per run() — the empirical counterpart of the planner's modeled rates,
  /// stamped into HeteroPartitionStats::measured_rate_per_s (schema v11).
  std::vector<RateEstimator> rates_;
};

/// Folds one HeteroStats accumulation into another: counters add, partitions
/// merge by backend name (weight keeps the latest plan's share). Used by
/// HeteroExecutor::finalize and by checkpoint resume to accumulate stats
/// across runs. No-op when `from` is disabled.
void merge_hetero_stats(HeteroStats& into, const HeteroStats& from);

}  // namespace omega::core
