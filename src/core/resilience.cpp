#include "core/resilience.h"

#include <cmath>

#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::core {

const char* backend_error_kind_name(BackendErrorKind kind) noexcept {
  switch (kind) {
    case BackendErrorKind::KernelLaunch: return "kernel-launch";
    case BackendErrorKind::Timeout: return "timeout";
    case BackendErrorKind::DeviceLost: return "device-lost";
  }
  return "unknown";
}

BackendError::BackendError(BackendErrorKind kind, std::string backend,
                           const std::string& detail)
    : std::runtime_error(std::string(backend_error_kind_name(kind)) + " [" +
                         backend + "]: " + detail),
      kind_(kind),
      backend_(std::move(backend)) {}

void RecoveryPolicy::validate() const {
  if (backoff_initial_seconds < 0.0) {
    throw std::invalid_argument("recovery: negative initial backoff");
  }
  if (backoff_multiplier < 1.0) {
    throw std::invalid_argument("recovery: backoff multiplier must be >= 1");
  }
}

// ---------------------------------------------------------------------------
// FallbackBackend
// ---------------------------------------------------------------------------

FallbackBackend::FallbackBackend(std::unique_ptr<OmegaBackend> primary,
                                 CpuKernelKind kind)
    : primary_(std::move(primary)), cpu_(kind) {}

std::string FallbackBackend::name() const {
  return degraded_ ? primary_->name() + "+degraded:cpu" : primary_->name();
}

OmegaResult FallbackBackend::max_omega(const DpMatrix& m,
                                       const GridPosition& position) {
  if (degraded_) return cpu_.max_omega(m, position);
  try {
    return primary_->max_omega(m, position);
  } catch (const BackendError& error) {
    if (error.retryable()) throw;  // transient: recovery engine decides
    // Device lost: demote permanently and recompute this position on the
    // CPU loop so the result set stays complete.
    degraded_ = true;
    util::trace::instant("scan.recover.degrade");
    return cpu_.max_omega(m, position);
  }
}

void FallbackBackend::contribute(ScanProfile& profile) const {
  primary_->contribute(profile);
  cpu_.contribute(profile);  // kernel counters of any degraded positions
  if (degraded_) ++profile.faults.degradations;
}

// ---------------------------------------------------------------------------
// Recovery engine
// ---------------------------------------------------------------------------

namespace {

bool result_is_poisoned(const OmegaResult& result) {
  return result.evaluated > 0 && !std::isfinite(result.max_omega);
}

}  // namespace

RecoveryOutcome recover_max_omega(OmegaBackend& backend, const DpMatrix& m,
                                  const GridPosition& position,
                                  const RecoveryPolicy& policy,
                                  FaultRecoveryStats& stats) {
  // Distributions behind the aggregate fault counters: how long failed
  // attempts ran before erroring, and how the exponential backoff spread.
  // One record per errors_caught / per retries respectively, so telemetry
  // counts reconcile exactly against FaultRecoveryStats.
  static util::telemetry::Histogram& attempt_hist =
      util::telemetry::histogram("scan.retry.attempt_seconds");
  static util::telemetry::Histogram& backoff_hist =
      util::telemetry::histogram("scan.retry.backoff_seconds");

  RecoveryOutcome outcome;
  double backoff = policy.backoff_initial_seconds;

  for (std::size_t attempt = 0;; ++attempt) {
    const util::Timer attempt_timer;
    try {
      OmegaResult result = backend.max_omega(m, position);
      if (!policy.validate_results || !result_is_poisoned(result)) {
        outcome.result = result;
        outcome.ok = true;
        outcome.retries = attempt;
        return outcome;
      }
      ++stats.invalid_results;
    } catch (const BackendError& error) {
      ++stats.errors_caught;
      attempt_hist.record(attempt_timer.seconds());
      if (!error.retryable()) {
        // Device lost with no fallback configured: give up immediately —
        // retrying a dead device only burns the retry budget.
        ++stats.quarantined_positions;
        util::trace::instant("scan.recover.quarantine");
        outcome.retries = attempt;
        return outcome;
      }
    }

    // Transient failure: back off (virtual clock) and retry, or quarantine.
    if (attempt >= policy.max_retries) {
      ++stats.quarantined_positions;
      util::trace::instant("scan.recover.quarantine");
      outcome.retries = attempt;
      return outcome;
    }
    ++stats.retries;
    stats.backoff_virtual_seconds += backoff;
    backoff_hist.record(backoff);
    backoff *= policy.backoff_multiplier;
    util::trace::instant("scan.recover.retry");
  }
}

}  // namespace omega::core
