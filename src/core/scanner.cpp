#include "core/scanner.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/hetero_scheduler.h"
#include "core/resilience.h"
#include "core/scan_driver.h"
#include "core/span_engine.h"
#include "ld/packed.h"
#include "par/thread_pool.h"
#include "util/flight_recorder.h"
#include "util/perf_counters.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::core {

std::size_t resolve_scan_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

LdBackendKind resolve_ld_backend(LdBackendKind kind) noexcept {
  // Auto always resolves to the packed engine: it carries its own AVX2 vs
  // scalar microkernel dispatch, so it is the best available choice on every
  // host, and all engines produce bitwise-identical r2 anyway.
  return kind == LdBackendKind::Auto ? LdBackendKind::Packed : kind;
}

const char* ld_backend_name(LdBackendKind kind) noexcept {
  switch (kind) {
    case LdBackendKind::Naive:
      return "naive";
    case LdBackendKind::Popcount:
      return "popcount";
    case LdBackendKind::Gemm:
      return "gemm";
    case LdBackendKind::Packed:
      return "packed";
    case LdBackendKind::Auto:
      return "auto";
  }
  return "unknown";
}

LdBackendKind ld_backend_from_name(std::string_view name) {
  if (name == "naive") return LdBackendKind::Naive;
  if (name == "popcount") return LdBackendKind::Popcount;
  if (name == "gemm") return LdBackendKind::Gemm;
  if (name == "packed") return LdBackendKind::Packed;
  if (name == "auto") return LdBackendKind::Auto;
  throw std::invalid_argument("unknown LD engine: " + std::string(name) +
                              " (expected auto | naive | popcount | gemm | "
                              "packed)");
}

std::unique_ptr<ld::LdEngine> make_ld_engine(LdBackendKind kind,
                                             const io::Dataset& dataset,
                                             const ld::SnpMatrix& snps) {
  switch (resolve_ld_backend(kind)) {
    case LdBackendKind::Naive:
      return std::make_unique<ld::NaiveLd>(dataset);
    case LdBackendKind::Popcount:
      return std::make_unique<ld::PopcountLd>(snps);
    case LdBackendKind::Gemm:
      return std::make_unique<ld::GemmLd>(snps);
    case LdBackendKind::Packed:
      return std::make_unique<ld::PackedLd>(snps);
    case LdBackendKind::Auto:
      break;  // resolved above; unreachable
  }
  throw std::logic_error("unknown LD backend");
}

namespace detail {

void advance_matrix(DpMatrix& m, bool& m_live, bool reuse,
                    const GridPosition& position, const ld::LdEngine& engine,
                    StageTimes& stages, par::ThreadPool* pool) {
  // Per-stage latency distributions; resolved once, then lock-free records.
  // Registered metrics are never deallocated, so these references stay valid
  // across telemetry::reset().
  static util::telemetry::Histogram& reset_hist =
      util::telemetry::histogram("scan.reset_seconds");
  static util::telemetry::Histogram& relocate_hist =
      util::telemetry::histogram("scan.relocate_seconds");
  static util::telemetry::Histogram& extend_hist =
      util::telemetry::histogram("scan.extend_seconds");
  // Hardware-counter attribution mirrors the histogram stages one-to-one:
  // each StageScope's `scopes` counter must equal the matching histogram's
  // count (the schema v11 reconciliation invariant tests assert).
  static util::perf::StageCounters& reset_perf =
      util::perf::stage("scan.reset");
  static util::perf::StageCounters& relocate_perf =
      util::perf::stage("scan.relocate");
  static util::perf::StageCounters& extend_perf =
      util::perf::stage("scan.extend");
  if (!reuse || !m_live || position.lo < m.base()) {
    const util::trace::Span span("scan.ld.reset");
    const util::perf::StageScope perf_scope(reset_perf);
    const util::Timer timer;
    m.reset(position.lo);
    const double elapsed = timer.seconds();
    stages.ld_reset_seconds += elapsed;
    reset_hist.record(elapsed);
  } else {
    const util::trace::Span span("scan.ld.relocate");
    const util::perf::StageScope perf_scope(relocate_perf);
    const util::Timer timer;
    m.relocate(position.lo);
    const double elapsed = timer.seconds();
    stages.ld_relocate_seconds += elapsed;
    relocate_hist.record(elapsed);
  }
  {
    const util::trace::Span span("scan.ld.extend");
    const util::perf::StageScope perf_scope(extend_perf);
    const util::Timer timer;
    m.extend(position.hi + 1, engine, pool);
    const double elapsed = timer.seconds();
    stages.ld_extend_seconds += elapsed;
    extend_hist.record(elapsed);
  }
  m_live = true;
}

void merge_matrix_stats(ScanProfile& profile, const DpMatrix& m) {
  const DpMatrixStats& stats = m.stats();
  profile.relocation.resets += stats.resets;
  profile.relocation.relocations += stats.relocations;
  profile.relocation.cells_reused += stats.cells_reused;
  profile.relocation.cells_recomputed += stats.cells_recomputed;
  profile.r2_fetched += m.r2_fetches();
}

/// Folds a worker's chunk profile into the scan-wide one. Times add up as
/// CPU-seconds across workers (ScanProfile's documented multithreaded
/// semantics); counters add exactly.
void merge_worker_profile(ScanProfile& into, const ScanProfile& from) {
  into.ld_seconds += from.ld_seconds;
  into.omega_seconds += from.omega_seconds;
  into.omega_evaluations += from.omega_evaluations;
  into.r2_fetched += from.r2_fetched;
  into.positions_scanned += from.positions_scanned;
  into.stages.ld_reset_seconds += from.stages.ld_reset_seconds;
  into.stages.ld_relocate_seconds += from.stages.ld_relocate_seconds;
  into.stages.ld_extend_seconds += from.stages.ld_extend_seconds;
  into.stages.omega_search_seconds += from.stages.omega_search_seconds;
  into.stages.dispatch_seconds += from.stages.dispatch_seconds;
  into.relocation.resets += from.relocation.resets;
  into.relocation.relocations += from.relocation.relocations;
  into.relocation.cells_reused += from.relocation.cells_reused;
  into.relocation.cells_recomputed += from.relocation.cells_recomputed;
  into.gpu.kernel1_launches += from.gpu.kernel1_launches;
  into.gpu.kernel2_launches += from.gpu.kernel2_launches;
  into.gpu.kernel1_omegas += from.gpu.kernel1_omegas;
  into.gpu.kernel2_omegas += from.gpu.kernel2_omegas;
  into.gpu.modeled_kernel_seconds += from.gpu.modeled_kernel_seconds;
  into.gpu.modeled_prep_seconds += from.gpu.modeled_prep_seconds;
  into.gpu.modeled_transfer_seconds += from.gpu.modeled_transfer_seconds;
  into.gpu.modeled_total_seconds += from.gpu.modeled_total_seconds;
  into.gpu.bytes_moved += from.gpu.bytes_moved;
  into.fpga.pipeline_cycles += from.fpga.pipeline_cycles;
  into.fpga.stall_cycles += from.fpga.stall_cycles;
  into.fpga.hw_omegas += from.fpga.hw_omegas;
  into.fpga.sw_omegas += from.fpga.sw_omegas;
  into.fpga.modeled_seconds += from.fpga.modeled_seconds;
  into.faults.faults_injected += from.faults.faults_injected;
  into.faults.injected_kernel_launch += from.faults.injected_kernel_launch;
  into.faults.injected_timeout += from.faults.injected_timeout;
  into.faults.injected_nan += from.faults.injected_nan;
  into.faults.injected_device_lost += from.faults.injected_device_lost;
  into.faults.errors_caught += from.faults.errors_caught;
  into.faults.invalid_results += from.faults.invalid_results;
  into.faults.retries += from.faults.retries;
  into.faults.quarantined_positions += from.faults.quarantined_positions;
  into.faults.degradations += from.faults.degradations;
  into.faults.backoff_virtual_seconds += from.faults.backoff_virtual_seconds;
  into.kernel.positions += from.kernel.positions;
  into.kernel.scalar_evaluations += from.kernel.scalar_evaluations;
  into.kernel.portable_evaluations += from.kernel.portable_evaluations;
  into.kernel.avx2_evaluations += from.kernel.avx2_evaluations;
  if (into.omega_backend.empty()) into.omega_backend = from.omega_backend;
}

void init_cancel_state(CancelState& cancel, const ScannerOptions& options,
                       util::CancelToken& internal) {
  if (options.cancel != nullptr) {
    cancel.token = options.cancel;
  } else if (options.deadline_seconds > 0.0) {
    cancel.token = &internal;
  }
  if (cancel.token != nullptr && options.deadline_seconds > 0.0) {
    cancel.deadline =
        util::Deadline(options.deadline_seconds, options.deadline_clock);
  }
}

void finalize_runtime(ScanProfile& profile, const CancelState& cancel,
                      double deadline_seconds,
                      const std::vector<GridPosition>& grid,
                      const std::vector<PositionScore>& scores) {
  RuntimeStats& runtime = profile.runtime;
  runtime.deadline_seconds = deadline_seconds > 0.0 ? deadline_seconds : 0.0;
  for (std::size_t g = 0; g < grid.size() && g < scores.size(); ++g) {
    if (grid[g].valid && !scores[g].valid && !scores[g].quarantined) {
      ++runtime.positions_skipped;
    }
  }
  runtime.partial = runtime.positions_skipped > 0;
  const bool cancelled =
      cancel.token != nullptr && cancel.token->cancelled();
  if (cancelled) {
    runtime.cancelled = true;
    runtime.cancel_reason = util::cancel_reason_name(cancel.token->reason());
    if (cancel.observed.load(std::memory_order_acquire)) {
      runtime.cancel_latency_seconds =
          cancel.since_start.seconds() -
          cancel.observed_seconds.load(std::memory_order_acquire);
      static util::telemetry::Histogram& latency_hist =
          util::telemetry::histogram("runtime.cancel_latency_seconds");
      latency_hist.record(runtime.cancel_latency_seconds);
    }
  }
  if (deadline_seconds > 0.0) {
    if (cancelled &&
        cancel.token->reason() == util::CancelReason::Deadline) {
      runtime.deadline_outcome = "expired";
    } else if (cancelled) {
      // Cancelled for another reason before the deadline resolved.
      runtime.deadline_outcome = "preempted";
    } else {
      runtime.deadline_outcome = "met";
    }
  } else {
    runtime.deadline_outcome = "none";
  }
}

void finalize_ld_stats(ScanProfile& profile, const ScannerOptions& options) {
  LdStats& ld = profile.ld;
  ld.requested =
      options.ld_factory ? "custom" : ld_backend_name(options.ld);
  ld.engine = profile.ld_backend;
  // make_ld_engine builds PackedLd with PackedIsa::Auto, so the resolved
  // microkernel body is reproducible from the build/host alone.
  ld.isa = profile.ld_backend == "packed"
               ? ld::packed_isa_name(ld::PackedIsa::Auto)
               : "";
  // Derived from the scan-attributed telemetry delta (must already be set):
  // this accumulates correctly across per-chunk engines in streamed scans
  // and across runs on checkpoint resume, with no extra plumbing.
  ld.panel_packs = profile.telemetry.counter_value("ld.panel_cache.misses");
  ld.panel_hits = profile.telemetry.counter_value("ld.panel_cache.hits");
  const util::telemetry::HistogramSnapshot* pack =
      profile.telemetry.find_histogram("ld.pack_seconds");
  ld.pack_seconds = pack != nullptr ? pack->sum : 0.0;
  const util::telemetry::HistogramSnapshot* kernel =
      profile.telemetry.find_histogram("ld.kernel_seconds");
  ld.kernel_seconds = kernel != nullptr ? kernel->sum : 0.0;
}

void finalize_perf_stats(ScanProfile& profile) {
  PerfStats& perf = profile.perf;
  perf.enabled = util::perf::enabled();
  perf.source = perf.enabled ? util::perf::source() : "";
  perf.stages.clear();
  if (!perf.enabled) return;
  // Re-group the scan-attributed delta's flat perf.<stage>.<field> counters
  // into per-stage entries. A std::map keys them stage-name-sorted, matching
  // the documented PerfStats order without a second sort.
  std::map<std::string, PerfStageStats> stages;
  for (const auto& [name, value] : profile.telemetry.counters) {
    const std::string_view view(name);
    if (view.substr(0, 5) != "perf.") continue;
    const std::size_t last_dot = view.rfind('.');
    if (last_dot == std::string_view::npos || last_dot <= 5) continue;
    const std::string stage_name(view.substr(5, last_dot - 5));
    const std::string_view field = view.substr(last_dot + 1);
    PerfStageStats& stats = stages[stage_name];
    stats.stage = stage_name;
    if (field == "scopes") {
      stats.scopes = value;
    } else if (field == "cycles") {
      stats.cycles = value;
    } else if (field == "instructions") {
      stats.instructions = value;
    } else if (field == "cache_misses") {
      stats.cache_misses = value;
    } else if (field == "branch_misses") {
      stats.branch_misses = value;
    } else if (field == "task_clock_ns") {
      stats.task_clock_seconds = static_cast<double>(value) * 1e-9;
    }
  }
  for (auto& [stage_name, stats] : stages) {
    if (stats.scopes == 0) continue;  // stage never entered during this scan
    perf.stages.push_back(std::move(stats));
  }
}

bool score_position(OmegaBackend& backend, const DpMatrix& m,
                    const GridPosition& position,
                    const RecoveryPolicy& recovery, ScanProfile& profile,
                    PositionScore& score, util::ProgressReporter* progress) {
  const std::uint64_t faults_before =
      profile.faults.errors_caught + profile.faults.invalid_results;
  RecoveryOutcome outcome;
  {
    const util::trace::Span span("scan.omega.search");
    static util::perf::StageCounters& search_perf =
        util::perf::stage("scan.omega_search");
    const util::perf::StageScope perf_scope(search_perf);
    const util::Timer timer;
    outcome = recover_max_omega(backend, m, position, recovery, profile.faults);
    profile.stages.omega_search_seconds += timer.seconds();
  }
  if (progress != nullptr) {
    util::ProgressReporter::Delta delta;
    delta.positions = 1;
    delta.faults = profile.faults.errors_caught +
                   profile.faults.invalid_results - faults_before;
    delta.quarantined = outcome.ok ? 0 : 1;
    progress->advance(delta);
  }
  if (!outcome.ok) {
    score.quarantined = true;
    // Exhausted recovery is a flight-recorder trigger: the first quarantine
    // since arm() dumps the black box (later ones only bump the counter).
    util::flight::note_fault_exhausted();
    return false;
  }
  score.max_omega = outcome.result.max_omega;
  score.best_a = outcome.result.best_a;
  score.best_b = outcome.result.best_b;
  score.evaluated = outcome.result.evaluated;
  score.valid = true;
  profile.omega_evaluations += outcome.result.evaluated;
  ++profile.positions_scanned;
  return true;
}

}  // namespace detail

namespace {

using detail::advance_matrix;
using detail::merge_matrix_stats;
using detail::merge_worker_profile;
using detail::score_position;

/// Scans a contiguous chunk of grid positions with its own DP matrix. Every
/// backend call goes through the recovery engine: transient failures retry
/// (virtual-clock backoff), exhausted positions are quarantined instead of
/// aborting the scan.
void scan_chunk(const std::vector<GridPosition>& grid, std::size_t begin,
                std::size_t end, const ld::LdEngine& engine, bool reuse,
                const RecoveryPolicy& recovery, OmegaBackend& backend,
                std::vector<PositionScore>& scores, ScanProfile& profile,
                util::ProgressReporter* progress,
                const detail::CancelState* cancel = nullptr) {
  DpMatrix m;
  bool m_live = false;

  try {
    for (std::size_t g = begin; g < end; ++g) {
      if (cancel != nullptr && cancel->should_stop()) break;
      const GridPosition& position = grid[g];
      PositionScore& score = scores[g];
      score.position_bp = position.position_bp;
      if (!position.valid) continue;

      advance_matrix(m, m_live, reuse, position, engine, profile.stages);
      score_position(backend, m, position, recovery, profile, score, progress);
    }
  } catch (const util::CancelledError&) {
    // A simulator backend observed the cancel mid-launch; the position in
    // flight stays unscored (neither valid nor quarantined) and the drain
    // proceeds with whatever is settled so far.
  }
  profile.ld_seconds += profile.stages.ld_total();
  profile.omega_seconds += profile.stages.omega_search_seconds;
  merge_matrix_stats(profile, m);
  backend.contribute(profile);
  profile.omega_backend = backend.name();
}

/// Adapter presenting the intra-position parallel search as an OmegaBackend
/// so the InnerPosition driver shares the recovery engine. Routes through the
/// dispatched kernel layer like CpuOmegaBackend and accounts evaluations the
/// same way.
class InnerPositionBackend final : public OmegaBackend {
 public:
  InnerPositionBackend(par::ThreadPool& pool, CpuKernelKind kind)
      : pool_(pool), kind_(kind) {}
  [[nodiscard]] std::string name() const override { return "cpu"; }
  OmegaResult max_omega(const DpMatrix& m,
                        const GridPosition& position) override {
    OmegaResult result =
        omega_kernel_search_parallel(pool_, m, position, kind_, lane_scratch_);
    counters_.add(kind_, result.evaluated);
    ++positions_;
    return result;
  }
  void contribute(ScanProfile& profile) const override {
    profile.kernel.positions += positions_;
    profile.kernel.scalar_evaluations += counters_.scalar_evaluations;
    profile.kernel.portable_evaluations += counters_.portable_evaluations;
    profile.kernel.avx2_evaluations += counters_.avx2_evaluations;
  }

 private:
  par::ThreadPool& pool_;
  CpuKernelKind kind_;
  std::vector<OmegaKernelScratch> lane_scratch_;
  CpuKernelCounters counters_;
  std::uint64_t positions_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// CpuOmegaBackend
// ---------------------------------------------------------------------------

CpuOmegaBackend::CpuOmegaBackend()
    : kind_(resolve_cpu_kernel(CpuKernelKind::Auto)) {}

CpuOmegaBackend::CpuOmegaBackend(CpuKernelKind kind)
    : kind_(resolve_cpu_kernel(kind)) {}

OmegaResult CpuOmegaBackend::max_omega(const DpMatrix& m,
                                       const GridPosition& position) {
  OmegaResult result = omega_kernel_search(m, position, kind_, scratch_);
  counters_.add(kind_, result.evaluated);
  ++positions_;
  return result;
}

void CpuOmegaBackend::contribute(ScanProfile& profile) const {
  profile.kernel.positions += positions_;
  profile.kernel.scalar_evaluations += counters_.scalar_evaluations;
  profile.kernel.portable_evaluations += counters_.portable_evaluations;
  profile.kernel.avx2_evaluations += counters_.avx2_evaluations;
}

const PositionScore& ScanResult::best() const {
  const PositionScore* best = nullptr;
  for (const PositionScore& score : scores) {
    if (!score.valid) continue;
    if (best == nullptr || score.max_omega > best->max_omega) best = &score;
  }
  if (best == nullptr) {
    throw std::logic_error("scan result contains no valid score");
  }
  return *best;
}

bool ScanResult::has_valid() const noexcept {
  return std::any_of(scores.begin(), scores.end(),
                     [](const PositionScore& score) { return score.valid; });
}

std::vector<PositionScore> ScanResult::top(std::size_t k) const {
  std::vector<PositionScore> sorted;
  sorted.reserve(scores.size());
  std::copy_if(scores.begin(), scores.end(), std::back_inserter(sorted),
               [](const PositionScore& score) { return score.valid; });
  std::sort(sorted.begin(), sorted.end(),
            [](const PositionScore& a, const PositionScore& b) {
              return a.max_omega > b.max_omega;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

ScanResult scan(const io::Dataset& dataset, const ScannerOptions& options,
                const std::function<std::unique_ptr<OmegaBackend>()>&
                    backend_factory) {
  options.config.validate();
  options.recovery.validate();
  // Resolve the CPU kernel once, up front: a forced-but-unavailable Avx2
  // request fails here (std::runtime_error) before any work starts.
  const CpuKernelKind kernel = resolve_cpu_kernel(options.cpu_kernel);
  // Resolve the thread-count convention (0 = hardware concurrency) exactly
  // once; everything downstream — branch selection, pool size, profile —
  // sees the resolved count.
  const std::size_t threads = resolve_scan_threads(options.threads);
  const util::trace::Span scan_span("scan");
  util::Timer total;
  // Registry state at scan start: the end-of-scan delta attributes the
  // process-wide telemetry to this scan (ScanProfile::telemetry docs).
  const util::telemetry::RegistrySnapshot telemetry_begin =
      util::telemetry::snapshot();
  // Cooperative cancellation: the caller's token, or an internal one when
  // only a deadline was set. Null `cancel` means no polling overhead at all.
  util::CancelToken internal_token;
  detail::CancelState cancel_state;
  detail::init_cancel_state(cancel_state, options, internal_token);
  const detail::CancelState* cancel =
      cancel_state.enabled() ? &cancel_state : nullptr;

  const ld::SnpMatrix snps(dataset);
  const auto engine = options.ld_factory
                          ? options.ld_factory(snps)
                          : make_ld_engine(options.ld, dataset, snps);
  const auto grid = build_grid(dataset, options.config);

  ScanResult result;
  result.scores.resize(grid.size());
  result.profile.ld_backend = engine->name();
  result.profile.kernel.requested = cpu_kernel_name(options.cpu_kernel);
  result.profile.kernel.selected = cpu_kernel_name(kernel);
  result.profile.kernel.avx2_supported = cpu_kernel_avx2_available();
  result.profile.sched.requested_threads = options.threads;
  result.profile.sched.workers = threads;

  if (options.progress != nullptr) {
    std::uint64_t valid_positions = 0;
    for (const GridPosition& position : grid) {
      if (position.valid) ++valid_positions;
    }
    options.progress->begin(valid_positions, /*chunks_total=*/0);
  }

  auto make_backend = [&]() -> std::unique_ptr<OmegaBackend> {
    if (!backend_factory) return std::make_unique<CpuOmegaBackend>(kernel);
    auto backend = backend_factory();
    // Graceful degradation: a device-lost error demotes this worker's
    // backend to the CPU loop instead of quarantining the rest of its chunk.
    if (options.recovery.fallback_to_cpu) {
      backend = std::make_unique<FallbackBackend>(std::move(backend), kernel);
    }
    return backend;
  };

  if (options.hetero != nullptr) {
    // Heterogeneous co-scheduler (core/hetero_scheduler.h): CPU span workers
    // plus one worker per accelerator partition, all sharing one pool. The
    // executor overrides mt_strategy and backend_factory; `threads` bounds
    // the total worker count.
    HeteroExecutor executor(*options.hetero, options.recovery, kernel,
                            options.reuse, threads);
    result.profile.sched.workers = executor.total_workers();
    // total_workers() >= 2 whenever an accelerator is configured; the max
    // guard keeps the degenerate no-accelerator config off ThreadPool's
    // 0-means-auto convention.
    par::ThreadPool pool(std::max<std::size_t>(1, executor.total_workers() - 1));
    // Spans only tile ranges holding valid positions; stamp every score's
    // coordinate up front so all-invalid grids still report positions.
    for (std::size_t g = 0; g < grid.size(); ++g) {
      result.scores[g].position_bp = grid[g].position_bp;
    }
    executor.run(grid, 0, grid.size(), pool, *engine, result.scores,
                 result.profile.sched, options.progress, cancel);
    executor.finalize(result.profile);
  } else if (threads <= 1) {
    auto backend = make_backend();
    scan_chunk(grid, 0, grid.size(), *engine, options.reuse, options.recovery,
               *backend, result.scores, result.profile, options.progress,
               cancel);
  } else if (options.mt_strategy ==
             ScannerOptions::MtStrategy::InnerPosition) {
    if (backend_factory) {
      throw std::invalid_argument(
          "scan: InnerPosition multithreading requires the CPU backend");
    }
    // One shared DP matrix; the per-position omega loop fans out instead.
    // The pool-backed search is routed through the same recovery engine as
    // the chunked drivers so NaN validation and quarantine behave uniformly.
    par::ThreadPool pool(threads - 1);
    InnerPositionBackend backend(pool, kernel);
    DpMatrix m;
    bool m_live = false;
    ScanProfile& profile = result.profile;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      if (cancel != nullptr && cancel->should_stop()) break;
      const GridPosition& position = grid[g];
      PositionScore& score = result.scores[g];
      score.position_bp = position.position_bp;
      if (!position.valid) continue;
      // The pool is idle between omega searches — large extends borrow it
      // for the suffix-scan phase.
      advance_matrix(m, m_live, options.reuse, position, *engine,
                     profile.stages, &pool);
      score_position(backend, m, position, options.recovery, profile, score,
                     options.progress);
    }
    profile.ld_seconds = profile.stages.ld_total();
    profile.omega_seconds = profile.stages.omega_search_seconds;
    merge_matrix_stats(profile, m);
    backend.contribute(profile);
    profile.omega_backend = backend.name();
  } else {
    // Work-stealing span engine (core/span_engine.h): the grid is split into
    // relocation-coherent spans budgeted by valid-position cost; each worker
    // owns a DP matrix and a backend instance and claims spans dynamically.
    const std::size_t workers = threads;
    par::ThreadPool pool(workers - 1);
    std::vector<ScanProfile> profiles(workers);
    std::vector<std::unique_ptr<OmegaBackend>> backends;
    backends.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) backends.push_back(make_backend());
    std::vector<detail::SpanWorkerState> states(workers);
    // Spans only tile ranges holding valid positions; stamp every score's
    // coordinate up front so all-invalid grids still report positions.
    for (std::size_t g = 0; g < grid.size(); ++g) {
      result.scores[g].position_bp = grid[g].position_bp;
    }
    const auto spans = detail::build_scan_spans(grid, 0, grid.size(), workers);
    detail::scan_spans_parallel(grid, spans, pool, *engine, options.reuse,
                                options.recovery, backends, states,
                                result.scores, profiles, result.profile.sched,
                                options.progress, cancel);
    for (std::size_t w = 0; w < workers; ++w) {
      detail::finalize_span_worker(profiles[w], states[w], *backends[w]);
      // Per-bucket times are summed across workers (CPU-seconds); use
      // total_seconds (wall clock) with the bucket shares for elapsed-time
      // throughput, as ScanProfile documents.
      merge_worker_profile(result.profile, profiles[w]);
    }
  }
  detail::finalize_runtime(result.profile, cancel_state,
                           options.deadline_seconds, grid, result.scores);
  result.profile.total_seconds = total.seconds();
  result.profile.telemetry =
      util::telemetry::snapshot().delta_since(telemetry_begin);
  detail::finalize_ld_stats(result.profile, options);
  detail::finalize_perf_stats(result.profile);
  if (options.progress != nullptr) options.progress->finish();
  return result;
}

}  // namespace omega::core
