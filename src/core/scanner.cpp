#include "core/scanner.h"

#include <algorithm>
#include <stdexcept>

#include "par/thread_pool.h"
#include "util/timer.h"

namespace omega::core {
namespace {

std::unique_ptr<ld::LdEngine> make_ld_engine(LdBackendKind kind,
                                             const io::Dataset& dataset,
                                             const ld::SnpMatrix& snps) {
  switch (kind) {
    case LdBackendKind::Naive:
      return std::make_unique<ld::NaiveLd>(dataset);
    case LdBackendKind::Popcount:
      return std::make_unique<ld::PopcountLd>(snps);
    case LdBackendKind::Gemm:
      return std::make_unique<ld::GemmLd>(snps);
  }
  throw std::logic_error("unknown LD backend");
}

/// Scans a contiguous chunk of grid positions with its own DP matrix.
void scan_chunk(const std::vector<GridPosition>& grid, std::size_t begin,
                std::size_t end, const ld::LdEngine& engine, bool reuse,
                OmegaBackend& backend, std::vector<PositionScore>& scores,
                ScanProfile& profile) {
  DpMatrix m;
  bool m_live = false;
  util::StopWatch ld_watch, omega_watch;

  for (std::size_t g = begin; g < end; ++g) {
    const GridPosition& position = grid[g];
    PositionScore& score = scores[g];
    score.position_bp = position.position_bp;
    if (!position.valid) continue;

    {
      util::ScopedTimer timing(ld_watch);
      if (!reuse || !m_live || position.lo < m.base()) {
        m.reset(position.lo);
      } else {
        m.relocate(position.lo);
      }
      m.extend(position.hi + 1, engine);
      m_live = true;
    }
    OmegaResult result;
    {
      util::ScopedTimer timing(omega_watch);
      result = backend.max_omega(m, position);
    }
    score.max_omega = result.max_omega;
    score.best_a = result.best_a;
    score.best_b = result.best_b;
    score.evaluated = result.evaluated;
    score.valid = true;
    profile.omega_evaluations += result.evaluated;
  }
  profile.ld_seconds += ld_watch.total_seconds();
  profile.omega_seconds += omega_watch.total_seconds();
  profile.r2_fetched += m.r2_fetches();
}

}  // namespace

const PositionScore& ScanResult::best() const {
  const auto it = std::max_element(
      scores.begin(), scores.end(),
      [](const PositionScore& a, const PositionScore& b) {
        return a.max_omega < b.max_omega;
      });
  if (it == scores.end()) throw std::logic_error("empty scan result");
  return *it;
}

std::vector<PositionScore> ScanResult::top(std::size_t k) const {
  std::vector<PositionScore> sorted = scores;
  std::sort(sorted.begin(), sorted.end(),
            [](const PositionScore& a, const PositionScore& b) {
              return a.max_omega > b.max_omega;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

ScanResult scan(const io::Dataset& dataset, const ScannerOptions& options,
                const std::function<std::unique_ptr<OmegaBackend>()>&
                    backend_factory) {
  options.config.validate();
  util::Timer total;

  const ld::SnpMatrix snps(dataset);
  const auto engine = options.ld_factory
                          ? options.ld_factory(snps)
                          : make_ld_engine(options.ld, dataset, snps);
  const auto grid = build_grid(dataset, options.config);

  ScanResult result;
  result.scores.resize(grid.size());

  auto make_backend = [&]() -> std::unique_ptr<OmegaBackend> {
    return backend_factory ? backend_factory()
                           : std::make_unique<CpuOmegaBackend>();
  };

  if (options.threads <= 1) {
    auto backend = make_backend();
    scan_chunk(grid, 0, grid.size(), *engine, options.reuse, *backend,
               result.scores, result.profile);
  } else if (options.mt_strategy ==
             ScannerOptions::MtStrategy::InnerPosition) {
    if (backend_factory) {
      throw std::invalid_argument(
          "scan: InnerPosition multithreading requires the CPU backend");
    }
    // One shared DP matrix; the per-position omega loop fans out instead.
    par::ThreadPool pool(options.threads - 1);
    DpMatrix m;
    bool m_live = false;
    util::StopWatch ld_watch, omega_watch;
    for (std::size_t g = 0; g < grid.size(); ++g) {
      const GridPosition& position = grid[g];
      PositionScore& score = result.scores[g];
      score.position_bp = position.position_bp;
      if (!position.valid) continue;
      {
        util::ScopedTimer timing(ld_watch);
        if (!options.reuse || !m_live || position.lo < m.base()) {
          m.reset(position.lo);
        } else {
          m.relocate(position.lo);
        }
        m.extend(position.hi + 1, *engine);
        m_live = true;
      }
      OmegaResult omega_result;
      {
        util::ScopedTimer timing(omega_watch);
        omega_result = max_omega_search_parallel(pool, m, position);
      }
      score.max_omega = omega_result.max_omega;
      score.best_a = omega_result.best_a;
      score.best_b = omega_result.best_b;
      score.evaluated = omega_result.evaluated;
      score.valid = true;
      result.profile.omega_evaluations += omega_result.evaluated;
    }
    result.profile.ld_seconds = ld_watch.total_seconds();
    result.profile.omega_seconds = omega_watch.total_seconds();
    result.profile.r2_fetched = m.r2_fetches();
  } else {
    // Contiguous chunks preserve intra-chunk relocation reuse; each worker
    // owns a DP matrix and a backend instance.
    const std::size_t workers = options.threads;
    par::ThreadPool pool(workers - 1);
    std::vector<ScanProfile> profiles(workers);
    const std::size_t chunk = (grid.size() + workers - 1) / workers;
    std::vector<std::function<void()>> tasks;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * chunk;
      if (begin >= grid.size()) break;
      const std::size_t end = std::min(grid.size(), begin + chunk);
      tasks.emplace_back([&, w, begin, end] {
        auto backend = make_backend();
        scan_chunk(grid, begin, end, *engine, options.reuse, *backend,
                   result.scores, profiles[w]);
      });
    }
    pool.run_blocking(std::move(tasks));
    for (const auto& profile : profiles) {
      // Per-bucket times are summed across workers (CPU-seconds); use
      // total_seconds (wall clock) with the bucket shares for elapsed-time
      // throughput, as ScanProfile documents.
      result.profile.ld_seconds += profile.ld_seconds;
      result.profile.omega_seconds += profile.omega_seconds;
      result.profile.omega_evaluations += profile.omega_evaluations;
      result.profile.r2_fetched += profile.r2_fetched;
    }
  }
  result.profile.total_seconds = total.seconds();
  return result;
}

}  // namespace omega::core
