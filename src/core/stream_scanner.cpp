#include "core/stream_scanner.h"

#include <algorithm>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "core/hetero_scheduler.h"
#include "core/resilience.h"
#include "core/scan_driver.h"
#include "core/span_engine.h"
#include "io/fingerprint.h"
#include "par/thread_pool.h"
#include "util/perf_counters.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::core {

void StreamScanOptions::validate() const {
  if (chunk_sites == 0) {
    throw std::invalid_argument("stream: chunk_sites must be >= 1");
  }
  if (resume && checkpoint_path.empty()) {
    throw std::invalid_argument("stream: resume requires a checkpoint path");
  }
}

std::vector<io::SiteRange> StreamPlan::site_ranges() const {
  std::vector<io::SiteRange> ranges;
  ranges.reserve(chunks.size());
  for (const StreamChunkPlan& chunk : chunks) ranges.push_back(chunk.sites);
  return ranges;
}

std::uint64_t StreamPlan::overlap_sites() const {
  std::uint64_t overlap = 0;
  for (std::size_t k = 1; k < chunks.size(); ++k) {
    const std::size_t prev_end = chunks[k - 1].sites.end;
    const std::size_t begin = chunks[k].sites.begin;
    if (begin < prev_end) overlap += prev_end - begin;
  }
  return overlap;
}

StreamPlan plan_stream_chunks(const std::vector<std::int64_t>& positions_bp,
                              const OmegaConfig& config,
                              std::size_t chunk_sites) {
  StreamPlan plan;
  plan.grid = build_grid(positions_bp, config);

  // Pack consecutive valid positions greedily. Grid positions are laid out
  // left to right, so lo/hi are non-decreasing along the grid and the
  // covering span of a chunk is [first lo, last hi + 1).
  bool open = false;
  StreamChunkPlan current;
  std::size_t last_valid = 0;
  auto close = [&](std::size_t grid_end) {
    current.grid_end = grid_end;
    plan.chunks.push_back(current);
    open = false;
  };
  for (std::size_t g = 0; g < plan.grid.size(); ++g) {
    const GridPosition& position = plan.grid[g];
    if (!position.valid) continue;
    const std::size_t end = position.hi + 1;
    if (open && end - current.sites.begin <= chunk_sites) {
      current.sites.end = std::max(current.sites.end, end);
      last_valid = g;
      continue;
    }
    if (open) close(last_valid + 1);
    current = StreamChunkPlan{io::SiteRange{position.lo, end},
                              plan.chunks.empty() ? 0 : last_valid + 1, 0};
    last_valid = g;
    open = true;
  }
  // The final chunk also absorbs any trailing invalid positions.
  if (open) close(plan.grid.size());
  return plan;
}

ScanResult stream_scan(io::ChunkReader& reader, const ScannerOptions& options,
                       const StreamScanOptions& stream_options,
                       const std::function<std::unique_ptr<OmegaBackend>()>&
                           backend_factory) {
  options.config.validate();
  options.recovery.validate();
  stream_options.validate();
  const CpuKernelKind kernel = resolve_cpu_kernel(options.cpu_kernel);
  // Same resolved-once thread convention as scan(); > 1 runs the span engine
  // within each resident chunk, so the memory bound is unaffected.
  const std::size_t threads = resolve_scan_threads(options.threads);
  const util::trace::Span scan_span("stream.scan");
  const util::Timer total;
  const util::telemetry::RegistrySnapshot telemetry_begin =
      util::telemetry::snapshot();
  util::telemetry::Histogram& fetch_hist =
      util::telemetry::histogram("stream.chunk_fetch_seconds");
  util::telemetry::Histogram& chunk_scan_hist =
      util::telemetry::histogram("stream.chunk_scan_seconds");
  util::telemetry::Histogram& stall_hist =
      util::telemetry::histogram("stream.io_stall_seconds");

  // Cooperative cancellation: the caller's token, or an internal one when
  // only a deadline was set. Null `cancel` means no polling overhead at all.
  util::CancelToken internal_token;
  detail::CancelState cancel_state;
  detail::init_cancel_state(cancel_state, options, internal_token);
  const detail::CancelState* cancel =
      cancel_state.enabled() ? &cancel_state : nullptr;

  const io::StreamIndex& index = reader.index();
  StreamPlan plan = plan_stream_chunks(index.positions_bp, options.config,
                                       stream_options.chunk_sites);

  ScanResult result;
  result.scores.resize(plan.grid.size());
  for (std::size_t g = 0; g < plan.grid.size(); ++g) {
    result.scores[g].position_bp = plan.grid[g].position_bp;
  }
  ScanProfile& profile = result.profile;
  profile.kernel.requested = cpu_kernel_name(options.cpu_kernel);
  profile.kernel.selected = cpu_kernel_name(kernel);
  profile.kernel.avx2_supported = cpu_kernel_avx2_available();
  profile.sched.requested_threads = options.threads;
  profile.sched.workers = threads;

  StreamStats& stream = profile.stream;
  stream.chunks = plan.chunks.size();
  stream.chunk_sites_target = stream_options.chunk_sites;
  stream.total_sites = index.num_sites();
  stream.overlap_sites = plan.overlap_sites();
  for (std::size_t k = 0; k < plan.chunks.size(); ++k) {
    // Peak residency is deterministic from the plan: chunk k plus, under
    // double buffering, the chunk being prefetched behind it.
    std::uint64_t resident = plan.chunks[k].sites.size();
    if (stream_options.double_buffer && k + 1 < plan.chunks.size()) {
      resident += plan.chunks[k + 1].sites.size();
    }
    stream.peak_resident_sites = std::max(stream.peak_resident_sites, resident);
  }

  std::uint64_t valid_positions = 0;
  for (const GridPosition& position : plan.grid) {
    if (position.valid) ++valid_positions;
  }

  if (plan.chunks.empty()) {
    detail::finalize_runtime(profile, cancel_state, options.deadline_seconds,
                             plan.grid, result.scores);
    profile.total_seconds = total.seconds();
    profile.telemetry =
        util::telemetry::snapshot().delta_since(telemetry_begin);
    detail::finalize_ld_stats(profile, options);
    detail::finalize_perf_stats(profile);
    if (options.progress != nullptr) {
      options.progress->begin(valid_positions, plan.chunks.size());
      options.progress->finish();
    }
    return result;  // no valid position anywhere — nothing to read
  }

  // One backend per compute worker for the entire stream: degradation state
  // (FallbackBackend) and fault-injection PRNG sequences must match the
  // in-memory scan's per-worker instances, persisting across chunks.
  auto make_backend = [&]() -> std::unique_ptr<OmegaBackend> {
    if (!backend_factory) return std::make_unique<CpuOmegaBackend>(kernel);
    auto backend = backend_factory();
    if (options.recovery.fallback_to_cpu) {
      backend = std::make_unique<FallbackBackend>(std::move(backend), kernel);
    }
    return backend;
  };
  // Heterogeneous co-scheduler: the executor owns its per-worker backends,
  // matrices, and profiles for the whole stream (seam carryover per worker,
  // degradation state persisting across chunks), replacing the plain
  // backends/states/worker_profiles machinery below.
  const bool hetero = options.hetero != nullptr;
  std::optional<HeteroExecutor> hetero_exec;
  if (hetero) {
    hetero_exec.emplace(*options.hetero, options.recovery, kernel,
                        options.reuse, threads);
    profile.sched.workers = hetero_exec->total_workers();
  }

  std::vector<std::unique_ptr<OmegaBackend>> backends;
  if (!hetero) {
    backends.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      backends.push_back(make_backend());
    }
  }

  // Multithreaded compute state: per-worker DP matrices persist across
  // chunks (each worker carries its own seam), per-worker profiles are
  // finalized once at stream end, and the compute pool lives for the whole
  // stream. Unused (empty / nullopt) for serial streams.
  std::optional<par::ThreadPool> compute_pool;
  std::vector<detail::SpanWorkerState> states;
  std::vector<ScanProfile> worker_profiles(threads);
  if (hetero) {
    compute_pool.emplace(
        std::max<std::size_t>(1, hetero_exec->total_workers() - 1));
  } else if (threads > 1) {
    compute_pool.emplace(threads - 1);
    states.resize(threads);
  }

  // Crash-safe runtime (core/checkpoint.h): the identity of this scan is the
  // dataset fingerprint plus the hash of every score-relevant setting.
  const bool checkpointing = !stream_options.checkpoint_path.empty();
  const io::StreamFingerprint fingerprint =
      io::fingerprint_stream(index, stream_options.source_path);
  // Hetero hashes as "cpu": results are bitwise-identical to the CPU scan by
  // construction, so a checkpoint must resume across hetero <-> cpu runs both
  // ways (the split, like the thread count, never changes scores).
  const std::string config_backend_name =
      hetero ? HeteroExecutor::canonical_backend_name() : backends[0]->name();
  const std::string config_summary = scan_config_summary(
      options, stream_options.chunk_sites, config_backend_name);
  const std::uint64_t config_hash = scan_config_hash(
      options, stream_options.chunk_sites, config_backend_name);

  std::size_t k0 = 0;  // first chunk this run scans
  util::telemetry::RegistrySnapshot resumed_telemetry;
  if (stream_options.resume) {
    ScanCheckpoint ckpt = load_checkpoint(stream_options.checkpoint_path);
    if (!(ckpt.fingerprint == fingerprint)) {
      throw ResumeMismatchError(
          "stream_scan: checkpoint belongs to a different dataset: "
          "checkpoint " +
          ckpt.fingerprint.describe() + " vs current " +
          fingerprint.describe());
    }
    if (ckpt.config_hash != config_hash) {
      throw ResumeMismatchError(
          "stream_scan: checkpoint was written with a different scan "
          "config: checkpoint {" +
          ckpt.config_summary + "} vs current {" + config_summary + "}");
    }
    if (ckpt.chunks_total != plan.chunks.size() ||
        ckpt.grid_size != plan.grid.size()) {
      throw ResumeMismatchError(
          "stream_scan: checkpoint chunk/grid geometry does not match the "
          "current plan");
    }
    k0 = static_cast<std::size_t>(ckpt.chunks_completed);
    const std::size_t expected_committed =
        k0 == 0 ? 0 : plan.chunks[k0 - 1].grid_end;
    if (ckpt.grid_committed != expected_committed) {
      throw ResumeMismatchError(
          "stream_scan: checkpoint grid cursor does not match the chunk "
          "cursor");
    }
    for (std::size_t g = 0; g < ckpt.scores.size(); ++g) {
      result.scores[g] = ckpt.scores[g];
    }
    restore_profile_totals(profile, ckpt.totals);
    resumed_telemetry = ckpt.totals.telemetry;
    profile.runtime.resume_validations = 1;
    profile.runtime.chunks_resumed = k0;
  }
  // Resumed wall clock; the end-of-scan assignment adds this run's elapsed.
  const double resumed_seconds = profile.total_seconds;

  if (options.progress != nullptr) {
    std::uint64_t positions_resumed = 0;
    const std::size_t committed0 = k0 == 0 ? 0 : plan.chunks[k0 - 1].grid_end;
    for (std::size_t g = 0; g < committed0; ++g) {
      if (plan.grid[g].valid &&
          (result.scores[g].valid || result.scores[g].quarantined)) {
        ++positions_resumed;
      }
    }
    options.progress->begin(valid_positions, plan.chunks.size(),
                            positions_resumed, k0);
  }

  // A resumed reader only plans (and re-parses) the uncommitted suffix.
  {
    std::vector<io::SiteRange> ranges = plan.site_ranges();
    ranges.erase(ranges.begin(),
                 ranges.begin() + static_cast<std::ptrdiff_t>(k0));
    reader.plan(std::move(ranges));
  }

  // Double-buffered fetch: one slot computes while the other fills on the IO
  // pool. Fetches are strictly serialized (submit only after the previous
  // get()), so the slot/io_seconds writes are published by the future.
  par::ThreadPool io_pool(1);
  std::optional<io::DatasetChunk> slots[2];
  std::future<void> inflight;
  auto submit_fetch = [&](std::size_t slot) {
    inflight = io_pool.submit([&reader, &slots, &stream, &fetch_hist, slot] {
      // Counter scope on the IO pool thread: chunk parsing is the stream
      // pipeline's memory-bound stage, so its miss rates are the interesting
      // ones. One scope per fetch == one fetch_hist sample (v11 invariant).
      static util::perf::StageCounters& fetch_perf =
          util::perf::stage("stream.chunk_fetch");
      const util::perf::StageScope perf_scope(fetch_perf);
      const util::Timer timer;
      slots[slot] = reader.next();
      const double elapsed = timer.seconds();
      stream.io_seconds += elapsed;
      fetch_hist.record(elapsed);
    });
  };

  DpMatrix m;
  bool m_live = false;
  std::size_t cursor = 0;
  if (k0 < plan.chunks.size()) submit_fetch(cursor);

  // Cumulative profile snapshot for a checkpoint: the running accumulators
  // (which already include any resumed totals) plus the finalization the
  // stream normally performs only once at the end, applied to copies — the
  // matrices are read-only here and OmegaBackend::contribute is const, so
  // repeating this per chunk is safe.
  auto snapshot_totals = [&]() -> ScanProfile {
    ScanProfile totals = profile;
    if (hetero) {
      hetero_exec->finalize(totals);  // repeat-safe (copies worker profiles)
    } else if (threads <= 1) {
      totals.ld_seconds = totals.stages.ld_total();
      totals.omega_seconds = totals.stages.omega_search_seconds;
      detail::merge_matrix_stats(totals, m);
      backends[0]->contribute(totals);
    } else {
      for (std::size_t w = 0; w < threads; ++w) {
        ScanProfile wp = worker_profiles[w];
        detail::finalize_span_worker(wp, states[w], *backends[w]);
        detail::merge_worker_profile(totals, wp);
      }
    }
    totals.total_seconds = resumed_seconds + total.seconds();
    totals.telemetry = util::telemetry::snapshot()
                           .delta_since(telemetry_begin)
                           .merged_with(resumed_telemetry);
    detail::finalize_ld_stats(totals, options);
    detail::finalize_perf_stats(totals);
    return totals;
  };
  std::size_t committed = k0;
  auto write_ckpt = [&]() {
    if (!checkpointing) return;
    ScanCheckpoint ckpt;
    ckpt.fingerprint = fingerprint;
    ckpt.config_hash = config_hash;
    ckpt.config_summary = config_summary;
    ckpt.chunks_total = plan.chunks.size();
    ckpt.chunks_completed = committed;
    ckpt.grid_size = plan.grid.size();
    ckpt.grid_committed =
        committed == 0 ? 0 : plan.chunks[committed - 1].grid_end;
    ckpt.scores.assign(
        result.scores.begin(),
        result.scores.begin() + static_cast<std::ptrdiff_t>(ckpt.grid_committed));
    ckpt.totals = snapshot_totals();
    const std::uint64_t bytes =
        write_checkpoint(stream_options.checkpoint_path, ckpt);
    ++profile.runtime.checkpoints_written;
    profile.runtime.checkpoint_bytes += bytes;
  };
  // Initial checkpoint at the resume cursor, so a kill during the very first
  // chunk still leaves a resumable file behind.
  write_ckpt();

  for (std::size_t k = k0; k < plan.chunks.size(); ++k) {
    if (cancel != nullptr && cancel->should_stop()) break;
    const StreamChunkPlan& step = plan.chunks[k];
    {
      // Without double buffering only chunk 0 was prefetched; later chunks
      // are fetched here, serialized with compute (the whole wait is stall).
      if (!inflight.valid()) submit_fetch(cursor);
      const util::trace::Span span("stream.io.wait");
      const util::Timer stall;
      inflight.get();
      const double stalled = stall.seconds();
      stream.io_stall_seconds += stalled;
      stall_hist.record(stalled);
    }
    std::optional<io::DatasetChunk> chunk = std::move(slots[cursor]);
    slots[cursor].reset();
    if (stream_options.double_buffer && k + 1 < plan.chunks.size()) {
      cursor = 1 - cursor;
      submit_fetch(cursor);
    }
    if (!chunk.has_value()) {
      throw std::runtime_error("stream_scan: reader ended before chunk " +
                               std::to_string(k));
    }
    if (chunk->first_site != step.sites.begin ||
        chunk->dataset.num_sites() != step.sites.size()) {
      throw std::runtime_error("stream_scan: reader returned sites [" +
                               std::to_string(chunk->first_site) + ", +" +
                               std::to_string(chunk->dataset.num_sites()) +
                               ") for planned chunk " + std::to_string(k));
    }

    // Scan the chunk's grid positions; a non-BackendError escape (the
    // per-position recovery engine already absorbs BackendErrors) retries
    // the whole chunk, then quarantines whatever is still unscored.
    bool scanned = false;
    for (std::size_t attempt = 0;
         attempt <= stream_options.chunk_retries && !scanned; ++attempt) {
      try {
        const util::trace::Span span("stream.chunk");
        const util::Timer compute;
        const ld::SnpMatrix snps(chunk->dataset);
        const auto inner = options.ld_factory
                               ? options.ld_factory(snps)
                               : make_ld_engine(options.ld, chunk->dataset, snps);
        const ld::OffsetLd engine(*inner, chunk->first_site);
        if (profile.ld_backend.empty()) profile.ld_backend = inner->name();
        if (hetero) {
          // Plan + execute this chunk's grid range across the partitions.
          // Settled positions are skipped inside every partition loop, so the
          // chunk-retry path below re-runs only what is still unscored.
          hetero_exec->run(plan.grid, step.grid_begin, step.grid_end,
                           *compute_pool, engine, result.scores, profile.sched,
                           options.progress, cancel);
        } else if (threads > 1) {
          // Span engine over the resident chunk's grid range. Already-scored
          // positions are skipped inside the worker loop, so the chunk-retry
          // path below re-runs only what is still unscored.
          const auto spans = detail::build_scan_spans(
              plan.grid, step.grid_begin, step.grid_end, threads);
          detail::scan_spans_parallel(
              plan.grid, spans, *compute_pool, engine, options.reuse,
              options.recovery, backends, states, result.scores,
              worker_profiles, profile.sched, options.progress, cancel);
        } else {
          bool first_in_chunk = true;
          for (std::size_t g = step.grid_begin; g < step.grid_end; ++g) {
            if (cancel != nullptr && cancel->should_stop()) break;
            const GridPosition& position = plan.grid[g];
            PositionScore& score = result.scores[g];
            if (!position.valid || score.valid || score.quarantined) continue;
            const bool carried =
                m_live && options.reuse && position.lo >= m.base();
            detail::advance_matrix(m, m_live, options.reuse, position, engine,
                                   profile.stages);
            // Seam carryovers are a serial-stream observable: with one
            // matrix, "did relocation survive the chunk seam" is well
            // defined. MT streams keep one matrix per worker and report 0.
            if (first_in_chunk && k > 0 && carried) ++stream.seam_carryovers;
            first_in_chunk = false;
            detail::score_position(*backends[0], m, position, options.recovery,
                                   profile, score, options.progress);
          }
        }
        const double chunk_seconds = compute.seconds();
        stream.compute_seconds += chunk_seconds;
        chunk_scan_hist.record(chunk_seconds);
        scanned = true;
      } catch (const util::CancelledError&) {
        // A simulator backend observed the cancel mid-launch. NOT a chunk
        // failure (and deliberately caught before the generic handler): the
        // drain below leaves the chunk uncommitted for resume to recompute.
        m_live = false;
        for (detail::SpanWorkerState& state : states) state.live = false;
        if (hetero_exec.has_value()) hetero_exec->invalidate_matrices();
        break;
      } catch (const std::exception&) {
        // The matrices may hold a half-extended state; force rebuilds.
        m_live = false;
        for (detail::SpanWorkerState& state : states) state.live = false;
        if (hetero_exec.has_value()) hetero_exec->invalidate_matrices();
      }
    }
    // A chunk commits when every one of its positions settled (valid or
    // quarantined). A cancelled drain can leave the chunk partially scored —
    // it stays uncommitted, the checkpoint cursor stays put, and resume
    // recomputes it from scratch (the settled-skip rule makes the re-scan
    // idempotent for anything that did settle).
    bool commit = scanned;
    if (scanned && cancel != nullptr && cancel->token->cancelled()) {
      for (std::size_t g = step.grid_begin; g < step.grid_end && commit; ++g) {
        if (plan.grid[g].valid && !result.scores[g].valid &&
            !result.scores[g].quarantined) {
          commit = false;
        }
      }
    }
    if (!scanned) {
      if (cancel != nullptr && cancel->token->cancelled()) {
        break;  // drained mid-chunk
      }
      ++stream.failed_chunks;
      m_live = false;
      for (detail::SpanWorkerState& state : states) state.live = false;
      if (hetero_exec.has_value()) hetero_exec->invalidate_matrices();
      std::uint64_t chunk_quarantined = 0;
      for (std::size_t g = step.grid_begin; g < step.grid_end; ++g) {
        if (!plan.grid[g].valid || result.scores[g].valid) continue;
        result.scores[g].quarantined = true;
        ++profile.faults.quarantined_positions;
        ++chunk_quarantined;
      }
      if (options.progress != nullptr && chunk_quarantined > 0) {
        util::ProgressReporter::Delta delta;
        delta.positions = chunk_quarantined;
        delta.quarantined = chunk_quarantined;
        options.progress->advance(delta);
      }
      commit = true;  // quarantine settles the chunk; the stream continues
    }
    if (!commit) break;
    committed = k + 1;
    if (options.progress != nullptr) {
      util::ProgressReporter::Delta delta;
      delta.chunks = 1;
      options.progress->advance(delta);
    }
    write_ckpt();
  }

  if (inflight.valid()) {
    // A cancelled drain can leave the next chunk's prefetch in flight; wait
    // it out so the IO task never outlives the slots it writes into. Fetch
    // errors are irrelevant once the stream has stopped consuming.
    try {
      inflight.get();
    } catch (const std::exception&) {
    }
  }

  if (hetero) {
    hetero_exec->finalize(profile);
  } else if (threads <= 1) {
    profile.ld_seconds = profile.stages.ld_total();
    profile.omega_seconds = profile.stages.omega_search_seconds;
    detail::merge_matrix_stats(profile, m);
    backends[0]->contribute(profile);
    profile.omega_backend = backends[0]->name();
  } else {
    for (std::size_t w = 0; w < threads; ++w) {
      detail::finalize_span_worker(worker_profiles[w], states[w],
                                   *backends[w]);
      detail::merge_worker_profile(profile, worker_profiles[w]);
    }
  }
  detail::finalize_runtime(profile, cancel_state, options.deadline_seconds,
                           plan.grid, result.scores);
  profile.total_seconds = resumed_seconds + total.seconds();
  util::telemetry::gauge("stream.io_overlap_ratio")
      .set(stream.io_overlap_ratio());
  profile.telemetry = util::telemetry::snapshot()
                          .delta_since(telemetry_begin)
                          .merged_with(resumed_telemetry);
  detail::finalize_ld_stats(profile, options);
  detail::finalize_perf_stats(profile);
  if (options.progress != nullptr) options.progress->finish();
  return result;
}

}  // namespace omega::core
