#include "core/span_engine.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string>

#include "core/scan_driver.h"
#include "core/workload.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace omega::core::detail {

std::vector<ScanSpan> build_scan_spans(const std::vector<GridPosition>& grid,
                                       std::size_t begin, std::size_t end,
                                       std::size_t workers,
                                       std::size_t spans_per_worker) {
  end = std::min(end, grid.size());
  if (begin >= end) return {};
  if (workers == 0) workers = 1;
  if (spans_per_worker == 0) spans_per_worker = 1;

  std::uint64_t total_cost = 0;
  std::size_t total_valid = 0;
  for (std::size_t g = begin; g < end; ++g) {
    total_cost += estimate_position_cost(grid[g]);
    if (grid[g].valid) ++total_valid;
  }
  if (total_valid == 0) return {};

  // More spans than workers so the steal scheduler has slack to rebalance;
  // never more spans than valid positions (a span needs real work).
  const std::uint64_t target_spans = static_cast<std::uint64_t>(
      std::min<std::size_t>(workers * spans_per_worker, total_valid));

  // Degenerate grid: every valid position estimates to zero cost (e.g. all
  // windows collapse to a single SNP). The proportional boundary below would
  // divide work by total cost, so fall back to budgeting one unit per valid
  // position — deterministic equal-count spans.
  const bool equal_fallback = total_cost == 0;
  const std::uint64_t budget_total =
      equal_fallback ? static_cast<std::uint64_t>(total_valid) : total_cost;

  static util::telemetry::Histogram& span_positions_hist =
      util::telemetry::histogram("sched.span_positions", 1.0);

  std::vector<ScanSpan> spans;
  spans.reserve(target_spans);
  ScanSpan current;
  current.begin = begin;
  std::uint64_t cum = 0;
  for (std::size_t g = begin; g < end; ++g) {
    const GridPosition& position = grid[g];
    if (!position.valid) continue;  // absorbed at zero cost
    const std::uint64_t cost =
        equal_fallback ? 1 : estimate_position_cost(position);
    cum += cost;
    current.cost += cost;
    ++current.valid_positions;
    current.end = g + 1;
    // Proportional boundary: close the span once the running cost crosses
    // the next 1/target_spans share of the total. Invalid tails attach to
    // whatever span encloses them.
    const std::uint64_t closed = static_cast<std::uint64_t>(spans.size());
    if (closed + 1 < target_spans &&
        cum * target_spans >= (closed + 1) * budget_total) {
      spans.push_back(current);
      span_positions_hist.record(
          static_cast<double>(current.valid_positions));
      current = ScanSpan{};
      current.begin = g + 1;
    }
  }
  // Final span absorbs any trailing invalid positions so spans tile the
  // whole range.
  current.end = end;
  spans.push_back(current);
  span_positions_hist.record(static_cast<double>(current.valid_positions));
  return spans;
}

void scan_spans_parallel(const std::vector<GridPosition>& grid,
                         const std::vector<ScanSpan>& spans,
                         par::ThreadPool& pool, const ld::LdEngine& engine,
                         bool reuse, const RecoveryPolicy& recovery,
                         const std::vector<std::unique_ptr<OmegaBackend>>& backends,
                         std::vector<SpanWorkerState>& states,
                         std::vector<PositionScore>& scores,
                         std::vector<ScanProfile>& worker_profiles,
                         SchedStats& sched,
                         util::ProgressReporter* progress,
                         const CancelState* cancel) {
  const std::size_t workers = backends.size();
  if (sched.workers_detail.size() < workers) {
    sched.workers_detail.resize(workers);
  }
  if (spans.empty()) return;

  static util::telemetry::Counter& spans_total =
      util::telemetry::counter("sched.spans_total");
  static util::telemetry::Counter& steals_total =
      util::telemetry::counter("sched.steals_total");
  static util::telemetry::Histogram& busy_hist =
      util::telemetry::histogram("sched.worker_busy_seconds");
  spans_total.add(spans.size());

  // Seed each worker with a contiguous run of spans, balanced by estimated
  // cost, preserving grid order within each run (owner claims pop the front,
  // so a worker walks its run left to right — maximal relocation reuse).
  std::uint64_t total_cost = 0;
  for (const ScanSpan& span : spans) total_cost += span.cost;
  // Zero-total-cost spans (degenerate grids): weigh each span equally so the
  // seeding still spreads runs across workers instead of piling everything
  // on worker 0.
  const bool equal_fallback = total_cost == 0;
  const std::uint64_t budget_total =
      equal_fallback ? static_cast<std::uint64_t>(spans.size()) : total_cost;
  par::StealScheduler scheduler(workers);
  {
    std::vector<std::size_t> run;
    std::size_t worker = 0;
    std::uint64_t cum = 0;
    for (std::size_t s = 0; s < spans.size(); ++s) {
      run.push_back(s);
      cum += equal_fallback ? 1 : spans[s].cost;
      if (worker + 1 < workers &&
          cum * workers >= (static_cast<std::uint64_t>(worker) + 1) * budget_total) {
        scheduler.assign(worker, std::move(run));
        run = {};
        ++worker;
      }
    }
    scheduler.assign(std::min(worker, workers - 1), std::move(run));
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    tasks.emplace_back([&, w] {
      const util::trace::Span worker_span("scan.worker");
      OmegaBackend& backend = *backends[w];
      SpanWorkerState& state = states[w];
      ScanProfile& profile = worker_profiles[w];
      SchedWorkerStats& wstats = sched.workers_detail[w];
      try {
        while (const auto claim = scheduler.claim(w)) {
          if (cancel != nullptr && cancel->should_stop()) break;
          const ScanSpan& span = spans[claim->item];
          const util::Timer busy;
          const std::uint64_t positions_before = wstats.positions;
          ++wstats.spans;
          if (claim->stolen) {
            ++wstats.steals;
            steals_total.add(1);
          }
          for (std::size_t g = span.begin; g < span.end; ++g) {
            // Cooperative drain: the position in flight always completes, so
            // a cancelled scan never leaves a half-scored position behind.
            if (cancel != nullptr && cancel->should_stop()) break;
            const GridPosition& position = grid[g];
            PositionScore& score = scores[g];
            score.position_bp = position.position_bp;
            // Skip already-settled positions: the streaming chunk retry
            // re-runs a chunk's spans and must not rescore what succeeded.
            if (!position.valid || score.valid || score.quarantined) continue;
            advance_matrix(state.matrix, state.live, reuse, position, engine,
                           profile.stages);
            score_position(backend, state.matrix, position, recovery, profile,
                           score, progress);
            ++wstats.positions;
          }
          const double elapsed = busy.seconds();
          wstats.busy_seconds += elapsed;
          busy_hist.record(elapsed);
          // Measured-rate EWMA, one observation per claimed span. Exported
          // as a gauge only (metrics_diff skips the telemetry subtree): the
          // per-span signal is far too noisy to gate benchmarks on.
          state.rate.observe(wstats.positions - positions_before, elapsed);
          if (state.rate.observations() > 0) {
            util::telemetry::gauge("sched.worker" + std::to_string(w) +
                                   ".rate_per_s")
                .set(state.rate.rate_per_s());
          }
        }
      } catch (const util::CancelledError&) {
        // A simulator backend observed the cancel mid-launch: this worker's
        // position in flight stays unscored (neither valid nor quarantined)
        // and it stops claiming; the others drain through their own polls.
      }
    });
  }
  pool.run_blocking(std::move(tasks));

  // Totals are recomputed from the per-worker detail (not incremented), so
  // the repeated per-chunk calls of the streaming driver stay consistent.
  sched.spans = 0;
  sched.steals = 0;
  for (const SchedWorkerStats& w : sched.workers_detail) {
    sched.spans += w.spans;
    sched.steals += w.steals;
  }
}

void finalize_span_worker(ScanProfile& worker_profile, SpanWorkerState& state,
                          OmegaBackend& backend) {
  worker_profile.ld_seconds = worker_profile.stages.ld_total();
  worker_profile.omega_seconds = worker_profile.stages.omega_search_seconds;
  merge_matrix_stats(worker_profile, state.matrix);
  backend.contribute(worker_profile);
  worker_profile.omega_backend = backend.name();
}

}  // namespace omega::core::detail
