#pragma once
// Vectorized CPU omega kernel with runtime dispatch — the CPU-side analogue
// of the paper's accelerator datapaths. The scalar reference
// (max_omega_search) burns three divides per Eq. (2) evaluation and reloads
// LS/C(l,2) from the matrix on every inner iteration; this module
// restructures the search into a structure-of-arrays kernel:
//
//   * per-position coefficient tables (LS(a), C(l,2), l as double) are built
//     once and reused across every right border b;
//   * the inner loop walks a contiguous slice of row b of the packed
//     triangle (the Fig. 9 "two columns per iteration" layout observation)
//     and evaluates the algebraically fused form
//
//       omega = (sum * l*r) / (pairs * (cross + eps * l*r)),
//       sum = LS + RS, pairs = C(l,2) + C(r,2), cross = M(b,a) - sum
//
//     — one divide per omega instead of three;
//   * three interchangeable bodies: Scalar (the untouched reference loop,
//     kept for bit-exact comparisons), Portable (autovectorizable fused
//     loop), and Avx2 (explicit AVX2+FMA lanes in a separately compiled
//     translation unit, selected only after runtime CPUID detection).
//
// All kernels reproduce the reference argmax semantics exactly: strict
// greater-than in b-major / a-ascending scan order, so ties resolve to the
// lowest (b, a) — the property every backend-equivalence test keys on.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_search.h"
#include "par/thread_pool.h"

namespace omega::core {

/// Which omega-kernel body the CPU scan path runs. Auto resolves at scan
/// setup: Avx2 when the binary carries the AVX2 TU and the host supports
/// AVX2+FMA, Portable otherwise. Scalar is never auto-selected — it is the
/// reference loop, reachable only by explicit request (--cpu-kernel=scalar).
enum class CpuKernelKind { Auto, Scalar, Portable, Avx2 };

[[nodiscard]] const char* cpu_kernel_name(CpuKernelKind kind) noexcept;
/// Parses "auto" | "scalar" | "portable" | "avx2"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] CpuKernelKind cpu_kernel_from_name(const std::string& name);

/// True when the running binary can execute the Avx2 kernel (compiled in AND
/// supported by this host's CPU).
[[nodiscard]] bool cpu_kernel_avx2_available() noexcept;

/// Resolves Auto to a concrete kernel for this binary/host. Forcing Avx2 on
/// a host that cannot run it throws std::runtime_error (the CLI surfaces
/// this as a configuration error instead of crashing on SIGILL).
[[nodiscard]] CpuKernelKind resolve_cpu_kernel(CpuKernelKind requested);

/// Per-kernel evaluation accounting, merged into ScanProfile::kernel.
struct CpuKernelCounters {
  std::uint64_t scalar_evaluations = 0;
  std::uint64_t portable_evaluations = 0;
  std::uint64_t avx2_evaluations = 0;

  void add(CpuKernelKind kind, std::uint64_t evaluations) noexcept;
};

/// Reusable per-thread scratch: the SoA coefficient tables of one grid
/// position plus the omega row buffer the portable two-pass body writes.
/// Buffers grow monotonically, so a scan allocates once and reuses.
class OmegaKernelScratch {
 public:
  /// Rebuilds the per-left-border tables for `position` (indexed by
  /// ai = a - position.lo).
  void prepare(const DpMatrix& m, const GridPosition& position);

  std::vector<double> ls;     // LS(a) = M(c, a)
  std::vector<double> kl;     // C(l, 2)
  std::vector<double> l_d;    // l as double
  std::vector<double> omega;  // per-b omega row (portable body)
};

/// Evaluates one grid position with the selected kernel body. `kind` must be
/// concrete (not Auto — call resolve_cpu_kernel first).
OmegaResult omega_kernel_search(const DpMatrix& m, const GridPosition& position,
                                CpuKernelKind kind, OmegaKernelScratch& scratch);

/// Same, restricted to right borders [b_begin, b_end] (both clamped to the
/// position's range by the caller). Building block of the parallel search.
OmegaResult omega_kernel_search_range(const DpMatrix& m,
                                      const GridPosition& position,
                                      std::size_t b_begin, std::size_t b_end,
                                      CpuKernelKind kind,
                                      OmegaKernelScratch& scratch);

/// Intra-position parallel kernel search: right borders split into
/// contiguous chunks across the pool, reduced in lane order so tie-breaking
/// is bit-identical to the sequential kernel of the same kind. Each lane
/// needs its own scratch; `lane_scratch` is grown as needed and reused
/// across calls.
OmegaResult omega_kernel_search_parallel(
    par::ThreadPool& pool, const DpMatrix& m, const GridPosition& position,
    CpuKernelKind kind, std::vector<OmegaKernelScratch>& lane_scratch);

/// Single-precision kernel over the packed accelerator buffers — the exact
/// arithmetic (and op order) of omega_from_sums_f / the simulated GPU and
/// FPGA datapaths, vectorized. Scan order is ai-major/bi-ascending (the TS
/// buffer's layout); all kernel kinds produce bit-identical results because
/// every lane op has exact scalar parity (no FMA contraction). Returns
/// global (best_a, best_b) indices like the fp64 search.
OmegaResult omega_kernel_search_f32(const PositionBuffers& buffers,
                                    const GridPosition& position,
                                    CpuKernelKind kind);

namespace detail {
// Entry points of the separately compiled AVX2+FMA translation unit
// (omega_kernel_avx2.cpp, built with per-file -mavx2 -mfma). Defined only
// when CMake detects compiler support (OMEGA_HAVE_AVX2_TU); callers in
// omega_kernel_cpu.cpp additionally gate on runtime CPUID.
OmegaResult omega_search_avx2_f64(const DpMatrix& m,
                                  const GridPosition& position,
                                  std::size_t b_begin, std::size_t b_end,
                                  const OmegaKernelScratch& scratch);
OmegaResult omega_search_avx2_f32(const PositionBuffers& buffers,
                                  const GridPosition& position,
                                  const std::vector<float>& r_f);
}  // namespace detail

}  // namespace omega::core
