#include "core/checkpoint.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/hetero_scheduler.h"
#include "core/scan_driver.h"
#include "core/stream_scanner.h"

namespace omega::core {

namespace {

constexpr const char* kCheckpointSchema = "omega.scan.checkpoint";

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// The LD name hashed into the config summary. Auto is resolved first: a
/// checkpoint written with --ld-engine=auto must resume under an explicit
/// --ld-engine=packed (and vice versa) because they run the same engine and
/// the scores are bitwise identical either way.
const char* ld_kind_name(LdBackendKind kind) noexcept {
  return ld_backend_name(resolve_ld_backend(kind));
}

/// Doubles round-trip through the checkpoint as bit patterns (JSON doubles
/// would lose NaN payloads and the parser rejects "nan"), signed via
/// bit_cast so JsonValue's int64 carries them.
std::int64_t double_bits(double value) noexcept {
  return std::bit_cast<std::int64_t>(value);
}

double bits_double(std::int64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

metrics::JsonValue profile_totals_json(const ScanProfile& p) {
  using metrics::JsonValue;
  JsonValue totals = JsonValue::object();
  totals.set("ld_seconds", p.ld_seconds);
  totals.set("omega_seconds", p.omega_seconds);
  totals.set("total_seconds", p.total_seconds);
  totals.set("omega_evaluations", p.omega_evaluations);
  totals.set("r2_fetched", p.r2_fetched);
  totals.set("positions_scanned", p.positions_scanned);

  JsonValue stages = JsonValue::object();
  stages.set("ld_reset_seconds", p.stages.ld_reset_seconds);
  stages.set("ld_relocate_seconds", p.stages.ld_relocate_seconds);
  stages.set("ld_extend_seconds", p.stages.ld_extend_seconds);
  stages.set("omega_search_seconds", p.stages.omega_search_seconds);
  stages.set("dispatch_seconds", p.stages.dispatch_seconds);
  totals.set("stages", std::move(stages));

  JsonValue relocation = JsonValue::object();
  relocation.set("resets", p.relocation.resets);
  relocation.set("relocations", p.relocation.relocations);
  relocation.set("cells_reused", p.relocation.cells_reused);
  relocation.set("cells_recomputed", p.relocation.cells_recomputed);
  totals.set("relocation", std::move(relocation));

  JsonValue gpu = JsonValue::object();
  gpu.set("kernel1_launches", p.gpu.kernel1_launches);
  gpu.set("kernel2_launches", p.gpu.kernel2_launches);
  gpu.set("kernel1_omegas", p.gpu.kernel1_omegas);
  gpu.set("kernel2_omegas", p.gpu.kernel2_omegas);
  gpu.set("modeled_kernel_seconds", p.gpu.modeled_kernel_seconds);
  gpu.set("modeled_prep_seconds", p.gpu.modeled_prep_seconds);
  gpu.set("modeled_transfer_seconds", p.gpu.modeled_transfer_seconds);
  gpu.set("modeled_total_seconds", p.gpu.modeled_total_seconds);
  gpu.set("bytes_moved", p.gpu.bytes_moved);
  totals.set("gpu", std::move(gpu));

  JsonValue fpga = JsonValue::object();
  fpga.set("pipeline_cycles", p.fpga.pipeline_cycles);
  fpga.set("stall_cycles", p.fpga.stall_cycles);
  fpga.set("hw_omegas", p.fpga.hw_omegas);
  fpga.set("sw_omegas", p.fpga.sw_omegas);
  fpga.set("modeled_seconds", p.fpga.modeled_seconds);
  totals.set("fpga", std::move(fpga));

  JsonValue faults = JsonValue::object();
  faults.set("faults_injected", p.faults.faults_injected);
  faults.set("injected_kernel_launch", p.faults.injected_kernel_launch);
  faults.set("injected_timeout", p.faults.injected_timeout);
  faults.set("injected_nan", p.faults.injected_nan);
  faults.set("injected_device_lost", p.faults.injected_device_lost);
  faults.set("errors_caught", p.faults.errors_caught);
  faults.set("invalid_results", p.faults.invalid_results);
  faults.set("retries", p.faults.retries);
  faults.set("quarantined_positions", p.faults.quarantined_positions);
  faults.set("degradations", p.faults.degradations);
  faults.set("backoff_virtual_seconds", p.faults.backoff_virtual_seconds);
  totals.set("faults", std::move(faults));

  JsonValue kernel = JsonValue::object();
  kernel.set("positions", p.kernel.positions);
  kernel.set("scalar_evaluations", p.kernel.scalar_evaluations);
  kernel.set("portable_evaluations", p.kernel.portable_evaluations);
  kernel.set("avx2_evaluations", p.kernel.avx2_evaluations);
  totals.set("kernel", std::move(kernel));

  JsonValue stream = JsonValue::object();
  stream.set("io_seconds", p.stream.io_seconds);
  stream.set("io_stall_seconds", p.stream.io_stall_seconds);
  stream.set("compute_seconds", p.stream.compute_seconds);
  stream.set("seam_carryovers", p.stream.seam_carryovers);
  stream.set("failed_chunks", p.stream.failed_chunks);
  totals.set("stream", std::move(stream));

  JsonValue sched_detail = JsonValue::array();
  for (const SchedWorkerStats& w : p.sched.workers_detail) {
    JsonValue entry = JsonValue::array();
    entry.push_back(JsonValue(w.spans));
    entry.push_back(JsonValue(w.steals));
    entry.push_back(JsonValue(w.positions));
    entry.push_back(JsonValue(w.busy_seconds));
    sched_detail.push_back(std::move(entry));
  }
  totals.set("sched_workers", std::move(sched_detail));

  // v10: heterogeneous co-scheduler accounting. Only written when the scan
  // actually ran hetero, so cpu/mt checkpoints stay byte-compatible with the
  // pre-v10 reader.
  if (p.hetero.enabled) {
    JsonValue hetero = JsonValue::object();
    hetero.set("split", p.hetero.split);
    hetero.set("plans", p.hetero.plans);
    hetero.set("redispatched_spans", p.hetero.redispatched_spans);
    hetero.set("redispatched_positions", p.hetero.redispatched_positions);
    hetero.set("straggler_spans", p.hetero.straggler_spans);
    hetero.set("faulted_spans", p.hetero.faulted_spans);
    JsonValue partitions = JsonValue::array();
    for (const HeteroPartitionStats& part : p.hetero.partitions) {
      JsonValue entry = JsonValue::object();
      entry.set("backend", part.backend);
      entry.set("weight", part.weight);
      entry.set("planned_positions", part.planned_positions);
      entry.set("actual_positions", part.actual_positions);
      entry.set("spans", part.spans);
      entry.set("modeled_seconds", part.modeled_seconds);
      entry.set("measured_seconds", part.measured_seconds);
      // v2: measured-rate EWMA carried across resumes (latest-wins merge).
      entry.set("measured_rate_per_s", part.measured_rate_per_s);
      entry.set("rate_observations", part.rate_observations);
      partitions.push_back(std::move(entry));
    }
    hetero.set("partitions", std::move(partitions));
    totals.set("hetero", std::move(hetero));
  }

  totals.set("telemetry", metrics::telemetry_json(p.telemetry));
  return totals;
}

ScanProfile profile_totals_from_json(const metrics::JsonValue& totals) {
  ScanProfile p;
  p.ld_seconds = totals.at("ld_seconds").as_double();
  p.omega_seconds = totals.at("omega_seconds").as_double();
  p.total_seconds = totals.at("total_seconds").as_double();
  p.omega_evaluations = totals.at("omega_evaluations").as_uint();
  p.r2_fetched = totals.at("r2_fetched").as_uint();
  p.positions_scanned = totals.at("positions_scanned").as_uint();

  const auto& stages = totals.at("stages");
  p.stages.ld_reset_seconds = stages.at("ld_reset_seconds").as_double();
  p.stages.ld_relocate_seconds = stages.at("ld_relocate_seconds").as_double();
  p.stages.ld_extend_seconds = stages.at("ld_extend_seconds").as_double();
  p.stages.omega_search_seconds =
      stages.at("omega_search_seconds").as_double();
  p.stages.dispatch_seconds = stages.at("dispatch_seconds").as_double();

  const auto& relocation = totals.at("relocation");
  p.relocation.resets = relocation.at("resets").as_uint();
  p.relocation.relocations = relocation.at("relocations").as_uint();
  p.relocation.cells_reused = relocation.at("cells_reused").as_uint();
  p.relocation.cells_recomputed = relocation.at("cells_recomputed").as_uint();

  const auto& gpu = totals.at("gpu");
  p.gpu.kernel1_launches = gpu.at("kernel1_launches").as_uint();
  p.gpu.kernel2_launches = gpu.at("kernel2_launches").as_uint();
  p.gpu.kernel1_omegas = gpu.at("kernel1_omegas").as_uint();
  p.gpu.kernel2_omegas = gpu.at("kernel2_omegas").as_uint();
  p.gpu.modeled_kernel_seconds = gpu.at("modeled_kernel_seconds").as_double();
  p.gpu.modeled_prep_seconds = gpu.at("modeled_prep_seconds").as_double();
  p.gpu.modeled_transfer_seconds =
      gpu.at("modeled_transfer_seconds").as_double();
  p.gpu.modeled_total_seconds = gpu.at("modeled_total_seconds").as_double();
  p.gpu.bytes_moved = gpu.at("bytes_moved").as_uint();

  const auto& fpga = totals.at("fpga");
  p.fpga.pipeline_cycles = fpga.at("pipeline_cycles").as_uint();
  p.fpga.stall_cycles = fpga.at("stall_cycles").as_uint();
  p.fpga.hw_omegas = fpga.at("hw_omegas").as_uint();
  p.fpga.sw_omegas = fpga.at("sw_omegas").as_uint();
  p.fpga.modeled_seconds = fpga.at("modeled_seconds").as_double();

  const auto& faults = totals.at("faults");
  p.faults.faults_injected = faults.at("faults_injected").as_uint();
  p.faults.injected_kernel_launch =
      faults.at("injected_kernel_launch").as_uint();
  p.faults.injected_timeout = faults.at("injected_timeout").as_uint();
  p.faults.injected_nan = faults.at("injected_nan").as_uint();
  p.faults.injected_device_lost =
      faults.at("injected_device_lost").as_uint();
  p.faults.errors_caught = faults.at("errors_caught").as_uint();
  p.faults.invalid_results = faults.at("invalid_results").as_uint();
  p.faults.retries = faults.at("retries").as_uint();
  p.faults.quarantined_positions =
      faults.at("quarantined_positions").as_uint();
  p.faults.degradations = faults.at("degradations").as_uint();
  p.faults.backoff_virtual_seconds =
      faults.at("backoff_virtual_seconds").as_double();

  const auto& kernel = totals.at("kernel");
  p.kernel.positions = kernel.at("positions").as_uint();
  p.kernel.scalar_evaluations = kernel.at("scalar_evaluations").as_uint();
  p.kernel.portable_evaluations =
      kernel.at("portable_evaluations").as_uint();
  p.kernel.avx2_evaluations = kernel.at("avx2_evaluations").as_uint();

  const auto& stream = totals.at("stream");
  p.stream.io_seconds = stream.at("io_seconds").as_double();
  p.stream.io_stall_seconds = stream.at("io_stall_seconds").as_double();
  p.stream.compute_seconds = stream.at("compute_seconds").as_double();
  p.stream.seam_carryovers = stream.at("seam_carryovers").as_uint();
  p.stream.failed_chunks = stream.at("failed_chunks").as_uint();

  for (const auto& entry : totals.at("sched_workers").items()) {
    const auto& fields = entry.items();
    if (fields.size() != 4) {
      throw std::runtime_error("checkpoint: malformed sched_workers entry");
    }
    SchedWorkerStats w;
    w.spans = fields[0].as_uint();
    w.steals = fields[1].as_uint();
    w.positions = fields[2].as_uint();
    w.busy_seconds = fields[3].as_double();
    p.sched.workers_detail.push_back(w);
  }

  // Optional (absent in pre-v10 checkpoints and in cpu/mt runs).
  if (const auto* hetero = totals.find("hetero")) {
    p.hetero.enabled = true;
    p.hetero.split = hetero->at("split").as_string();
    p.hetero.plans = hetero->at("plans").as_uint();
    p.hetero.redispatched_spans = hetero->at("redispatched_spans").as_uint();
    p.hetero.redispatched_positions =
        hetero->at("redispatched_positions").as_uint();
    p.hetero.straggler_spans = hetero->at("straggler_spans").as_uint();
    p.hetero.faulted_spans = hetero->at("faulted_spans").as_uint();
    for (const auto& entry : hetero->at("partitions").items()) {
      HeteroPartitionStats part;
      part.backend = entry.at("backend").as_string();
      part.weight = entry.at("weight").as_double();
      part.planned_positions = entry.at("planned_positions").as_uint();
      part.actual_positions = entry.at("actual_positions").as_uint();
      part.spans = entry.at("spans").as_uint();
      part.modeled_seconds = entry.at("modeled_seconds").as_double();
      part.measured_seconds = entry.at("measured_seconds").as_double();
      part.measured_rate_per_s = entry.at("measured_rate_per_s").as_double();
      part.rate_observations = entry.at("rate_observations").as_uint();
      p.hetero.partitions.push_back(std::move(part));
    }
  }

  p.telemetry = metrics::telemetry_from_json(totals.at("telemetry"));
  return p;
}

}  // namespace

std::string scan_config_summary(const ScannerOptions& options,
                                std::size_t chunk_sites,
                                const std::string& backend_name) {
  std::ostringstream out;
  out << "grid=" << options.config.grid_size << " unit="
      << (options.config.window_unit == WindowUnit::BasePairs ? "bp" : "snps")
      << " maxwin=" << options.config.max_window
      << " minwin=" << options.config.min_window
      << " cap=" << options.config.max_snps_per_side
      << " ld=" << (options.ld_factory ? "custom" : ld_kind_name(options.ld))
      << " reuse=" << (options.reuse ? 1 : 0)
      << " retries=" << options.recovery.max_retries
      << " validate=" << (options.recovery.validate_results ? 1 : 0)
      << " fallback=" << (options.recovery.fallback_to_cpu ? 1 : 0)
      << " chunk_sites=" << chunk_sites << " backend=" << backend_name;
  return out.str();
}

std::uint64_t scan_config_hash(const ScannerOptions& options,
                               std::size_t chunk_sites,
                               const std::string& backend_name) {
  return fnv1a(scan_config_summary(options, chunk_sites, backend_name));
}

metrics::JsonValue checkpoint_to_json(const ScanCheckpoint& ckpt) {
  using metrics::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("schema", kCheckpointSchema);
  doc.set("schema_version", ScanCheckpoint::kVersion);

  JsonValue fp = JsonValue::object();
  fp.set("source", ckpt.fingerprint.source);
  fp.set("source_bytes", ckpt.fingerprint.source_bytes);
  fp.set("num_sites", ckpt.fingerprint.num_sites);
  fp.set("num_samples", ckpt.fingerprint.num_samples);
  fp.set("locus_length_bp", ckpt.fingerprint.locus_length_bp);
  fp.set("positions_hash",
         static_cast<std::int64_t>(ckpt.fingerprint.positions_hash));
  fp.set("has_missing", ckpt.fingerprint.has_missing);
  doc.set("fingerprint", std::move(fp));

  doc.set("config_hash", static_cast<std::int64_t>(ckpt.config_hash));
  doc.set("config_summary", ckpt.config_summary);
  doc.set("chunks_total", ckpt.chunks_total);
  doc.set("chunks_completed", ckpt.chunks_completed);
  doc.set("grid_size", ckpt.grid_size);
  doc.set("grid_committed", ckpt.grid_committed);

  JsonValue scores = JsonValue::array();
  for (const PositionScore& score : ckpt.scores) {
    JsonValue entry = JsonValue::array();
    entry.push_back(JsonValue(score.position_bp));
    entry.push_back(JsonValue(double_bits(score.max_omega)));
    entry.push_back(JsonValue(static_cast<std::uint64_t>(score.best_a)));
    entry.push_back(JsonValue(static_cast<std::uint64_t>(score.best_b)));
    entry.push_back(JsonValue(score.evaluated));
    entry.push_back(
        JsonValue(score.quarantined ? 2 : (score.valid ? 1 : 0)));
    scores.push_back(std::move(entry));
  }
  doc.set("scores", std::move(scores));
  doc.set("totals", profile_totals_json(ckpt.totals));
  return doc;
}

ScanCheckpoint checkpoint_from_json(const metrics::JsonValue& doc) {
  ScanCheckpoint ckpt;
  const auto* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kCheckpointSchema) {
    throw std::runtime_error("checkpoint: not an " +
                             std::string(kCheckpointSchema) + " document");
  }
  const std::int64_t version = doc.at("schema_version").as_int();
  if (version != ScanCheckpoint::kVersion) {
    throw std::runtime_error("checkpoint: version " + std::to_string(version) +
                             " is not the supported version " +
                             std::to_string(ScanCheckpoint::kVersion));
  }

  const auto& fp = doc.at("fingerprint");
  ckpt.fingerprint.source = fp.at("source").as_string();
  ckpt.fingerprint.source_bytes = fp.at("source_bytes").as_uint();
  ckpt.fingerprint.num_sites = fp.at("num_sites").as_uint();
  ckpt.fingerprint.num_samples = fp.at("num_samples").as_uint();
  ckpt.fingerprint.locus_length_bp = fp.at("locus_length_bp").as_int();
  ckpt.fingerprint.positions_hash =
      static_cast<std::uint64_t>(fp.at("positions_hash").as_int());
  ckpt.fingerprint.has_missing = fp.at("has_missing").as_bool();

  ckpt.config_hash =
      static_cast<std::uint64_t>(doc.at("config_hash").as_int());
  ckpt.config_summary = doc.at("config_summary").as_string();
  ckpt.chunks_total = doc.at("chunks_total").as_uint();
  ckpt.chunks_completed = doc.at("chunks_completed").as_uint();
  ckpt.grid_size = doc.at("grid_size").as_uint();
  ckpt.grid_committed = doc.at("grid_committed").as_uint();

  for (const auto& entry : doc.at("scores").items()) {
    const auto& fields = entry.items();
    if (fields.size() != 6) {
      throw std::runtime_error("checkpoint: malformed score entry");
    }
    PositionScore score;
    score.position_bp = fields[0].as_int();
    score.max_omega = bits_double(fields[1].as_int());
    score.best_a = static_cast<std::size_t>(fields[2].as_uint());
    score.best_b = static_cast<std::size_t>(fields[3].as_uint());
    score.evaluated = fields[4].as_uint();
    const std::int64_t state = fields[5].as_int();
    score.valid = state == 1;
    score.quarantined = state == 2;
    ckpt.scores.push_back(score);
  }
  if (ckpt.scores.size() != ckpt.grid_committed) {
    throw std::runtime_error(
        "checkpoint: grid_committed does not match the stored score count");
  }
  if (ckpt.chunks_completed > ckpt.chunks_total ||
      ckpt.grid_committed > ckpt.grid_size) {
    throw std::runtime_error("checkpoint: cursor exceeds the stored totals");
  }
  ckpt.totals = profile_totals_from_json(doc.at("totals"));
  return ckpt;
}

std::uint64_t write_checkpoint(const std::string& path,
                               const ScanCheckpoint& ckpt) {
  const std::string text = checkpoint_to_json(ckpt).dump() + "\n";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot open " + tmp);
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    throw std::runtime_error("checkpoint: rename to " + path +
                             " failed: " + ec.message());
  }
  return static_cast<std::uint64_t>(text.size());
}

ScanCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  metrics::JsonValue doc;
  try {
    doc = metrics::JsonValue::parse(buffer.str());
  } catch (const std::exception& error) {
    throw std::runtime_error("checkpoint: " + path +
                             " is not valid JSON: " + error.what());
  }
  return checkpoint_from_json(doc);
}

void restore_profile_totals(ScanProfile& profile, const ScanProfile& totals) {
  detail::merge_worker_profile(profile, totals);
  merge_hetero_stats(profile.hetero, totals.hetero);
  profile.total_seconds += totals.total_seconds;
  profile.stream.io_seconds += totals.stream.io_seconds;
  profile.stream.io_stall_seconds += totals.stream.io_stall_seconds;
  profile.stream.compute_seconds += totals.stream.compute_seconds;
  profile.stream.seam_carryovers += totals.stream.seam_carryovers;
  profile.stream.failed_chunks += totals.stream.failed_chunks;
  if (profile.sched.workers_detail.size() <
      totals.sched.workers_detail.size()) {
    profile.sched.workers_detail.resize(totals.sched.workers_detail.size());
  }
  for (std::size_t w = 0; w < totals.sched.workers_detail.size(); ++w) {
    const SchedWorkerStats& from = totals.sched.workers_detail[w];
    SchedWorkerStats& into = profile.sched.workers_detail[w];
    into.spans += from.spans;
    into.steals += from.steals;
    into.positions += from.positions;
    into.busy_seconds += from.busy_seconds;
  }
  profile.sched.spans = 0;
  profile.sched.steals = 0;
  for (const SchedWorkerStats& w : profile.sched.workers_detail) {
    profile.sched.spans += w.spans;
    profile.sched.steals += w.steals;
  }
}

}  // namespace omega::core
