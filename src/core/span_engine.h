#pragma once
// Work-stealing span engine shared by the in-memory scan (scanner.cpp) and
// the streaming chunked scan (stream_scanner.cpp) — ROADMAP item 1, modeled
// on selscan's multithreaded EHH scan. The grid range is partitioned into
// many relocation-coherent spans (contiguous grid runs, so each keeps the
// DpMatrix M-reuse chain intact), budgeted by *valid* positions via the
// core/workload per-position ω estimate. Workers — each owning a DP matrix
// and a backend instance — claim spans from a par::StealScheduler: their own
// run in grid order first, then steals when it dries up.
//
// Bitwise guarantee: M(i, j) values are independent of the matrix's
// relocation history (DpMatrix::extend computes each row with the same
// fixed-order accumulation whatever the base), so span boundaries and steal
// order cannot change scores or quarantine decisions vs. the serial scan.
//
// Not installed API; include only from src/core/*.cpp and tests.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/rate_estimator.h"
#include "core/scan_driver.h"
#include "core/scanner.h"
#include "ld/ld_engine.h"
#include "par/thread_pool.h"

namespace omega::util {
class ProgressReporter;
}

namespace omega::core::detail {

/// One contiguous run of grid indices; the unit of work-stealing.
struct ScanSpan {
  std::size_t begin = 0;  // grid index, inclusive
  std::size_t end = 0;    // grid index, exclusive
  std::uint64_t cost = 0;  // summed estimate_position_cost over [begin, end)
  std::uint64_t valid_positions = 0;
};

/// Partitions grid range [begin, end) into up to workers * spans_per_worker
/// contiguous spans of roughly equal estimated cost. Only *valid* positions
/// carry cost (estimate_position_cost), so a grid whose invalid positions
/// cluster at one end still splits the real work evenly — the bug the static
/// grid.size()/workers split had. Invalid positions are absorbed into the
/// enclosing span at zero cost; the spans exactly tile [begin, end). Returns
/// an empty vector when the range holds no valid position.
[[nodiscard]] std::vector<ScanSpan> build_scan_spans(
    const std::vector<GridPosition>& grid, std::size_t begin, std::size_t end,
    std::size_t workers, std::size_t spans_per_worker = 4);

/// Per-worker scan state that outlives one scan_spans_parallel call: the
/// streaming driver keeps these across chunks so each worker's DP matrix can
/// carry over chunk seams exactly like the serial stream scan does. The rate
/// estimator EWMAs the worker's measured positions/sec across its claimed
/// spans (one observation per claim); it feeds the
/// "sched.worker<w>.rate_per_s" telemetry gauge only — deliberately not
/// SchedWorkerStats — so bench diff gates never see this noisy signal.
struct SpanWorkerState {
  DpMatrix matrix;
  bool live = false;
  RateEstimator rate;
};

/// Runs `spans` over `grid` with work stealing. backends / states /
/// worker_profiles must all have the same size W >= 1; `pool` should hold
/// W - 1 threads (the caller participates via run_blocking). Spans are
/// seeded contiguously across workers by cost; each claimed span is scanned
/// in grid order with the worker's own matrix and backend, skipping invalid
/// positions and positions already scored or quarantined (the streaming
/// chunk-retry contract). Scheduler accounting accumulates into `sched`
/// (workers_detail grows to W; spans/steals recomputed from it), so repeated
/// calls — one per stream chunk — aggregate correctly.
///
/// Worker profiles are NOT finalized here: call finalize_span_worker once
/// per worker after the last call, then detail::merge_worker_profile.
/// Exceptions escaping a worker rethrow out of here (earliest-submitted
/// first, par::ThreadPool::run_blocking semantics) after the batch drains;
/// the caller must then treat every worker matrix as dead (live = false).
///
/// `cancel` (optional) is polled before every span claim and every position:
/// once it fires, workers finish the position in flight, stop claiming, and
/// return — leaving unvisited positions untouched (neither valid nor
/// quarantined), which is exactly the "skip settled, rescore the rest" state
/// a later resume or chunk retry expects.
void scan_spans_parallel(const std::vector<GridPosition>& grid,
                         const std::vector<ScanSpan>& spans,
                         par::ThreadPool& pool, const ld::LdEngine& engine,
                         bool reuse, const RecoveryPolicy& recovery,
                         const std::vector<std::unique_ptr<OmegaBackend>>& backends,
                         std::vector<SpanWorkerState>& states,
                         std::vector<PositionScore>& scores,
                         std::vector<ScanProfile>& worker_profiles,
                         SchedStats& sched, util::ProgressReporter* progress,
                         const CancelState* cancel = nullptr);

/// One-time end-of-scan bookkeeping for a span worker: derives the ld/omega
/// second buckets from the accumulated stage times, folds the matrix's
/// relocation counters in, and lets the backend contribute its accounting —
/// mirroring what scan_chunk does for a serial chunk.
void finalize_span_worker(ScanProfile& worker_profile, SpanWorkerState& state,
                          OmegaBackend& backend);

}  // namespace omega::core::detail
