#include "core/integer_method.h"

#include <vector>

#include "core/grid.h"
#include "ld/snp_matrix.h"
#include "util/timer.h"

namespace omega::core {
namespace {

/// Lower-triangular int64 analogue of DpMatrix over the integer LD measure
/// m_ij (Eq. (3) recurrence works for any additive pair measure).
class IntegerTriangle {
 public:
  void build(const ld::SnpMatrix& snps, std::size_t base, std::size_t count) {
    base_ = base;
    count_ = count;
    storage_.assign(count * (count - 1) / 2, 0);
    const auto n = static_cast<std::int64_t>(snps.num_samples());
    std::vector<std::int64_t> m_row(count);
    for (std::size_t i = 1; i < count; ++i) {
      const std::size_t gi = base + i;
      const std::int64_t ni = snps.derived_count(gi);
      for (std::size_t j = 0; j < i; ++j) {
        const std::size_t gj = base + j;
        const std::int64_t covariance =
            n * snps.pair_count(gi, gj) -
            ni * static_cast<std::int64_t>(snps.derived_count(gj));
        m_row[j] = covariance * covariance;
      }
      std::int64_t* row = storage_.data() + offset(i);
      const std::int64_t* prev = i >= 2 ? storage_.data() + offset(i - 1) : nullptr;
      row[i - 1] = m_row[i - 1];
      for (std::size_t j = i - 1; j-- > 0;) {
        const std::int64_t up = prev[j];
        const std::int64_t diag = j + 1 == i - 1 ? 0 : prev[j + 1];
        row[j] = row[j + 1] + up - diag + m_row[j];
      }
    }
  }

  /// Sum of m over pairs within [gj .. gi] (global, gj <= gi).
  [[nodiscard]] std::int64_t at(std::size_t gi, std::size_t gj) const noexcept {
    const std::size_t i = gi - base_;
    const std::size_t j = gj - base_;
    return i == j ? 0 : storage_[offset(i) + j];
  }

 private:
  [[nodiscard]] static std::size_t offset(std::size_t i) noexcept {
    return i * (i - 1) / 2;
  }
  std::size_t base_ = 0;
  std::size_t count_ = 0;
  std::vector<std::int64_t> storage_;
};

}  // namespace

ScanResult integer_method_scan(const io::Dataset& dataset,
                               const OmegaConfig& config) {
  config.validate();
  util::Timer timer;
  const ld::SnpMatrix snps(dataset);
  const auto grid = build_grid(dataset, config);

  ScanResult result;
  result.scores.resize(grid.size());
  IntegerTriangle triangle;

  for (std::size_t g = 0; g < grid.size(); ++g) {
    const GridPosition& position = grid[g];
    PositionScore& score = result.scores[g];
    score.position_bp = position.position_bp;
    if (!position.valid) continue;
    triangle.build(snps, position.lo, position.hi - position.lo + 1);

    const std::size_t c = position.c;
    double best = 0.0;
    std::size_t best_a = 0, best_b = 0;
    std::uint64_t evaluated = 0;
    for (std::size_t b = position.b_min; b <= position.hi; ++b) {
      const std::int64_t right_sum = triangle.at(b, c + 1);
      const auto r = static_cast<std::int64_t>(b - c);
      for (std::size_t a = position.lo; a <= position.a_max; ++a) {
        const std::int64_t left_sum = triangle.at(c, a);
        const std::int64_t cross =
            triangle.at(b, a) - left_sum - right_sum;
        const auto l = static_cast<std::int64_t>(c - a + 1);
        // All-integer numerator/denominator; one division at the end. The
        // +1 guard replaces OmegaPlus's float epsilon.
        const std::int64_t pairs = l * (l - 1) / 2 + r * (r - 1) / 2;
        const double value =
            static_cast<double>(left_sum + right_sum) *
            static_cast<double>(l * r) /
            (static_cast<double>(pairs) * static_cast<double>(cross + 1));
        ++evaluated;
        if (value > best) {
          best = value;
          best_a = a;
          best_b = b;
        }
      }
    }
    score.max_omega = best;
    score.best_a = best_a;
    score.best_b = best_b;
    score.evaluated = evaluated;
    score.valid = true;
    result.profile.omega_evaluations += evaluated;
  }
  result.profile.total_seconds = timer.seconds();
  result.profile.omega_seconds = result.profile.total_seconds;
  return result;
}

}  // namespace omega::core
