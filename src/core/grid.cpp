#include "core/grid.h"

#include <algorithm>

namespace omega::core {
namespace {

/// Index of the last SNP with position <= value, or -1.
std::ptrdiff_t last_at_or_before(const std::vector<std::int64_t>& positions,
                                 std::int64_t value) {
  const auto it = std::upper_bound(positions.begin(), positions.end(), value);
  return static_cast<std::ptrdiff_t>(it - positions.begin()) - 1;
}

/// Index of the first SNP with position >= value, or positions.size().
std::size_t first_at_or_after(const std::vector<std::int64_t>& positions,
                              std::int64_t value) {
  const auto it = std::lower_bound(positions.begin(), positions.end(), value);
  return static_cast<std::size_t>(it - positions.begin());
}

}  // namespace

GridPosition resolve_position(const std::vector<std::int64_t>& positions,
                              const OmegaConfig& config,
                              std::int64_t position_bp) {
  GridPosition grid_position;
  grid_position.position_bp = position_bp;
  const std::size_t sites = positions.size();
  if (sites < 2 * OmegaConfig::min_side_snps) return grid_position;

  const std::ptrdiff_t c_signed = last_at_or_before(positions, position_bp);
  if (c_signed < 0) return grid_position;
  const auto c = static_cast<std::size_t>(c_signed);
  if (c + 1 >= sites) return grid_position;  // nothing on the right

  std::size_t lo = 0, hi = sites - 1, a_max = 0, b_min = 0;
  if (config.window_unit == WindowUnit::BasePairs) {
    const std::int64_t half_max = config.max_window / 2;
    const std::int64_t half_min = config.min_window / 2;
    lo = first_at_or_after(positions, position_bp - half_max);
    const std::ptrdiff_t hi_signed =
        last_at_or_before(positions, position_bp + half_max);
    if (hi_signed < 0) return grid_position;
    hi = static_cast<std::size_t>(hi_signed);
    const std::ptrdiff_t a_signed =
        last_at_or_before(positions, position_bp - half_min);
    if (a_signed < 0) return grid_position;
    a_max = static_cast<std::size_t>(a_signed);
    b_min = first_at_or_after(positions, position_bp + half_min);
  } else {
    // SNP-count windows: extents counted in SNPs per side.
    const auto half_max = static_cast<std::size_t>(config.max_window / 2);
    const auto half_min =
        std::max<std::size_t>(1, static_cast<std::size_t>(config.min_window / 2));
    lo = c + 1 >= half_max ? c + 1 - half_max : 0;
    hi = std::min(sites - 1, c + half_max);
    a_max = c + 1 >= half_min ? c + 1 - half_min : 0;
    b_min = c + half_min;
  }

  // l, r >= 2 and the side cap.
  if (config.max_snps_per_side > 0) {
    lo = std::max(lo, c + 1 >= config.max_snps_per_side
                          ? c + 1 - config.max_snps_per_side
                          : 0);
    hi = std::min(hi, c + config.max_snps_per_side);
  }
  a_max = std::min(a_max, c >= 1 ? c - 1 : 0);
  b_min = std::max(b_min, c + 2);

  if (lo > a_max || b_min > hi || c < 1 || hi <= c) return grid_position;
  if (c >= 1 && lo > c - 1) return grid_position;

  grid_position.lo = lo;
  grid_position.hi = hi;
  grid_position.c = c;
  grid_position.a_max = a_max;
  grid_position.b_min = b_min;
  grid_position.valid = true;
  return grid_position;
}

std::vector<GridPosition> build_grid(
    const std::vector<std::int64_t>& positions_bp, const OmegaConfig& config) {
  config.validate();
  std::vector<GridPosition> grid;
  grid.reserve(config.grid_size);
  if (positions_bp.empty()) return grid;
  const double first = static_cast<double>(positions_bp.front());
  const double last = static_cast<double>(positions_bp.back());
  for (std::size_t k = 0; k < config.grid_size; ++k) {
    const double fraction =
        config.grid_size == 1
            ? 0.5
            : static_cast<double>(k) / static_cast<double>(config.grid_size - 1);
    const auto position =
        static_cast<std::int64_t>(first + fraction * (last - first));
    grid.push_back(resolve_position(positions_bp, config, position));
  }
  return grid;
}

GridPosition resolve_position(const io::Dataset& dataset,
                              const OmegaConfig& config,
                              std::int64_t position_bp) {
  return resolve_position(dataset.positions(), config, position_bp);
}

std::vector<GridPosition> build_grid(const io::Dataset& dataset,
                                     const OmegaConfig& config) {
  return build_grid(dataset.positions(), config);
}

}  // namespace omega::core
