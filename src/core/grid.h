#pragma once
// Grid construction: OmegaPlus evaluates the omega statistic at `grid_size`
// equidistant genomic locations between the first and last SNP (Fig. 2). For
// each location this module resolves the SNP index geometry every backend
// consumes:
//
//        lo          a_max   c   b_min          hi
//   ...--|------------|------|----|--------------|--...   (SNP indices)
//         <- left region ->  ^  <- right region ->
//                        omega position
//
//   * [lo, hi]   — SNPs within max_window/2 of the position (per side),
//   * c          — last SNP at or left of the position (the split),
//   * a in [lo, a_max], b in [b_min, hi] — window borders honouring the
//     min_window requirement and the l,r >= 2 rule.
//
// The number of omega evaluations at the position is exactly
// (a_max - lo + 1) * (hi - b_min + 1), which is what the workload statistics
// and the accelerator timing models consume.

#include <cstdint>
#include <vector>

#include "core/omega_config.h"
#include "io/dataset.h"

namespace omega::core {

struct GridPosition {
  std::int64_t position_bp = 0;
  /// Inclusive global SNP index bounds of the region; meaningful only when
  /// `valid`.
  std::size_t lo = 0, hi = 0;
  /// Split index: left sub-region windows are [a..c], right are [c+1..b].
  std::size_t c = 0;
  /// Largest admissible left border and smallest admissible right border.
  std::size_t a_max = 0, b_min = 0;
  bool valid = false;

  /// Number of (a, b) window combinations = omega evaluations.
  [[nodiscard]] std::uint64_t combinations() const noexcept {
    if (!valid) return 0;
    return static_cast<std::uint64_t>(a_max - lo + 1) *
           static_cast<std::uint64_t>(hi - b_min + 1);
  }
  /// Left / right sub-region SNP counts (maximal windows).
  [[nodiscard]] std::size_t left_snps() const noexcept {
    return valid ? c - lo + 1 : 0;
  }
  [[nodiscard]] std::size_t right_snps() const noexcept {
    return valid ? hi - c : 0;
  }
};

/// Builds all grid positions for a dataset. Positions with too few SNPs on
/// either side are marked invalid (scored as omega = 0 by the scanner, the
/// OmegaPlus behaviour).
std::vector<GridPosition> build_grid(const io::Dataset& dataset,
                                     const OmegaConfig& config);

/// Resolves the geometry for one arbitrary genomic location.
GridPosition resolve_position(const io::Dataset& dataset,
                              const OmegaConfig& config,
                              std::int64_t position_bp);

/// Grid geometry depends only on the SNP coordinates, so the streaming
/// planner (which holds a position index but no genotype data) uses these
/// overloads; the Dataset forms above delegate to them. `positions_bp` must
/// be strictly increasing.
std::vector<GridPosition> build_grid(
    const std::vector<std::int64_t>& positions_bp, const OmegaConfig& config);

GridPosition resolve_position(const std::vector<std::int64_t>& positions_bp,
                              const OmegaConfig& config,
                              std::int64_t position_bp);

}  // namespace omega::core
