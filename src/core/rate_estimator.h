#pragma once
// Measured-throughput estimation for the scan schedulers
// (docs/OBSERVABILITY.md § Measured rates).
//
// The hetero planner splits the grid by *modeled* partition throughput
// (hw/hetero_profile); this estimator supplies the measured side of that
// comparison: an exponentially weighted moving average of positions/second
// folded in once per plan execution (hetero partitions) or once per claimed
// span (span-engine workers). The EWMA — rather than a plain total/elapsed
// ratio — keeps the estimate responsive to drift (thermal throttling, a
// loaded host, straggler re-dispatch shifting work mid-scan) while damping
// single-observation noise, which is what a future mid-scan re-planner needs
// (ROADMAP items 3/5). Estimates surface as telemetry gauges and in the
// metrics schema v11 "hetero" partition entries next to the modeled seconds.

#include <cstdint>

namespace omega::core {

/// EWMA of observed throughput in positions/second. Not thread-safe: each
/// worker / partition owns its estimator.
class RateEstimator {
 public:
  /// `alpha` is the weight of a new observation (0 < alpha <= 1); the first
  /// observation seeds the average outright.
  explicit RateEstimator(double alpha = 0.3) noexcept;

  /// Folds one observation in. Observations with non-positive elapsed time
  /// or zero positions carry no rate signal and are ignored.
  void observe(std::uint64_t positions, double seconds) noexcept;

  /// Current estimate; 0.0 until the first accepted observation.
  [[nodiscard]] double rate_per_s() const noexcept { return ewma_; }
  [[nodiscard]] std::uint64_t observations() const noexcept {
    return observations_;
  }
  void reset() noexcept;

 private:
  double alpha_;
  double ewma_ = 0.0;
  std::uint64_t observations_ = 0;
};

}  // namespace omega::core
