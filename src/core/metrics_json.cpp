#include "core/metrics_json.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/trace.h"

namespace omega::core::metrics {

// ---------------------------------------------------------------------------
// JsonValue: document model
// ---------------------------------------------------------------------------

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (kind_ != Kind::Object) throw std::logic_error("JsonValue::set: not an object");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::out_of_range("JsonValue::at: no member '" + std::string(key) + "'");
  }
  return *value;
}

JsonValue& JsonValue::at(std::string_view key) {
  return const_cast<JsonValue&>(std::as_const(*this).at(key));
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ != Kind::Array) throw std::logic_error("JsonValue::push_back: not an array");
  array_.push_back(std::move(value));
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::Int) throw std::logic_error("JsonValue: not an integer");
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  if (kind_ != Kind::Int || int_ < 0) {
    throw std::logic_error("JsonValue: not a non-negative integer");
  }
  return static_cast<std::uint64_t>(int_);
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Double) return double_;
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  throw std::logic_error("JsonValue: not a number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw std::logic_error("JsonValue: not a string");
  return string_;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null:
      return true;
    case Kind::Bool:
      return bool_ == other.bool_;
    case Kind::Int:
      return int_ == other.int_;
    case Kind::Double:
      return double_ == other.double_;
    case Kind::String:
      return string_ == other.string_;
    case Kind::Array:
      return array_ == other.array_;
    case Kind::Object:
      return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void escape_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  std::string text = buffer;
  // Keep the Double kind on round-trip: force a decimal point or exponent.
  if (text.find_first_of(".eE") == std::string::npos &&
      text.find_first_of("nN") == std::string::npos) {  // skip nan/inf
    text += ".0";
  }
  out += text;
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Int:
      out += std::to_string(int_);
      return;
    case Kind::Double:
      append_double(out, double_);
      return;
    case Kind::String:
      escape_string(out, string_);
      return;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_string(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > 128) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    JsonValue value;
    if (c == '{') {
      value = parse_object();
    } else if (c == '[') {
      value = parse_array();
    } else if (c == '"') {
      value = JsonValue(parse_string());
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      value = JsonValue(true);
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      value = JsonValue(false);
    } else if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      value = JsonValue();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      value = parse_number();
    } else {
      fail("unexpected character");
    }
    --depth_;
    return value;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by our
          // serializer, which only \u-escapes control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return JsonValue(value);
      }
      // Integer overflow: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("bad number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << value.dump() << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

// ---------------------------------------------------------------------------
// Schema builders
// ---------------------------------------------------------------------------

JsonValue scan_metrics(const std::string& run_name, const ScanProfile& profile) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kScanSchema);
  doc.set("schema_version", kSchemaVersion);
  doc.set("name", run_name);
  doc.set("backend", profile.omega_backend);
  doc.set("ld_backend", profile.ld_backend);
  doc.set("total_seconds", profile.total_seconds);

  JsonValue stages = JsonValue::object();
  stages.set("ld_reset_seconds", profile.stages.ld_reset_seconds);
  stages.set("ld_relocate_seconds", profile.stages.ld_relocate_seconds);
  stages.set("ld_extend_seconds", profile.stages.ld_extend_seconds);
  stages.set("omega_search_seconds", profile.stages.omega_search_seconds);
  stages.set("dispatch_seconds", profile.stages.dispatch_seconds);
  stages.set("ld_seconds", profile.ld_seconds);
  stages.set("omega_seconds", profile.omega_seconds);
  doc.set("stages", std::move(stages));

  JsonValue counters = JsonValue::object();
  counters.set("positions_scanned", profile.positions_scanned);
  counters.set("omega_evaluations", profile.omega_evaluations);
  counters.set("r2_fetched", profile.r2_fetched);
  counters.set("omega_throughput_per_s", profile.omega_throughput());
  counters.set("ld_throughput_per_s", profile.ld_throughput());
  doc.set("counters", std::move(counters));

  JsonValue relocation = JsonValue::object();
  relocation.set("resets", profile.relocation.resets);
  relocation.set("relocations", profile.relocation.relocations);
  relocation.set("cells_reused", profile.relocation.cells_reused);
  relocation.set("cells_recomputed", profile.relocation.cells_recomputed);
  doc.set("relocation", std::move(relocation));

  JsonValue gpu = JsonValue::object();
  gpu.set("kernel1_launches", profile.gpu.kernel1_launches);
  gpu.set("kernel2_launches", profile.gpu.kernel2_launches);
  gpu.set("kernel1_omegas", profile.gpu.kernel1_omegas);
  gpu.set("kernel2_omegas", profile.gpu.kernel2_omegas);
  gpu.set("modeled_kernel_seconds", profile.gpu.modeled_kernel_seconds);
  gpu.set("modeled_prep_seconds", profile.gpu.modeled_prep_seconds);
  gpu.set("modeled_transfer_seconds", profile.gpu.modeled_transfer_seconds);
  gpu.set("modeled_total_seconds", profile.gpu.modeled_total_seconds);
  gpu.set("bytes_moved", profile.gpu.bytes_moved);
  doc.set("gpu", std::move(gpu));

  JsonValue fpga = JsonValue::object();
  fpga.set("pipeline_cycles", profile.fpga.pipeline_cycles);
  fpga.set("stall_cycles", profile.fpga.stall_cycles);
  fpga.set("hw_omegas", profile.fpga.hw_omegas);
  fpga.set("sw_omegas", profile.fpga.sw_omegas);
  fpga.set("modeled_seconds", profile.fpga.modeled_seconds);
  doc.set("fpga", std::move(fpga));

  // v3: fault injection + recovery accounting (docs/ROBUSTNESS.md).
  JsonValue faults = JsonValue::object();
  faults.set("injected", profile.faults.faults_injected);
  faults.set("injected_kernel_launch", profile.faults.injected_kernel_launch);
  faults.set("injected_timeout", profile.faults.injected_timeout);
  faults.set("injected_nan", profile.faults.injected_nan);
  faults.set("injected_device_lost", profile.faults.injected_device_lost);
  faults.set("errors_caught", profile.faults.errors_caught);
  faults.set("invalid_results", profile.faults.invalid_results);
  faults.set("retries", profile.faults.retries);
  faults.set("quarantined_positions", profile.faults.quarantined_positions);
  faults.set("degradations", profile.faults.degradations);
  faults.set("backoff_virtual_seconds",
             profile.faults.backoff_virtual_seconds);
  doc.set("faults", std::move(faults));

  // v4: CPU omega-kernel dispatch decision + per-body evaluation counts
  // (docs/METRICS.md "kernel" block).
  JsonValue kernel = JsonValue::object();
  kernel.set("requested", profile.kernel.requested);
  kernel.set("selected", profile.kernel.selected);
  kernel.set("avx2_supported", profile.kernel.avx2_supported);
  kernel.set("positions", profile.kernel.positions);
  kernel.set("scalar_evaluations", profile.kernel.scalar_evaluations);
  kernel.set("portable_evaluations", profile.kernel.portable_evaluations);
  kernel.set("avx2_evaluations", profile.kernel.avx2_evaluations);
  doc.set("kernel", std::move(kernel));

  // v5: streaming chunk-pipeline accounting (docs/STREAMING.md); all-zero
  // for in-memory scans.
  JsonValue stream = JsonValue::object();
  stream.set("chunks", profile.stream.chunks);
  stream.set("chunk_sites_target", profile.stream.chunk_sites_target);
  stream.set("total_sites", profile.stream.total_sites);
  stream.set("overlap_sites", profile.stream.overlap_sites);
  stream.set("peak_resident_sites", profile.stream.peak_resident_sites);
  stream.set("seam_carryovers", profile.stream.seam_carryovers);
  stream.set("failed_chunks", profile.stream.failed_chunks);
  stream.set("io_seconds", profile.stream.io_seconds);
  stream.set("io_stall_seconds", profile.stream.io_stall_seconds);
  stream.set("compute_seconds", profile.stream.compute_seconds);
  stream.set("io_overlap_ratio", profile.stream.io_overlap_ratio());
  doc.set("stream", std::move(stream));

  // v7: work-stealing scheduler accounting (docs/PERF.md "Parallel scan");
  // workers == 1 and spans == 0 for serial scans.
  JsonValue sched = JsonValue::object();
  sched.set("requested_threads", profile.sched.requested_threads);
  sched.set("workers", profile.sched.workers);
  sched.set("spans", profile.sched.spans);
  sched.set("steals", profile.sched.steals);
  sched.set("active_workers", profile.sched.active_workers());
  JsonValue workers_detail = JsonValue::array();
  for (const SchedWorkerStats& worker : profile.sched.workers_detail) {
    JsonValue entry = JsonValue::object();
    entry.set("spans", worker.spans);
    entry.set("steals", worker.steals);
    entry.set("positions", worker.positions);
    entry.set("busy_seconds", worker.busy_seconds);
    workers_detail.push_back(std::move(entry));
  }
  sched.set("workers_detail", std::move(workers_detail));
  doc.set("sched", std::move(sched));

  // v8: crash-safe runtime accounting (docs/ROBUSTNESS.md "Checkpoint,
  // cancellation, and deadlines"); defaults describe an uninterrupted,
  // checkpoint-free run.
  JsonValue runtime = JsonValue::object();
  runtime.set("partial", profile.runtime.partial);
  runtime.set("cancelled", profile.runtime.cancelled);
  runtime.set("cancel_reason", profile.runtime.cancel_reason);
  runtime.set("deadline_seconds", profile.runtime.deadline_seconds);
  runtime.set("deadline_outcome", profile.runtime.deadline_outcome);
  runtime.set("cancel_latency_seconds",
              profile.runtime.cancel_latency_seconds);
  runtime.set("positions_skipped", profile.runtime.positions_skipped);
  runtime.set("checkpoints_written", profile.runtime.checkpoints_written);
  runtime.set("checkpoint_bytes", profile.runtime.checkpoint_bytes);
  runtime.set("resume_validations", profile.runtime.resume_validations);
  runtime.set("chunks_resumed", profile.runtime.chunks_resumed);
  doc.set("runtime", std::move(runtime));

  // v9: LD-engine accounting (docs/PERF.md "LD engines"): the resolved
  // engine + microkernel ISA, the packed engine's panel-cache hit/miss
  // counters, and the pack/kernel time split.
  JsonValue ld = JsonValue::object();
  ld.set("requested", profile.ld.requested);
  ld.set("engine", profile.ld.engine);
  ld.set("isa", profile.ld.isa);
  ld.set("panel_packs", profile.ld.panel_packs);
  ld.set("panel_hits", profile.ld.panel_hits);
  ld.set("pack_seconds", profile.ld.pack_seconds);
  ld.set("kernel_seconds", profile.ld.kernel_seconds);
  doc.set("ld", std::move(ld));

  // v10: heterogeneous co-scheduler accounting (docs/PERF.md "Heterogeneous
  // co-scheduling"); disabled/all-zero unless the scan ran --backend=hetero.
  JsonValue hetero = JsonValue::object();
  hetero.set("enabled", profile.hetero.enabled);
  hetero.set("split", profile.hetero.split);
  hetero.set("plans", profile.hetero.plans);
  hetero.set("redispatched_spans", profile.hetero.redispatched_spans);
  hetero.set("redispatched_positions", profile.hetero.redispatched_positions);
  hetero.set("straggler_spans", profile.hetero.straggler_spans);
  hetero.set("faulted_spans", profile.hetero.faulted_spans);
  JsonValue partitions = JsonValue::array();
  for (const HeteroPartitionStats& partition : profile.hetero.partitions) {
    JsonValue entry = JsonValue::object();
    entry.set("backend", partition.backend);
    entry.set("weight", partition.weight);
    entry.set("planned_positions", partition.planned_positions);
    entry.set("actual_positions", partition.actual_positions);
    entry.set("spans", partition.spans);
    entry.set("modeled_seconds", partition.modeled_seconds);
    entry.set("measured_seconds", partition.measured_seconds);
    // v11: measured-throughput EWMA next to the model's prediction.
    entry.set("measured_rate_per_s", partition.measured_rate_per_s);
    entry.set("rate_observations", partition.rate_observations);
    partitions.push_back(std::move(entry));
  }
  hetero.set("partitions", std::move(partitions));
  doc.set("hetero", std::move(hetero));

  // v11: hardware-counter per-stage profile (docs/OBSERVABILITY.md
  // "Hardware counters"); disabled with an empty stage list unless the scan
  // ran with util::perf enabled (CLI --perf-counters).
  JsonValue perf = JsonValue::object();
  perf.set("enabled", profile.perf.enabled);
  perf.set("source", profile.perf.source);
  JsonValue perf_stages = JsonValue::array();
  for (const PerfStageStats& stage : profile.perf.stages) {
    JsonValue entry = JsonValue::object();
    entry.set("stage", stage.stage);
    entry.set("scopes", stage.scopes);
    entry.set("cycles", stage.cycles);
    entry.set("instructions", stage.instructions);
    entry.set("cache_misses", stage.cache_misses);
    entry.set("branch_misses", stage.branch_misses);
    entry.set("task_clock_seconds", stage.task_clock_seconds);
    entry.set("ipc", stage.ipc());
    entry.set("cache_mpki", stage.cache_mpki());
    entry.set("branch_mpki", stage.branch_mpki());
    perf_stages.push_back(std::move(entry));
  }
  perf.set("stages", std::move(perf_stages));
  doc.set("perf", std::move(perf));

  // v6: distributional telemetry (docs/OBSERVABILITY.md) — the registry
  // delta attributed to this scan.
  doc.set("telemetry", telemetry_json(profile.telemetry));
  return doc;
}

JsonValue trace_to_json() {
  JsonValue events = JsonValue::array();
  for (const auto& event : util::trace::take_snapshot().events) {
    JsonValue entry = JsonValue::object();
    entry.set("name", event.name);
    entry.set("thread", static_cast<std::int64_t>(event.thread_id));
    entry.set("start_s", event.start_s);
    entry.set("duration_s", event.duration_s);
    events.push_back(std::move(entry));
  }
  return events;
}

JsonValue telemetry_json(const util::telemetry::RegistrySnapshot& snapshot) {
  JsonValue block = JsonValue::object();
  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, value);
  }
  block.set("counters", std::move(counters));
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, value);
  }
  block.set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, hist] : snapshot.histograms) {
    JsonValue entry = JsonValue::object();
    entry.set("base", hist.base);
    entry.set("count", hist.count);
    entry.set("sum", hist.sum);
    entry.set("min", hist.min);
    entry.set("max", hist.max);
    entry.set("mean", hist.mean());
    entry.set("p50", hist.quantile(0.50));
    entry.set("p90", hist.quantile(0.90));
    entry.set("p99", hist.quantile(0.99));
    JsonValue buckets = JsonValue::array();
    for (std::size_t i = 0; i < util::telemetry::kHistogramBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      JsonValue bucket = JsonValue::object();
      bucket.set("le", hist.bucket_upper_bound(i));
      bucket.set("count", hist.buckets[i]);
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  block.set("histograms", std::move(histograms));
  return block;
}

util::telemetry::RegistrySnapshot telemetry_from_json(const JsonValue& block) {
  util::telemetry::RegistrySnapshot snapshot;
  for (const auto& [name, value] : block.at("counters").members()) {
    snapshot.counters.emplace_back(name, value.as_uint());
  }
  for (const auto& [name, value] : block.at("gauges").members()) {
    snapshot.gauges.emplace_back(name, value.as_double());
  }
  for (const auto& [name, entry] : block.at("histograms").members()) {
    util::telemetry::HistogramSnapshot hist;
    hist.base = entry.at("base").as_double();
    hist.count = entry.at("count").as_uint();
    hist.sum = entry.at("sum").as_double();
    hist.min = entry.at("min").as_double();
    hist.max = entry.at("max").as_double();
    for (const auto& bucket : entry.at("buckets").items()) {
      const double le = bucket.at("le").as_double();
      // %.17g round-trips bucket bounds exactly, so the equality probe
      // normally hits; the nearest-bound fallback guards against a document
      // produced by a different printf implementation.
      std::size_t index = util::telemetry::kHistogramBuckets;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < util::telemetry::kHistogramBuckets; ++i) {
        const double bound = hist.bucket_upper_bound(i);
        if (bound == le) {
          index = i;
          break;
        }
        const double distance = std::abs(bound - le);
        if (distance < best_distance) {
          best_distance = distance;
          index = i;
        }
      }
      hist.buckets[index] += bucket.at("count").as_uint();
    }
    snapshot.histograms.emplace_back(name, hist);
  }
  return snapshot;
}

JsonValue chrome_trace(const util::trace::TraceSnapshot& snapshot) {
  std::vector<util::trace::TraceEvent> sorted = snapshot.events;
  std::sort(sorted.begin(), sorted.end(),
            [](const util::trace::TraceEvent& a,
               const util::trace::TraceEvent& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              return a.thread_id < b.thread_id;
            });

  JsonValue events = JsonValue::array();
  for (std::uint32_t tid = 0; tid < snapshot.num_threads; ++tid) {
    JsonValue meta = JsonValue::object();
    meta.set("ph", "M");
    meta.set("name", "thread_name");
    meta.set("pid", 1);
    meta.set("tid", static_cast<std::int64_t>(tid));
    JsonValue meta_args = JsonValue::object();
    meta_args.set("name", tid == 0 ? std::string("scan-main")
                                   : "worker-" + std::to_string(tid));
    meta.set("args", std::move(meta_args));
    events.push_back(std::move(meta));
  }
  for (const util::trace::TraceEvent& event : sorted) {
    JsonValue entry = JsonValue::object();
    if (event.duration_s > 0.0) {
      entry.set("ph", "X");
    } else {
      entry.set("ph", "i");
      entry.set("s", "t");  // thread-scoped instant
    }
    entry.set("name", event.name);
    entry.set("pid", 1);
    entry.set("tid", static_cast<std::int64_t>(event.thread_id));
    entry.set("ts", event.start_s * 1e6);
    if (event.duration_s > 0.0) entry.set("dur", event.duration_s * 1e6);
    events.push_back(std::move(entry));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  JsonValue other = JsonValue::object();
  other.set("recorded", snapshot.recorded);
  other.set("dropped", snapshot.dropped);
  other.set("num_threads", static_cast<std::int64_t>(snapshot.num_threads));
  doc.set("otherData", std::move(other));
  return doc;
}

JsonValue chrome_trace() { return chrome_trace(util::trace::take_snapshot()); }

}  // namespace omega::core::metrics
