#pragma once
// Exact workload statistics of a scan, computed from SNP positions alone (no
// genotypes touched, no M materialized). These numbers drive:
//   * the accelerator timing models at paper scale (Figs. 10-14),
//   * the dynamic GPU kernel dispatch threshold (combinations per position),
//   * reuse-efficiency reporting (fresh vs total r2 values).

#include <cstdint>
#include <vector>

#include "core/grid.h"
#include "core/omega_config.h"
#include "io/dataset.h"

namespace omega::core {

struct PositionWorkload {
  GridPosition geometry;
  /// omega evaluations at this position.
  std::uint64_t combinations = 0;
  /// r2 values the DP layer fetches for this position when relocation reuse
  /// is on (exactly matching DpMatrix::extend accounting).
  std::uint64_t r2_with_reuse = 0;
  /// r2 fetches if M were rebuilt from scratch at this position.
  std::uint64_t r2_without_reuse = 0;
  /// Host->device payload for the omega buffers (bytes, before padding).
  std::uint64_t omega_payload_bytes = 0;
};

struct ScanWorkload {
  std::vector<PositionWorkload> positions;
  std::uint64_t total_combinations = 0;
  std::uint64_t total_r2_with_reuse = 0;
  std::uint64_t total_r2_without_reuse = 0;
  std::uint64_t total_omega_payload_bytes = 0;
  /// Max inner-loop trip count over positions (the FPGA "right-side loop").
  std::size_t max_right_iterations = 0;
};

ScanWorkload analyze_workload(const io::Dataset& dataset,
                              const OmegaConfig& config);

/// Standalone per-position cost estimate for scheduling (span budgeting in
/// the work-stealing scan engine): the exact ω evaluation count plus a width
/// term approximating the per-position share of DP-matrix extension, so
/// LD-heavy positions (wide windows, few admissible borders) don't round to
/// "free". Zero for invalid positions — schedulers must budget by *valid*
/// work only, never by raw grid-index counts.
[[nodiscard]] std::uint64_t estimate_position_cost(
    const GridPosition& position) noexcept;

}  // namespace omega::core
