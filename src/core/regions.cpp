#include "core/regions.h"

#include <algorithm>

#include "util/stats.h"

namespace omega::core {

std::vector<CandidateRegion> merge_regions(const ScanResult& result,
                                           double threshold,
                                           std::size_t max_gap) {
  std::vector<CandidateRegion> regions;
  CandidateRegion current;
  bool open = false;
  std::size_t gap = 0;

  auto close = [&] {
    if (open) {
      regions.push_back(current);
      open = false;
    }
  };

  for (const auto& score : result.scores) {
    const bool hot = score.valid && score.max_omega >= threshold;
    if (hot) {
      if (!open) {
        current = CandidateRegion{};
        current.start_bp = score.position_bp;
        current.peak_omega = score.max_omega;
        current.peak_bp = score.position_bp;
        open = true;
      } else if (score.max_omega > current.peak_omega) {
        current.peak_omega = score.max_omega;
        current.peak_bp = score.position_bp;
      }
      current.end_bp = score.position_bp;
      ++current.grid_positions;
      gap = 0;
    } else if (open) {
      ++gap;
      if (gap > max_gap) {
        close();
        gap = 0;
      }
    }
  }
  close();
  return regions;
}

double landscape_quantile(const ScanResult& result, double quantile) {
  std::vector<double> values;
  values.reserve(result.scores.size());
  for (const auto& score : result.scores) {
    if (score.valid) values.push_back(score.max_omega);
  }
  return omega::util::percentile(std::move(values), quantile);
}

}  // namespace omega::core
