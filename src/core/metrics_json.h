#pragma once
// JSON metrics exporter for the scan observability layer. Two halves:
//
//   * JsonValue — a minimal ordered JSON document model with a serializer
//     and a strict parser, enough to emit the stable metrics schema and to
//     round-trip it in tests (no third-party JSON dependency);
//   * schema builders — scan_metrics() turns a ScanProfile v2 into the
//     documented "omega.scan.metrics" document; trace_to_json() exports the
//     util/trace.h ring buffer.
//
// The schema is consumed by bench_common (every bench target writes a
// BENCH_<name>.json) and by the CLI's --metrics-json flag; docs/METRICS.md
// documents every field. Bump kSchemaVersion when a field changes meaning.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/scanner.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omega::core::metrics {

inline constexpr int kSchemaVersion = 11;
inline constexpr const char* kScanSchema = "omega.scan.metrics";
inline constexpr const char* kBenchSchema = "omega.bench";

/// Ordered JSON document: objects preserve insertion order so emitted files
/// are stable and diffable. Integers are kept distinct from doubles so
/// counters round-trip exactly.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool value) : kind_(Kind::Bool), bool_(value) {}
  JsonValue(std::int64_t value) : kind_(Kind::Int), int_(value) {}
  JsonValue(std::uint64_t value)
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(value)) {}
  JsonValue(int value) : kind_(Kind::Int), int_(value) {}
  JsonValue(double value) : kind_(Kind::Double), double_(value) {}
  JsonValue(std::string value) : kind_(Kind::String), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::String), string_(value) {}

  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }
  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }

  // --- object access -------------------------------------------------------
  /// Inserts or replaces a member (object kind only); returns *this to chain.
  JsonValue& set(std::string key, JsonValue value);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Member lookup; throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] JsonValue& at(std::string_view key);
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return object_;
  }

  // --- array access --------------------------------------------------------
  void push_back(JsonValue value);
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return array_;
  }

  // --- scalar access (throw std::logic_error on kind mismatch) -------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  /// Numeric access: accepts Int or Double.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  /// Pretty serialization (indent 0 = compact single line).
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Strict parser; throws std::runtime_error with position info on errors.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Writes `value.dump()` (plus trailing newline) to `path`; throws on I/O
/// failure.
void write_json_file(const std::string& path, const JsonValue& value);

/// The stable per-scan metrics document ("omega.scan.metrics", version
/// kSchemaVersion). `run_name` identifies the producing run/bench/CLI
/// invocation. See docs/METRICS.md for the field-by-field description.
JsonValue scan_metrics(const std::string& run_name, const ScanProfile& profile);

/// Current util/trace.h buffer as a JSON array of {name, thread, start_s,
/// duration_s} events (empty array when tracing is off). Thread ids are
/// session-relative (remapped to start at 0).
JsonValue trace_to_json();

/// A util/telemetry registry snapshot as the schema v6 "telemetry" block:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {base, count,
/// sum, min, max, mean, p50, p90, p99, buckets:[{le, count}...]}}}. Only
/// occupied buckets are materialized.
JsonValue telemetry_json(const util::telemetry::RegistrySnapshot& snapshot);

/// Inverse of telemetry_json, used by checkpoint resume to reload the prior
/// run's telemetry snapshot. Bucket indices are reconstructed by matching
/// each serialized `le` against HistogramSnapshot::bucket_upper_bound — exact
/// given the %.17g serializer (nearest-bound fallback otherwise). Derived
/// fields (mean, quantiles) are recomputed, not read back. Throws
/// std::runtime_error / std::logic_error on malformed documents.
util::telemetry::RegistrySnapshot telemetry_from_json(const JsonValue& block);

/// The current util/trace.h session as a Chrome trace-event document
/// (loadable in Perfetto / chrome://tracing): {"traceEvents": [...],
/// "displayTimeUnit": "ms", "otherData": {recorded, dropped, num_threads}}.
/// Spans become "ph":"X" complete events (ts/dur in microseconds),
/// zero-duration events become "ph":"i" thread-scoped instants, and each
/// session-relative tid gets a "ph":"M" thread_name metadata record. Events
/// are sorted by (ts, tid) so output is deterministic for a given ring state.
JsonValue chrome_trace();

/// Same, from an explicit snapshot (for tests and post-mortem export).
JsonValue chrome_trace(const util::trace::TraceSnapshot& snapshot);

}  // namespace omega::core::metrics
