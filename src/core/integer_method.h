#pragma once
// Integer-arithmetic sweep-detection baseline, standing in for the method of
// Alachiotis, Vatsolakis, Chrysos & Pnevmatikatos (FPL'18), which the paper
// discusses in §III: an FPGA detector built on integer SNP comparisons that
// reported up to 62x speedups — but, as the paper stresses, "the implemented
// method is inherently different than the actual operations performed by
// OmegaPlus, and as such, the reported performance improvement does not
// represent the actual performance potential of FPGAs".
//
// This module makes that argument *quantifiable*: it scores the same grid
// positions using only integer operations —
//
//   m_ij = (n * n11 - n1 * n2)^2      (unnormalized squared LD covariance,
//                                      all integers; no division, no floats)
//
//   score = (sum_within m) * (l * r)
//           ----------------------------------------   (one final division)
//           (C(l,2) + C(r,2)) * (sum_cross m + 1)
//
// so the bench can report how well the integer scores track omega (rank
// correlation, argmax agreement) and how much cheaper they are. The exact
// FPL'18 formulation is not public in full detail; this stand-in preserves
// its defining property — discrete integer comparisons instead of the
// floating-point r2/omega datapath.

#include "core/omega_config.h"
#include "core/scanner.h"
#include "io/dataset.h"

namespace omega::core {

struct IntegerScanProfile {
  double total_seconds = 0.0;
  std::uint64_t evaluations = 0;
};

/// Scores every grid position with the integer method. Scores land in
/// PositionScore::max_omega (they are *not* omega values — different scale —
/// but share the "bigger = sweepier" orientation).
ScanResult integer_method_scan(const io::Dataset& dataset,
                               const OmegaConfig& config);

}  // namespace omega::core
