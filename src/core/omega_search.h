#pragma once
// The OmegaPlus per-position kernel (pseudo-code in Fig. 6): a nested loop
// over left borders a (outer) and right borders b (inner / "right-side
// loop") evaluating Eq. (2) for every window combination and keeping the
// maximum. All sums come from the DP matrix M:
//
//   LS(a)    = M(c, a)          left within-region sum
//   RS(b)    = M(b, c+1)        right within-region sum
//   TS(a,b)  = M(b, a) - LS - RS   cross-region sum
//
// This module also packs the per-position accelerator buffers (LR, km, TS in
// the paper's Figs. 4-5 and Fig. 8) that the GPU and FPGA backends consume.

#include <cstdint>
#include <vector>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "par/thread_pool.h"

namespace omega::core {

struct OmegaResult {
  double max_omega = 0.0;
  /// Global SNP indices of the maximizing window borders (valid when
  /// evaluated > 0).
  std::size_t best_a = 0;
  std::size_t best_b = 0;
  std::uint64_t evaluated = 0;
};

/// Double-precision CPU evaluation of one grid position. This is the scalar
/// reference loop — the arithmetic every other kernel (vectorized CPU,
/// simulated GPU/FPGA) is validated against. The optimized bodies live in
/// core/omega_kernel_cpu.h.
OmegaResult max_omega_search(const DpMatrix& m, const GridPosition& position);

/// Scalar reference search restricted to right borders [b_begin, b_end]
/// (caller keeps the range inside [position.b_min, position.hi]). Building
/// block of the parallel searches and of the kernel dispatch layer.
OmegaResult max_omega_search_range(const DpMatrix& m,
                                   const GridPosition& position,
                                   std::size_t b_begin, std::size_t b_end);

/// Fine-grained parallel variant: the right-border (outer) loop is split
/// into contiguous chunks across the pool — the intra-position
/// parallelization scheme of the OmegaPlus performance guide (Alachiotis &
/// Pavlidis 2016), profitable when the grid is small but per-position
/// workloads are large. Bit-identical to the sequential search including
/// tie-breaking (ties resolve to the lowest (b, a)).
OmegaResult max_omega_search_parallel(par::ThreadPool& pool, const DpMatrix& m,
                                      const GridPosition& position);

/// Host-side buffer packing for the accelerator backends, mirroring
/// OmegaPlus-GPU's per-position transfer set:
///   ls[ai]  = LS for a = lo + ai               (left part of buffer "LR")
///   rs[bi]  = RS for b = b_min + bi            (right part of buffer "LR")
///   k[ai]   = C(l,2), m_binom[bi] = C(r,2)     (buffer "km")
///   total[ai * num_right + bi] = M(b, a)       (buffer "TS")
/// Sums are float: the accelerators are single-precision datapaths.
struct PositionBuffers {
  std::size_t num_left = 0;   // count of left borders  (outer loop trip)
  std::size_t num_right = 0;  // count of right borders (inner loop trip)
  std::vector<float> ls;
  std::vector<float> rs;
  std::vector<float> k;        // C(l,2) per left border
  std::vector<float> m_binom;  // C(r,2) per right border
  std::vector<std::uint32_t> l_counts;
  std::vector<std::uint32_t> r_counts;
  std::vector<float> total;    // row-major [num_left x num_right]

  [[nodiscard]] std::uint64_t combinations() const noexcept {
    return static_cast<std::uint64_t>(num_left) * num_right;
  }
  /// Bytes moved to an accelerator for this position (pre-padding).
  [[nodiscard]] std::size_t payload_bytes() const noexcept;
};

PositionBuffers pack_position(const DpMatrix& m, const GridPosition& position);

/// Recovers the (a, b) borders of a flat combination index as packed above.
inline void unflatten_combination(const GridPosition& position,
                                  std::size_t num_right, std::uint64_t flat,
                                  std::size_t& a, std::size_t& b) noexcept {
  a = position.lo + static_cast<std::size_t>(flat / num_right);
  b = position.b_min + static_cast<std::size_t>(flat % num_right);
}

}  // namespace omega::core
