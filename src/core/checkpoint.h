#pragma once
// Versioned scan checkpoints for the crash-safe streaming runtime
// (docs/ROBUSTNESS.md "Checkpoint, cancellation, and deadlines"). The
// streaming driver writes one after every committed chunk — dataset
// fingerprint, grid/config hash, chunk cursor, every settled per-position
// score (including the quarantine set), and the accumulated profile totals
// with a telemetry snapshot — via an atomic temp-file-plus-rename, so the
// file on disk is always a complete, parseable checkpoint no matter where
// the process died.
//
// Resume contract: scores are stored as raw IEEE-754 bit patterns and the
// interrupted chunk is recomputed from scratch (checkpoints only ever cover
// fully committed chunks), so a resumed scan is bitwise identical to an
// uninterrupted one for every backend. Fault-injection *schedules* are not
// replayed — backends restart with fresh PRNG streams — but transient faults
// converge to the same scores through the retry engine, so the identity
// guarantee covers fault-injected runs too (only the fault counters differ).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics_json.h"
#include "core/scanner.h"
#include "io/fingerprint.h"

namespace omega::core {

struct StreamScanOptions;

/// Thrown when --resume finds a checkpoint that does not match the current
/// run (different dataset fingerprint, scan config, or chunk/grid geometry).
/// A distinct type so the CLI can map it to a usage-error exit code instead
/// of a generic failure.
class ResumeMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ScanCheckpoint {
  /// Bump when the on-disk layout changes; load_checkpoint rejects others.
  /// v2: hetero partitions carry measured_rate_per_s / rate_observations
  /// (schema v11 measured-rate estimation).
  static constexpr int kVersion = 2;

  io::StreamFingerprint fingerprint;
  /// scan_config_hash of the producing run; resume refuses a mismatch.
  std::uint64_t config_hash = 0;
  /// The human-readable config the hash covers, for mismatch diagnostics.
  std::string config_summary;

  std::uint64_t chunks_total = 0;
  /// Chunks fully committed; the resume cursor. The chunk that was in
  /// flight when the run died is recomputed from scratch.
  std::uint64_t chunks_completed = 0;
  std::uint64_t grid_size = 0;
  /// Scores for grid positions [0, grid_committed) are settled (valid,
  /// quarantined, or grid-invalid); everything at or past it is recomputed.
  std::uint64_t grid_committed = 0;
  /// Exactly grid_committed entries; max_omega round-trips bitwise.
  std::vector<PositionScore> scores;
  /// Accumulated profile of all runs so far (stages, counters, accelerator
  /// blocks, stream IO totals, sched per-worker detail, telemetry snapshot).
  /// RuntimeStats and the backend/kernel name strings are per-run and are
  /// not carried.
  ScanProfile totals;
};

/// Hash + summary of every scan setting that could change the scores or the
/// chunk decomposition: grid/window config, LD engine kind ("custom" when an
/// ld_factory overrides it), reuse, the recovery knobs that decide
/// quarantine, chunk_sites, and the backend name. Thread count is
/// deliberately excluded — serial and span-engine scans are bitwise
/// identical, so resuming with a different worker count is legal.
[[nodiscard]] std::string scan_config_summary(const ScannerOptions& options,
                                              std::size_t chunk_sites,
                                              const std::string& backend_name);
[[nodiscard]] std::uint64_t scan_config_hash(const ScannerOptions& options,
                                             std::size_t chunk_sites,
                                             const std::string& backend_name);

[[nodiscard]] metrics::JsonValue checkpoint_to_json(const ScanCheckpoint& ckpt);
/// Throws std::runtime_error on a malformed or version-mismatched document.
[[nodiscard]] ScanCheckpoint checkpoint_from_json(
    const metrics::JsonValue& doc);

/// Atomically replaces `path`: serializes to `path + ".tmp"` and renames it
/// over `path`, so a crash mid-write can never leave a truncated checkpoint
/// behind (at worst a stale .tmp next to the previous good file). Returns
/// the byte size written. Throws on I/O failure.
std::uint64_t write_checkpoint(const std::string& path,
                               const ScanCheckpoint& ckpt);

/// Loads and structurally validates a checkpoint file. Throws
/// std::runtime_error when the file is missing, unparseable, or a different
/// version.
[[nodiscard]] ScanCheckpoint load_checkpoint(const std::string& path);

/// Folds a loaded checkpoint's accumulated totals into a fresh scan profile
/// at resume time: everything merge_worker_profile covers plus the stream IO
/// buckets, sched per-worker detail, and total_seconds. Telemetry is NOT
/// merged here — the driver folds it in at scan end via
/// RegistrySnapshot::merged_with, after the current run's delta is taken.
void restore_profile_totals(ScanProfile& profile, const ScanProfile& totals);

}  // namespace omega::core
