#include "io/plink.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/parse_error.h"

namespace omega::io {
namespace {

struct MapEntry {
  std::string snp_id;
  std::int64_t position_bp = 0;
};

std::vector<MapEntry> parse_map(std::istream& in) {
  std::vector<MapEntry> entries;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string chrom, snp_id, genetic_distance, position_text;
    if (!(fields >> chrom >> snp_id >> genetic_distance >> position_text)) {
      throw ParseError("plink", line_number,
                       ".map: expected 4 fields "
                       "(chrom, id, genetic distance, position), got '" +
                           line + "'");
    }
    // The genetic-distance column is unused but must still look numeric —
    // a shifted/garbled line should fail here, not smuggle its id into the
    // position column.
    std::istringstream distance_check(genetic_distance);
    double distance = 0.0;
    if (!(distance_check >> distance) || !distance_check.eof()) {
      throw ParseError("plink", line_number,
                       ".map: invalid genetic distance '" + genetic_distance +
                           "'");
    }
    const std::int64_t position =
        parse_int64(position_text, "plink", line_number, ".map position");
    if (position < 0) {
      throw ParseError("plink", line_number,
                       ".map: negative position " + position_text);
    }
    entries.push_back({snp_id, position});
  }
  return entries;
}

}  // namespace

Dataset read_plink(std::istream& ped_in, std::istream& map_in,
                   PlinkLoadReport* report) {
  PlinkLoadReport local;
  const auto map_entries = parse_map(map_in);
  const std::size_t sites = map_entries.size();
  local.sites_total = sites;

  // Collect raw allele characters per haplotype, site-major.
  // alleles[s] holds one char per haplotype.
  std::vector<std::string> alleles(sites);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(ped_in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string fid, iid, pat, mat, sex, phenotype;
    if (!(fields >> fid >> iid >> pat >> mat >> sex >> phenotype)) {
      throw ParseError("plink", line_number,
                       ".ped: malformed prologue (expected 6 fields): '" +
                           line + "'");
    }
    ++local.individuals;
    for (std::size_t s = 0; s < sites; ++s) {
      std::string a1, a2;
      if (!(fields >> a1 >> a2) || a1.size() != 1 || a2.size() != 1) {
        throw ParseError("plink", line_number,
                         ".ped: genotype count mismatch for individual '" +
                             iid + "' (expected " + std::to_string(sites) +
                             " single-character allele pairs)");
      }
      alleles[s].push_back(a1[0]);
      alleles[s].push_back(a2[0]);
    }
    std::string extra;
    if (fields >> extra) {
      throw ParseError("plink", line_number,
                       ".ped: trailing genotype fields for individual '" +
                           iid + "'");
    }
  }

  const std::size_t haplotypes = 2 * local.individuals;
  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> rows;
  std::int64_t previous_position = -1;
  for (std::size_t s = 0; s < sites; ++s) {
    // Count distinct non-missing alleles.
    std::map<char, std::size_t> counts;
    for (const char c : alleles[s]) {
      if (c != '0') ++counts[c];
    }
    if (counts.size() != 2) {
      ++local.sites_dropped;  // monomorphic handled later; multi-allelic here
      if (counts.size() < 2) continue;
      continue;
    }
    // Minor allele = derived.
    const auto major = std::max_element(
        counts.begin(), counts.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    std::vector<std::uint8_t> row(haplotypes);
    for (std::size_t h = 0; h < haplotypes; ++h) {
      const char c = alleles[s][h];
      row[h] = c == '0' ? Dataset::kMissing
                        : static_cast<std::uint8_t>(c != major->first);
    }
    std::int64_t position = map_entries[s].position_bp;
    if (position <= previous_position) position = previous_position + 1;
    previous_position = position;
    positions.push_back(position);
    rows.push_back(std::move(row));
  }

  if (report != nullptr) *report = local;
  const std::int64_t length = positions.empty() ? 0 : positions.back();
  Dataset dataset(std::move(positions), std::move(rows), length);
  dataset.remove_monomorphic();
  return dataset;
}

Dataset read_plink_files(const std::string& stem, PlinkLoadReport* report) {
  std::ifstream ped(stem + ".ped");
  if (!ped) throw std::runtime_error("plink: cannot open " + stem + ".ped");
  std::ifstream map_file(stem + ".map");
  if (!map_file) throw std::runtime_error("plink: cannot open " + stem + ".map");
  return read_plink(ped, map_file, report);
}

}  // namespace omega::io
