#include "io/chunk_reader.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "io/parse_error.h"

namespace omega::io {
namespace {

/// The keep rule of Dataset::remove_monomorphic, applied record-at-a-time:
/// a site carries LD information iff both alleles are observed among the
/// valid (non-missing) calls.
bool is_polymorphic(const std::vector<std::uint8_t>& alleles) {
  std::size_t derived = 0, valid = 0;
  for (const std::uint8_t a : alleles) {
    if (a == Dataset::kMissing) continue;
    ++valid;
    derived += (a == 1) ? 1 : 0;
  }
  return derived > 0 && derived < valid;
}

}  // namespace

void ChunkReader::adopt_plan(std::vector<SiteRange> ranges,
                             std::size_t num_sites) {
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    const SiteRange& r = ranges[k];
    if (r.begin >= r.end || r.end > num_sites) {
      throw std::invalid_argument("chunk plan: range " + std::to_string(k) +
                                  " [" + std::to_string(r.begin) + ", " +
                                  std::to_string(r.end) + ") invalid for " +
                                  std::to_string(num_sites) + " sites");
    }
    if (k > 0 &&
        (r.begin < ranges[k - 1].begin || r.end < ranges[k - 1].end)) {
      throw std::invalid_argument(
          "chunk plan: ranges must advance monotonically (range " +
          std::to_string(k) + " steps backwards)");
    }
  }
  ranges_ = std::move(ranges);
  cursor_ = 0;
}

// ---------------------------------------------------------------- Dataset --

DatasetChunkReader::DatasetChunkReader(const Dataset& dataset)
    : dataset_(dataset) {
  index_.positions_bp = dataset.positions();
  index_.num_samples = dataset.num_samples();
  index_.locus_length_bp = dataset.locus_length_bp();
  index_.has_missing = dataset.has_missing();
}

void DatasetChunkReader::plan(std::vector<SiteRange> ranges) {
  adopt_plan(std::move(ranges), index_.num_sites());
}

std::optional<DatasetChunk> DatasetChunkReader::next() {
  if (cursor_ >= ranges_.size()) return std::nullopt;
  const SiteRange range = ranges_[cursor_];
  std::vector<std::int64_t> positions(
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.begin),
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.end));
  std::vector<std::vector<std::uint8_t>> sites;
  sites.reserve(range.size());
  for (std::size_t s = range.begin; s < range.end; ++s) {
    sites.push_back(dataset_.site(s));
  }
  DatasetChunk chunk{Dataset(std::move(positions), std::move(sites),
                             index_.locus_length_bp),
                     range.begin, cursor_};
  ++cursor_;
  return chunk;
}

// -------------------------------------------------------------------- VCF --

VcfChunkReader::VcfChunkReader(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in) throw std::runtime_error("vcf: cannot open " + path_);
  VcfStreamParser parser(in);
  VcfRecord record;
  std::int64_t last_raw_position = 0;
  while (parser.next(record)) {
    // locus length follows read_vcf: the last loadable record's position,
    // whether or not the monomorphic filter keeps it.
    last_raw_position = record.position_bp;
    if (is_polymorphic(record.alleles)) {
      index_.positions_bp.push_back(record.position_bp);
      if (!index_.has_missing) {
        index_.has_missing =
            std::find(record.alleles.begin(), record.alleles.end(),
                      Dataset::kMissing) != record.alleles.end();
      }
    }
  }
  index_.num_samples = parser.haplotypes();
  index_.locus_length_bp = last_raw_position;
  load_report_ = parser.report();
}

void VcfChunkReader::plan(std::vector<SiteRange> ranges) {
  adopt_plan(std::move(ranges), index_.num_sites());
  file_ = std::make_unique<std::ifstream>(path_);
  if (!*file_) throw std::runtime_error("vcf: cannot reopen " + path_);
  parser_ = std::make_unique<VcfStreamParser>(*file_);
  buffer_.clear();
  buffer_first_ = 0;
  parsed_kept_ = 0;
}

void VcfChunkReader::fill_to(std::size_t target) {
  VcfRecord record;
  while (parsed_kept_ <= target && parser_->next(record)) {
    if (!is_polymorphic(record.alleles)) continue;
    buffer_.push_back(std::move(record.alleles));
    ++parsed_kept_;
  }
}

std::optional<DatasetChunk> VcfChunkReader::next() {
  if (cursor_ >= ranges_.size()) return std::nullopt;
  if (parser_ == nullptr) {
    throw std::logic_error("vcf-stream: next() before plan()");
  }
  const SiteRange range = ranges_[cursor_];
  // Release sites the remaining plan can no longer touch.
  while (buffer_first_ < range.begin) {
    buffer_.pop_front();
    ++buffer_first_;
  }
  fill_to(range.end - 1);
  if (parsed_kept_ < range.end) {
    // Pass 1 indexed more kept sites than pass 2 found: the file changed
    // between passes.
    throw std::runtime_error("vcf-stream: " + path_ +
                             " shrank between indexing and streaming");
  }
  std::vector<std::int64_t> positions(
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.begin),
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.end));
  std::vector<std::vector<std::uint8_t>> sites;
  sites.reserve(range.size());
  for (std::size_t s = range.begin; s < range.end; ++s) {
    sites.push_back(buffer_[s - buffer_first_]);
  }
  DatasetChunk chunk{Dataset(std::move(positions), std::move(sites),
                             index_.locus_length_bp),
                     range.begin, cursor_};
  ++cursor_;
  return chunk;
}

// --------------------------------------------------------------------- ms --

MsChunkReader::MsChunkReader(const std::string& path, MsReadOptions options,
                             std::size_t replicate) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ms: cannot open " + path);
  raw_ = read_ms_replicate_raw(in, replicate);

  const std::size_t sites = raw_.fractions.size();
  for (const auto& hap : raw_.haplotypes) {
    if (hap.size() != sites) {
      throw ParseError("ms", raw_.replicate_line,
                       "haplotype width " + std::to_string(hap.size()) +
                           " != segsites " + std::to_string(sites));
    }
    for (const char c : hap) {
      if (c != '0' && c != '1') {
        throw ParseError("ms", raw_.replicate_line,
                         std::string("invalid allele character '") + c + "'");
      }
    }
  }

  // Coordinates first (over every raw site — the dedup nudge depends on the
  // unfiltered order), then the monomorphic filter, exactly as read_ms does.
  const std::vector<std::int64_t> raw_positions =
      ms_positions_bp(raw_.fractions, options, raw_.replicate_line);
  for (std::size_t s = 0; s < sites; ++s) {
    std::size_t derived = 0;
    for (const auto& hap : raw_.haplotypes) derived += (hap[s] == '1') ? 1 : 0;
    const bool keep = !options.drop_monomorphic ||
                      (derived > 0 && derived < raw_.haplotypes.size());
    if (keep) {
      site_columns_.push_back(s);
      index_.positions_bp.push_back(raw_positions[s]);
    }
  }
  index_.num_samples = raw_.haplotypes.size();
  index_.locus_length_bp =
      std::max<std::int64_t>(options.locus_length_bp,
                             raw_positions.empty() ? 0 : raw_positions.back());
}

void MsChunkReader::plan(std::vector<SiteRange> ranges) {
  adopt_plan(std::move(ranges), index_.num_sites());
}

std::optional<DatasetChunk> MsChunkReader::next() {
  if (cursor_ >= ranges_.size()) return std::nullopt;
  const SiteRange range = ranges_[cursor_];
  std::vector<std::int64_t> positions(
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.begin),
      index_.positions_bp.begin() + static_cast<std::ptrdiff_t>(range.end));
  std::vector<std::vector<std::uint8_t>> sites;
  sites.reserve(range.size());
  for (std::size_t s = range.begin; s < range.end; ++s) {
    const std::size_t column = site_columns_[s];
    std::vector<std::uint8_t> alleles(raw_.haplotypes.size());
    for (std::size_t h = 0; h < raw_.haplotypes.size(); ++h) {
      alleles[h] = static_cast<std::uint8_t>(raw_.haplotypes[h][column] - '0');
    }
    sites.push_back(std::move(alleles));
  }
  DatasetChunk chunk{Dataset(std::move(positions), std::move(sites),
                             index_.locus_length_bp),
                     range.begin, cursor_};
  ++cursor_;
  return chunk;
}

}  // namespace omega::io
