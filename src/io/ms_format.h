#pragma once
// Reader/writer for Hudson's `ms` output format, the interchange format used
// by the paper's experiments ("We generated simulated datasets using
// Hudson's ms"). A replicate looks like:
//
//   //
//   segsites: 4
//   positions: 0.0110 0.2504 0.2592 0.8951
//   0101
//   1100
//   ...
//
// Positions are fractions of the locus; we convert to integer bp with the
// caller-provided locus length (matching OmegaPlus's handling of ms input).
//
// Because ms is haplotype-major (each row is one haplotype across every
// site), the streaming chunk reader cannot drop data mid-replicate; instead
// read_ms_replicate_raw() keeps one replicate as compact text rows (1 byte
// per allele) from which bounded site-major Dataset chunks are sliced.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/dataset.h"

namespace omega::io {

struct MsReadOptions {
  std::int64_t locus_length_bp = 1'000'000;
  bool drop_monomorphic = true;
  /// When two fractional positions collide after bp rounding, nudge the later
  /// site forward one bp (OmegaPlus requires strictly increasing positions).
  bool deduplicate_positions = true;
};

/// Parses every replicate in the stream. Throws std::runtime_error on
/// malformed input (wrong haplotype widths, bad counts, invalid characters).
std::vector<Dataset> read_ms(std::istream& in, const MsReadOptions& options = {});
std::vector<Dataset> read_ms_file(const std::string& path,
                                  const MsReadOptions& options = {});

/// One replicate in its raw textual shape: fractional positions plus
/// haplotype rows kept as '0'/'1' strings — the compact holding format the
/// chunk reader (io/chunk_reader.h) slices per-chunk Datasets from.
struct MsRawReplicate {
  std::vector<double> fractions;
  std::vector<std::string> haplotypes;
  std::size_t replicate_line = 0;  // line number of the opening "//"
};

/// Reads replicate `index` (0-based) without materializing a Dataset; throws
/// ParseError on malformed input and std::runtime_error when the stream holds
/// fewer replicates.
MsRawReplicate read_ms_replicate_raw(std::istream& in, std::size_t index);

/// Converts fractional positions into strictly-increasing bp positions with
/// the exact llround + dedup-nudge arithmetic read_ms uses — shared so a
/// streamed replicate lands on the same coordinates as the in-memory load.
/// `replicate_line` seeds ParseError context for out-of-range fractions.
std::vector<std::int64_t> ms_positions_bp(const std::vector<double>& fractions,
                                          const MsReadOptions& options,
                                          std::size_t replicate_line = 0);

/// Writes replicates in ms format (fractional positions with 6 digits). The
/// caller's stream formatting flags are restored on return.
void write_ms(std::ostream& out, const std::vector<Dataset>& replicates,
              const std::string& command_line = "ms (libomega writer)");
void write_ms_file(const std::string& path, const std::vector<Dataset>& replicates,
                   const std::string& command_line = "ms (libomega writer)");

}  // namespace omega::io
