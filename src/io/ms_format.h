#pragma once
// Reader/writer for Hudson's `ms` output format, the interchange format used
// by the paper's experiments ("We generated simulated datasets using
// Hudson's ms"). A replicate looks like:
//
//   //
//   segsites: 4
//   positions: 0.0110 0.2504 0.2592 0.8951
//   0101
//   1100
//   ...
//
// Positions are fractions of the locus; we convert to integer bp with the
// caller-provided locus length (matching OmegaPlus's handling of ms input).

#include <iosfwd>
#include <string>
#include <vector>

#include "io/dataset.h"

namespace omega::io {

struct MsReadOptions {
  std::int64_t locus_length_bp = 1'000'000;
  bool drop_monomorphic = true;
  /// When two fractional positions collide after bp rounding, nudge the later
  /// site forward one bp (OmegaPlus requires strictly increasing positions).
  bool deduplicate_positions = true;
};

/// Parses every replicate in the stream. Throws std::runtime_error on
/// malformed input (wrong haplotype widths, bad counts, invalid characters).
std::vector<Dataset> read_ms(std::istream& in, const MsReadOptions& options = {});
std::vector<Dataset> read_ms_file(const std::string& path,
                                  const MsReadOptions& options = {});

/// Writes replicates in ms format (fractional positions with 6 digits).
void write_ms(std::ostream& out, const std::vector<Dataset>& replicates,
              const std::string& command_line = "ms (libomega writer)");
void write_ms_file(const std::string& path, const std::vector<Dataset>& replicates,
                   const std::string& command_line = "ms (libomega writer)");

}  // namespace omega::io
