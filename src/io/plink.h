#pragma once
// PLINK text-format (.ped/.map) importer. PLINK 1.9 is the CPU baseline of
// the LD-acceleration lineage the paper builds on (Alachiotis & Weisz and
// Bozikas et al. both benchmark against it; quickLD compares to it), so
// loading its native format lets the same inputs drive this library.
//
//   .map — one line per SNP:  chrom  snp-id  genetic-distance  bp-position
//   .ped — one line per individual:
//            FID IID PAT MAT SEX PHENO  a1 a2  a1 a2 ...   (2 alleles/SNP)
//
// Diploid genotypes contribute two haplotypes per individual. Alleles may be
// ACGT or 1/2 coded; '0' is a missing call. Sites are reduced to binary with
// the minor allele as derived, multi-allelic sites are dropped (counted in
// the report).

#include <iosfwd>
#include <string>

#include "io/dataset.h"

namespace omega::io {

struct PlinkLoadReport {
  std::size_t individuals = 0;
  std::size_t sites_total = 0;
  std::size_t sites_dropped = 0;  // multi-allelic or all-missing
};

/// Parses from streams (testable) — `map_in` fixes the site count and
/// positions, `ped_in` supplies genotypes.
Dataset read_plink(std::istream& ped_in, std::istream& map_in,
                   PlinkLoadReport* report = nullptr);

/// Convenience file wrapper: `stem.ped` + `stem.map`.
Dataset read_plink_files(const std::string& stem,
                         PlinkLoadReport* report = nullptr);

}  // namespace omega::io
