#pragma once
// "VCF-lite" importer: enough of VCF 4.x to load biallelic haploid/phased
// genotype records into a Dataset. Supports the subset produced by common
// simulators and by bcftools view on phased panels:
//   #CHROM POS ID REF ALT QUAL FILTER INFO FORMAT S1 S2 ...
// with GT fields like 0, 1, 0|1, 1/1. Multi-allelic records and records with
// symbolic ALT alleles are skipped (counted, reported).

#include <iosfwd>
#include <string>
#include <vector>

#include "io/dataset.h"

namespace omega::io {

struct VcfLoadReport {
  std::size_t records_total = 0;
  std::size_t records_skipped = 0;  // multi-allelic / symbolic / malformed GT
};

/// Loads the first contig's records (or all records if they share a contig).
/// Phased diploid GTs contribute two haplotypes per sample.
Dataset read_vcf(std::istream& in, VcfLoadReport* report = nullptr);
Dataset read_vcf_file(const std::string& path, VcfLoadReport* report = nullptr);

struct VcfWriteOptions {
  std::string contig = "1";
  /// Haplotypes are paired into phased diploid samples (hap 2i | hap 2i+1);
  /// with an odd haplotype count the last sample is haploid.
  bool pair_into_diploids = true;
};

/// Writes the dataset as VCF 4.2 (REF=A, ALT=T placeholder alleles; missing
/// calls become '.'). Round-trips through read_vcf.
void write_vcf(std::ostream& out, const Dataset& dataset,
               const VcfWriteOptions& options = {});
void write_vcf_file(const std::string& path, const Dataset& dataset,
                    const VcfWriteOptions& options = {});

}  // namespace omega::io
