#pragma once
// "VCF-lite" importer: enough of VCF 4.x to load biallelic haploid/phased
// genotype records into a Dataset. Supports the subset produced by common
// simulators and by bcftools view on phased panels:
//   #CHROM POS ID REF ALT QUAL FILTER INFO FORMAT S1 S2 ...
// with GT fields like 0, 1, 0|1, 1/1. Multi-allelic records and records with
// symbolic ALT alleles are skipped (counted, reported). CRLF line endings are
// accepted (the trailing \r is stripped before field splitting).
//
// Two consumption modes share one record-level parser (VcfStreamParser, the
// single home of the skip/count logic):
//   * read_vcf()      — materializes the whole first contig into a Dataset;
//   * VcfStreamParser — yields one record at a time, which is what the
//     streaming chunk reader (io/chunk_reader.h) builds bounded-memory
//     whole-genome scans on.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "io/dataset.h"

namespace omega::io {

struct VcfLoadReport {
  /// Every data line seen on the first contig, loadable or not; always equals
  /// loaded records + records_skipped.
  std::size_t records_total = 0;
  /// Short (< 10 fields) / multi-allelic / symbolic / malformed-GT /
  /// unsorted records.
  std::size_t records_skipped = 0;
};

/// One loadable record: its bp position and the per-haplotype alleles
/// (0/1/Dataset::kMissing).
struct VcfRecord {
  std::int64_t position_bp = 0;
  std::vector<std::uint8_t> alleles;
};

/// Incremental record-level VCF parser over the first contig. next() skips
/// (and counts) unloadable records internally, so callers only ever see
/// loadable ones; it returns false at end of input or on the first record of
/// a second contig (which is neither counted nor loaded).
class VcfStreamParser {
 public:
  explicit VcfStreamParser(std::istream& in) : in_(in) {}

  /// Advances to the next loadable record. `record.alleles` is overwritten
  /// (capacity reused across calls).
  bool next(VcfRecord& record);

  [[nodiscard]] const VcfLoadReport& report() const noexcept { return report_; }
  /// Haplotype count locked in by the first loaded record (0 before then).
  [[nodiscard]] std::size_t haplotypes() const noexcept { return haplotypes_; }
  [[nodiscard]] const std::string& contig() const noexcept { return contig_; }

 private:
  std::istream& in_;
  VcfLoadReport report_;
  std::string contig_;
  std::string line_;
  std::int64_t last_position_ = -1;
  std::size_t haplotypes_ = 0;
  bool done_ = false;
};

/// Loads the first contig's records (or all records if they share a contig).
/// Phased diploid GTs contribute two haplotypes per sample.
Dataset read_vcf(std::istream& in, VcfLoadReport* report = nullptr);
Dataset read_vcf_file(const std::string& path, VcfLoadReport* report = nullptr);

struct VcfWriteOptions {
  std::string contig = "1";
  /// Haplotypes are paired into phased diploid samples (hap 2i | hap 2i+1);
  /// with an odd haplotype count the last sample is haploid.
  bool pair_into_diploids = true;
};

/// Writes the dataset as VCF 4.2 (REF=A, ALT=T placeholder alleles; missing
/// calls become '.'). Round-trips through read_vcf.
void write_vcf(std::ostream& out, const Dataset& dataset,
               const VcfWriteOptions& options = {});
void write_vcf_file(const std::string& path, const Dataset& dataset,
                    const VcfWriteOptions& options = {});

}  // namespace omega::io
