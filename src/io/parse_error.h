#pragma once
// Structured parse failures for the text readers (ms / VCF / FASTA) plus
// non-throwing integer helpers. The readers historically leaked raw
// std::stoll / std::stoull exceptions (std::invalid_argument,
// std::out_of_range) with no hint of which file, line, or field was at
// fault; ParseError carries that context and still derives from
// std::runtime_error so existing catch sites keep working.

#include <charconv>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace omega::io {

class ParseError : public std::runtime_error {
 public:
  /// `format` is the reader name ("ms", "vcf", ...); `line` is 1-based
  /// (0 = unknown); `reason` describes the offending field or value.
  ParseError(const std::string& format, std::size_t line,
             const std::string& reason)
      : std::runtime_error(format +
                           (line > 0 ? " (line " + std::to_string(line) + ")"
                                     : std::string()) +
                           ": " + reason),
        format_(format),
        line_(line),
        reason_(reason) {}

  [[nodiscard]] const std::string& format() const noexcept { return format_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  std::string format_;
  std::size_t line_;
  std::string reason_;
};

/// Parses the whole of `text` as a decimal integer. Returns nullopt on
/// empty input, stray characters, or overflow — never throws, unlike
/// std::stoll. Leading '+' / '-' handled by from_chars ('-' only for the
/// signed overload).
inline std::optional<std::int64_t> try_parse_int64(std::string_view text) {
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

inline std::optional<std::uint64_t> try_parse_uint64(std::string_view text) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) return std::nullopt;
  return value;
}

/// Throwing variants for contexts where a bad value must abort the parse:
/// wraps try_parse_* and raises ParseError naming the field.
inline std::int64_t parse_int64(std::string_view text, const char* format,
                                std::size_t line, const char* field) {
  if (const auto value = try_parse_int64(text)) return *value;
  throw ParseError(format, line,
                   std::string(field) + ": invalid integer '" +
                       std::string(text) + "'");
}

inline std::uint64_t parse_uint64(std::string_view text, const char* format,
                                  std::size_t line, const char* field) {
  if (const auto value = try_parse_uint64(text)) return *value;
  throw ParseError(format, line,
                   std::string(field) + ": invalid non-negative integer '" +
                       std::string(text) + "'");
}

}  // namespace omega::io
