#include "io/ms_format.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.h"
#include "util/ios_guard.h"

namespace omega::io {
namespace {

std::string strip(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

/// Scans the stream replicate by replicate, handing each finished raw
/// replicate to `sink`; sink returning false stops the scan early. The single
/// home of the line-level ms grammar, shared by read_ms and
/// read_ms_replicate_raw.
void scan_ms(std::istream& in,
             const std::function<bool(MsRawReplicate&&)>& sink) {
  std::string line;
  std::size_t line_number = 0;     // 1-based, for ParseError context
  bool in_replicate = false;
  std::size_t expected_sites = 0;
  MsRawReplicate raw;

  auto flush = [&]() -> bool {
    if (!in_replicate) return true;
    in_replicate = false;
    const bool keep_going = sink(std::move(raw));
    raw = MsRawReplicate{};
    return keep_going;
  };

  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = strip(line);
    if (text == "//") {
      if (!flush()) return;
      in_replicate = true;
      raw.replicate_line = line_number;
      expected_sites = 0;
      continue;
    }
    if (!in_replicate) continue;  // header / seeds / blank prologue
    if (text.empty()) continue;
    if (text.rfind("segsites:", 0) == 0) {
      // Truncated ("segsites:"), garbage ("segsites: lots"), and
      // out-of-range values all surface as ParseError with the line number
      // instead of std::stoull's invalid_argument / out_of_range.
      expected_sites = static_cast<std::size_t>(
          parse_uint64(strip(text.substr(9)), "ms", line_number, "segsites"));
      continue;
    }
    if (text.rfind("positions:", 0) == 0) {
      std::istringstream fields(text.substr(10));
      double value = 0.0;
      while (fields >> value) raw.fractions.push_back(value);
      if (expected_sites != 0 && raw.fractions.size() != expected_sites) {
        throw ParseError("ms", line_number, "positions count != segsites");
      }
      continue;
    }
    // Haplotype row.
    raw.haplotypes.push_back(text);
  }
  flush();
}

Dataset finish_replicate(const MsRawReplicate& raw,
                         const MsReadOptions& options) {
  const std::size_t sites = raw.fractions.size();
  for (const auto& hap : raw.haplotypes) {
    if (hap.size() != sites) {
      throw ParseError("ms", raw.replicate_line,
                       "haplotype width " + std::to_string(hap.size()) +
                           " != segsites " + std::to_string(sites));
    }
  }
  std::vector<std::int64_t> positions =
      ms_positions_bp(raw.fractions, options, raw.replicate_line);
  std::vector<std::vector<std::uint8_t>> matrix(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    matrix[s].resize(raw.haplotypes.size());
    for (std::size_t h = 0; h < raw.haplotypes.size(); ++h) {
      const char c = raw.haplotypes[h][s];
      if (c != '0' && c != '1') {
        throw ParseError("ms", raw.replicate_line,
                         std::string("invalid allele character '") + c + "'");
      }
      matrix[s][h] = static_cast<std::uint8_t>(c - '0');
    }
  }
  const std::int64_t length =
      std::max<std::int64_t>(options.locus_length_bp,
                             positions.empty() ? 0 : positions.back());
  Dataset dataset(std::move(positions), std::move(matrix), length);
  if (options.drop_monomorphic) dataset.remove_monomorphic();
  return dataset;
}

}  // namespace

std::vector<std::int64_t> ms_positions_bp(const std::vector<double>& fractions,
                                          const MsReadOptions& options,
                                          std::size_t replicate_line) {
  std::vector<std::int64_t> positions(fractions.size());
  for (std::size_t s = 0; s < fractions.size(); ++s) {
    if (fractions[s] < 0.0 || fractions[s] > 1.0) {
      throw ParseError("ms", replicate_line, "position outside [0,1]");
    }
    positions[s] = static_cast<std::int64_t>(std::llround(
        fractions[s] * static_cast<double>(options.locus_length_bp)));
  }
  if (options.deduplicate_positions) {
    for (std::size_t s = 1; s < positions.size(); ++s) {
      if (positions[s] <= positions[s - 1]) positions[s] = positions[s - 1] + 1;
    }
  }
  return positions;
}

std::vector<Dataset> read_ms(std::istream& in, const MsReadOptions& options) {
  std::vector<Dataset> replicates;
  scan_ms(in, [&](MsRawReplicate&& raw) {
    replicates.push_back(finish_replicate(raw, options));
    return true;
  });
  return replicates;
}

std::vector<Dataset> read_ms_file(const std::string& path,
                                  const MsReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ms: cannot open " + path);
  return read_ms(in, options);
}

MsRawReplicate read_ms_replicate_raw(std::istream& in, std::size_t index) {
  MsRawReplicate result;
  bool found = false;
  std::size_t seen = 0;
  scan_ms(in, [&](MsRawReplicate&& raw) {
    if (seen++ == index) {
      result = std::move(raw);
      found = true;
      return false;  // stop scanning once the target replicate is complete
    }
    return true;
  });
  if (!found) {
    throw std::runtime_error("ms: replicate " + std::to_string(index) +
                             " not present (stream holds " +
                             std::to_string(seen) + ")");
  }
  return result;
}

void write_ms(std::ostream& out, const std::vector<Dataset>& replicates,
              const std::string& command_line) {
  // std::fixed/setprecision below must not leak into the caller's stream.
  const util::IosFormatGuard format_guard(out);
  const std::size_t samples = replicates.empty() ? 0 : replicates.front().num_samples();
  out << command_line << ' ' << samples << ' ' << replicates.size() << "\n";
  out << "0 0 0\n";
  for (const auto& dataset : replicates) {
    if (dataset.has_missing()) {
      throw std::runtime_error(
          "ms: the format cannot represent missing calls; filter or impute "
          "before writing");
    }
    out << "\n//\n";
    out << "segsites: " << dataset.num_sites() << "\n";
    out << "positions:";
    out << std::setprecision(6) << std::fixed;
    const double length = static_cast<double>(std::max<std::int64_t>(1, dataset.locus_length_bp()));
    for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
      out << ' ' << static_cast<double>(dataset.position(s)) / length;
    }
    out << "\n";
    for (std::size_t h = 0; h < dataset.num_samples(); ++h) {
      for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
        out << static_cast<char>('0' + dataset.allele(s, h));
      }
      out << "\n";
    }
  }
}

void write_ms_file(const std::string& path, const std::vector<Dataset>& replicates,
                   const std::string& command_line) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ms: cannot open for write " + path);
  write_ms(out, replicates, command_line);
}

}  // namespace omega::io
