#include "io/ms_format.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.h"

namespace omega::io {
namespace {

std::string strip(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = line.find_last_not_of(" \t\r\n");
  return line.substr(first, last - first + 1);
}

Dataset finish_replicate(const std::vector<double>& fractions,
                         const std::vector<std::string>& haplotypes,
                         const MsReadOptions& options,
                         std::size_t replicate_line) {
  const std::size_t sites = fractions.size();
  for (const auto& hap : haplotypes) {
    if (hap.size() != sites) {
      throw ParseError("ms", replicate_line,
                       "haplotype width " + std::to_string(hap.size()) +
                           " != segsites " + std::to_string(sites));
    }
  }
  std::vector<std::int64_t> positions(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    if (fractions[s] < 0.0 || fractions[s] > 1.0) {
      throw ParseError("ms", replicate_line, "position outside [0,1]");
    }
    positions[s] = static_cast<std::int64_t>(
        std::llround(fractions[s] * static_cast<double>(options.locus_length_bp)));
  }
  if (options.deduplicate_positions) {
    for (std::size_t s = 1; s < sites; ++s) {
      if (positions[s] <= positions[s - 1]) positions[s] = positions[s - 1] + 1;
    }
  }
  std::vector<std::vector<std::uint8_t>> matrix(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    matrix[s].resize(haplotypes.size());
    for (std::size_t h = 0; h < haplotypes.size(); ++h) {
      const char c = haplotypes[h][s];
      if (c != '0' && c != '1') {
        throw ParseError("ms", replicate_line,
                         std::string("invalid allele character '") + c + "'");
      }
      matrix[s][h] = static_cast<std::uint8_t>(c - '0');
    }
  }
  const std::int64_t length =
      std::max<std::int64_t>(options.locus_length_bp,
                             positions.empty() ? 0 : positions.back());
  Dataset dataset(std::move(positions), std::move(matrix), length);
  if (options.drop_monomorphic) dataset.remove_monomorphic();
  return dataset;
}

}  // namespace

std::vector<Dataset> read_ms(std::istream& in, const MsReadOptions& options) {
  std::vector<Dataset> replicates;
  std::string line;
  std::size_t line_number = 0;     // 1-based, for ParseError context
  std::size_t replicate_line = 0;  // line of the opening "//"
  bool in_replicate = false;
  std::size_t expected_sites = 0;
  std::vector<double> fractions;
  std::vector<std::string> haplotypes;

  auto flush = [&] {
    if (in_replicate) {
      replicates.push_back(
          finish_replicate(fractions, haplotypes, options, replicate_line));
      fractions.clear();
      haplotypes.clear();
      in_replicate = false;
    }
  };

  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = strip(line);
    if (text == "//") {
      flush();
      in_replicate = true;
      replicate_line = line_number;
      expected_sites = 0;
      continue;
    }
    if (!in_replicate) continue;  // header / seeds / blank prologue
    if (text.empty()) continue;
    if (text.rfind("segsites:", 0) == 0) {
      // Truncated ("segsites:"), garbage ("segsites: lots"), and
      // out-of-range values all surface as ParseError with the line number
      // instead of std::stoull's invalid_argument / out_of_range.
      expected_sites = static_cast<std::size_t>(
          parse_uint64(strip(text.substr(9)), "ms", line_number, "segsites"));
      continue;
    }
    if (text.rfind("positions:", 0) == 0) {
      std::istringstream fields(text.substr(10));
      double value = 0.0;
      while (fields >> value) fractions.push_back(value);
      if (expected_sites != 0 && fractions.size() != expected_sites) {
        throw ParseError("ms", line_number, "positions count != segsites");
      }
      continue;
    }
    // Haplotype row.
    haplotypes.push_back(text);
  }
  flush();
  return replicates;
}

std::vector<Dataset> read_ms_file(const std::string& path,
                                  const MsReadOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ms: cannot open " + path);
  return read_ms(in, options);
}

void write_ms(std::ostream& out, const std::vector<Dataset>& replicates,
              const std::string& command_line) {
  const std::size_t samples = replicates.empty() ? 0 : replicates.front().num_samples();
  out << command_line << ' ' << samples << ' ' << replicates.size() << "\n";
  out << "0 0 0\n";
  for (const auto& dataset : replicates) {
    if (dataset.has_missing()) {
      throw std::runtime_error(
          "ms: the format cannot represent missing calls; filter or impute "
          "before writing");
    }
    out << "\n//\n";
    out << "segsites: " << dataset.num_sites() << "\n";
    out << "positions:";
    out << std::setprecision(6) << std::fixed;
    const double length = static_cast<double>(std::max<std::int64_t>(1, dataset.locus_length_bp()));
    for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
      out << ' ' << static_cast<double>(dataset.position(s)) / length;
    }
    out << "\n";
    for (std::size_t h = 0; h < dataset.num_samples(); ++h) {
      for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
        out << static_cast<char>('0' + dataset.allele(s, h));
      }
      out << "\n";
    }
  }
}

void write_ms_file(const std::string& path, const std::vector<Dataset>& replicates,
                   const std::string& command_line) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ms: cannot open for write " + path);
  write_ms(out, replicates, command_line);
}

}  // namespace omega::io
