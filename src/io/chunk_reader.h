#pragma once
// Streaming chunk readers: yield a whole-genome alignment as a sequence of
// bounded, overlapping site-major Dataset chunks so the scanner never holds
// more than ~two chunks of genotype data resident (docs/STREAMING.md).
//
// Contract shared by every reader:
//   * index() is available from construction: the bp position of every site
//     that survives the reader's monomorphic filter, in global "filtered
//     site" coordinates. The stream planner builds the omega grid from this
//     index, so a streamed scan sees exactly the coordinate space an
//     in-memory load would.
//   * plan() hands the reader the half-open global site ranges it will be
//     asked for, in order. Ranges must advance monotonically (both begins
//     and ends non-decreasing) but may overlap — consecutive scan chunks
//     share the window-overlap region.
//   * next() returns the planned chunks one by one. Chunk Datasets carry
//     global bp positions and the full locus length; `first_site` maps chunk-
//     local site index 0 back to the global index.
//
// The index costs 8 bytes per segregating site; genotype data is the part
// that stays bounded. ms input is the one format that cannot stream below
// one replicate of raw text, because its rows are haplotype-major — see
// MsChunkReader.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/dataset.h"
#include "io/ms_format.h"
#include "io/vcf_lite.h"

namespace omega::io {

/// Global view of the streamed alignment: everything the grid/window planner
/// needs, with no genotype data attached.
struct StreamIndex {
  /// bp positions of the sites the reader will yield (post monomorphic
  /// filter), strictly increasing.
  std::vector<std::int64_t> positions_bp;
  std::size_t num_samples = 0;
  std::int64_t locus_length_bp = 0;
  /// Any yielded site carries a missing call (pairwise-complete r2 applies).
  bool has_missing = false;

  [[nodiscard]] std::size_t num_sites() const noexcept {
    return positions_bp.size();
  }
};

/// Half-open range of global (filtered) site indices.
struct SiteRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  friend bool operator==(const SiteRange&, const SiteRange&) = default;
};

/// One materialized chunk: `dataset` holds sites [first_site,
/// first_site + dataset.num_sites()) of the global filtered alignment.
struct DatasetChunk {
  Dataset dataset;
  std::size_t first_site = 0;
  /// Ordinal of this chunk in the plan.
  std::size_t index = 0;
};

class ChunkReader {
 public:
  virtual ~ChunkReader() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual const StreamIndex& index() const noexcept = 0;

  /// Declares the ranges next() will yield. Throws std::invalid_argument on
  /// out-of-bounds, empty, or non-monotonic ranges. Calling plan() again
  /// rewinds the reader to the start of the new plan.
  virtual void plan(std::vector<SiteRange> ranges) = 0;

  /// Materializes the next planned chunk; std::nullopt once the plan is
  /// exhausted (or if plan() was never called).
  virtual std::optional<DatasetChunk> next() = 0;

 protected:
  /// Shared plan() bookkeeping for implementations: validates `ranges`
  /// against `num_sites` and resets the cursor.
  void adopt_plan(std::vector<SiteRange> ranges, std::size_t num_sites);

  std::vector<SiteRange> ranges_;
  std::size_t cursor_ = 0;
};

/// Adapter that chunks an already-loaded Dataset; the reference implementation
/// every streamed reader is equivalence-tested against, and the fallback used
/// when the input format has no streaming parser.
class DatasetChunkReader final : public ChunkReader {
 public:
  /// `dataset` must outlive the reader and already be filtered (the loaders'
  /// normal monomorphic removal).
  explicit DatasetChunkReader(const Dataset& dataset);

  [[nodiscard]] std::string name() const override { return "dataset"; }
  [[nodiscard]] const StreamIndex& index() const noexcept override {
    return index_;
  }
  void plan(std::vector<SiteRange> ranges) override;
  std::optional<DatasetChunk> next() override;

 private:
  const Dataset& dataset_;
  StreamIndex index_;
};

/// Streams a VCF file in two passes. Construction runs pass 1: parse every
/// record, apply the same keep rule as Dataset::remove_monomorphic
/// (0 < derived < valid calls), and record only the kept positions — genotype
/// bytes are discarded. plan() reopens the file; next() re-parses forward,
/// keeping at most one chunk plus the overlap carried into the next one.
class VcfChunkReader final : public ChunkReader {
 public:
  explicit VcfChunkReader(std::string path);

  [[nodiscard]] std::string name() const override { return "vcf-stream"; }
  [[nodiscard]] const StreamIndex& index() const noexcept override {
    return index_;
  }
  void plan(std::vector<SiteRange> ranges) override;
  std::optional<DatasetChunk> next() override;

  /// Pass-1 record accounting (same shape read_vcf reports).
  [[nodiscard]] const VcfLoadReport& load_report() const noexcept {
    return load_report_;
  }

 private:
  /// Parses forward until `parsed_kept_` > global site index `target` (or
  /// input ends), appending kept sites' alleles to the buffer.
  void fill_to(std::size_t target);

  std::string path_;
  StreamIndex index_;
  VcfLoadReport load_report_;

  // Pass-2 state.
  std::unique_ptr<std::ifstream> file_;
  std::unique_ptr<VcfStreamParser> parser_;
  std::deque<std::vector<std::uint8_t>> buffer_;
  std::size_t buffer_first_ = 0;  // global index of buffer_.front()
  std::size_t parsed_kept_ = 0;   // kept sites parsed so far in pass 2
};

/// Streams one ms replicate. ms rows are haplotype-major — every line spans
/// all sites — so the replicate's raw '0'/'1' text (1 byte per allele) stays
/// resident and next() column-slices it into site-major chunks. The memory
/// bound is therefore "one raw replicate + one chunk", not "one chunk"; still
/// far below the in-memory Dataset (1 byte/allele vs. a vector per site plus
/// the scanner's full-alignment SnpMatrix).
class MsChunkReader final : public ChunkReader {
 public:
  /// Loads replicate `replicate` (0-based) from `path`. Throws ParseError on
  /// malformed input, std::runtime_error when the replicate is absent.
  explicit MsChunkReader(const std::string& path, MsReadOptions options = {},
                         std::size_t replicate = 0);

  [[nodiscard]] std::string name() const override { return "ms-stream"; }
  [[nodiscard]] const StreamIndex& index() const noexcept override {
    return index_;
  }
  void plan(std::vector<SiteRange> ranges) override;
  std::optional<DatasetChunk> next() override;

 private:
  StreamIndex index_;
  MsRawReplicate raw_;
  /// Raw column index of each kept (filtered) site.
  std::vector<std::size_t> site_columns_;
};

}  // namespace omega::io
