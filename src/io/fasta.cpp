#include "io/fasta.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <istream>
#include <stdexcept>

namespace omega::io {

std::vector<FastaRecord> read_fasta(std::istream& in, bool require_alignment) {
  std::vector<FastaRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      records.push_back({line.substr(1), {}});
      continue;
    }
    if (records.empty()) {
      throw std::runtime_error("fasta: sequence data before first header");
    }
    records.back().sequence += line;
  }
  if (require_alignment) {
    if (records.empty()) throw std::runtime_error("fasta: empty input");
    const std::size_t width = records.front().sequence.size();
    for (const auto& record : records) {
      if (record.sequence.size() != width) {
        throw std::runtime_error("fasta: ragged alignment at " + record.name);
      }
    }
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         bool require_alignment) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fasta: cannot open " + path);
  return read_fasta(in, require_alignment);
}

Dataset fasta_to_dataset(const std::vector<FastaRecord>& records,
                         const FastaOptions& options) {
  if (records.empty()) throw std::invalid_argument("fasta: no records");
  const std::size_t samples = records.size();
  const std::size_t width = records.front().sequence.size();

  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> sites;

  for (std::size_t col = 0; col < width; ++col) {
    std::array<std::size_t, 4> counts{};  // A C G T
    auto code_of = [](char c) -> int {
      switch (std::toupper(static_cast<unsigned char>(c))) {
        case 'A': return 0;
        case 'C': return 1;
        case 'G': return 2;
        case 'T': return 3;
        default: return -1;  // gap / ambiguity
      }
    };
    for (const auto& record : records) {
      const int code = code_of(record.sequence[col]);
      if (code >= 0) ++counts[static_cast<std::size_t>(code)];
    }
    const std::size_t distinct =
        static_cast<std::size_t>(std::count_if(counts.begin(), counts.end(),
                                               [](std::size_t c) { return c > 0; }));
    if (distinct != 2) continue;  // monomorphic or >biallelic: not a usable SNP

    // Identify major and minor alleles.
    int major = 0;
    for (int code = 1; code < 4; ++code) {
      if (counts[static_cast<std::size_t>(code)] >
          counts[static_cast<std::size_t>(major)]) {
        major = code;
      }
    }
    std::vector<std::uint8_t> alleles(samples);
    for (std::size_t row = 0; row < samples; ++row) {
      const int code = code_of(records[row].sequence[col]);
      if (code < 0) {
        // Gap/ambiguity: impute as major allele (OmegaPlus binary-mode
        // policy) or keep as a missing call.
        alleles[row] = options.impute_missing_as_major ? 0 : Dataset::kMissing;
      } else {
        alleles[row] = static_cast<std::uint8_t>(code != major);
      }
    }
    positions.push_back(static_cast<std::int64_t>(col) + 1);
    sites.push_back(std::move(alleles));
  }
  return Dataset(std::move(positions), std::move(sites),
                 static_cast<std::int64_t>(width));
}

}  // namespace omega::io
