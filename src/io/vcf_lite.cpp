#include "io/vcf_lite.h"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "io/parse_error.h"

namespace omega::io {
namespace {

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, '\t')) fields.push_back(field);
  return fields;
}

/// Parses one GT field ("0", "1", "0|1", "./1") into haplotype alleles;
/// '.' becomes a missing call (pairwise-complete r2 downstream). Returns
/// false for unparseable fields (multi-digit allele indices etc.).
bool parse_gt(const std::string& gt, std::vector<std::uint8_t>& out) {
  out.clear();
  for (std::size_t i = 0; i < gt.size(); ++i) {
    const char c = gt[i];
    if (c == '0' || c == '1') {
      out.push_back(static_cast<std::uint8_t>(c - '0'));
    } else if (c == '.') {
      out.push_back(Dataset::kMissing);
    } else if (c == '|' || c == '/') {
      continue;
    } else {
      return false;  // multi-digit allele index, malformed field
    }
  }
  return !out.empty();
}

}  // namespace

bool VcfStreamParser::next(VcfRecord& record) {
  if (done_) return false;
  while (std::getline(in_, line_)) {
    // CRLF input: getline keeps the \r, which would otherwise survive into
    // the last GT field and make parse_gt reject every record.
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    if (line_.empty() || line_[0] == '#') continue;
    auto fields = split_tabs(line_);
    if (fields.size() < 10) {
      // Short data lines are records too: count them as total + skipped so
      // records_total always equals loaded + skipped.
      ++report_.records_total;
      ++report_.records_skipped;
      continue;
    }
    if (contig_.empty()) {
      contig_ = fields[0];
    } else if (fields[0] != contig_) {
      done_ = true;  // only the first contig; the foreign record is not counted
      return false;
    }
    ++report_.records_total;

    // POS must be a plain non-negative integer; garbage or out-of-range
    // values (an int64 overflow used to escape as std::out_of_range from
    // std::stoll) make this a skipped record, not a crashed load.
    const auto pos = try_parse_int64(fields[1]);
    if (!pos || *pos < 0) {
      ++report_.records_skipped;
      continue;
    }
    const std::string& ref = fields[3];
    const std::string& alt = fields[4];
    if (ref.size() != 1 || alt.size() != 1 || alt == "." || alt[0] == '<') {
      ++report_.records_skipped;
      continue;
    }
    // FORMAT must start with GT.
    if (fields[8].rfind("GT", 0) != 0) {
      ++report_.records_skipped;
      continue;
    }
    record.alleles.clear();
    std::vector<std::uint8_t> gt_alleles;
    bool bad = false;
    for (std::size_t f = 9; f < fields.size(); ++f) {
      const auto colon = fields[f].find(':');
      const std::string gt =
          colon == std::string::npos ? fields[f] : fields[f].substr(0, colon);
      if (!parse_gt(gt, gt_alleles)) {
        bad = true;
        break;
      }
      record.alleles.insert(record.alleles.end(), gt_alleles.begin(),
                            gt_alleles.end());
    }
    if (bad) {
      ++report_.records_skipped;
      continue;
    }
    if (haplotypes_ == 0) {
      haplotypes_ = record.alleles.size();
    } else if (record.alleles.size() != haplotypes_) {
      ++report_.records_skipped;
      continue;  // inconsistent ploidy: skip rather than abort
    }
    if (*pos <= last_position_) {
      ++report_.records_skipped;
      continue;  // unsorted/duplicate positions
    }
    last_position_ = *pos;
    record.position_bp = *pos;
    return true;
  }
  done_ = true;
  return false;
}

Dataset read_vcf(std::istream& in, VcfLoadReport* report) {
  VcfStreamParser parser(in);
  std::vector<std::int64_t> positions;
  std::vector<std::vector<std::uint8_t>> sites;
  VcfRecord record;
  while (parser.next(record)) {
    positions.push_back(record.position_bp);
    sites.push_back(std::move(record.alleles));
  }
  if (report != nullptr) *report = parser.report();
  const std::int64_t length = positions.empty() ? 0 : positions.back();
  Dataset dataset(std::move(positions), std::move(sites), length);
  dataset.remove_monomorphic();
  return dataset;
}

Dataset read_vcf_file(const std::string& path, VcfLoadReport* report) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("vcf: cannot open " + path);
  return read_vcf(in, report);
}

namespace {

char gt_char(std::uint8_t allele) {
  return allele == Dataset::kMissing ? '.'
                                     : static_cast<char>('0' + allele);
}

}  // namespace

void write_vcf(std::ostream& out, const Dataset& dataset,
               const VcfWriteOptions& options) {
  const std::size_t haplotypes = dataset.num_samples();
  const std::size_t diploids =
      options.pair_into_diploids ? haplotypes / 2 : 0;
  const bool trailing_haploid =
      options.pair_into_diploids && (haplotypes % 2) == 1;

  out << "##fileformat=VCFv4.2\n";
  out << "##source=libomega\n";
  out << "##contig=<ID=" << options.contig << ">\n";
  out << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT";
  if (options.pair_into_diploids) {
    for (std::size_t s = 0; s < diploids + (trailing_haploid ? 1 : 0); ++s) {
      out << "\tS" << s;
    }
  } else {
    for (std::size_t h = 0; h < haplotypes; ++h) out << "\tH" << h;
  }
  out << "\n";

  for (std::size_t site = 0; site < dataset.num_sites(); ++site) {
    out << options.contig << '\t' << dataset.position(site)
        << "\t.\tA\tT\t.\tPASS\t.\tGT";
    if (options.pair_into_diploids) {
      for (std::size_t s = 0; s < diploids; ++s) {
        out << '\t' << gt_char(dataset.allele(site, 2 * s)) << '|'
            << gt_char(dataset.allele(site, 2 * s + 1));
      }
      if (trailing_haploid) {
        out << '\t' << gt_char(dataset.allele(site, haplotypes - 1));
      }
    } else {
      for (std::size_t h = 0; h < haplotypes; ++h) {
        out << '\t' << gt_char(dataset.allele(site, h));
      }
    }
    out << "\n";
  }
}

void write_vcf_file(const std::string& path, const Dataset& dataset,
                    const VcfWriteOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("vcf: cannot open for write " + path);
  write_vcf(out, dataset, options);
}

}  // namespace omega::io
