#include "io/fingerprint.h"

#include <filesystem>
#include <sstream>

namespace omega::io {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv1a_append(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::string StreamFingerprint::describe() const {
  std::ostringstream out;
  out << (source.empty() ? std::string("<in-memory>") : source) << " ("
      << num_sites << " sites, " << num_samples << " samples, "
      << locus_length_bp << " bp";
  if (source_bytes > 0) out << ", " << source_bytes << " bytes";
  out << ", positions_hash=0x" << std::hex << positions_hash << std::dec
      << ")";
  return out.str();
}

StreamFingerprint fingerprint_stream(const StreamIndex& index,
                                     const std::string& source_path) {
  StreamFingerprint fp;
  fp.source = source_path;
  if (!source_path.empty()) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(source_path, ec);
    if (!ec) fp.source_bytes = static_cast<std::uint64_t>(size);
  }
  fp.num_sites = index.num_sites();
  fp.num_samples = index.num_samples;
  fp.locus_length_bp = index.locus_length_bp;
  fp.has_missing = index.has_missing;
  std::uint64_t hash = kFnvOffset;
  for (const std::int64_t bp : index.positions_bp) {
    fnv1a_append(hash, static_cast<std::uint64_t>(bp));
  }
  fp.positions_hash = hash;
  return fp;
}

}  // namespace omega::io
