#include "io/dataset.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace omega::io {

Dataset::Dataset(std::vector<std::int64_t> positions_bp,
                 std::vector<std::vector<std::uint8_t>> site_alleles,
                 std::int64_t locus_length_bp)
    : positions_(std::move(positions_bp)),
      sites_(std::move(site_alleles)),
      locus_length_bp_(locus_length_bp) {
  validate();
}

std::size_t Dataset::derived_count(std::size_t site) const {
  const auto& row = sites_.at(site);
  return static_cast<std::size_t>(std::count(row.begin(), row.end(), 1));
}

std::size_t Dataset::valid_count(std::size_t site) const {
  const auto& row = sites_.at(site);
  return row.size() -
         static_cast<std::size_t>(std::count(row.begin(), row.end(), kMissing));
}

bool Dataset::has_missing() const {
  for (const auto& row : sites_) {
    if (std::count(row.begin(), row.end(), kMissing) > 0) return true;
  }
  return false;
}

std::size_t Dataset::remove_monomorphic() {
  std::size_t removed = 0;
  std::size_t write = 0;
  for (std::size_t read = 0; read < sites_.size(); ++read) {
    const std::size_t derived = derived_count(read);
    if (derived == 0 || derived == valid_count(read)) {
      ++removed;
      continue;
    }
    if (write != read) {
      sites_[write] = std::move(sites_[read]);
      positions_[write] = positions_[read];
    }
    ++write;
  }
  sites_.resize(write);
  positions_.resize(write);
  return removed;
}

std::size_t Dataset::filter_minor_allele(double min_frequency) {
  if (min_frequency < 0.0 || min_frequency > 0.5) {
    throw std::invalid_argument("filter_minor_allele: frequency outside [0, 0.5]");
  }
  std::size_t removed = 0;
  std::size_t write = 0;
  for (std::size_t read = 0; read < sites_.size(); ++read) {
    const double valid = static_cast<double>(valid_count(read));
    const double derived = static_cast<double>(derived_count(read));
    const double maf =
        valid > 0.0 ? std::min(derived, valid - derived) / valid : 0.0;
    if (maf < min_frequency) {
      ++removed;
      continue;
    }
    if (write != read) {
      sites_[write] = std::move(sites_[read]);
      positions_[write] = positions_[read];
    }
    ++write;
  }
  sites_.resize(write);
  positions_.resize(write);
  return removed;
}

Dataset Dataset::slice_bp(std::int64_t from_bp, std::int64_t to_bp) const {
  const auto lo = std::lower_bound(positions_.begin(), positions_.end(), from_bp);
  const auto hi = std::upper_bound(positions_.begin(), positions_.end(), to_bp);
  const auto lo_i = static_cast<std::size_t>(lo - positions_.begin());
  const auto hi_i = static_cast<std::size_t>(hi - positions_.begin());
  Dataset out;
  out.positions_.assign(positions_.begin() + lo_i, positions_.begin() + hi_i);
  out.sites_.assign(sites_.begin() + lo_i, sites_.begin() + hi_i);
  out.locus_length_bp_ = locus_length_bp_;
  return out;
}

void Dataset::validate() const {
  if (positions_.size() != sites_.size()) {
    throw std::invalid_argument("dataset: positions/sites size mismatch");
  }
  for (std::size_t i = 1; i < positions_.size(); ++i) {
    if (positions_[i] <= positions_[i - 1]) {
      throw std::invalid_argument("dataset: positions must strictly increase");
    }
  }
  const std::size_t samples = num_samples();
  for (const auto& row : sites_) {
    if (row.size() != samples) {
      throw std::invalid_argument("dataset: ragged site matrix");
    }
    for (const auto allele : row) {
      if (allele > kMissing) {
        throw std::invalid_argument("dataset: invalid allele code");
      }
    }
  }
  if (!positions_.empty() &&
      (positions_.front() < 0 || positions_.back() > locus_length_bp_)) {
    throw std::invalid_argument("dataset: position outside locus");
  }
}

std::string Dataset::shape_string() const {
  std::ostringstream out;
  out << num_samples() << " samples x " << num_sites() << " SNPs over "
      << locus_length_bp_ << " bp";
  return out.str();
}

}  // namespace omega::io
