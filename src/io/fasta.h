#pragma once
// Minimal FASTA alignment importer. OmegaPlus accepts FASTA alignments and
// reduces them to binary SNPs against a reference sequence; we reproduce that
// reduction: a column is a usable SNP when exactly two distinct nucleotides
// occur (ignoring gaps/N, which are treated as the majority allele, matching
// OmegaPlus's imputation of missing data in binary mode).

#include <iosfwd>
#include <string>
#include <vector>

#include "io/dataset.h"

namespace omega::io {

struct FastaRecord {
  std::string name;
  std::string sequence;
};

/// Parses all records. Throws std::runtime_error on ragged alignments or
/// empty input when `require_alignment` is set.
std::vector<FastaRecord> read_fasta(std::istream& in, bool require_alignment = true);
std::vector<FastaRecord> read_fasta_file(const std::string& path,
                                         bool require_alignment = true);

struct FastaOptions {
  /// Gaps/ambiguity codes: impute as the column's major allele (OmegaPlus's
  /// binary-mode default, and ours) or keep as missing calls so r2 uses
  /// pairwise-complete samples.
  bool impute_missing_as_major = true;
};

/// Converts an aligned set of sequences to a binary SNP dataset.
/// Column i maps to position i+1 bp; the minor allele is coded as derived (1).
Dataset fasta_to_dataset(const std::vector<FastaRecord>& records,
                         const FastaOptions& options = {});

}  // namespace omega::io
