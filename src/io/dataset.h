#pragma once
// In-memory representation of a binary SNP alignment: the unit of input for
// the whole library. Sites are biallelic (0 = ancestral, 1 = derived,
// kMissing = unknown call), stored site-major because every downstream
// consumer (LD, omega) iterates over SNP pairs.
//
// Missing data follows OmegaPlus's handling: r2 between two SNPs is computed
// over the pairwise-complete samples (see ld::SnpMatrix), so a missing call
// removes that sample from every pair the site participates in.

#include <cstdint>
#include <string>
#include <vector>

namespace omega::io {

class Dataset {
 public:
  /// Allele code for a missing/unknown call.
  static constexpr std::uint8_t kMissing = 2;

  Dataset() = default;

  /// `positions_bp` must be strictly increasing; each row of `site_alleles`
  /// holds one site's alleles across all samples (values 0/1/kMissing).
  Dataset(std::vector<std::int64_t> positions_bp,
          std::vector<std::vector<std::uint8_t>> site_alleles,
          std::int64_t locus_length_bp);

  [[nodiscard]] std::size_t num_sites() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t num_samples() const noexcept {
    return sites_.empty() ? 0 : sites_.front().size();
  }
  [[nodiscard]] std::int64_t locus_length_bp() const noexcept { return locus_length_bp_; }

  [[nodiscard]] const std::vector<std::int64_t>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::int64_t position(std::size_t site) const {
    return positions_.at(site);
  }
  /// Alleles of one site across samples.
  [[nodiscard]] const std::vector<std::uint8_t>& site(std::size_t index) const {
    return sites_.at(index);
  }

  [[nodiscard]] std::uint8_t allele(std::size_t site, std::size_t sample) const {
    return sites_.at(site).at(sample);
  }

  /// Count of derived alleles at a site (missing calls excluded).
  [[nodiscard]] std::size_t derived_count(std::size_t site) const;

  /// Count of non-missing calls at a site.
  [[nodiscard]] std::size_t valid_count(std::size_t site) const;

  /// True if any site has a missing call.
  [[nodiscard]] bool has_missing() const;

  /// Drops monomorphic sites (all-0 or all-1 across samples); OmegaPlus does
  /// the same during parsing since they carry no LD information.
  /// Returns the number of sites removed.
  std::size_t remove_monomorphic();

  /// Drops sites whose minor-allele frequency (over valid calls) is below
  /// `min_frequency` — the common pre-filter for LD analyses (rare variants
  /// carry noisy r2). Returns the number of sites removed.
  std::size_t filter_minor_allele(double min_frequency);

  /// Restrict to the subrange of sites with positions in [from_bp, to_bp].
  [[nodiscard]] Dataset slice_bp(std::int64_t from_bp, std::int64_t to_bp) const;

  /// Validates the invariants (sorted positions, rectangular matrix, binary
  /// alleles); throws std::invalid_argument on violation.
  void validate() const;

  /// Human-readable shape summary for logs.
  [[nodiscard]] std::string shape_string() const;

 private:
  std::vector<std::int64_t> positions_;
  std::vector<std::vector<std::uint8_t>> sites_;
  std::int64_t locus_length_bp_ = 0;
};

}  // namespace omega::io
