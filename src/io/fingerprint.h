#pragma once
// Dataset fingerprinting for checkpoint/resume. A StreamFingerprint captures
// enough of a streamed alignment's identity — source path, on-disk size,
// site/sample counts, and a hash over every kept site's bp coordinate — that
// resuming against a different (or modified) input is detected up front
// instead of silently producing scores for the wrong genome.
//
// The positions hash covers exactly the post-filter coordinate space the
// grid is built from, so any edit that survives the monomorphic filter
// changes the fingerprint even when the file size happens to match.

#include <cstdint>
#include <string>

#include "io/chunk_reader.h"

namespace omega::io {

struct StreamFingerprint {
  /// CLI-supplied source path ("" for in-memory datasets, e.g. simulations).
  std::string source;
  /// Size of the source file in bytes; 0 when `source` is empty or the file
  /// is not stat-able (the remaining fields still guard identity).
  std::uint64_t source_bytes = 0;
  std::uint64_t num_sites = 0;
  std::uint64_t num_samples = 0;
  std::int64_t locus_length_bp = 0;
  /// FNV-1a over the little-endian bytes of every kept site's bp position.
  std::uint64_t positions_hash = 0;
  bool has_missing = false;

  friend bool operator==(const StreamFingerprint&,
                         const StreamFingerprint&) = default;

  /// One-line human-readable rendering for mismatch diagnostics.
  [[nodiscard]] std::string describe() const;
};

/// Fingerprints the alignment a ChunkReader will yield. `source_path` is
/// recorded verbatim and stat-ed for the byte size; pass "" when the data
/// did not come from a file.
[[nodiscard]] StreamFingerprint fingerprint_stream(
    const StreamIndex& index, const std::string& source_path = "");

}  // namespace omega::io
