#include "sweep/detector.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/hetero_scheduler.h"
#include "core/metrics_json.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gemm_ld_kernel.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/hetero_profile.h"
#include "par/thread_pool.h"

namespace omega::sweep {

std::string DetectionReport::metrics_json(const std::string& run_name) const {
  return core::metrics::scan_metrics(run_name, profile).dump();
}

void DetectionReport::write_metrics_json(const std::string& path,
                                         const std::string& run_name) const {
  core::metrics::write_json_file(
      path, core::metrics::scan_metrics(run_name, profile));
}

std::vector<Candidate> DetectionReport::above(double threshold) const {
  std::vector<Candidate> out;
  std::copy_if(candidates.begin(), candidates.end(), std::back_inserter(out),
               [&](const Candidate& c) { return c.omega >= threshold; });
  return out;
}

namespace {

core::ScannerOptions base_scanner_options(const DetectorOptions& options) {
  core::ScannerOptions scanner_options;
  scanner_options.config = options.config;
  scanner_options.ld = options.ld;
  scanner_options.recovery = options.recovery;
  scanner_options.cancel = options.cancel;
  scanner_options.deadline_seconds = options.deadline_seconds;
  scanner_options.deadline_clock = options.deadline_clock;
  return scanner_options;
}

core::HeteroConfig make_hetero_config(const DetectorOptions& options,
                                      par::ThreadPool& gpu_pool) {
  hw::HeteroProfileOptions profile_options;
  profile_options.split = core::HeteroSplit::parse(options.hetero_split);
  profile_options.fault_plan = options.fault_plan;
  profile_options.cancel = options.cancel;
  return hw::default_hetero_config(profile_options, gpu_pool);
}

}  // namespace

DetectionReport detect_sweeps(const io::Dataset& dataset,
                              const DetectorOptions& options,
                              std::size_t max_candidates) {
  core::ScannerOptions scanner_options = base_scanner_options(options);

  DetectionReport report;
  core::ScanResult scan_result;

  switch (options.backend) {
    case Backend::Cpu: {
      report.backend_name = "cpu";
      scan_result = core::scan(dataset, scanner_options);
      break;
    }
    case Backend::CpuThreaded: {
      report.backend_name = "cpu-mt";
      scanner_options.threads = options.threads;
      scan_result = core::scan(dataset, scanner_options);
      break;
    }
    case Backend::GpuSim: {
      // Complete GPU-accelerated OmegaPlus: GEMM LD kernel + omega kernels
      // on the simulated device (one shared pool; single scan worker).
      static par::ThreadPool pool;  // sized to hardware concurrency
      const auto spec = hw::tesla_k80();
      report.backend_name = "gpu-sim:" + spec.name;
      scanner_options.ld_factory = [&](const ld::SnpMatrix& snps) {
        return std::make_unique<hw::gpu::GpuLdEngine>(snps, pool, spec);
      };
      scan_result = core::scan(dataset, scanner_options, [&] {
        hw::gpu::GpuBackendOptions backend_options;
        backend_options.fault_plan = options.fault_plan;
        backend_options.cancel = options.cancel;
        return std::make_unique<hw::gpu::GpuOmegaBackend>(spec, pool,
                                                          backend_options);
      });
      break;
    }
    case Backend::FpgaSim: {
      const auto spec = hw::alveo_u200();
      report.backend_name = "fpga-sim:" + spec.name;
      scan_result = core::scan(dataset, scanner_options, [&] {
        hw::fpga::FpgaBackendOptions backend_options;
        backend_options.fault_plan = options.fault_plan;
        backend_options.cancel = options.cancel;
        return std::make_unique<hw::fpga::FpgaOmegaBackend>(spec,
                                                            backend_options);
      });
      break;
    }
    case Backend::Hetero: {
      // Heterogeneous co-scheduler: CPU span workers + GPU-sim + FPGA-sim on
      // one scan, split by modeled throughput (or the fixed hetero_split).
      static par::ThreadPool pool;  // backs the GPU backend instances
      report.backend_name = "hetero";
      const core::HeteroConfig hetero_config =
          make_hetero_config(options, pool);
      scanner_options.hetero = &hetero_config;
      scanner_options.threads = options.threads;
      scan_result = core::scan(dataset, scanner_options);
      break;
    }
  }

  report.profile = scan_result.profile;
  report.partial = scan_result.profile.runtime.partial;
  for (const auto& score : scan_result.top(max_candidates)) {
    if (!score.valid) continue;
    Candidate candidate;
    candidate.position_bp = score.position_bp;
    candidate.omega = score.max_omega;
    candidate.window_start_bp = dataset.position(score.best_a);
    candidate.window_end_bp = dataset.position(score.best_b);
    report.candidates.push_back(candidate);
  }
  return report;
}

DetectionReport detect_sweeps_stream(io::ChunkReader& reader,
                                     const DetectorOptions& options,
                                     const core::StreamScanOptions& stream_options,
                                     std::size_t max_candidates) {
  core::ScannerOptions scanner_options = base_scanner_options(options);

  DetectionReport report;
  core::ScanResult scan_result;

  switch (options.backend) {
    case Backend::Cpu: {
      report.backend_name = "cpu";
      scan_result = core::stream_scan(reader, scanner_options, stream_options);
      break;
    }
    case Backend::CpuThreaded: {
      report.backend_name = "cpu-mt";
      scanner_options.threads = options.threads;
      scan_result = core::stream_scan(reader, scanner_options, stream_options);
      break;
    }
    case Backend::GpuSim: {
      static par::ThreadPool pool;  // sized to hardware concurrency
      const auto spec = hw::tesla_k80();
      report.backend_name = "gpu-sim:" + spec.name;
      scanner_options.ld_factory = [&](const ld::SnpMatrix& snps) {
        return std::make_unique<hw::gpu::GpuLdEngine>(snps, pool, spec);
      };
      scan_result =
          core::stream_scan(reader, scanner_options, stream_options, [&] {
            hw::gpu::GpuBackendOptions backend_options;
            backend_options.fault_plan = options.fault_plan;
            backend_options.cancel = options.cancel;
            return std::make_unique<hw::gpu::GpuOmegaBackend>(spec, pool,
                                                              backend_options);
          });
      break;
    }
    case Backend::FpgaSim: {
      const auto spec = hw::alveo_u200();
      report.backend_name = "fpga-sim:" + spec.name;
      scan_result =
          core::stream_scan(reader, scanner_options, stream_options, [&] {
            hw::fpga::FpgaBackendOptions backend_options;
            backend_options.fault_plan = options.fault_plan;
            backend_options.cancel = options.cancel;
            return std::make_unique<hw::fpga::FpgaOmegaBackend>(
                spec, backend_options);
          });
      break;
    }
    case Backend::Hetero: {
      static par::ThreadPool pool;  // backs the GPU backend instances
      report.backend_name = "hetero";
      const core::HeteroConfig hetero_config =
          make_hetero_config(options, pool);
      scanner_options.hetero = &hetero_config;
      scanner_options.threads = options.threads;
      scan_result = core::stream_scan(reader, scanner_options, stream_options);
      break;
    }
  }

  const auto& positions = reader.index().positions_bp;
  report.profile = scan_result.profile;
  report.partial = scan_result.profile.runtime.partial;
  for (const auto& score : scan_result.top(max_candidates)) {
    if (!score.valid) continue;
    Candidate candidate;
    candidate.position_bp = score.position_bp;
    candidate.omega = score.max_omega;
    candidate.window_start_bp =
        positions.at(score.best_a);
    candidate.window_end_bp = positions.at(score.best_b);
    report.candidates.push_back(candidate);
  }
  return report;
}

}  // namespace omega::sweep
