#pragma once
// Top-level convenience API: one call from a dataset to ranked sweep
// candidates, selecting the compute backend by enum. This is the entry point
// the examples and downstream users consume; everything underneath is the
// composable layer (core::scan + backends).

#include <cstdint>
#include <string>
#include <vector>

#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "io/chunk_reader.h"
#include "io/dataset.h"
#include "util/cancel.h"
#include "util/fault.h"

namespace omega::sweep {

enum class Backend {
  Cpu,          // OmegaPlus nested loop, double precision
  CpuThreaded,  // chunked multithreaded scan (Table IV scheme)
  GpuSim,       // simulated GPU (Tesla K80 profile), dynamic two-kernel
  FpgaSim,      // simulated FPGA (Alveo U200 profile)
  Hetero,       // CPU + GPU-sim + FPGA-sim co-scheduled on one scan
};

struct DetectorOptions {
  core::OmegaConfig config;
  Backend backend = Backend::Cpu;
  std::size_t threads = 4;  // CpuThreaded and Hetero (total worker budget)
  /// Backend::Hetero grid split: "auto" (modeled throughput) or a fixed
  /// "cpu:gpu:fpga" weight triple (core::HeteroSplit::parse syntax). The
  /// split never changes results — only which partition scores what.
  std::string hetero_split = "auto";
  /// LD engine for the CPU backends (core::resolve_ld_backend semantics:
  /// Auto runs the bit-packed engine with runtime AVX2/scalar dispatch).
  /// Every kind produces bitwise-identical r2 and hence identical
  /// candidates; the accelerator backends install their own ld_factory.
  core::LdBackendKind ld = core::LdBackendKind::Auto;
  /// Fault-recovery policy forwarded to the scan driver.
  core::RecoveryPolicy recovery;
  /// Deterministic fault injection applied to the simulated accelerator
  /// backends (GpuSim / FpgaSim); ignored by the CPU backends.
  util::fault::FaultPlan fault_plan;
  /// Optional cooperative-cancellation token. Polled between positions (and
  /// inside the simulated accelerators) — a request drains the scan cleanly
  /// and the report comes back with partial = true. Not owned; must outlive
  /// the call.
  util::CancelToken* cancel = nullptr;
  /// When > 0: the scan's wall-clock budget in seconds. Expiry converts to a
  /// cancellation (reason Deadline) and a partial report.
  double deadline_seconds = 0.0;
  /// Injectable clock for the deadline (tests); defaults to steady_clock.
  util::Deadline::Clock deadline_clock;
};

struct Candidate {
  std::int64_t position_bp = 0;
  double omega = 0.0;
  /// Window achieving the maximum (bp bounds of the best a..b SNP range).
  std::int64_t window_start_bp = 0;
  std::int64_t window_end_bp = 0;
};

struct DetectionReport {
  std::vector<Candidate> candidates;  // descending omega
  core::ScanProfile profile;
  std::string backend_name;
  /// True when the scan was cancelled (signal, API, or deadline) before every
  /// grid position settled; mirrors profile.runtime.partial.
  bool partial = false;

  /// Candidates with omega at least `threshold`.
  [[nodiscard]] std::vector<Candidate> above(double threshold) const;

  /// The scan's metrics document (core::metrics "omega.scan.metrics"
  /// schema), serialized as pretty JSON.
  [[nodiscard]] std::string metrics_json(
      const std::string& run_name = "detect_sweeps") const;
  /// Writes metrics_json(run_name) to `path`.
  void write_metrics_json(const std::string& path,
                          const std::string& run_name = "detect_sweeps") const;
};

/// Scans and returns the top `max_candidates` scoring positions.
DetectionReport detect_sweeps(const io::Dataset& dataset,
                              const DetectorOptions& options = {},
                              std::size_t max_candidates = 10);

/// Streaming counterpart: scans through a ChunkReader under the bounded-
/// memory pipeline (core::stream_scan) and produces a report identical to
/// detect_sweeps on the same data. Candidate window coordinates come from
/// the reader's position index. Backend::CpuThreaded runs the work-stealing
/// span engine per chunk (options.threads workers). Checkpoint/resume is
/// controlled through stream_options (checkpoint_path / resume).
DetectionReport detect_sweeps_stream(
    io::ChunkReader& reader, const DetectorOptions& options = {},
    const core::StreamScanOptions& stream_options = {},
    std::size_t max_candidates = 10);

}  // namespace omega::sweep
