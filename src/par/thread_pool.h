#pragma once
// Fixed-size thread pool shared by the multithreaded CPU scanner (Table IV)
// and the GPU execution-model simulator (each worker plays one compute unit).
//
// Design notes:
//  * one condition variable, one mutex, FIFO queue — contention is irrelevant
//    because tasks are coarse (a grid position or a work-group batch);
//  * `run_blocking` lets the submitting thread participate in draining its
//    own batch, so a pool of size 1 still makes progress without deadlock and
//    single-core machines are not oversubscribed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace omega::util::telemetry {
class Counter;
class Histogram;
}

namespace omega::par {

class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` means "hardware concurrency".
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs `tasks` to completion; the calling thread also executes tasks.
  /// If tasks throw, the batch still drains fully (no task is left running),
  /// then the exception of the earliest-submitted failing task is rethrown —
  /// deterministic regardless of which worker ran which task first.
  void run_blocking(std::vector<std::function<void()>> tasks);

  /// Enqueues one fire-and-collect task and returns immediately; the future
  /// delivers the task's completion (or rethrows its exception) on get().
  /// Unlike run_blocking, the submitting thread does NOT participate — this
  /// is the overlap primitive the streaming scanner prefetches chunks with
  /// (IO on a pool thread while the caller computes).
  std::future<void> submit(std::function<void()> task);

 private:
  struct Batch;
  struct Item {
    Batch* batch = nullptr;
    std::size_t index = 0;  // submission order within the batch
    std::function<void()> task;
  };
  void run_item(Item& item);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  // Process-wide telemetry (util/telemetry.h), resolved once per pool:
  // queue depth sampled at each enqueue, per-task wall latency, and a task
  // counter. The registry never deallocates, so these stay valid for the
  // pool's lifetime.
  util::telemetry::Histogram* queue_depth_hist_ = nullptr;
  util::telemetry::Histogram* task_seconds_hist_ = nullptr;
  util::telemetry::Counter* tasks_total_ = nullptr;
};

/// Work-stealing claim scheduler for coarse, ordered work items (the scan
/// engine's grid spans). Each worker owns a deque seeded with a contiguous
/// run of item indices; claim() pops the owner's queue from the FRONT (so a
/// worker walks its run in order, keeping DP-matrix relocation chains
/// intact), and when the owner's queue is dry it steals from the BACK of the
/// first non-empty victim in cyclic order — the item farthest from the
/// victim's current locality, so the victim's own relocation chain is hurt
/// least. Queues are mutex-guarded: items are coarse (milliseconds of work),
/// so claim cost is irrelevant and the simple locking is trivially correct.
class StealScheduler {
 public:
  explicit StealScheduler(std::size_t workers);

  [[nodiscard]] std::size_t workers() const noexcept { return queues_.size(); }

  /// Seeds worker `worker`'s queue with an ordered run of item indices.
  /// Setup-phase only: must complete (on one thread) before any claim().
  void assign(std::size_t worker, std::vector<std::size_t> items);

  struct Claim {
    std::size_t item = 0;
    bool stolen = false;  // came from another worker's queue
  };

  /// Claims the next item for `worker`; nullopt when every queue is empty.
  /// Thread-safe; each item is handed out exactly once.
  [[nodiscard]] std::optional<Claim> claim(std::size_t worker);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> items;
  };
  // unique_ptr keeps Queue addresses stable (mutexes are immovable).
  std::vector<std::unique_ptr<Queue>> queues_;
};

/// Parallel loop over [begin, end) with dynamic chunking.
/// `body(i)` is invoked exactly once per index, in unspecified order.
/// `grain` indices are claimed per atomic fetch to amortize overhead.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, const std::function<void(std::size_t)>& body);

/// Parallel loop handing each worker a contiguous [chunk_begin, chunk_end)
/// range; used when the body wants to keep per-thread scratch state.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body);

}  // namespace omega::par
