#include "par/thread_pool.h"

#include <atomic>
#include <exception>

#include "util/telemetry.h"
#include "util/timer.h"

namespace omega::par {

struct ThreadPool::Batch {
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  /// One slot per task, indexed by submission order. Each slot is written by
  /// at most one thread (the one that ran the task) before its finish_one(),
  /// and only read after `remaining` hits zero, so no lock is needed; the
  /// acq_rel decrement publishes the writes to the waiting caller.
  std::vector<std::exception_ptr> errors;

  void finish_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  // Base 1.0: queue depth is a small-integer distribution, so buckets are
  // <=1, <=2, <=4, ... instead of nanosecond-scaled bounds.
  queue_depth_hist_ = &util::telemetry::histogram("pool.queue_depth", 1.0);
  task_seconds_hist_ = &util::telemetry::histogram("pool.task_seconds");
  tasks_total_ = &util::telemetry::counter("pool.tasks_total");
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_item(Item& item) {
  const util::Timer timer;
  if (item.batch == nullptr) {
    // submit() task: the wrapper owns its promise and never throws.
    item.task();
    task_seconds_hist_->record(timer.seconds());
    tasks_total_->add(1);
    return;
  }
  try {
    item.task();
  } catch (...) {
    item.batch->errors[item.index] = std::current_exception();
  }
  task_seconds_hist_->record(timer.seconds());
  tasks_total_->add(1);
  item.batch->finish_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    run_item(item);
  }
}

void ThreadPool::run_blocking(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.remaining.store(tasks.size(), std::memory_order_relaxed);
  batch.errors.resize(tasks.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      queue_.push_back(Item{&batch, i, std::move(tasks[i])});
      queue_depth_hist_->record(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();

  // The caller drains tasks belonging to any batch; this keeps a 1-thread
  // pool (or a pool saturated by other callers) deadlock-free.
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    run_item(item);
  }

  std::unique_lock<std::mutex> lock(batch.done_mutex);
  batch.done_cv.wait(lock, [&batch] {
    return batch.remaining.load(std::memory_order_acquire) == 0;
  });
  for (const std::exception_ptr& error : batch.errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Item{nullptr, 0, [promise, task = std::move(task)] {
                            try {
                              task();
                              promise->set_value();
                            } catch (...) {
                              promise->set_exception(std::current_exception());
                            }
                          }});
    queue_depth_hist_->record(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

StealScheduler::StealScheduler(std::size_t workers) {
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
}

void StealScheduler::assign(std::size_t worker, std::vector<std::size_t> items) {
  Queue& queue = *queues_.at(worker);
  std::lock_guard<std::mutex> lock(queue.mutex);
  queue.items.insert(queue.items.end(), items.begin(), items.end());
}

std::optional<StealScheduler::Claim> StealScheduler::claim(std::size_t worker) {
  {
    Queue& own = *queues_.at(worker);
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.items.empty()) {
      const std::size_t item = own.items.front();
      own.items.pop_front();
      return Claim{item, false};
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(worker + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.items.empty()) continue;
    const std::size_t item = victim.items.back();
    victim.items.pop_back();
    return Claim{item, true};
  }
  return std::nullopt;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t lanes = pool.size() + 1;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    tasks.emplace_back([next, begin, end, grain, &body] {
      (void)begin;
      for (;;) {
        const std::size_t start = next->fetch_add(grain, std::memory_order_relaxed);
        if (start >= end) return;
        const std::size_t stop = std::min(end, start + grain);
        for (std::size_t i = start; i < stop; ++i) body(i);
      }
    });
  }
  pool.run_blocking(std::move(tasks));
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) {
  if (begin >= end) return;
  const std::size_t lanes = pool.size() + 1;
  const std::size_t total = end - begin;
  const std::size_t chunk = (total + lanes - 1) / lanes;
  std::vector<std::function<void()>> tasks;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t lo = begin + lane * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    tasks.emplace_back([lo, hi, &chunk_body] { chunk_body(lo, hi); });
  }
  pool.run_blocking(std::move(tasks));
}

}  // namespace omega::par
