#pragma once
// Cooperative cancellation primitives for long scans. A CancelToken is a
// signal-safe atomic flag plus a reason code; scan drivers, span-engine
// workers, the streaming prefetch loop, and the accelerator launch models
// poll it between units of work and unwind with CancelledError when it
// fires. Nothing here blocks or allocates on the request path, so
// CancelToken::request() is safe to call from a POSIX signal handler.
//
// Deadlines are layered on top: a Deadline wraps an injectable monotonic
// clock (mirroring core/resilience.h's virtual-clock approach) and the scan
// driver converts expiry into a cancellation request, so a deadline and a
// SIGINT take the exact same drain path through the runtime.

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>

namespace omega::util {

/// Why a cancellation was requested. Ordered by precedence: once a token is
/// cancelled the first reason sticks (a deadline firing after a SIGINT does
/// not overwrite the signal reason).
enum class CancelReason { None = 0, Signal, Deadline, Api };

[[nodiscard]] const char* cancel_reason_name(CancelReason reason) noexcept;

/// Thrown by backends/drivers when they observe a cancelled token mid-work.
/// Deliberately NOT a core::BackendError: the retry engine must not treat a
/// cancellation as a transient fault, so recover_max_omega (which catches
/// only BackendError) lets this propagate straight to the drain path.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("scan cancelled: ") +
                           cancel_reason_name(reason)),
        reason_(reason) {}

  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// Signal-safe cancellation flag. request() and cancelled() are lock-free
/// atomics; the request timestamp exists so the drain path can report the
/// latency between the request and the last worker stopping.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. First caller wins the reason; later calls are
  /// no-ops. Safe from signal handlers (no locks, no allocation).
  void request(CancelReason reason) noexcept {
    bool expected = false;
    if (cancelled_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      reason_.store(static_cast<int>(reason), std::memory_order_release);
    }
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Throws CancelledError if the token is cancelled; the poll used at the
  /// top of per-position loops.
  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError(reason());
  }

  /// Re-arms the token (tests and the process-wide token between CLI runs).
  /// Not signal-safe; callers must ensure no concurrent request().
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_release);
    reason_.store(static_cast<int>(CancelReason::None),
                  std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{static_cast<int>(CancelReason::None)};
};

/// The process-wide token the CLI signal handlers flip. Library code never
/// touches this implicitly — the CLI wires it into ScannerOptions.
[[nodiscard]] CancelToken& process_cancel_token() noexcept;

/// Installs SIGINT/SIGTERM handlers that request(CancelReason::Signal) on
/// the process token. Idempotent; returns false if handler installation
/// failed (the scan still runs, just without clean signal drain).
bool install_cancel_signal_handlers() noexcept;

/// Wall-clock budget for one scan. Disabled when constructed with a
/// non-positive budget. The clock is injectable so deadline expiry is
/// testable without sleeping.
class Deadline {
 public:
  using Clock = std::function<double()>;  // monotonic seconds

  Deadline() = default;
  explicit Deadline(double budget_seconds, Clock clock = {});

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] bool expired() const;
  /// Seconds left; +inf when disabled, clamped at 0 once expired.
  [[nodiscard]] double remaining() const;
  [[nodiscard]] double budget_seconds() const noexcept { return budget_; }

 private:
  bool enabled_ = false;
  double budget_ = 0.0;
  double start_ = 0.0;
  Clock clock_;
};

}  // namespace omega::util
