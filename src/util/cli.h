#pragma once
// Minimal command-line parser for the bench/example binaries.
// Supports `--name value`, `--name=value` and boolean `--flag` forms; unknown
// arguments raise, so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace omega::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Registers an option with a help line so `--help` output is accurate.
  /// Returns *this to allow chaining during setup.
  Cli& describe(const std::string& name, const std::string& help);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// True when `--help` was passed; callers should print `help_text` and exit.
  [[nodiscard]] bool wants_help() const { return wants_help_; }
  [[nodiscard]] std::string help_text(const std::string& program_summary) const;

  /// Throws std::invalid_argument if any parsed option was never described.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::pair<std::string, std::string>> described_;
  bool wants_help_ = false;
};

}  // namespace omega::util
