#pragma once
// Bit-level helpers for the packed SNP representation. The LD hot loop is a
// stream of AND+popcount over 64-bit words; keeping these as tiny inline
// functions lets the compiler vectorize the word loop.

#include <bit>
#include <cstdint>
#include <cstddef>

namespace omega::util {

[[nodiscard]] inline int popcount64(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// Number of 64-bit words needed to hold `bits` bits.
[[nodiscard]] constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

/// Mask selecting the low `bits % 64` bits of the last word (all ones when
/// `bits` is a multiple of 64 and nonzero).
[[nodiscard]] constexpr std::uint64_t tail_mask(std::size_t bits) noexcept {
  const std::size_t rem = bits % 64;
  return rem == 0 ? ~0ull : ((1ull << rem) - 1);
}

/// Popcount of the AND of two word ranges of equal length.
[[nodiscard]] inline std::int64_t and_popcount(const std::uint64_t* a,
                                               const std::uint64_t* b,
                                               std::size_t words) noexcept {
  std::int64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += std::popcount(a[w] & b[w]);
  }
  return total;
}

/// Read-prefetch hint for streaming loops that touch predictable rows a few
/// iterations ahead (the popcount LD block walk). No-op on compilers without
/// the builtin.
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Popcount of a single word range.
[[nodiscard]] inline std::int64_t popcount_range(const std::uint64_t* a,
                                                 std::size_t words) noexcept {
  std::int64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += std::popcount(a[w]);
  }
  return total;
}

}  // namespace omega::util
