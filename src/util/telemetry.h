#pragma once
// Process-wide metrics registry for the scan telemetry subsystem: named
// counters, gauges, and log-bucketed latency histograms with a lock-free
// record path. The aggregate ScanProfile answers "how much total"; this layer
// answers the distributional questions operators actually ask — tail latency
// of chunk fetches, retry-backoff spread, pool queue depth — and feeds the
// metrics schema v6 "telemetry" block plus the Prometheus-style text
// exposition (docs/OBSERVABILITY.md).
//
// Usage contract:
//   * counter()/gauge()/histogram() resolve a name to a metric under a mutex;
//     hot paths resolve once (constructor member or function-local static)
//     and then touch only atomics.
//   * Registered metrics are NEVER deallocated — reset() zeroes values in
//     place — so cached references and pointers stay valid for the process
//     lifetime, including across reset() calls from tests.
//   * Histograms use power-of-two buckets: bucket i covers
//     (base * 2^(i-1), base * 2^i], bucket 0 additionally absorbs everything
//     <= base, and the last bucket absorbs everything above its bound.
//     Quantiles are bucket-resolved (the bucket upper bound, clamped into the
//     observed [min, max]) — within a factor of 2, deterministic, and exactly
//     testable against the documented boundaries.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omega::util::telemetry {

inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

/// Relaxed CAS add for atomic doubles (portable stand-in for the C++20
/// floating fetch_add).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement (ratios, levels).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram, safe to keep and serialize.
struct HistogramSnapshot {
  double base = 1e-9;  // upper bound of bucket 0
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double bucket_upper_bound(std::size_t index) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Bucket-resolved quantile estimate, q in [0, 1]: the upper bound of the
  /// bucket holding the ceil(q * count)-th smallest sample, clamped into the
  /// exact observed [min, max]. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Per-sample difference against an earlier snapshot of the same histogram:
  /// count/sum/buckets subtract (clamped at zero); base, min and max keep the
  /// later snapshot's values (extremes are not invertible).
  [[nodiscard]] HistogramSnapshot delta_since(
      const HistogramSnapshot& begin) const noexcept;

  /// Per-sample union with another snapshot of the same histogram:
  /// count/sum/buckets add, min/max widen, base keeps this snapshot's value.
  /// Used to fold a checkpointed prior run's telemetry into the current one.
  [[nodiscard]] HistogramSnapshot merged_with(
      const HistogramSnapshot& other) const noexcept;
};

/// Log2-bucketed distribution with an exact count/sum/min/max sidecar.
/// record() is lock-free: bucket index computation plus a handful of relaxed
/// atomic updates. Non-finite samples are dropped (counted separately).
class Histogram {
 public:
  /// `base` is the upper bound of the first bucket; every later bucket
  /// doubles it. The default suits latencies in seconds (1 ns .. ~292 years);
  /// pass 1.0 for small-integer distributions such as queue depths.
  explicit Histogram(double base = 1e-9) noexcept : base_(base) {}

  void record(double value) noexcept {
    if (value != value || value - value != 0.0) {  // NaN or +-Inf
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, value);
    detail::atomic_min(min_, value);
    detail::atomic_max(max_, value);
  }

  /// Index of the bucket `value` lands in; exact at the power-of-two
  /// boundaries (a value equal to a bucket's upper bound belongs to it).
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;
  [[nodiscard]] double bucket_upper_bound(std::size_t index) const noexcept;
  [[nodiscard]] double base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  double base_;
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered metric, name-sorted so emitted
/// documents are stable and diffable.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const noexcept;
  [[nodiscard]] std::uint64_t counter_value(std::string_view name)
      const noexcept;

  /// Activity since `begin` (typically taken at scan start): counters and
  /// histogram contents subtract; gauges keep the later value. Metrics absent
  /// from `begin` are taken whole. This is how ScanProfile::telemetry
  /// attributes process-wide metrics to one scan without resetting the
  /// registry under concurrent users.
  [[nodiscard]] RegistrySnapshot delta_since(const RegistrySnapshot& begin)
      const;

  /// Union with a prior run's snapshot (checkpoint resume): counters and
  /// histogram contents add, gauges keep this snapshot's (current) value when
  /// present on both sides, and metrics present on only one side are taken
  /// whole. Output stays name-sorted so documents remain stable.
  [[nodiscard]] RegistrySnapshot merged_with(const RegistrySnapshot& other)
      const;
};

/// Resolves `name` to the process-wide metric, registering it on first use.
/// The returned reference is valid forever (see header comment). For
/// histogram(), `base` applies only to the registering call; later callers
/// get the existing instance regardless of the base they pass.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name, double base = 1e-9);

[[nodiscard]] RegistrySnapshot snapshot();

/// Zeroes every registered metric in place. Cached references stay valid;
/// registrations are never removed.
void reset();

/// Prometheus-style text exposition of the current registry state: counters
/// and gauges as single samples, histograms as cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`. Every family gets a `# HELP`/`# TYPE` pair;
/// the help line echoes the original registry name. Metric names are
/// sanitized to `omega_<name with [^a-zA-Z0-9_] -> _>`.
[[nodiscard]] std::string to_text();

}  // namespace omega::util::telemetry
