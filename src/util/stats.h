#pragma once
// Small statistics helpers shared by tests (distribution checks on the
// coalescent simulator) and benches (summarizing repeated measurements).

#include <cstddef>
#include <vector>

namespace omega::util {

/// Streaming mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0,1]. The input vector is copied; callers in hot paths should sort
/// once and use `percentile_sorted`.
double percentile(std::vector<double> values, double q);
double percentile_sorted(const std::vector<double>& sorted_values, double q);

/// Harmonic number H_{n} = sum_{i=1..n} 1/i (used by Watterson's estimator
/// checks: E[segregating sites] = theta * H_{n-1}).
double harmonic(std::size_t n);

/// Pearson correlation of two equally sized samples (test helper).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (Pearson over average ranks; ties averaged).
double spearman(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace omega::util
