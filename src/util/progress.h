#pragma once
// Rate-limited live progress reporting for long scans. The scan drivers call
// advance() once per scored position / finished chunk; the reporter
// aggregates, computes throughput and ETA, and forwards at most one update
// per `interval_seconds` to a caller-supplied sink (plus one guaranteed
// final update from finish()). The clock is injectable so rate limiting is
// testable under a virtual clock, mirroring core/resilience.h's approach to
// backoff timing.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

namespace omega::util {

struct ProgressUpdate {
  std::uint64_t positions_done = 0;
  std::uint64_t positions_total = 0;  // 0 when unknown
  std::uint64_t chunks_done = 0;
  std::uint64_t chunks_total = 0;  // 0 for non-streaming scans
  std::uint64_t faults = 0;        // retries consumed by the recovery engine
  std::uint64_t quarantined = 0;   // positions given up on
  double elapsed_seconds = 0.0;
  double positions_per_second = 0.0;
  double eta_seconds = -1.0;  // negative when not estimable yet
  bool final = false;         // true only for the finish() update

  /// One-line human-readable rendering (used by stderr_sink()).
  [[nodiscard]] std::string line() const;
};

class ProgressReporter {
 public:
  using Clock = std::function<double()>;  // monotonic seconds
  using Sink = std::function<void(const ProgressUpdate&)>;

  struct Delta {
    std::uint64_t positions = 0;
    std::uint64_t chunks = 0;
    std::uint64_t faults = 0;
    std::uint64_t quarantined = 0;
  };

  /// `interval_seconds` is the minimum spacing between emitted updates;
  /// `clock` defaults to the process steady clock and exists for tests.
  explicit ProgressReporter(Sink sink, double interval_seconds = 1.0,
                            Clock clock = {});

  /// Declares the workload and emits the initial (0-progress) update so the
  /// sink shows life before the first slow chunk completes. A resumed scan
  /// passes the already-committed counts as `positions_resumed` /
  /// `chunks_resumed`: they show up in positions_done immediately, but the
  /// throughput and ETA are derived only from positions scored *this* run,
  /// so a resume does not inherit a stale rate from the interrupted run.
  void begin(std::uint64_t positions_total, std::uint64_t chunks_total = 0,
             std::uint64_t positions_resumed = 0,
             std::uint64_t chunks_resumed = 0);

  /// Accumulates progress; emits an update only if at least the configured
  /// interval elapsed since the last emission. Thread-safe.
  void advance(const Delta& delta);

  /// Emits the final update unconditionally (unless nothing was ever begun
  /// or advanced).
  void finish();

  /// Updates delivered to the sink so far (for rate-limit tests).
  [[nodiscard]] std::uint64_t emitted() const;

  /// Most recent update delivered to the sink.
  [[nodiscard]] ProgressUpdate last_update() const;

  /// Sink writing ProgressUpdate::line() to stderr.
  [[nodiscard]] static Sink stderr_sink();

 private:
  void emit_locked(bool final);

  mutable std::mutex mutex_;
  Sink sink_;
  Clock clock_;
  double interval_seconds_;
  double start_time_ = 0.0;
  double last_emit_time_ = 0.0;
  bool started_ = false;
  bool active_ = false;  // true between begin()/first advance and finish()
  std::uint64_t emitted_ = 0;
  std::uint64_t baseline_positions_ = 0;  // preloaded by a resume
  ProgressUpdate state_;
};

}  // namespace omega::util
