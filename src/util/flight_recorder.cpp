#include "util/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <exception>
#include <map>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "util/perf_counters.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace omega::util::flight {

namespace {

constexpr int kSchemaVersion = 1;

std::atomic<bool> g_armed{false};
std::atomic<bool> g_dumping{false};
std::atomic<std::uint64_t> g_dumps{0};
std::atomic<std::uint64_t> g_fault_notes{0};

/// Immortal (never destroyed): signal handlers may race process teardown —
/// the same pattern as the cancel token and telemetry registry.
struct State {
  std::mutex mutex;
  FlightRecorderConfig config;
  bool hooks_installed = false;
  std::terminate_handler prev_terminate = nullptr;
};

State& state() {
  static State* instance = new State();
  return *instance;
}

// ---- JSON building (no core/metrics_json here: util must not depend on
// core, so the recorder carries its own minimal writer) ----

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double value) {
  if (value != value || value - value != 0.0) {  // NaN / +-Inf
    out += "0";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

void append_trace(std::string& out, std::size_t max_events) {
  trace::TraceSnapshot snap = trace::take_snapshot();
  // The ring is in storage order; the dump wants the newest events. Sort by
  // start time and keep the tail.
  std::sort(snap.events.begin(), snap.events.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
              return a.start_s < b.start_s;
            });
  const std::size_t keep = std::min(max_events, snap.events.size());
  const std::size_t first = snap.events.size() - keep;
  out += "\"trace\":{\"recorded\":";
  append_uint(out, snap.recorded);
  out += ",\"dropped\":";
  append_uint(out, snap.dropped + static_cast<std::uint64_t>(first));
  out += ",\"num_threads\":";
  append_uint(out, snap.num_threads);
  out += ",\"events\":[";
  for (std::size_t i = first; i < snap.events.size(); ++i) {
    const trace::TraceEvent& event = snap.events[i];
    if (i != first) out.push_back(',');
    out += "{\"name\":";
    append_escaped(out, event.name);
    out += ",\"thread\":";
    append_uint(out, event.thread_id);
    out += ",\"start_s\":";
    append_double(out, event.start_s);
    out += ",\"duration_s\":";
    append_double(out, event.duration_s);
    out.push_back('}');
  }
  out += "]}";
}

/// Groups the registry's "perf.<stage>.<field>" counters back into
/// per-stage objects — the same derivation the metrics schema v11 "perf"
/// block uses, so a flight record and a metrics document agree.
void append_perf(std::string& out,
                 const telemetry::RegistrySnapshot& registry) {
  std::map<std::string, std::map<std::string, std::uint64_t>> stages;
  for (const auto& [name, value] : registry.counters) {
    const std::string_view view(name);
    if (view.substr(0, 5) != "perf.") continue;
    const std::size_t last_dot = view.rfind('.');
    if (last_dot == std::string_view::npos || last_dot <= 5) continue;
    stages[std::string(view.substr(5, last_dot - 5))]
          [std::string(view.substr(last_dot + 1))] = value;
  }
  out += "\"perf\":{\"source\":";
  append_escaped(out, perf::source());
  out += ",\"stages\":{";
  bool first_stage = true;
  for (const auto& [stage, fields] : stages) {
    if (!first_stage) out.push_back(',');
    first_stage = false;
    append_escaped(out, stage);
    out += ":{";
    bool first_field = true;
    for (const auto& [field, value] : fields) {
      if (!first_field) out.push_back(',');
      first_field = false;
      append_escaped(out, field);
      out.push_back(':');
      append_uint(out, value);
    }
    out.push_back('}');
  }
  out += "}}";
}

void append_telemetry(std::string& out,
                      const telemetry::RegistrySnapshot& registry) {
  out += "\"telemetry\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    append_uint(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out.push_back(':');
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_escaped(out, name);
    out += ":{\"base\":";
    append_double(out, hist.base);
    out += ",\"count\":";
    append_uint(out, hist.count);
    out += ",\"sum\":";
    append_double(out, hist.sum);
    out += ",\"min\":";
    append_double(out, hist.min);
    out += ",\"max\":";
    append_double(out, hist.max);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out += "{\"le\":";
      append_double(out, hist.bucket_upper_bound(b));
      out += ",\"count\":";
      append_uint(out, hist.buckets[b]);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "}}";
}

bool write_atomically(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---- triggers ----

struct SignalSlot {
  int signum;
  bool fatal;  // restore default + re-raise after the dump
  void (*previous)(int);
  const char* reason;
};

SignalSlot g_slots[] = {
    {SIGSEGV, true, nullptr, "signal:SIGSEGV"},
    {SIGBUS, true, nullptr, "signal:SIGBUS"},
    {SIGILL, true, nullptr, "signal:SIGILL"},
    {SIGFPE, true, nullptr, "signal:SIGFPE"},
    {SIGABRT, true, nullptr, "signal:SIGABRT"},
    {SIGTERM, false, nullptr, "signal:SIGTERM"},
    {SIGINT, false, nullptr, "signal:SIGINT"},
};

void flight_signal_handler(int signum) {
  for (SignalSlot& slot : g_slots) {
    if (slot.signum != signum) continue;
    dump(slot.reason);
    if (slot.fatal) {
      std::signal(signum, SIG_DFL);
      std::raise(signum);
    } else if (slot.previous != nullptr && slot.previous != SIG_IGN &&
               slot.previous != SIG_ERR) {
      slot.previous(signum);  // chain (the CLI's cancel handler)
    }
    return;
  }
}

void flight_terminate_handler() {
  dump("terminate");
  const std::terminate_handler prev = state().prev_terminate;
  if (prev != nullptr) prev();
  std::abort();
}

void install_hooks() {
  State& s = state();
  if (s.hooks_installed) return;
  for (SignalSlot& slot : g_slots) {
    void (*prev)(int) = std::signal(slot.signum, &flight_signal_handler);
    slot.previous = prev == SIG_DFL ? nullptr : prev;
  }
  s.prev_terminate = std::set_terminate(&flight_terminate_handler);
  s.hooks_installed = true;
}

void remove_hooks() {
  State& s = state();
  if (!s.hooks_installed) return;
  for (SignalSlot& slot : g_slots) {
    std::signal(slot.signum,
                slot.previous == nullptr ? SIG_DFL : slot.previous);
    slot.previous = nullptr;
  }
  std::set_terminate(s.prev_terminate);
  s.prev_terminate = nullptr;
  s.hooks_installed = false;
}

}  // namespace

void arm(FlightRecorderConfig config) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.config = std::move(config);
  if (s.config.max_events == 0) s.config.max_events = 512;
  install_hooks();
  g_fault_notes.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  g_armed.store(false, std::memory_order_release);
  remove_hooks();
}

bool armed() noexcept { return g_armed.load(std::memory_order_acquire); }

bool dump(const char* reason) {
  if (!armed()) return false;
  // Reentrancy guard: a crash while dumping (or two racing triggers) must
  // not recurse; the second dump is dropped rather than corrupting the file.
  if (g_dumping.exchange(true, std::memory_order_acq_rel)) return false;
  std::string path;
  std::size_t max_events = 512;
  {
    State& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    path = s.config.path;
    max_events = s.config.max_events;
  }
  bool ok = false;
  if (!path.empty()) {
    const telemetry::RegistrySnapshot registry = telemetry::snapshot();
    std::string out;
    out.reserve(1 << 16);
    out += "{\"schema\":\"omega.flight\",\"schema_version\":";
    append_uint(out, kSchemaVersion);
    out += ",\"reason\":";
    append_escaped(out, reason == nullptr ? "manual" : reason);
    out += ",\"fault_exhaustions\":";
    append_uint(out, g_fault_notes.load(std::memory_order_relaxed));
    out.push_back(',');
    append_trace(out, max_events);
    out.push_back(',');
    append_perf(out, registry);
    out.push_back(',');
    append_telemetry(out, registry);
    out += "}\n";
    ok = write_atomically(path, out);
    if (ok) g_dumps.fetch_add(1, std::memory_order_relaxed);
  }
  g_dumping.store(false, std::memory_order_release);
  return ok;
}

void note_fault_exhausted() {
  if (!armed()) return;
  if (g_fault_notes.fetch_add(1, std::memory_order_relaxed) == 0) {
    dump("fault-exhaustion");
  }
}

std::uint64_t dumps_written() noexcept {
  return g_dumps.load(std::memory_order_relaxed);
}

}  // namespace omega::util::flight
