#pragma once
// Crash flight recorder: a black box for post-mortems without a reproduction
// (docs/OBSERVABILITY.md § Flight recorder, docs/ROBUSTNESS.md).
//
// arm() registers a dump path; from then on the process dumps its
// observability state — the last N trace-ring events, a full telemetry
// registry snapshot, and the derived hardware-counter ("perf") block — as
// one JSON document (schema "omega.flight") written atomically
// (.tmp + rename). Dumps fire on:
//
//   * fatal signals (SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT): dump, then
//     restore the default disposition and re-raise so the exit status is
//     unchanged;
//   * termination requests (SIGTERM/SIGINT): dump, then chain to the
//     previously installed handler — the CLI installs the cancel-token
//     handler first, so a SIGTERM both leaves a flight record and still
//     drains the scan gracefully;
//   * std::terminate (uncaught exception / failed invariant): dump, then
//     chain to the previous terminate handler;
//   * exhausted fault recovery: the scan driver calls note_fault_exhausted()
//     when retry + quarantine gives up on a position — the first such event
//     since arm() dumps (later ones would overwrite the interesting state);
//   * dump(reason), for callers with their own trigger.
//
// Dumping from a signal handler is best-effort (it allocates), which is the
// standard flight-recorder trade-off: on the fatal paths the alternative is
// no data at all.

#include <cstddef>
#include <cstdint>
#include <string>

namespace omega::util::flight {

struct FlightRecorderConfig {
  std::string path;              ///< dump destination (e.g. <metrics>.flight.json)
  std::size_t max_events = 512;  ///< newest trace events kept in the dump
};

/// Installs the signal/terminate hooks and enables dumping. Re-arming
/// replaces the configuration; handlers chain to whatever was installed
/// before the FIRST arm().
void arm(FlightRecorderConfig config);

/// Stops dumping and restores the signal/terminate handlers captured at the
/// first arm(). Safe to call when not armed.
void disarm();

[[nodiscard]] bool armed() noexcept;

/// Writes a flight record now with the given reason tag. Returns false when
/// disarmed, already dumping on another thread, or the write failed.
bool dump(const char* reason);

/// Fault-recovery exhaustion trigger: dumps with reason "fault-exhaustion"
/// on the first call since arm(); later calls only count.
void note_fault_exhausted();

/// Dumps written since the first arm() (testing/monitoring).
[[nodiscard]] std::uint64_t dumps_written() noexcept;

}  // namespace omega::util::flight
