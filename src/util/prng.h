#pragma once
// Deterministic, fast PRNG used everywhere a random stream is needed.
//
// xoshiro256** (Blackman & Vigna, public domain reference implementation
// re-expressed in C++). We deliberately avoid std::mt19937_64 in hot paths:
// xoshiro is ~3x faster and its state is trivially copyable, which the
// coalescent simulator exploits to fork independent, reproducible streams.

#include <cstdint>
#include <limits>

namespace omega::util {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64,
  /// which guarantees a non-zero, well-mixed state for any seed.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Lemire's multiply-shift rejection method.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal variate (polar Marsaglia; no cached spare to keep the
  /// generator state the sole source of determinism).
  double normal() noexcept;

  /// Poisson variate with the given mean (inversion for small means,
  /// PTRS-like normal approximation fallback for large means).
  std::uint64_t poisson(double mean) noexcept;

  /// Jump-free stream split: derives an independent generator whose seed is
  /// mixed from the current state and the given stream id.
  Xoshiro256 fork(std::uint64_t stream) noexcept {
    return Xoshiro256(state_[0] ^ (0x6a09e667f3bcc909ull * (stream + 1)) ^ state_[3]);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace omega::util
