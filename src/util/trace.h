#pragma once
// Lightweight trace-event API for the scan observability layer: scoped spans
// (name + thread id + start/duration) recorded into a fixed-capacity ring
// buffer. Tracing is off by default and zero-cost when disabled — a Span
// constructor performs one relaxed atomic load and nothing else. When the
// ring wraps, the oldest events are overwritten and the drop count is
// reported, so tracing never grows memory unboundedly inside long scans.
//
// Span names must be string literals (or otherwise outlive the registry):
// events store the pointer, not a copy, to keep the enabled-path cheap.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace omega::util::trace {

struct TraceEvent {
  const char* name = "";
  std::uint32_t thread_id = 0;  // small sequential id, stable per thread
  double start_s = 0.0;         // seconds since enable()
  double duration_s = 0.0;
};

namespace detail {

struct Registry {
  std::atomic<bool> enabled{false};
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::size_t next = 0;         // ring cursor
  std::uint64_t recorded = 0;   // lifetime count since enable()
  std::chrono::steady_clock::time_point epoch{};
};

inline Registry& registry() {
  static Registry instance;
  return instance;
}

inline std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next_id{0};
  thread_local const std::uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

[[nodiscard]] inline bool enabled() noexcept {
  return detail::registry().enabled.load(std::memory_order_relaxed);
}

/// Starts a fresh trace session with room for `capacity` events.
inline void enable(std::size_t capacity = 65'536) {
  auto& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.ring.clear();
  r.ring.reserve(capacity);
  r.capacity = capacity;
  r.next = 0;
  r.recorded = 0;
  r.epoch = std::chrono::steady_clock::now();
  r.enabled.store(true, std::memory_order_relaxed);
}

inline void disable() {
  detail::registry().enabled.store(false, std::memory_order_relaxed);
}

inline void record(const char* name, double start_s, double duration_s) {
  auto& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (r.capacity == 0) return;
  const TraceEvent event{name, detail::thread_id(), start_s, duration_s};
  if (r.ring.size() < r.capacity) {
    r.ring.push_back(event);
  } else {
    r.ring[r.next] = event;  // wrap: overwrite oldest
  }
  r.next = (r.next + 1) % r.capacity;
  ++r.recorded;
}

/// Copy of the buffered events (unordered across threads; sort by start_s if
/// chronology matters). Thread ids here are the raw process-lifetime ids —
/// use take_snapshot() for exporter-facing, session-relative ids.
[[nodiscard]] inline std::vector<TraceEvent> snapshot() {
  auto& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.ring;
}

/// Exporter-facing view of the current session: buffered events with thread
/// ids remapped to a dense 0-based range, plus ring-overflow accounting.
struct TraceSnapshot {
  std::vector<TraceEvent> events;  // thread_id remapped: 0..num_threads-1
  std::uint64_t recorded = 0;      // lifetime count since enable()
  std::uint64_t dropped = 0;       // events overwritten by ring wraparound
  std::uint32_t num_threads = 0;   // distinct threads among buffered events
};

/// Snapshot with session-relative thread ids. detail::thread_id() hands out
/// ids once per thread for the process lifetime, so a second enable() session
/// would otherwise start its tracks at a nonzero id; remapping at snapshot
/// time (raw ids sorted ascending -> 0,1,2,...) keeps every exported session's
/// tracks numbered from 0 while preserving relative thread order.
[[nodiscard]] inline TraceSnapshot take_snapshot() {
  TraceSnapshot snap;
  {
    auto& r = detail::registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    snap.events = r.ring;
    snap.recorded = r.recorded;
    snap.dropped = r.recorded - r.ring.size();
  }
  std::vector<std::uint32_t> raw_ids;
  raw_ids.reserve(8);
  for (const TraceEvent& event : snap.events) {
    bool seen = false;
    for (std::uint32_t id : raw_ids) {
      if (id == event.thread_id) {
        seen = true;
        break;
      }
    }
    if (!seen) raw_ids.push_back(event.thread_id);
  }
  std::sort(raw_ids.begin(), raw_ids.end());
  for (TraceEvent& event : snap.events) {
    const auto it =
        std::lower_bound(raw_ids.begin(), raw_ids.end(), event.thread_id);
    event.thread_id = static_cast<std::uint32_t>(it - raw_ids.begin());
  }
  snap.num_threads = static_cast<std::uint32_t>(raw_ids.size());
  return snap;
}

/// Events recorded since enable(); snapshot().size() is min(this, capacity).
[[nodiscard]] inline std::uint64_t recorded() {
  auto& r = detail::registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.recorded;
}

/// Zero-duration point event ("instant"), for actions whose occurrence
/// matters more than their duration — retry decisions, quarantines, backend
/// degradations. No-op when tracing is disabled.
inline void instant(const char* name) {
  if (!enabled()) return;
  auto& r = detail::registry();
  const double start_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - r.epoch)
                             .count();
  record(name, start_s, 0.0);
}

/// RAII scoped span. With tracing disabled the constructor is a single
/// relaxed load and the destructor a branch on a bool.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (enabled()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
      active_ = true;
    }
  }
  ~Span() {
    if (!active_) return;
    const auto now = std::chrono::steady_clock::now();
    auto& r = detail::registry();
    // Re-check: disable() between construction and destruction drops the span.
    if (!enabled()) return;
    const double start_s =
        std::chrono::duration<double>(start_ - r.epoch).count();
    const double duration_s = std::chrono::duration<double>(now - start_).count();
    record(name_, start_s, duration_s);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = "";
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

}  // namespace omega::util::trace
