#pragma once
// RAII guard for std::ios formatting state. Writers that set std::fixed /
// setprecision on a caller-provided stream must restore the caller's flags on
// every exit path; instantiating this guard first is the whole contract.

#include <ios>

namespace omega::util {

class IosFormatGuard {
 public:
  explicit IosFormatGuard(std::ios& stream)
      : stream_(stream), flags_(stream.flags()), precision_(stream.precision()),
        width_(stream.width()), fill_(stream.fill()) {}
  ~IosFormatGuard() {
    stream_.flags(flags_);
    stream_.precision(precision_);
    stream_.width(width_);
    stream_.fill(fill_);
  }

  IosFormatGuard(const IosFormatGuard&) = delete;
  IosFormatGuard& operator=(const IosFormatGuard&) = delete;

 private:
  std::ios& stream_;
  std::ios::fmtflags flags_;
  std::streamsize precision_;
  std::streamsize width_;
  char fill_;
};

}  // namespace omega::util
