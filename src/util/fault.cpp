#include "util/fault.h"

#include <stdexcept>

namespace omega::util::fault {

const char* mode_name(FaultMode mode) noexcept {
  switch (mode) {
    case FaultMode::None: return "none";
    case FaultMode::KernelLaunch: return "kernel-launch";
    case FaultMode::Timeout: return "timeout";
    case FaultMode::TransientNan: return "nan";
    case FaultMode::DeviceLost: return "device-lost";
    case FaultMode::Mixed: return "mixed";
  }
  return "none";
}

FaultMode mode_from_name(std::string_view name) {
  if (name == "none") return FaultMode::None;
  if (name == "kernel-launch") return FaultMode::KernelLaunch;
  if (name == "timeout") return FaultMode::Timeout;
  if (name == "nan") return FaultMode::TransientNan;
  if (name == "device-lost") return FaultMode::DeviceLost;
  if (name == "mixed") return FaultMode::Mixed;
  throw std::invalid_argument("fault: unknown mode '" + std::string(name) +
                              "' (expected none|kernel-launch|timeout|nan|"
                              "device-lost|mixed)");
}

void FaultPlan::validate() const {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("fault: rate must be in [0, 1]");
  }
  if (window_begin >= window_end) {
    throw std::invalid_argument("fault: empty trigger window");
  }
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), rng_(plan.seed) {
  plan_.validate();
}

FaultMode FaultInjector::next() {
  const std::uint64_t index = call_++;
  ++counters_.calls;

  // A lost device never comes back: fail every call after the trigger.
  if (device_lost_ ||
      (plan_.device_lost_after > 0 && call_ >= plan_.device_lost_after)) {
    device_lost_ = true;
    ++counters_.injected_device_lost;
    return FaultMode::DeviceLost;
  }

  if (plan_.mode == FaultMode::None || plan_.rate <= 0.0) return FaultMode::None;
  if (index < plan_.window_begin || index >= plan_.window_end) {
    return FaultMode::None;
  }
  // Always consume exactly one uniform per eligible call so the schedule is
  // independent of which faults actually fired before it.
  const double draw = rng_.uniform();
  if (draw >= plan_.rate) return FaultMode::None;

  FaultMode mode = plan_.mode;
  if (mode == FaultMode::Mixed) {
    switch (rng_.bounded(3)) {
      case 0: mode = FaultMode::KernelLaunch; break;
      case 1: mode = FaultMode::Timeout; break;
      default: mode = FaultMode::TransientNan; break;
    }
  }
  switch (mode) {
    case FaultMode::KernelLaunch: ++counters_.injected_kernel_launch; break;
    case FaultMode::Timeout: ++counters_.injected_timeout; break;
    case FaultMode::TransientNan: ++counters_.injected_nan; break;
    case FaultMode::DeviceLost:
      device_lost_ = true;
      ++counters_.injected_device_lost;
      break;
    default: break;
  }
  return mode;
}

}  // namespace omega::util::fault
