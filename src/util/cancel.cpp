#include "util/cancel.h"

#include <chrono>
#include <csignal>
#include <limits>

namespace omega::util {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void cancel_signal_handler(int /*signum*/) {
  // Only lock-free atomic stores happen under request(); async-signal-safe.
  process_cancel_token().request(CancelReason::Signal);
}

}  // namespace

const char* cancel_reason_name(CancelReason reason) noexcept {
  switch (reason) {
    case CancelReason::None:
      return "none";
    case CancelReason::Signal:
      return "signal";
    case CancelReason::Deadline:
      return "deadline";
    case CancelReason::Api:
      return "api";
  }
  return "unknown";
}

CancelToken& process_cancel_token() noexcept {
  // Immortal singleton (never destroyed) so signal handlers racing process
  // teardown never touch a destructed object — same pattern as the
  // telemetry registry.
  static CancelToken* token = new CancelToken();
  return *token;
}

bool install_cancel_signal_handlers() noexcept {
  bool ok = true;
#ifdef SIGINT
  ok = (std::signal(SIGINT, &cancel_signal_handler) != SIG_ERR) && ok;
#endif
#ifdef SIGTERM
  ok = (std::signal(SIGTERM, &cancel_signal_handler) != SIG_ERR) && ok;
#endif
  return ok;
}

Deadline::Deadline(double budget_seconds, Clock clock)
    : enabled_(budget_seconds > 0.0),
      budget_(budget_seconds),
      clock_(clock ? std::move(clock) : Clock(&steady_seconds)) {
  if (enabled_) start_ = clock_();
}

bool Deadline::expired() const {
  return enabled_ && clock_() - start_ >= budget_;
}

double Deadline::remaining() const {
  if (!enabled_) return std::numeric_limits<double>::infinity();
  const double left = budget_ - (clock_() - start_);
  return left > 0.0 ? left : 0.0;
}

}  // namespace omega::util
