#include "util/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace omega::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::si(double value, int precision) {
  const char* suffix = "";
  if (value >= 1e9) {
    value /= 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "k";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%s", precision, value, suffix);
  return buffer;
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) rule += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::cout << str(); }

}  // namespace omega::util
