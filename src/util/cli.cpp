#include "util/cli.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace omega::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      wants_help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself an option; otherwise
    // a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

Cli& Cli::describe(const std::string& name, const std::string& help) {
  described_.emplace_back(name, help);
  return *this;
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::help_text(const std::string& program_summary) const {
  std::ostringstream out;
  out << program_summary << "\n\nOptions:\n";
  for (const auto& [name, help] : described_) {
    out << "  --" << name << "\n      " << help << "\n";
  }
  return out.str();
}

void Cli::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    const bool known = std::any_of(
        described_.begin(), described_.end(),
        [&](const auto& entry) { return entry.first == name; });
    if (!known) {
      throw std::invalid_argument("unknown option --" + name +
                                  " (see --help)");
    }
  }
}

}  // namespace omega::util
