#pragma once
// Monotonic wall-clock timer used by the scanner's profiling hooks and the
// benchmark harness.

#include <chrono>

namespace omega::util {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across multiple start/stop intervals. Used to split
/// scan time into LD / omega / other buckets (Fig. 14 profiling).
class StopWatch {
 public:
  void start() noexcept { t_.reset(); running_ = true; }
  void stop() noexcept {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }
  [[nodiscard]] double total_seconds() const noexcept { return total_; }
  void clear() noexcept { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII guard adding an interval to a StopWatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(StopWatch& watch) noexcept : watch_(watch) { watch_.start(); }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  StopWatch& watch_;
};

}  // namespace omega::util
