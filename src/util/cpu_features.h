#pragma once
// Runtime CPU feature detection for kernel dispatch. The AVX2+FMA omega
// kernel is compiled into its own translation unit with per-file -mavx2
// -mfma flags; whether it is *called* is decided here at runtime, so the
// same binary runs correctly on hosts without those extensions.

#include <string>

namespace omega::util {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// Detected features of the executing CPU (cached after the first query).
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

/// True when both AVX2 and FMA are available — the requirement of the
/// vectorized omega kernel's wide path.
[[nodiscard]] bool cpu_has_avx2_fma() noexcept;

/// Human-readable summary of the detected ISA level, e.g. "avx2+fma" or
/// "baseline"; used by the CLI dispatch report and the bench harness.
[[nodiscard]] std::string cpu_isa_summary();

/// Marketing model string of the executing CPU (x86 CPUID brand string,
/// whitespace-normalized), or "unknown" where unavailable. Stamped into
/// BENCH_*.json host blocks so omega_metrics_diff can refuse cross-host
/// comparisons.
[[nodiscard]] std::string cpu_model();

}  // namespace omega::util
