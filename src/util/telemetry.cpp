#include "util/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace omega::util::telemetry {

namespace {

constexpr std::size_t kLast = kHistogramBuckets - 1;

double upper_bound_for(double base, std::size_t index) noexcept {
  return std::ldexp(base, static_cast<int>(index));
}

std::size_t index_for(double base, double value) noexcept {
  if (!(value > base)) return 0;
  // log2 gets us within one bucket of the right answer; the fixup loops make
  // the boundary exact (a value equal to an upper bound belongs to that
  // bucket), which the tests assert at machine-representable boundaries.
  const double ratio = value / base;
  double guess = std::ceil(std::log2(ratio));
  if (!(guess >= 0.0)) guess = 0.0;
  if (guess > static_cast<double>(kLast)) guess = static_cast<double>(kLast);
  std::size_t i = static_cast<std::size_t>(guess);
  while (i > 0 && value <= upper_bound_for(base, i - 1)) --i;
  while (i < kLast && value > upper_bound_for(base, i)) ++i;
  return i;
}

}  // namespace

double HistogramSnapshot::bucket_upper_bound(std::size_t index) const noexcept {
  return upper_bound_for(base, std::min(index, kLast));
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      return std::clamp(bucket_upper_bound(i), min, max);
    }
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& begin) const noexcept {
  HistogramSnapshot delta = *this;
  delta.count = count >= begin.count ? count - begin.count : 0;
  delta.sum = std::max(0.0, sum - begin.sum);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    delta.buckets[i] =
        buckets[i] >= begin.buckets[i] ? buckets[i] - begin.buckets[i] : 0;
  }
  if (delta.count == 0) {
    delta.sum = 0.0;
    delta.min = 0.0;
    delta.max = 0.0;
  }
  return delta;
}

HistogramSnapshot HistogramSnapshot::merged_with(
    const HistogramSnapshot& other) const noexcept {
  HistogramSnapshot merged = *this;
  merged.count = count + other.count;
  merged.sum = sum + other.sum;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    merged.buckets[i] = buckets[i] + other.buckets[i];
  }
  if (count == 0) {
    merged.min = other.min;
    merged.max = other.max;
  } else if (other.count > 0) {
    merged.min = std::min(min, other.min);
    merged.max = std::max(max, other.max);
  }
  return merged;
}

std::size_t Histogram::bucket_index(double value) const noexcept {
  return index_for(base_, value);
}

double Histogram::bucket_upper_bound(std::size_t index) const noexcept {
  return upper_bound_for(base_, std::min(index, kLast));
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  snap.base = base_;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const HistogramSnapshot* RegistrySnapshot::find_histogram(
    std::string_view name) const noexcept {
  for (const auto& [key, snap] : histograms) {
    if (key == name) return &snap;
  }
  return nullptr;
}

std::uint64_t RegistrySnapshot::counter_value(
    std::string_view name) const noexcept {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

RegistrySnapshot RegistrySnapshot::delta_since(
    const RegistrySnapshot& begin) const {
  RegistrySnapshot delta;
  delta.gauges = gauges;  // gauges are levels, not flows — keep the end value
  delta.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    std::uint64_t before = 0;
    for (const auto& [bname, bvalue] : begin.counters) {
      if (bname == name) {
        before = bvalue;
        break;
      }
    }
    delta.counters.emplace_back(name, value >= before ? value - before : 0);
  }
  delta.histograms.reserve(histograms.size());
  for (const auto& [name, snap] : histograms) {
    const HistogramSnapshot* before = begin.find_histogram(name);
    delta.histograms.emplace_back(
        name, before != nullptr ? snap.delta_since(*before) : snap);
  }
  return delta;
}

RegistrySnapshot RegistrySnapshot::merged_with(
    const RegistrySnapshot& other) const {
  RegistrySnapshot merged;
  // All three metric families use the same name-sorted two-pointer union;
  // duplicates within one snapshot cannot occur (map-backed registry).
  auto union_names = [](auto& out, const auto& a, const auto& b,
                        auto combine) {
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      if (j >= b.size() || (i < a.size() && a[i].first < b[j].first)) {
        out.emplace_back(a[i].first, a[i].second);
        ++i;
      } else if (i >= a.size() || b[j].first < a[i].first) {
        out.emplace_back(b[j].first, b[j].second);
        ++j;
      } else {
        out.emplace_back(a[i].first, combine(a[i].second, b[j].second));
        ++i;
        ++j;
      }
    }
  };
  union_names(merged.counters, counters, other.counters,
              [](std::uint64_t a, std::uint64_t b) { return a + b; });
  union_names(merged.gauges, gauges, other.gauges,
              [](double current, double) { return current; });
  union_names(merged.histograms, histograms, other.histograms,
              [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
                return a.merged_with(b);
              });
  return merged;
}

namespace {

// Name-keyed maps of heap-allocated metrics: addresses stay stable across
// rehash-free std::map growth and are intentionally never freed by reset().
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;

  static Registry& instance() {
    static Registry* registry = new Registry();  // immortal: outlives statics
    return *registry;
  }
};

std::string sanitized(std::string_view name) {
  std::string out = "omega_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void format_number(std::ostringstream& out, double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
  } else {
    out << value;
  }
}

}  // namespace

Counter& counter(std::string_view name) {
  Registry& registry = Registry::instance();
  const std::scoped_lock lock(registry.mutex);
  auto it = registry.counters.find(name);
  if (it == registry.counters.end()) {
    it = registry.counters
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& registry = Registry::instance();
  const std::scoped_lock lock(registry.mutex);
  auto it = registry.gauges.find(name);
  if (it == registry.gauges.end()) {
    it = registry.gauges.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view name, double base) {
  Registry& registry = Registry::instance();
  const std::scoped_lock lock(registry.mutex);
  auto it = registry.histograms.find(name);
  if (it == registry.histograms.end()) {
    it = registry.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(base))
             .first;
  }
  return *it->second;
}

RegistrySnapshot snapshot() {
  Registry& registry = Registry::instance();
  const std::scoped_lock lock(registry.mutex);
  RegistrySnapshot snap;
  snap.counters.reserve(registry.counters.size());
  for (const auto& [name, metric] : registry.counters) {
    snap.counters.emplace_back(name, metric->value());
  }
  snap.gauges.reserve(registry.gauges.size());
  for (const auto& [name, metric] : registry.gauges) {
    snap.gauges.emplace_back(name, metric->value());
  }
  snap.histograms.reserve(registry.histograms.size());
  for (const auto& [name, metric] : registry.histograms) {
    snap.histograms.emplace_back(name, metric->snapshot());
  }
  return snap;
}

void reset() {
  Registry& registry = Registry::instance();
  const std::scoped_lock lock(registry.mutex);
  for (const auto& [name, metric] : registry.counters) metric->reset();
  for (const auto& [name, metric] : registry.gauges) metric->reset();
  for (const auto& [name, metric] : registry.histograms) metric->reset();
}

std::string to_text() {
  const RegistrySnapshot snap = snapshot();
  std::ostringstream out;
  out.precision(12);
  // Exposition-format HELP text: the registry carries no descriptions, so
  // the help line echoes the original (pre-sanitization) metric name — that
  // is the identifier documented in docs/OBSERVABILITY.md's metric tables.
  const auto help = [&out](const std::string& id, const std::string& name,
                           const char* kind) {
    out << "# HELP " << id << " omega telemetry " << kind << " '" << name
        << "'\n";
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string id = sanitized(name);
    help(id, name, "counter");
    out << "# TYPE " << id << " counter\n";
    out << id << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string id = sanitized(name);
    help(id, name, "gauge");
    out << "# TYPE " << id << " gauge\n";
    out << id << " ";
    format_number(out, value);
    out << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string id = sanitized(name);
    help(id, name, "histogram");
    out << "# TYPE " << id << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      cumulative += hist.buckets[i];
      // Only materialize buckets up to the last occupied one; the +Inf
      // bucket below carries the full count either way.
      if (hist.buckets[i] == 0) continue;
      out << id << "_bucket{le=\"" << hist.bucket_upper_bound(i) << "\"} "
          << cumulative << "\n";
    }
    out << id << "_bucket{le=\"+Inf\"} " << hist.count << "\n";
    out << id << "_sum ";
    format_number(out, hist.sum);
    out << "\n";
    out << id << "_count " << hist.count << "\n";
  }
  return out.str();
}

}  // namespace omega::util::telemetry
