#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omega::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) {
    throw std::invalid_argument("percentile of empty sample");
  }
  if (q <= 0.0) return sorted_values.front();
  if (q >= 1.0) return sorted_values.back();
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac;
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

double harmonic(std::size_t n) {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument("pearson: size mismatch or empty");
  }
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  return denom == 0.0 ? 0.0 : cov / denom;
}

namespace {

/// Average ranks (1-based), ties share the mean rank.
std::vector<double> ranks(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> rank(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double average = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = average;
    i = j + 1;
  }
  return rank;
}

}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  return pearson(ranks(x), ranks(y));
}

}  // namespace omega::util
