#pragma once
// Hardware performance-counter sampling for the scan hot paths
// (docs/OBSERVABILITY.md § Hardware counters).
//
// perf::enable() arms process-wide collection; each thread lazily opens its
// own perf_event_open(2) counter group — cycles (leader), instructions,
// cache-misses, branch-misses, read together via PERF_FORMAT_GROUP — the
// first time it enters a StageScope. When the kernel refuses (ENOSYS or
// EACCES: unprivileged containers, perf_event_paranoid, seccomp, non-Linux
// builds) the thread degrades to a clock-only fallback: the task clock comes
// from CLOCK_THREAD_CPUTIME_ID and the hardware counts read as zero. The
// process-wide source() reports which path is live, and the same value is
// stamped into the metrics schema v11 "perf" block so consumers can tell
// measured cycles from a degraded run without guessing from zeros.
//
// Samples land in the telemetry registry as plain counters under
//   perf.<stage>.{scopes,cycles,instructions,cache_misses,branch_misses,
//                 task_clock_ns}
// so the per-scan snapshot delta, streaming accumulation, and checkpoint
// resume work unchanged (the same derivation path the v9 "ld" block uses).
// A disabled StageScope costs one relaxed atomic load, mirroring
// util/trace.h; stage handles are resolved once (function-local static) so
// the armed path touches only atomics plus two counter reads.

#include <cstdint>

namespace omega::util::perf {

/// One point-in-time reading of the calling thread's counters.
struct Sample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t task_clock_ns = 0;
  bool hardware = false;  ///< true when read from a perf_event group
};

/// The telemetry counters one instrumented stage feeds. Resolve once with
/// stage() (function-local static at the call site) and pass to StageScope.
struct StageCounters;

/// Registers (or finds) the counter set for `stage`; the reference is valid
/// for the process lifetime, like every telemetry metric.
[[nodiscard]] StageCounters& stage(const char* name);

/// Arms process-wide collection. Threads open their counter groups lazily on
/// first scoped use; enable() itself probes the calling thread so source()
/// is meaningful immediately after the call.
void enable();
void disable();
[[nodiscard]] bool enabled() noexcept;

/// "off" before enable(); "perf_event" once any thread opened a hardware
/// group; "fallback" while every attempt so far has been refused.
[[nodiscard]] const char* source() noexcept;

/// Reads the calling thread's counters now, opening its group on first use
/// (no-op zero sample while disabled).
[[nodiscard]] Sample read_thread_sample();

/// RAII per-thread counter scope: reads at construction and destruction and
/// adds the deltas to the stage's telemetry counters.
class StageScope {
 public:
  explicit StageScope(StageCounters& counters) noexcept;
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageCounters* counters_;
  Sample begin_;
  bool active_ = false;
};

/// Testing hook: replaces the perf_event_open syscall with `fn` (return the
/// fd, or a negative errno such as -EACCES/-ENOSYS). Pass nullptr to restore
/// the real syscall. Combine with reset_thread_for_testing() so the calling
/// thread re-probes under the stub.
using OpenFn = long (*)(std::uint32_t type, std::uint64_t config,
                        int group_fd);
void set_open_fn_for_testing(OpenFn fn);

/// Closes the calling thread's counter group (if any) and forgets the probe
/// result, so the next scope re-opens from scratch. Also resets the
/// process-wide source to the pre-probe state when `reset_source` is true.
void reset_thread_for_testing(bool reset_source = true);

}  // namespace omega::util::perf
