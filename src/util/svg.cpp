#include "util/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace omega::util {
namespace {

constexpr double kWidth = 720, kHeight = 440;
constexpr double kLeft = 80, kRight = 660, kTop = 50, kBottom = 380;
constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#9467bd", "#ff7f0e", "#8c564b"};

std::string fmt(double value) {
  char buffer[64];
  if (std::abs(value) >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  } else if (std::abs(value - std::round(value)) < 1e-9) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  }
  return buffer;
}

/// "Nice" tick positions covering [lo, hi].
std::vector<double> ticks(double lo, double hi, int target = 6) {
  if (hi <= lo) return {lo};
  const double raw_step = (hi - lo) / target;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = magnitude;
  for (const double multiplier : {1.0, 2.0, 2.5, 5.0, 10.0}) {
    if (magnitude * multiplier >= raw_step) {
      step = magnitude * multiplier;
      break;
    }
  }
  std::vector<double> values;
  for (double tick = std::ceil(lo / step) * step; tick <= hi + step * 1e-9;
       tick += step) {
    values.push_back(tick);
  }
  return values;
}

}  // namespace

SvgChart::SvgChart(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

void SvgChart::add_series(std::string name,
                          std::vector<std::pair<double, double>> points) {
  series_.push_back({std::move(name), std::move(points)});
}

void SvgChart::add_hline(double y, std::string label) {
  hlines_.push_back({y, std::move(label)});
}

std::string SvgChart::str() const {
  double x_min = 1e300, x_max = -1e300, y_min = 0.0, y_max = -1e300;
  bool any = false;
  for (const auto& series : series_) {
    for (const auto& [x, y] : series.points) {
      any = true;
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_max = std::max(y_max, y);
    }
  }
  if (!any) throw std::logic_error("svg: no data points");
  for (const auto& hline : hlines_) y_max = std::max(y_max, hline.y);
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;
  y_max *= 1.05;

  auto map_x = [&](double x) {
    double t;
    if (log_x_) {
      t = (std::log10(x) - std::log10(x_min)) /
          (std::log10(x_max) - std::log10(x_min));
    } else {
      t = (x - x_min) / (x_max - x_min);
    }
    return kLeft + t * (kRight - kLeft);
  };
  auto map_y = [&](double y) {
    return kBottom - (y - y_min) / (y_max - y_min) * (kBottom - kTop);
  };

  std::ostringstream out;
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << kWidth
      << "' height='" << kHeight << "' viewBox='0 0 " << kWidth << " "
      << kHeight << "'>\n";
  out << "<rect width='100%' height='100%' fill='white'/>\n";
  out << "<text x='" << kWidth / 2 << "' y='28' text-anchor='middle' "
      << "font-family='sans-serif' font-size='16'>" << title_ << "</text>\n";

  // Axes.
  out << "<line x1='" << kLeft << "' y1='" << kBottom << "' x2='" << kRight
      << "' y2='" << kBottom << "' stroke='black'/>\n";
  out << "<line x1='" << kLeft << "' y1='" << kTop << "' x2='" << kLeft
      << "' y2='" << kBottom << "' stroke='black'/>\n";
  out << "<text x='" << (kLeft + kRight) / 2 << "' y='" << kBottom + 36
      << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
      << x_label_ << "</text>\n";
  out << "<text x='18' y='" << (kTop + kBottom) / 2
      << "' text-anchor='middle' font-family='sans-serif' font-size='12' "
      << "transform='rotate(-90 18 " << (kTop + kBottom) / 2 << ")'>"
      << y_label_ << "</text>\n";

  // Ticks.
  std::vector<double> x_ticks;
  if (log_x_) {
    for (double decade = std::pow(10.0, std::floor(std::log10(x_min)));
         decade <= x_max * 1.0001; decade *= 10.0) {
      if (decade >= x_min * 0.9999) x_ticks.push_back(decade);
    }
    if (x_ticks.size() < 2) x_ticks = {x_min, x_max};
  } else {
    x_ticks = ticks(x_min, x_max);
  }
  for (const double tick : x_ticks) {
    const double x = map_x(tick);
    out << "<line x1='" << x << "' y1='" << kBottom << "' x2='" << x
        << "' y2='" << kBottom + 5 << "' stroke='black'/>\n";
    out << "<text x='" << x << "' y='" << kBottom + 18
        << "' text-anchor='middle' font-family='sans-serif' font-size='10'>"
        << fmt(tick) << "</text>\n";
  }
  for (const double tick : ticks(y_min, y_max)) {
    const double y = map_y(tick);
    out << "<line x1='" << kLeft - 5 << "' y1='" << y << "' x2='" << kLeft
        << "' y2='" << y << "' stroke='black'/>\n";
    out << "<line x1='" << kLeft << "' y1='" << y << "' x2='" << kRight
        << "' y2='" << y << "' stroke='#dddddd'/>\n";
    out << "<text x='" << kLeft - 8 << "' y='" << y + 3
        << "' text-anchor='end' font-family='sans-serif' font-size='10'>"
        << fmt(tick) << "</text>\n";
  }

  // Reference lines.
  for (const auto& hline : hlines_) {
    const double y = map_y(hline.y);
    out << "<line x1='" << kLeft << "' y1='" << y << "' x2='" << kRight
        << "' y2='" << y << "' stroke='#555555' stroke-dasharray='6,4'/>\n";
    out << "<text x='" << kRight - 4 << "' y='" << y - 4
        << "' text-anchor='end' font-family='sans-serif' font-size='10' "
        << "fill='#555555'>" << hline.label << "</text>\n";
  }

  // Series.
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char* color = kPalette[s % (sizeof(kPalette) / sizeof(kPalette[0]))];
    std::ostringstream path;
    for (const auto& [x, y] : series_[s].points) {
      path << (path.tellp() == 0 ? "" : " ") << map_x(x) << ',' << map_y(y);
    }
    out << "<polyline fill='none' stroke='" << color
        << "' stroke-width='2' points='" << path.str() << "'/>\n";
    for (const auto& [x, y] : series_[s].points) {
      out << "<circle cx='" << map_x(x) << "' cy='" << map_y(y)
          << "' r='3' fill='" << color << "'/>\n";
    }
    // Legend entry.
    const double ly = kTop + 16.0 * static_cast<double>(s);
    out << "<line x1='" << kRight - 150 << "' y1='" << ly << "' x2='"
        << kRight - 126 << "' y2='" << ly << "' stroke='" << color
        << "' stroke-width='2'/>\n";
    out << "<text x='" << kRight - 120 << "' y='" << ly + 4
        << "' font-family='sans-serif' font-size='11'>" << series_[s].name
        << "</text>\n";
  }
  out << "</svg>\n";
  return out.str();
}

void SvgChart::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("svg: cannot write " + path);
  out << str();
}

}  // namespace omega::util
