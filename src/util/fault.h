#pragma once
// Deterministic fault-injection layer for the simulated accelerator backends.
//
// Real deployments of the paper's OmegaPlus port hit transient accelerator
// failures — OpenCL kernel launches that return an error, DMA transfers that
// time out, pipelines that emit NaN under marginal timing, devices that drop
// off the bus mid-scan. The simulators reproduce those modes on demand so the
// scan driver's recovery policy (core/resilience.h) can be exercised and
// regression-tested without hardware.
//
// Everything is PRNG-seeded and replayable: a (plan, call-sequence) pair
// always yields the same fault schedule, so tests can assert exact counter
// values and bit-identical recovered results.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/prng.h"

namespace omega::util::fault {

/// Failure modes the injector can produce. `Mixed` draws uniformly among the
/// three transient modes per injected fault.
enum class FaultMode {
  None,
  KernelLaunch,  // launch/enqueue returns an error before any work happens
  Timeout,       // the modeled device time exceeded its budget
  TransientNan,  // the kernel "completes" but the result is NaN-poisoned
  DeviceLost,    // the device drops permanently; every later call fails
  Mixed,         // plan-level only: random transient mode per fault
};

[[nodiscard]] const char* mode_name(FaultMode mode) noexcept;
/// Parses "none|kernel-launch|timeout|nan|device-lost|mixed"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] FaultMode mode_from_name(std::string_view name);

/// Declarative fault schedule, configurable from the CLI.
struct FaultPlan {
  FaultMode mode = FaultMode::None;
  /// Per-call injection probability in [0, 1] while inside the window.
  double rate = 0.0;
  std::uint64_t seed = 0x5eedULL;
  /// Calls with 0-based index in [window_begin, window_end) are eligible.
  std::uint64_t window_begin = 0;
  std::uint64_t window_end = UINT64_MAX;
  /// When > 0, the device is lost at the N-th call (1-based) regardless of
  /// `mode`/`rate`: that call and every later one fail with DeviceLost.
  std::uint64_t device_lost_after = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return (mode != FaultMode::None && rate > 0.0) || device_lost_after > 0;
  }
  /// Throws std::invalid_argument on a malformed plan (rate outside [0,1],
  /// empty window).
  void validate() const;
};

struct FaultCounters {
  std::uint64_t calls = 0;
  std::uint64_t injected_kernel_launch = 0;
  std::uint64_t injected_timeout = 0;
  std::uint64_t injected_nan = 0;
  std::uint64_t injected_device_lost = 0;
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return injected_kernel_launch + injected_timeout + injected_nan +
           injected_device_lost;
  }
};

/// Per-backend-instance fault source. Not thread-safe by design: each scan
/// worker owns its backend, and each backend owns its injector, so the
/// schedule is deterministic per worker for a fixed chunk layout.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  /// Draws the fault decision for the next backend call. Returns None for
  /// the (common) healthy call; once DeviceLost fires, every subsequent call
  /// returns DeviceLost.
  FaultMode next();

  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool device_lost() const noexcept { return device_lost_; }

 private:
  FaultPlan plan_;
  Xoshiro256 rng_;
  std::uint64_t call_ = 0;
  bool device_lost_ = false;
  FaultCounters counters_;
};

}  // namespace omega::util::fault
