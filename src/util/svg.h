#pragma once
// Dependency-free SVG line-chart writer used by the figure benches to emit
// Fig. 10-13 as actual images next to the console tables. Supports multiple
// series, linear or log10 x-axis, horizontal reference lines (the "90% of
// theoretical max" lines in Figs. 10/11), tick labels, and a legend.

#include <cstdint>
#include <string>
#include <vector>

namespace omega::util {

class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label);

  /// Adds a polyline series; points are (x, y) in data coordinates.
  void add_series(std::string name,
                  std::vector<std::pair<double, double>> points);

  /// Horizontal dashed reference line with a right-margin label.
  void add_hline(double y, std::string label);

  void set_log_x(bool log_x) { log_x_ = log_x; }

  /// Renders the document. Throws std::logic_error when no series has
  /// points.
  [[nodiscard]] std::string str() const;
  void write(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
  };
  struct HLine {
    double y;
    std::string label;
  };

  std::string title_, x_label_, y_label_;
  std::vector<Series> series_;
  std::vector<HLine> hlines_;
  bool log_x_ = false;
};

}  // namespace omega::util
