#include "util/prng.h"

#include <cmath>

namespace omega::util {

double Xoshiro256::exponential(double rate) noexcept {
  // Inverse CDF; uniform() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform()) / rate;
}

double Xoshiro256::normal() noexcept {
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint64_t Xoshiro256::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion, numerically safe for small means.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // mutation counts (mean is the expected number of mutations on a branch).
  const double value = mean + std::sqrt(mean) * normal() + 0.5;
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value);
}

}  // namespace omega::util
