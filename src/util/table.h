#pragma once
// Fixed-width console table writer. The bench binaries print paper-style
// tables (Table I/III/IV rows, figure series) through this so that output is
// diffable across runs.

#include <string>
#include <vector>

namespace omega::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string num(double value, int precision = 2);
  /// Formats with an SI-style suffix (k/M/G) for throughput cells.
  static std::string si(double value, int precision = 2);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string str() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace omega::util
