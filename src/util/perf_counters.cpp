#include "util/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/telemetry.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define OMEGA_PERF_HAVE_LINUX 1
#endif

namespace omega::util::perf {

struct StageCounters {
  telemetry::Counter& scopes;
  telemetry::Counter& cycles;
  telemetry::Counter& instructions;
  telemetry::Counter& cache_misses;
  telemetry::Counter& branch_misses;
  telemetry::Counter& task_clock_ns;
};

namespace {

// 0 = off, 1 = fallback (every probe refused so far), 2 = perf_event.
// Max-wins across threads: one thread with a live hardware group makes the
// whole process report "perf_event" (mixed sources are possible when e.g. a
// seccomp filter applies per-thread, and hardware wins the label because
// non-zero cycle counts exist).
std::atomic<int> g_source{0};
std::atomic<bool> g_enabled{false};
std::atomic<OpenFn> g_open_fn{nullptr};

void raise_source(int level) noexcept {
  int current = g_source.load(std::memory_order_relaxed);
  while (current < level && !g_source.compare_exchange_weak(
                                current, level, std::memory_order_relaxed)) {
  }
}

std::uint64_t thread_cputime_ns() noexcept {
#if defined(OMEGA_PERF_HAVE_LINUX) || defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

#if defined(OMEGA_PERF_HAVE_LINUX)

long open_event(std::uint32_t type, std::uint64_t config, int group_fd) {
  if (OpenFn fn = g_open_fn.load(std::memory_order_acquire)) {
    return fn(type, config, group_fd);
  }
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // group enabled once, via leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  const long fd = syscall(SYS_perf_event_open, &attr, 0 /*this thread*/,
                          -1 /*any cpu*/, group_fd, 0UL);
  return fd >= 0 ? fd : -static_cast<long>(errno);
}

/// Per-thread counter group: cycles leads, siblings in fixed order. One
/// read(2) with PERF_FORMAT_GROUP returns all four values.
struct ThreadGroup {
  int leader = -1;
  int fds[4] = {-1, -1, -1, -1};
  bool probed = false;
  bool hardware = false;

  void close_all() noexcept {
    for (int& fd : fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    leader = -1;
    probed = false;
    hardware = false;
  }

  ~ThreadGroup() { close_all(); }

  void probe() {
    probed = true;
    static constexpr std::uint64_t kConfigs[4] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < 4; ++i) {
      const long fd =
          open_event(PERF_TYPE_HARDWARE, kConfigs[i], i == 0 ? -1 : fds[0]);
      if (fd < 0) {
        close_all();
        probed = true;  // close_all cleared it; the refusal is sticky
        raise_source(1);
        return;
      }
      fds[i] = static_cast<int>(fd);
    }
    leader = fds[0];
    ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    hardware = true;
    raise_source(2);
  }

  bool read_group(Sample& out) noexcept {
    // { nr, values[nr] } — creation order.
    std::uint64_t buffer[1 + 4] = {};
    const ssize_t got = ::read(leader, buffer, sizeof(buffer));
    if (got < static_cast<ssize_t>(sizeof(std::uint64_t) * 5) ||
        buffer[0] != 4) {
      return false;
    }
    out.cycles = buffer[1];
    out.instructions = buffer[2];
    out.cache_misses = buffer[3];
    out.branch_misses = buffer[4];
    out.hardware = true;
    return true;
  }
};

thread_local ThreadGroup t_group;

#else  // !OMEGA_PERF_HAVE_LINUX

struct ThreadGroup {
  bool probed = false;
  bool hardware = false;
  void close_all() noexcept { probed = false; }
  void probe() {
    probed = true;
    raise_source(1);
  }
  bool read_group(Sample&) noexcept { return false; }
};

thread_local ThreadGroup t_group;

#endif  // OMEGA_PERF_HAVE_LINUX

/// Stage registry: immortal instances behind a mutex, resolved once per call
/// site — the same contract as the telemetry registry it feeds.
StageCounters& register_stage(const char* name) {
  static std::mutex* mutex = new std::mutex();
  static std::unordered_map<std::string, StageCounters*>* stages =
      new std::unordered_map<std::string, StageCounters*>();
  const std::lock_guard<std::mutex> lock(*mutex);
  auto it = stages->find(name);
  if (it == stages->end()) {
    const std::string prefix = std::string("perf.") + name + ".";
    auto* entry = new StageCounters{
        telemetry::counter(prefix + "scopes"),
        telemetry::counter(prefix + "cycles"),
        telemetry::counter(prefix + "instructions"),
        telemetry::counter(prefix + "cache_misses"),
        telemetry::counter(prefix + "branch_misses"),
        telemetry::counter(prefix + "task_clock_ns")};
    it = stages->emplace(name, entry).first;
  }
  return *it->second;
}

}  // namespace

StageCounters& stage(const char* name) { return register_stage(name); }

void enable() {
  raise_source(1);  // at least fallback from now on
  g_enabled.store(true, std::memory_order_release);
  (void)read_thread_sample();  // probe the calling thread eagerly
}

void disable() { g_enabled.store(false, std::memory_order_release); }

bool enabled() noexcept { return g_enabled.load(std::memory_order_acquire); }

const char* source() noexcept {
  switch (g_source.load(std::memory_order_relaxed)) {
    case 2:
      return "perf_event";
    case 1:
      return "fallback";
    default:
      return "off";
  }
}

Sample read_thread_sample() {
  Sample sample;
  if (!enabled()) return sample;
  if (!t_group.probed) t_group.probe();
  if (t_group.hardware && !t_group.read_group(sample)) {
    // A group that stops reading (fd revoked) degrades like a refused open.
    t_group.close_all();
    t_group.probed = true;
    raise_source(1);
  }
  sample.task_clock_ns = thread_cputime_ns();
  return sample;
}

StageScope::StageScope(StageCounters& counters) noexcept
    : counters_(&counters) {
  if (!enabled()) return;
  begin_ = read_thread_sample();
  active_ = true;
}

StageScope::~StageScope() {
  if (!active_) return;
  const Sample end = read_thread_sample();
  counters_->scopes.add(1);
  counters_->cycles.add(end.cycles - begin_.cycles);
  counters_->instructions.add(end.instructions - begin_.instructions);
  counters_->cache_misses.add(end.cache_misses - begin_.cache_misses);
  counters_->branch_misses.add(end.branch_misses - begin_.branch_misses);
  counters_->task_clock_ns.add(end.task_clock_ns - begin_.task_clock_ns);
}

void set_open_fn_for_testing(OpenFn fn) {
  g_open_fn.store(fn, std::memory_order_release);
}

void reset_thread_for_testing(bool reset_source) {
  t_group.close_all();
  if (reset_source) {
    g_source.store(enabled() ? 1 : 0, std::memory_order_relaxed);
  }
}

}  // namespace omega::util::perf
