#include "util/progress.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

namespace omega::util {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_duration(std::ostringstream& out, double seconds) {
  if (seconds >= 3600.0) {
    out << static_cast<long long>(seconds / 3600.0) << "h"
        << static_cast<long long>(seconds / 60.0) % 60 << "m";
  } else if (seconds >= 60.0) {
    out << static_cast<long long>(seconds / 60.0) << "m"
        << static_cast<long long>(seconds) % 60 << "s";
  } else {
    out.precision(1);
    out << std::fixed << seconds << "s";
  }
}

}  // namespace

std::string ProgressUpdate::line() const {
  std::ostringstream out;
  out << "[scan] " << positions_done;
  if (positions_total > 0) out << "/" << positions_total;
  out << " positions";
  if (chunks_total > 0) {
    out << ", chunk " << chunks_done << "/" << chunks_total;
  }
  if (positions_per_second > 0.0) {
    out.precision(positions_per_second < 10.0 ? 2 : 0);
    out << std::fixed << ", " << positions_per_second << " pos/s";
  }
  if (!final) {
    if (eta_seconds >= 0.0) {
      out << ", ETA ";
      append_duration(out, eta_seconds);
    } else if (positions_total > 0) {
      // The total is known but the measured rate is still zero (typically
      // the begin() update, before the first position lands): show an
      // explicit placeholder rather than dropping the field or extrapolating
      // from a meaningless rate.
      out << ", ETA —";
    }
  }
  if (final) {
    out << ", done in ";
    append_duration(out, elapsed_seconds);
  }
  if (faults > 0) out << ", faults " << faults;
  if (quarantined > 0) out << ", quarantined " << quarantined;
  return out.str();
}

ProgressReporter::ProgressReporter(Sink sink, double interval_seconds,
                                   Clock clock)
    : sink_(std::move(sink)),
      clock_(clock ? std::move(clock) : Clock(&steady_seconds)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 0.0) {}

void ProgressReporter::begin(std::uint64_t positions_total,
                             std::uint64_t chunks_total,
                             std::uint64_t positions_resumed,
                             std::uint64_t chunks_resumed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  start_time_ = clock_();
  last_emit_time_ = start_time_;
  started_ = true;
  active_ = true;
  state_ = ProgressUpdate{};
  state_.positions_total = positions_total;
  state_.chunks_total = chunks_total;
  state_.positions_done = positions_resumed;
  state_.chunks_done = chunks_resumed;
  baseline_positions_ = positions_resumed;
  emit_locked(/*final=*/false);
}

void ProgressReporter::advance(const Delta& delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!started_) {  // tolerate driver paths that never called begin()
    start_time_ = clock_();
    last_emit_time_ = start_time_ - interval_seconds_;  // emit on first call
    started_ = true;
    active_ = true;
  }
  state_.positions_done += delta.positions;
  state_.chunks_done += delta.chunks;
  state_.faults += delta.faults;
  state_.quarantined += delta.quarantined;
  const double now = clock_();
  if (now - last_emit_time_ >= interval_seconds_) {
    emit_locked(/*final=*/false);
  }
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) return;
  active_ = false;
  emit_locked(/*final=*/true);
}

std::uint64_t ProgressReporter::emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

ProgressUpdate ProgressReporter::last_update() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void ProgressReporter::emit_locked(bool final) {
  const double now = clock_();
  state_.elapsed_seconds = now - start_time_;
  state_.final = final;
  const std::uint64_t done_this_run =
      state_.positions_done > baseline_positions_
          ? state_.positions_done - baseline_positions_
          : 0;
  state_.positions_per_second =
      state_.elapsed_seconds > 0.0
          ? static_cast<double>(done_this_run) / state_.elapsed_seconds
          : 0.0;
  if (!final && state_.positions_total > 0 &&
      state_.positions_per_second > 0.0 &&
      state_.positions_done <= state_.positions_total) {
    state_.eta_seconds =
        static_cast<double>(state_.positions_total - state_.positions_done) /
        state_.positions_per_second;
  } else {
    state_.eta_seconds = -1.0;
  }
  last_emit_time_ = now;
  ++emitted_;
  if (sink_) sink_(state_);
}

ProgressReporter::Sink ProgressReporter::stderr_sink() {
  return [](const ProgressUpdate& update) {
    std::fprintf(stderr, "%s\n", update.line().c_str());
  };
}

}  // namespace omega::util
