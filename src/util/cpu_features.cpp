#include "util/cpu_features.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#include <cpuid.h>
#endif

namespace omega::util {
namespace {

CpuFeatures detect() noexcept {
  CpuFeatures features;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = detect();
  return features;
}

bool cpu_has_avx2_fma() noexcept {
  const CpuFeatures& features = cpu_features();
  return features.avx2 && features.fma;
}

std::string cpu_isa_summary() {
  const CpuFeatures& features = cpu_features();
  if (features.avx2 && features.fma) return "avx2+fma";
  if (features.avx2) return "avx2";
  if (features.fma) return "fma";
  return "baseline";
}

std::string cpu_model() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // CPUID leaves 0x80000002..4 spell out the 48-byte brand string.
  if (__get_cpuid_max(0x80000000U, nullptr) < 0x80000004U) return "unknown";
  unsigned int regs[12] = {};
  for (unsigned int leaf = 0; leaf < 3; ++leaf) {
    __get_cpuid(0x80000002U + leaf, &regs[leaf * 4 + 0], &regs[leaf * 4 + 1],
                &regs[leaf * 4 + 2], &regs[leaf * 4 + 3]);
  }
  char raw[49] = {};
  for (unsigned int i = 0; i < 12; ++i) {
    raw[i * 4 + 0] = static_cast<char>(regs[i] & 0xFF);
    raw[i * 4 + 1] = static_cast<char>((regs[i] >> 8) & 0xFF);
    raw[i * 4 + 2] = static_cast<char>((regs[i] >> 16) & 0xFF);
    raw[i * 4 + 3] = static_cast<char>((regs[i] >> 24) & 0xFF);
  }
  // Normalize: collapse runs of spaces, trim both ends.
  std::string model;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (*p == ' ' && (model.empty() || model.back() == ' ')) continue;
    model.push_back(*p);
  }
  while (!model.empty() && model.back() == ' ') model.pop_back();
  return model.empty() ? "unknown" : model;
#else
  return "unknown";
#endif
}

}  // namespace omega::util
