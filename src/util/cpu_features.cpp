#include "util/cpu_features.h"

namespace omega::util {
namespace {

CpuFeatures detect() noexcept {
  CpuFeatures features;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = detect();
  return features;
}

bool cpu_has_avx2_fma() noexcept {
  const CpuFeatures& features = cpu_features();
  return features.avx2 && features.fma;
}

std::string cpu_isa_summary() {
  const CpuFeatures& features = cpu_features();
  if (features.avx2 && features.fma) return "avx2+fma";
  if (features.avx2) return "avx2";
  if (features.fma) return "fma";
  return "baseline";
}

}  // namespace omega::util
