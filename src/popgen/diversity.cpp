#include "popgen/diversity.h"

#include <cmath>

#include "util/stats.h"

namespace omega::popgen {
namespace {

/// Per-site contribution to pi: 2 * k * (n - k) / (n * (n - 1)) for k
/// derived among n valid calls.
double site_pi(std::size_t derived, std::size_t valid) {
  if (valid < 2) return 0.0;
  const double n = static_cast<double>(valid);
  const double k = static_cast<double>(derived);
  return 2.0 * k * (n - k) / (n * (n - 1.0));
}

}  // namespace

std::vector<std::uint64_t> site_frequency_spectrum(const io::Dataset& dataset) {
  const std::size_t n = dataset.num_samples();
  std::vector<std::uint64_t> spectrum(n > 1 ? n - 1 : 0, 0);
  for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
    const std::size_t derived = dataset.derived_count(s);
    if (derived == 0 || derived >= n) continue;
    ++spectrum[derived - 1];
  }
  return spectrum;
}

double nucleotide_diversity(const io::Dataset& dataset) {
  double total = 0.0;
  for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
    total += site_pi(dataset.derived_count(s), dataset.valid_count(s));
  }
  return total;
}

double watterson_theta(const io::Dataset& dataset) {
  const std::size_t n = dataset.num_samples();
  if (n < 2) return 0.0;
  return static_cast<double>(dataset.num_sites()) / util::harmonic(n - 1);
}

double tajimas_d(const io::Dataset& dataset) {
  const std::size_t n = dataset.num_samples();
  const auto segregating = static_cast<double>(dataset.num_sites());
  if (n < 3 || segregating < 3.0) return 0.0;

  // Tajima (1989) constants.
  const double a1 = util::harmonic(n - 1);
  double a2 = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    a2 += 1.0 / (static_cast<double>(i) * static_cast<double>(i));
  }
  const double nn = static_cast<double>(n);
  const double b1 = (nn + 1.0) / (3.0 * (nn - 1.0));
  const double b2 = 2.0 * (nn * nn + nn + 3.0) / (9.0 * nn * (nn - 1.0));
  const double c1 = b1 - 1.0 / a1;
  const double c2 = b2 - (nn + 2.0) / (a1 * nn) + a2 / (a1 * a1);
  const double e1 = c1 / a1;
  const double e2 = c2 / (a1 * a1 + a2);

  const double difference = nucleotide_diversity(dataset) - segregating / a1;
  const double variance = e1 * segregating + e2 * segregating * (segregating - 1.0);
  if (variance <= 0.0) return 0.0;
  return difference / std::sqrt(variance);
}

std::vector<WindowStats> windowed_stats(const io::Dataset& dataset,
                                        std::int64_t window_bp,
                                        std::int64_t step_bp) {
  std::vector<WindowStats> windows;
  if (window_bp <= 0 || step_bp <= 0) return windows;
  const std::int64_t length = dataset.locus_length_bp();
  for (std::int64_t start = 0; start + window_bp <= length; start += step_bp) {
    const auto slice = dataset.slice_bp(start, start + window_bp);
    WindowStats stats;
    stats.start_bp = start;
    stats.end_bp = start + window_bp;
    stats.segregating_sites = slice.num_sites();
    stats.pi = nucleotide_diversity(slice);
    stats.tajimas_d = tajimas_d(slice);
    windows.push_back(stats);
  }
  return windows;
}

}  // namespace omega::popgen
