#pragma once
// Classical population-genetic summary statistics. The selective sweep
// theory (paper §II) lists three signatures around a beneficial mutation:
//   a) reduced genetic variation            -> pi, Watterson's theta
//   b) SFS shift toward low/high-frequency  -> site frequency spectrum,
//      derived variants                        Tajima's D
//   c) the LD pattern                        -> the omega statistic (core/)
// This module provides (a) and (b) so examples and analyses can show all
// three signatures side by side, and so the simulator substrate can be
// validated against their neutral expectations (E[pi] = E[theta_W] = theta,
// E[Tajima's D] ~ 0).

#include <cstdint>
#include <vector>

#include "io/dataset.h"

namespace omega::popgen {

/// Unfolded site frequency spectrum: entry k-1 counts sites where exactly k
/// of the valid samples carry the derived allele (k = 1 .. n-1). Sites with
/// missing data contribute to the bin of their derived count among valid
/// calls, matching the pairwise-complete convention used elsewhere.
std::vector<std::uint64_t> site_frequency_spectrum(const io::Dataset& dataset);

/// Nucleotide diversity: mean pairwise difference count over all sample
/// pairs, summed across sites (an estimator of theta under neutrality).
double nucleotide_diversity(const io::Dataset& dataset);

/// Watterson's estimator: S / H_{n-1}.
double watterson_theta(const io::Dataset& dataset);

/// Tajima's D with the standard variance normalization (Tajima 1989).
/// Returns 0 when undefined (fewer than 3 segregating sites or samples).
double tajimas_d(const io::Dataset& dataset);

/// Per-window statistics along the genome (windows of `window_bp`, stepped
/// by `step_bp`), for landscape plots next to the omega landscape.
struct WindowStats {
  std::int64_t start_bp = 0;
  std::int64_t end_bp = 0;
  std::size_t segregating_sites = 0;
  double pi = 0.0;
  double tajimas_d = 0.0;
};

std::vector<WindowStats> windowed_stats(const io::Dataset& dataset,
                                        std::int64_t window_bp,
                                        std::int64_t step_bp);

}  // namespace omega::popgen
