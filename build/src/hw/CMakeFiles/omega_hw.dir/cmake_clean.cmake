file(REMOVE_RECURSE
  "CMakeFiles/omega_hw.dir/device_specs.cpp.o"
  "CMakeFiles/omega_hw.dir/device_specs.cpp.o.d"
  "CMakeFiles/omega_hw.dir/fpga/cycle_model.cpp.o"
  "CMakeFiles/omega_hw.dir/fpga/cycle_model.cpp.o.d"
  "CMakeFiles/omega_hw.dir/fpga/fpga_backend.cpp.o"
  "CMakeFiles/omega_hw.dir/fpga/fpga_backend.cpp.o.d"
  "CMakeFiles/omega_hw.dir/fpga/pipeline.cpp.o"
  "CMakeFiles/omega_hw.dir/fpga/pipeline.cpp.o.d"
  "CMakeFiles/omega_hw.dir/fpga/resource_model.cpp.o"
  "CMakeFiles/omega_hw.dir/fpga/resource_model.cpp.o.d"
  "CMakeFiles/omega_hw.dir/fpga/scheduler.cpp.o"
  "CMakeFiles/omega_hw.dir/fpga/scheduler.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/gemm_ld_kernel.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/gemm_ld_kernel.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/gpu_backend.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/gpu_backend.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/ndrange.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/ndrange.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/omega_kernels.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/omega_kernels.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/runtime.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/runtime.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/timeline_pipeline.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/timeline_pipeline.cpp.o.d"
  "CMakeFiles/omega_hw.dir/gpu/timing_model.cpp.o"
  "CMakeFiles/omega_hw.dir/gpu/timing_model.cpp.o.d"
  "CMakeFiles/omega_hw.dir/ld_models.cpp.o"
  "CMakeFiles/omega_hw.dir/ld_models.cpp.o.d"
  "libomega_hw.a"
  "libomega_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
