file(REMOVE_RECURSE
  "libomega_hw.a"
)
