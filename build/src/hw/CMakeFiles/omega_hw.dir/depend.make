# Empty dependencies file for omega_hw.
# This may be replaced when dependencies are built.
