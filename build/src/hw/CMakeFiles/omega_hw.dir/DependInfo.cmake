
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device_specs.cpp" "src/hw/CMakeFiles/omega_hw.dir/device_specs.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/device_specs.cpp.o.d"
  "/root/repo/src/hw/fpga/cycle_model.cpp" "src/hw/CMakeFiles/omega_hw.dir/fpga/cycle_model.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/fpga/cycle_model.cpp.o.d"
  "/root/repo/src/hw/fpga/fpga_backend.cpp" "src/hw/CMakeFiles/omega_hw.dir/fpga/fpga_backend.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/fpga/fpga_backend.cpp.o.d"
  "/root/repo/src/hw/fpga/pipeline.cpp" "src/hw/CMakeFiles/omega_hw.dir/fpga/pipeline.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/fpga/pipeline.cpp.o.d"
  "/root/repo/src/hw/fpga/resource_model.cpp" "src/hw/CMakeFiles/omega_hw.dir/fpga/resource_model.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/fpga/resource_model.cpp.o.d"
  "/root/repo/src/hw/fpga/scheduler.cpp" "src/hw/CMakeFiles/omega_hw.dir/fpga/scheduler.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/fpga/scheduler.cpp.o.d"
  "/root/repo/src/hw/gpu/gemm_ld_kernel.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/gemm_ld_kernel.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/gemm_ld_kernel.cpp.o.d"
  "/root/repo/src/hw/gpu/gpu_backend.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/gpu_backend.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/gpu_backend.cpp.o.d"
  "/root/repo/src/hw/gpu/ndrange.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/ndrange.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/ndrange.cpp.o.d"
  "/root/repo/src/hw/gpu/omega_kernels.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/omega_kernels.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/omega_kernels.cpp.o.d"
  "/root/repo/src/hw/gpu/runtime.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/runtime.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/runtime.cpp.o.d"
  "/root/repo/src/hw/gpu/timeline_pipeline.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/timeline_pipeline.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/timeline_pipeline.cpp.o.d"
  "/root/repo/src/hw/gpu/timing_model.cpp" "src/hw/CMakeFiles/omega_hw.dir/gpu/timing_model.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/gpu/timing_model.cpp.o.d"
  "/root/repo/src/hw/ld_models.cpp" "src/hw/CMakeFiles/omega_hw.dir/ld_models.cpp.o" "gcc" "src/hw/CMakeFiles/omega_hw.dir/ld_models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/omega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/omega_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ld/CMakeFiles/omega_ld.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
