# Empty compiler generated dependencies file for omega_io.
# This may be replaced when dependencies are built.
