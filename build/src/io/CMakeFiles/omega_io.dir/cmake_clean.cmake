file(REMOVE_RECURSE
  "CMakeFiles/omega_io.dir/dataset.cpp.o"
  "CMakeFiles/omega_io.dir/dataset.cpp.o.d"
  "CMakeFiles/omega_io.dir/fasta.cpp.o"
  "CMakeFiles/omega_io.dir/fasta.cpp.o.d"
  "CMakeFiles/omega_io.dir/ms_format.cpp.o"
  "CMakeFiles/omega_io.dir/ms_format.cpp.o.d"
  "CMakeFiles/omega_io.dir/plink.cpp.o"
  "CMakeFiles/omega_io.dir/plink.cpp.o.d"
  "CMakeFiles/omega_io.dir/vcf_lite.cpp.o"
  "CMakeFiles/omega_io.dir/vcf_lite.cpp.o.d"
  "libomega_io.a"
  "libomega_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
