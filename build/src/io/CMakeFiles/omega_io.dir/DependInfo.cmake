
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dataset.cpp" "src/io/CMakeFiles/omega_io.dir/dataset.cpp.o" "gcc" "src/io/CMakeFiles/omega_io.dir/dataset.cpp.o.d"
  "/root/repo/src/io/fasta.cpp" "src/io/CMakeFiles/omega_io.dir/fasta.cpp.o" "gcc" "src/io/CMakeFiles/omega_io.dir/fasta.cpp.o.d"
  "/root/repo/src/io/ms_format.cpp" "src/io/CMakeFiles/omega_io.dir/ms_format.cpp.o" "gcc" "src/io/CMakeFiles/omega_io.dir/ms_format.cpp.o.d"
  "/root/repo/src/io/plink.cpp" "src/io/CMakeFiles/omega_io.dir/plink.cpp.o" "gcc" "src/io/CMakeFiles/omega_io.dir/plink.cpp.o.d"
  "/root/repo/src/io/vcf_lite.cpp" "src/io/CMakeFiles/omega_io.dir/vcf_lite.cpp.o" "gcc" "src/io/CMakeFiles/omega_io.dir/vcf_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
