file(REMOVE_RECURSE
  "libomega_io.a"
)
