
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/coalescent.cpp" "src/sim/CMakeFiles/omega_sim.dir/coalescent.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/coalescent.cpp.o.d"
  "/root/repo/src/sim/dataset_factory.cpp" "src/sim/CMakeFiles/omega_sim.dir/dataset_factory.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/dataset_factory.cpp.o.d"
  "/root/repo/src/sim/demography.cpp" "src/sim/CMakeFiles/omega_sim.dir/demography.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/demography.cpp.o.d"
  "/root/repo/src/sim/sweep_coalescent.cpp" "src/sim/CMakeFiles/omega_sim.dir/sweep_coalescent.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/sweep_coalescent.cpp.o.d"
  "/root/repo/src/sim/sweep_overlay.cpp" "src/sim/CMakeFiles/omega_sim.dir/sweep_overlay.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/sweep_overlay.cpp.o.d"
  "/root/repo/src/sim/tree.cpp" "src/sim/CMakeFiles/omega_sim.dir/tree.cpp.o" "gcc" "src/sim/CMakeFiles/omega_sim.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
