file(REMOVE_RECURSE
  "libomega_sim.a"
)
