file(REMOVE_RECURSE
  "CMakeFiles/omega_sim.dir/coalescent.cpp.o"
  "CMakeFiles/omega_sim.dir/coalescent.cpp.o.d"
  "CMakeFiles/omega_sim.dir/dataset_factory.cpp.o"
  "CMakeFiles/omega_sim.dir/dataset_factory.cpp.o.d"
  "CMakeFiles/omega_sim.dir/demography.cpp.o"
  "CMakeFiles/omega_sim.dir/demography.cpp.o.d"
  "CMakeFiles/omega_sim.dir/sweep_coalescent.cpp.o"
  "CMakeFiles/omega_sim.dir/sweep_coalescent.cpp.o.d"
  "CMakeFiles/omega_sim.dir/sweep_overlay.cpp.o"
  "CMakeFiles/omega_sim.dir/sweep_overlay.cpp.o.d"
  "CMakeFiles/omega_sim.dir/tree.cpp.o"
  "CMakeFiles/omega_sim.dir/tree.cpp.o.d"
  "libomega_sim.a"
  "libomega_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
