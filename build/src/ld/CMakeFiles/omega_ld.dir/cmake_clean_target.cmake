file(REMOVE_RECURSE
  "libomega_ld.a"
)
