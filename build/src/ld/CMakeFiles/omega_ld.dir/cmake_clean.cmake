file(REMOVE_RECURSE
  "CMakeFiles/omega_ld.dir/gemm.cpp.o"
  "CMakeFiles/omega_ld.dir/gemm.cpp.o.d"
  "CMakeFiles/omega_ld.dir/ld_engine.cpp.o"
  "CMakeFiles/omega_ld.dir/ld_engine.cpp.o.d"
  "CMakeFiles/omega_ld.dir/ld_stats.cpp.o"
  "CMakeFiles/omega_ld.dir/ld_stats.cpp.o.d"
  "CMakeFiles/omega_ld.dir/r2.cpp.o"
  "CMakeFiles/omega_ld.dir/r2.cpp.o.d"
  "CMakeFiles/omega_ld.dir/snp_matrix.cpp.o"
  "CMakeFiles/omega_ld.dir/snp_matrix.cpp.o.d"
  "libomega_ld.a"
  "libomega_ld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_ld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
