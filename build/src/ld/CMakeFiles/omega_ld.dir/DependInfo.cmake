
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ld/gemm.cpp" "src/ld/CMakeFiles/omega_ld.dir/gemm.cpp.o" "gcc" "src/ld/CMakeFiles/omega_ld.dir/gemm.cpp.o.d"
  "/root/repo/src/ld/ld_engine.cpp" "src/ld/CMakeFiles/omega_ld.dir/ld_engine.cpp.o" "gcc" "src/ld/CMakeFiles/omega_ld.dir/ld_engine.cpp.o.d"
  "/root/repo/src/ld/ld_stats.cpp" "src/ld/CMakeFiles/omega_ld.dir/ld_stats.cpp.o" "gcc" "src/ld/CMakeFiles/omega_ld.dir/ld_stats.cpp.o.d"
  "/root/repo/src/ld/r2.cpp" "src/ld/CMakeFiles/omega_ld.dir/r2.cpp.o" "gcc" "src/ld/CMakeFiles/omega_ld.dir/r2.cpp.o.d"
  "/root/repo/src/ld/snp_matrix.cpp" "src/ld/CMakeFiles/omega_ld.dir/snp_matrix.cpp.o" "gcc" "src/ld/CMakeFiles/omega_ld.dir/snp_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/omega_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
