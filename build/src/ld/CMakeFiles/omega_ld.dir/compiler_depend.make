# Empty compiler generated dependencies file for omega_ld.
# This may be replaced when dependencies are built.
