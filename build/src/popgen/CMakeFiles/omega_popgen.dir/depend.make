# Empty dependencies file for omega_popgen.
# This may be replaced when dependencies are built.
