file(REMOVE_RECURSE
  "libomega_popgen.a"
)
