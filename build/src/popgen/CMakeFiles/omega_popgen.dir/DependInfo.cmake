
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/popgen/diversity.cpp" "src/popgen/CMakeFiles/omega_popgen.dir/diversity.cpp.o" "gcc" "src/popgen/CMakeFiles/omega_popgen.dir/diversity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
