file(REMOVE_RECURSE
  "CMakeFiles/omega_popgen.dir/diversity.cpp.o"
  "CMakeFiles/omega_popgen.dir/diversity.cpp.o.d"
  "libomega_popgen.a"
  "libomega_popgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_popgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
