file(REMOVE_RECURSE
  "libomega_util.a"
)
