# Empty compiler generated dependencies file for omega_util.
# This may be replaced when dependencies are built.
