file(REMOVE_RECURSE
  "CMakeFiles/omega_util.dir/cli.cpp.o"
  "CMakeFiles/omega_util.dir/cli.cpp.o.d"
  "CMakeFiles/omega_util.dir/prng.cpp.o"
  "CMakeFiles/omega_util.dir/prng.cpp.o.d"
  "CMakeFiles/omega_util.dir/stats.cpp.o"
  "CMakeFiles/omega_util.dir/stats.cpp.o.d"
  "CMakeFiles/omega_util.dir/svg.cpp.o"
  "CMakeFiles/omega_util.dir/svg.cpp.o.d"
  "CMakeFiles/omega_util.dir/table.cpp.o"
  "CMakeFiles/omega_util.dir/table.cpp.o.d"
  "libomega_util.a"
  "libomega_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
