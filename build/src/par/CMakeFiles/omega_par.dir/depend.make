# Empty dependencies file for omega_par.
# This may be replaced when dependencies are built.
