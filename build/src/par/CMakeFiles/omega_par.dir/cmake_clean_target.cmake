file(REMOVE_RECURSE
  "libomega_par.a"
)
