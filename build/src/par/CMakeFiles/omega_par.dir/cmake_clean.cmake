file(REMOVE_RECURSE
  "CMakeFiles/omega_par.dir/thread_pool.cpp.o"
  "CMakeFiles/omega_par.dir/thread_pool.cpp.o.d"
  "libomega_par.a"
  "libomega_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
