file(REMOVE_RECURSE
  "CMakeFiles/omega_core.dir/dp_matrix.cpp.o"
  "CMakeFiles/omega_core.dir/dp_matrix.cpp.o.d"
  "CMakeFiles/omega_core.dir/grid.cpp.o"
  "CMakeFiles/omega_core.dir/grid.cpp.o.d"
  "CMakeFiles/omega_core.dir/integer_method.cpp.o"
  "CMakeFiles/omega_core.dir/integer_method.cpp.o.d"
  "CMakeFiles/omega_core.dir/metrics_json.cpp.o"
  "CMakeFiles/omega_core.dir/metrics_json.cpp.o.d"
  "CMakeFiles/omega_core.dir/omega_search.cpp.o"
  "CMakeFiles/omega_core.dir/omega_search.cpp.o.d"
  "CMakeFiles/omega_core.dir/reference.cpp.o"
  "CMakeFiles/omega_core.dir/reference.cpp.o.d"
  "CMakeFiles/omega_core.dir/regions.cpp.o"
  "CMakeFiles/omega_core.dir/regions.cpp.o.d"
  "CMakeFiles/omega_core.dir/report.cpp.o"
  "CMakeFiles/omega_core.dir/report.cpp.o.d"
  "CMakeFiles/omega_core.dir/scanner.cpp.o"
  "CMakeFiles/omega_core.dir/scanner.cpp.o.d"
  "CMakeFiles/omega_core.dir/workload.cpp.o"
  "CMakeFiles/omega_core.dir/workload.cpp.o.d"
  "libomega_core.a"
  "libomega_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
