
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dp_matrix.cpp" "src/core/CMakeFiles/omega_core.dir/dp_matrix.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/dp_matrix.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "src/core/CMakeFiles/omega_core.dir/grid.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/grid.cpp.o.d"
  "/root/repo/src/core/integer_method.cpp" "src/core/CMakeFiles/omega_core.dir/integer_method.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/integer_method.cpp.o.d"
  "/root/repo/src/core/metrics_json.cpp" "src/core/CMakeFiles/omega_core.dir/metrics_json.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/metrics_json.cpp.o.d"
  "/root/repo/src/core/omega_search.cpp" "src/core/CMakeFiles/omega_core.dir/omega_search.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/omega_search.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/core/CMakeFiles/omega_core.dir/reference.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/reference.cpp.o.d"
  "/root/repo/src/core/regions.cpp" "src/core/CMakeFiles/omega_core.dir/regions.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/regions.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/omega_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/report.cpp.o.d"
  "/root/repo/src/core/scanner.cpp" "src/core/CMakeFiles/omega_core.dir/scanner.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/scanner.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/omega_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/omega_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ld/CMakeFiles/omega_ld.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/omega_par.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
