file(REMOVE_RECURSE
  "CMakeFiles/omega_sweep.dir/detector.cpp.o"
  "CMakeFiles/omega_sweep.dir/detector.cpp.o.d"
  "libomega_sweep.a"
  "libomega_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
