# Empty dependencies file for omega_sweep.
# This may be replaced when dependencies are built.
