file(REMOVE_RECURSE
  "libomega_sweep.a"
)
