file(REMOVE_RECURSE
  "CMakeFiles/bench_integer_baseline.dir/bench_integer_baseline.cpp.o"
  "CMakeFiles/bench_integer_baseline.dir/bench_integer_baseline.cpp.o.d"
  "bench_integer_baseline"
  "bench_integer_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integer_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
