# Empty compiler generated dependencies file for bench_integer_baseline.
# This may be replaced when dependencies are built.
