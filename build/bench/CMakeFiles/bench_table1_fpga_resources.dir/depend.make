# Empty dependencies file for bench_table1_fpga_resources.
# This may be replaced when dependencies are built.
