
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_kernels.cpp" "bench/CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_kernels.dir/bench_micro_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/omega_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/omega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/popgen/CMakeFiles/omega_popgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/omega_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/omega_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/omega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ld/CMakeFiles/omega_ld.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/omega_par.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
