# Empty compiler generated dependencies file for bench_fig10_fpga_zcu102.
# This may be replaced when dependencies are built.
