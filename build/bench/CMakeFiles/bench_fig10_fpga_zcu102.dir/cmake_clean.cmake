file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fpga_zcu102.dir/bench_fig10_fpga_zcu102.cpp.o"
  "CMakeFiles/bench_fig10_fpga_zcu102.dir/bench_fig10_fpga_zcu102.cpp.o.d"
  "bench_fig10_fpga_zcu102"
  "bench_fig10_fpga_zcu102.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fpga_zcu102.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
