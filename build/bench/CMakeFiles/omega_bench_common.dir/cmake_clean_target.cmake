file(REMOVE_RECURSE
  "libomega_bench_common.a"
)
