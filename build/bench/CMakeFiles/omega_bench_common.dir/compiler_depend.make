# Empty compiler generated dependencies file for omega_bench_common.
# This may be replaced when dependencies are built.
