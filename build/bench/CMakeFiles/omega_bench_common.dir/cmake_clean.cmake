file(REMOVE_RECURSE
  "CMakeFiles/omega_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/omega_bench_common.dir/bench_common.cpp.o.d"
  "CMakeFiles/omega_bench_common.dir/bench_fpga_throughput.cpp.o"
  "CMakeFiles/omega_bench_common.dir/bench_fpga_throughput.cpp.o.d"
  "libomega_bench_common.a"
  "libomega_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
