file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_multithreaded.dir/bench_table4_multithreaded.cpp.o"
  "CMakeFiles/bench_table4_multithreaded.dir/bench_table4_multithreaded.cpp.o.d"
  "bench_table4_multithreaded"
  "bench_table4_multithreaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_multithreaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
