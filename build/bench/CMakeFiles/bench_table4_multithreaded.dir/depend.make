# Empty dependencies file for bench_table4_multithreaded.
# This may be replaced when dependencies are built.
