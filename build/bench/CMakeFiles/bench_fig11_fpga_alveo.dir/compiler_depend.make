# Empty compiler generated dependencies file for bench_fig11_fpga_alveo.
# This may be replaced when dependencies are built.
