file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fpga_alveo.dir/bench_fig11_fpga_alveo.cpp.o"
  "CMakeFiles/bench_fig11_fpga_alveo.dir/bench_fig11_fpga_alveo.cpp.o.d"
  "bench_fig11_fpga_alveo"
  "bench_fig11_fpga_alveo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fpga_alveo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
