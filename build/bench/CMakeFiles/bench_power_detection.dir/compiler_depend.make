# Empty compiler generated dependencies file for bench_power_detection.
# This may be replaced when dependencies are built.
