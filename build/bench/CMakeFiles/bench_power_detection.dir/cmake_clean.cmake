file(REMOVE_RECURSE
  "CMakeFiles/bench_power_detection.dir/bench_power_detection.cpp.o"
  "CMakeFiles/bench_power_detection.dir/bench_power_detection.cpp.o.d"
  "bench_power_detection"
  "bench_power_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
