
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/omega_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_fpga.cpp" "tests/CMakeFiles/omega_tests.dir/test_fpga.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_fpga.cpp.o.d"
  "/root/repo/tests/test_fuzz_parsers.cpp" "tests/CMakeFiles/omega_tests.dir/test_fuzz_parsers.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_fuzz_parsers.cpp.o.d"
  "/root/repo/tests/test_gpu.cpp" "tests/CMakeFiles/omega_tests.dir/test_gpu.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_gpu.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/omega_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_ld.cpp" "tests/CMakeFiles/omega_tests.dir/test_ld.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_ld.cpp.o.d"
  "/root/repo/tests/test_ld_stats.cpp" "tests/CMakeFiles/omega_tests.dir/test_ld_stats.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_ld_stats.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/omega_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_par.cpp" "tests/CMakeFiles/omega_tests.dir/test_par.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_par.cpp.o.d"
  "/root/repo/tests/test_popgen.cpp" "tests/CMakeFiles/omega_tests.dir/test_popgen.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_popgen.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/omega_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regions.cpp" "tests/CMakeFiles/omega_tests.dir/test_regions.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_regions.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/omega_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/omega_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scanner.cpp" "tests/CMakeFiles/omega_tests.dir/test_scanner.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_scanner.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/omega_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/omega_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_svg.cpp" "tests/CMakeFiles/omega_tests.dir/test_svg.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_svg.cpp.o.d"
  "/root/repo/tests/test_sweep.cpp" "tests/CMakeFiles/omega_tests.dir/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/test_sweep_coalescent.cpp" "tests/CMakeFiles/omega_tests.dir/test_sweep_coalescent.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_sweep_coalescent.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/omega_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/omega_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/omega_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/popgen/CMakeFiles/omega_popgen.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/omega_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/omega_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/omega_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ld/CMakeFiles/omega_ld.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/omega_par.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/omega_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/omega_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
