# Empty compiler generated dependencies file for omega_tests.
# This may be replaced when dependencies are built.
