# Empty compiler generated dependencies file for sweep_scan.
# This may be replaced when dependencies are built.
