# Empty dependencies file for sweep_scan.
# This may be replaced when dependencies are built.
