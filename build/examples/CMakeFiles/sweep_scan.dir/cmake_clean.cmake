file(REMOVE_RECURSE
  "CMakeFiles/sweep_scan.dir/sweep_scan.cpp.o"
  "CMakeFiles/sweep_scan.dir/sweep_scan.cpp.o.d"
  "sweep_scan"
  "sweep_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
