file(REMOVE_RECURSE
  "CMakeFiles/signatures_tour.dir/signatures_tour.cpp.o"
  "CMakeFiles/signatures_tour.dir/signatures_tour.cpp.o.d"
  "signatures_tour"
  "signatures_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signatures_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
