# Empty dependencies file for signatures_tour.
# This may be replaced when dependencies are built.
