# Empty compiler generated dependencies file for convert_tool.
# This may be replaced when dependencies are built.
