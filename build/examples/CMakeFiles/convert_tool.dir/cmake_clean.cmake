file(REMOVE_RECURSE
  "CMakeFiles/convert_tool.dir/convert_tool.cpp.o"
  "CMakeFiles/convert_tool.dir/convert_tool.cpp.o.d"
  "convert_tool"
  "convert_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
