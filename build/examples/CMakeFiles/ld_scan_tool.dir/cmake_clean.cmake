file(REMOVE_RECURSE
  "CMakeFiles/ld_scan_tool.dir/ld_scan_tool.cpp.o"
  "CMakeFiles/ld_scan_tool.dir/ld_scan_tool.cpp.o.d"
  "ld_scan_tool"
  "ld_scan_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_scan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
