# Empty dependencies file for ld_scan_tool.
# This may be replaced when dependencies are built.
