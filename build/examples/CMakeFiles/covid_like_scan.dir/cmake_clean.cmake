file(REMOVE_RECURSE
  "CMakeFiles/covid_like_scan.dir/covid_like_scan.cpp.o"
  "CMakeFiles/covid_like_scan.dir/covid_like_scan.cpp.o.d"
  "covid_like_scan"
  "covid_like_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_like_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
