# Empty compiler generated dependencies file for covid_like_scan.
# This may be replaced when dependencies are built.
