# Empty dependencies file for omegaplus_scan.
# This may be replaced when dependencies are built.
