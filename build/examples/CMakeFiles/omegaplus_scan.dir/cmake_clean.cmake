file(REMOVE_RECURSE
  "CMakeFiles/omegaplus_scan.dir/omegaplus_scan.cpp.o"
  "CMakeFiles/omegaplus_scan.dir/omegaplus_scan.cpp.o.d"
  "omegaplus_scan"
  "omegaplus_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omegaplus_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
