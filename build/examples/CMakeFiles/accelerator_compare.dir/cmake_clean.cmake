file(REMOVE_RECURSE
  "CMakeFiles/accelerator_compare.dir/accelerator_compare.cpp.o"
  "CMakeFiles/accelerator_compare.dir/accelerator_compare.cpp.o.d"
  "accelerator_compare"
  "accelerator_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
