# Empty dependencies file for accelerator_compare.
# This may be replaced when dependencies are built.
