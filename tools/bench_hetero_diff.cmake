# CTest script: run bench_hetero_split twice in separate directories and
# assert omega_metrics_diff finds no self-regression between the two
# BENCH_HETERO.json files — the CI guard that the co-scheduler numbers
# (partition tables, re-dispatch counters, modeled vs measured seconds) stay
# schema-stable and diffable. Invoked as:
#   cmake -DBENCH_BIN=... -DDIFF_BIN=... -DWORK_DIR=... -P bench_hetero_diff.cmake

foreach(var BENCH_BIN DIFF_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_hetero_diff: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/a" "${WORK_DIR}/b")

foreach(run a b)
  # The bench's own exit code reflects its hetero-vs-best-single gate, which
  # needs a multi-core host; this smoke test only requires the JSON artifact.
  execute_process(
    COMMAND "${BENCH_BIN}"
    WORKING_DIRECTORY "${WORK_DIR}/${run}"
    RESULT_VARIABLE bench_result
    OUTPUT_VARIABLE bench_output
    ERROR_VARIABLE bench_output)
  if(NOT EXISTS "${WORK_DIR}/${run}/BENCH_HETERO.json")
    message(FATAL_ERROR
      "bench_hetero_diff: run '${run}' produced no BENCH_HETERO.json "
      "(exit ${bench_result})\n${bench_output}")
  endif()
endforeach()

# Gate on the deterministic counters only: the scans are bitwise-identical
# runs of identical code, so omega_evaluations must not move at all, while
# per-worker busy seconds and partition walls legitimately swing with
# straggler re-dispatch on a loaded host (the co-scheduler shifts work
# between partitions run to run). A generous threshold and a 50 ms floor
# keep even the watched keys robust. --allow-schema-drift keeps baselines
# from a previous schema version usable (intersecting keys still gate).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_HETERO.json" "${WORK_DIR}/b/BENCH_HETERO.json"
    --threshold 1.2 --min-seconds 0.05 --allow-schema-drift
    --watch counters.omega_evaluations --watch counters.positions
  RESULT_VARIABLE diff_result
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_output)
message(STATUS "omega_metrics_diff output:\n${diff_output}")
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
    "bench_hetero_diff: self-comparison regressed (exit ${diff_result})")
endif()

# Identical inputs must be a clean pass as well (exit 0, no regression).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_HETERO.json" "${WORK_DIR}/a/BENCH_HETERO.json"
  RESULT_VARIABLE identical_result
  OUTPUT_QUIET ERROR_QUIET)
if(NOT identical_result EQUAL 0)
  message(FATAL_ERROR
    "bench_hetero_diff: identical inputs reported exit ${identical_result}")
endif()
