// omega_metrics_diff — bench-trajectory regression gate.
//
// Loads two or more metrics documents (omega.scan.metrics from --metrics-json
// or omega.bench BENCH_*.json), compares each later file against the first,
// prints a per-stage comparison table, and exits non-zero when a watched
// metric regresses beyond the threshold. Intended for CI:
//
//   omega_metrics_diff baseline/BENCH_SCAN.json current/BENCH_SCAN.json \
//       --threshold 0.2 --watch stages --watch counters
//
// Exit codes: 0 no regression; 1 regression detected; 2 usage or I/O error;
// 3 comparison refused (host blocks or schemas differ; --allow-cross-host
// overrides the host refusal).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/metrics_diff.h"
#include "core/metrics_json.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegressed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitHostMismatch = 3;

void print_usage() {
  std::fprintf(
      stderr,
      "usage: omega_metrics_diff BASELINE.json CANDIDATE.json [MORE.json...]\n"
      "                          [--threshold FRACTION] [--min-seconds S]\n"
      "                          [--watch SUBSTRING]... [--allow-cross-host]\n"
      "                          [--allow-schema-drift] [--all] [--json]\n"
      "\n"
      "Compares metrics/BENCH JSON files against the first (the baseline)\n"
      "and exits non-zero when a watched metric regresses beyond the\n"
      "threshold (default 0.20 = 20%%). --allow-schema-drift diffs only\n"
      "the intersecting metric keys when schema versions differ (host\n"
      "blocks must still match unless --allow-cross-host). --json replaces\n"
      "the table with one machine-readable omega.metrics.diff document\n"
      "(per-key deltas, per-comparison verdicts, and the exit reason).\n");
}

omega::core::metrics::JsonValue load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return omega::core::metrics::JsonValue::parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  // util::Cli rejects positional arguments, so this tool parses by hand.
  std::vector<std::string> files;
  omega::core::metrics::DiffOptions options;
  bool all = false;
  bool json_output = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return kExitOk;
    } else if (arg == "--threshold") {
      options.threshold = std::stod(value_of("--threshold"));
    } else if (arg == "--min-seconds") {
      options.min_seconds = std::stod(value_of("--min-seconds"));
    } else if (arg == "--watch") {
      options.watch.push_back(value_of("--watch"));
    } else if (arg == "--allow-cross-host") {
      options.allow_cross_host = true;
    } else if (arg == "--allow-schema-drift") {
      options.allow_schema_drift = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--json") {
      json_output = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      print_usage();
      return kExitUsage;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() < 2) {
    print_usage();
    return kExitUsage;
  }
  if (options.threshold < 0.0) {
    std::fprintf(stderr, "error: --threshold must be >= 0\n");
    return kExitUsage;
  }

  int exit_code = kExitOk;
  omega::core::metrics::JsonValue comparisons =
      omega::core::metrics::JsonValue::array();
  try {
    const omega::core::metrics::JsonValue baseline = load(files[0]);
    for (std::size_t i = 1; i < files.size(); ++i) {
      const omega::core::metrics::JsonValue candidate = load(files[i]);
      const omega::core::metrics::DiffReport report =
          omega::core::metrics::diff_metrics(baseline, candidate, options);
      if (json_output) {
        auto entry = omega::core::metrics::render_diff_json(report, all);
        entry.set("candidate_file", files[i]);
        comparisons.push_back(std::move(entry));
      } else {
        std::printf("== %s vs %s ==\n", files[0].c_str(), files[i].c_str());
        std::fputs(
            omega::core::metrics::render_diff_table(report, all).c_str(),
            stdout);
      }
      if (!report.error.empty()) {
        exit_code = std::max(exit_code, kExitHostMismatch);
        continue;
      }
      if (report.regressed) {
        if (!json_output) {
          std::printf("%zu watched metric(s) regressed beyond %.0f%%\n",
                      report.regressions(), options.threshold * 100.0);
        }
        exit_code = std::max(exit_code, kExitRegressed);
      } else if (!json_output) {
        std::printf("no regression beyond %.0f%%\n",
                    options.threshold * 100.0);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  }
  if (json_output) {
    // One top-level document wrapping every comparison so automation parses
    // a single object regardless of how many candidates were given. The
    // exit reason mirrors the process exit code.
    omega::core::metrics::JsonValue doc =
        omega::core::metrics::JsonValue::object();
    doc.set("schema", "omega.metrics.diff");
    doc.set("schema_version", 1);
    doc.set("baseline_file", files[0]);
    doc.set("threshold", options.threshold);
    doc.set("comparisons", std::move(comparisons));
    doc.set("exit_code", exit_code);
    doc.set("exit_reason", exit_code == kExitOk          ? "ok"
                           : exit_code == kExitRegressed ? "regressed"
                                                         : "refused");
    std::printf("%s\n", doc.dump().c_str());
  }
  return exit_code;
}
