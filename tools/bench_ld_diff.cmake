# CTest script: run bench_ld_engines twice in separate directories and assert
# omega_metrics_diff finds no self-regression between the two BENCH_LD.json
# files — the CI guard that the LD-engine throughput numbers (cells/s per
# engine x missing-rate x sample-count) stay schema-stable and diffable.
# Unlike bench_mt_diff, the bench's own exit code IS honored: it carries the
# packed-vs-gemm >= 5x acceptance gate, which self-disarms on hosts/binaries
# without AVX2, so a red exit is a real kernel regression. Invoked as:
#   cmake -DBENCH_BIN=... -DDIFF_BIN=... -DWORK_DIR=... -P bench_ld_diff.cmake

foreach(var BENCH_BIN DIFF_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_ld_diff: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/a" "${WORK_DIR}/b")

foreach(run a b)
  execute_process(
    COMMAND "${BENCH_BIN}"
    WORKING_DIRECTORY "${WORK_DIR}/${run}"
    RESULT_VARIABLE bench_result
    OUTPUT_VARIABLE bench_output
    ERROR_VARIABLE bench_output)
  if(NOT EXISTS "${WORK_DIR}/${run}/BENCH_LD.json")
    message(FATAL_ERROR
      "bench_ld_diff: run '${run}' produced no BENCH_LD.json "
      "(exit ${bench_result})\n${bench_output}")
  endif()
  if(NOT bench_result EQUAL 0)
    message(FATAL_ERROR
      "bench_ld_diff: run '${run}' failed its packed-vs-gemm throughput "
      "gate (exit ${bench_result})\n${bench_output}")
  endif()
endforeach()

# Generous threshold (120%) and a 50 ms floor: the two runs measure identical
# code, so only a broken diff tool / unstable schema should trip this, not
# measurement noise on short stages. --allow-schema-drift keeps baselines
# from a previous schema version usable (intersecting keys still gate).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_LD.json" "${WORK_DIR}/b/BENCH_LD.json"
    --threshold 1.2 --min-seconds 0.05 --allow-schema-drift
  RESULT_VARIABLE diff_result
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_output)
message(STATUS "omega_metrics_diff output:\n${diff_output}")
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
    "bench_ld_diff: self-comparison regressed (exit ${diff_result})")
endif()

# Identical inputs must be a clean pass as well (exit 0, no regression).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_LD.json" "${WORK_DIR}/a/BENCH_LD.json"
  RESULT_VARIABLE identical_result
  OUTPUT_QUIET ERROR_QUIET)
if(NOT identical_result EQUAL 0)
  message(FATAL_ERROR
    "bench_ld_diff: identical inputs reported exit ${identical_result}")
endif()
