# CTest script: run bench_scan_hotpath twice in separate directories and
# assert omega_metrics_diff finds no self-regression between the two
# BENCH_SCAN.json files. Invoked as:
#   cmake -DBENCH_BIN=... -DDIFF_BIN=... -DWORK_DIR=... -P bench_smoke_diff.cmake

foreach(var BENCH_BIN DIFF_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke_diff: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/a" "${WORK_DIR}/b")

foreach(run a b)
  # The bench's own exit code reflects its AVX2-speedup gate, which can be
  # red on exotic hosts; this smoke test only requires the JSON artifact.
  execute_process(
    COMMAND "${BENCH_BIN}"
    WORKING_DIRECTORY "${WORK_DIR}/${run}"
    RESULT_VARIABLE bench_result
    OUTPUT_VARIABLE bench_output
    ERROR_VARIABLE bench_output)
  if(NOT EXISTS "${WORK_DIR}/${run}/BENCH_SCAN.json")
    message(FATAL_ERROR
      "bench_smoke_diff: run '${run}' produced no BENCH_SCAN.json "
      "(exit ${bench_result})\n${bench_output}")
  endif()
endforeach()

# Generous threshold (120%) and a 50 ms floor: the two runs measure identical
# code, so only a broken diff tool / unstable schema should trip this, not
# scheduler noise on small stages. --allow-schema-drift keeps baselines from
# a previous schema version usable (intersecting keys still gate).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_SCAN.json" "${WORK_DIR}/b/BENCH_SCAN.json"
    --threshold 1.2 --min-seconds 0.05 --allow-schema-drift
  RESULT_VARIABLE diff_result
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_output)
message(STATUS "omega_metrics_diff output:\n${diff_output}")
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke_diff: self-comparison regressed (exit ${diff_result})")
endif()

# Identical inputs must be a clean pass as well (exit 0, no regression).
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/a/BENCH_SCAN.json" "${WORK_DIR}/a/BENCH_SCAN.json"
  RESULT_VARIABLE identical_result
  OUTPUT_QUIET ERROR_QUIET)
if(NOT identical_result EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke_diff: identical inputs reported exit ${identical_result}")
endif()
