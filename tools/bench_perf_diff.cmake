# CTest script: measure the scan with hardware-counter collection off and
# on (bench_perf_overhead modes) and gate the instrumented run's wall time
# at 3% over the uninstrumented baseline via omega_metrics_diff. Invoked as:
#   cmake -DBENCH_BIN=... -DDIFF_BIN=... -DWORK_DIR=... -P bench_perf_diff.cmake

foreach(var BENCH_BIN DIFF_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_perf_diff: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/off" "${WORK_DIR}/on")

foreach(mode off on)
  execute_process(
    COMMAND "${BENCH_BIN}" ${mode}
    WORKING_DIRECTORY "${WORK_DIR}/${mode}"
    RESULT_VARIABLE bench_result
    OUTPUT_VARIABLE bench_output
    ERROR_VARIABLE bench_output)
  if(NOT bench_result EQUAL 0 OR NOT EXISTS "${WORK_DIR}/${mode}/BENCH_PERF.json")
    message(FATAL_ERROR
      "bench_perf_diff: mode '${mode}' produced no BENCH_PERF.json "
      "(exit ${bench_result})\n${bench_output}")
  endif()
endforeach()

# The 3% acceptance gate: only the headline best-of-N wall time is watched —
# the embedded profiles differ by construction (the on-run carries the perf
# block) and must stay informational. The 50 ms floor keeps sub-resolution
# stages from gating on relative noise.
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/off/BENCH_PERF.json" "${WORK_DIR}/on/BENCH_PERF.json"
    --threshold 0.03 --min-seconds 0.05 --watch best_wall_seconds
  RESULT_VARIABLE diff_result
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_output)
message(STATUS "omega_metrics_diff output:\n${diff_output}")
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
    "bench_perf_diff: counter overhead exceeded 3% (exit ${diff_result})")
endif()

# Identical inputs must be a clean pass (exit 0), and the --json rendering
# must agree with the exit code so automation can consume the verdict.
execute_process(
  COMMAND "${DIFF_BIN}"
    "${WORK_DIR}/off/BENCH_PERF.json" "${WORK_DIR}/off/BENCH_PERF.json"
    --json
  RESULT_VARIABLE identical_result
  OUTPUT_VARIABLE identical_output)
if(NOT identical_result EQUAL 0)
  message(FATAL_ERROR
    "bench_perf_diff: identical inputs reported exit ${identical_result}")
endif()
string(FIND "${identical_output}" "\"exit_reason\": \"ok\"" reason_pos)
if(reason_pos EQUAL -1)
  message(FATAL_ERROR
    "bench_perf_diff: --json verdict missing exit_reason ok:\n${identical_output}")
endif()
