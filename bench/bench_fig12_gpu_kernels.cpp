// Reproduces Fig. 12 (and prints Table II): kernel-only GPU throughput in
// Gw/s for Kernel I, Kernel II, and the dynamic two-kernel deployment, on
// System I (Radeon HD8750M laptop) and System II (Tesla K80, Colab), for
// datasets of 50 sequences and 1,000..20,000 SNPs, grid 1,000, window sizes
// 20,000 / 1,000 SNPs (paper §VI-A).
//
// Expected shape (paper §VI-C): Kernel I ~10% faster at 1,000 SNPs, then
// plateaus (~7 Gw/s on the K80); Kernel II keeps climbing (up to 17.3 Gw/s
// on the K80); the dynamic deployment tracks the best of the two.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/gpu/timing_model.h"
#include "util/svg.h"
#include "util/table.h"

namespace {

using omega::hw::gpu::KernelChoice;

struct Series {
  double kernel1 = 0.0;
  double kernel2 = 0.0;
  double dynamic = 0.0;
};

Series throughput_for(const omega::hw::GpuDeviceSpec& spec,
                      const omega::core::ScanWorkload& workload) {
  double t1 = 0.0, t2 = 0.0, td = 0.0;
  for (const auto& position : workload.positions) {
    if (position.combinations == 0) continue;
    const double k1 = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel1,
                                                  position.combinations);
    const double k2 = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel2,
                                                  position.combinations);
    t1 += k1;
    t2 += k2;
    td += omega::hw::gpu::dispatch(spec, position.combinations) ==
                  KernelChoice::Kernel1
              ? k1
              : k2;
  }
  const auto total = static_cast<double>(workload.total_combinations);
  return {total / t1, total / t2, total / td};
}

void print_platform_specs() {
  std::printf("Table II — GPU platform specifications\n");
  omega::util::Table table({"", "System I", "System II"});
  const auto radeon = omega::hw::radeon_hd8750m();
  const auto k80 = omega::hw::tesla_k80();
  table.add_row({"Description", "off-the-shelf laptop", "Google Colab"});
  table.add_row({"CPU Model", radeon.host_cpu, k80.host_cpu});
  table.add_row({"GPU Model", radeon.name, k80.name});
  table.add_row({"Compute Units", std::to_string(radeon.compute_units),
                 std::to_string(k80.compute_units)});
  table.add_row({"Stream Processors", std::to_string(radeon.stream_processors),
                 std::to_string(k80.stream_processors)});
  table.add_row({"Wavefront/Warp", std::to_string(radeon.warp_size),
                 std::to_string(k80.warp_size)});
  table.add_row(
      {"Nthr (Eq. 4)", std::to_string(radeon.nthr()), std::to_string(k80.nthr())});
  table.print();
}

}  // namespace

int main() {
  print_platform_specs();

  omega::bench::BenchJson json("fig12_gpu_kernels");
  const auto config = omega::bench::paper_gpu_config();
  const std::vector<std::size_t> snp_counts{1'000, 2'000,  4'000, 7'000,
                                            10'000, 14'000, 20'000};
  struct SystemUnderTest {
    const char* label;
    omega::hw::GpuDeviceSpec spec;
  };
  const SystemUnderTest systems[] = {
      {"System I (Radeon HD8750M)", omega::hw::radeon_hd8750m()},
      {"System II (Tesla K80)", omega::hw::tesla_k80()},
  };

  for (const auto& system : systems) {
    std::printf("\nFig. 12 — %s: kernel-only throughput (Gw/s), 50 sequences\n",
                system.label);
    omega::util::Table table({"SNPs", "#1 (Gw/s)", "#2 (Gw/s)", "D (Gw/s)",
                              "D/K1", "positions<Nthr"});
    double k1_at_1000 = 0.0, k2_at_1000 = 0.0;
    double k2_max = 0.0, d_max = 0.0;
    std::vector<std::pair<double, double>> k1_points, k2_points, d_points;
    auto series_json = omega::core::metrics::JsonValue::array();
    for (const std::size_t snps : snp_counts) {
      const auto dataset = omega::bench::figure_dataset(snps, 50);
      const auto workload = omega::core::analyze_workload(dataset, config);
      const auto series = throughput_for(system.spec, workload);
      std::uint64_t below_threshold = 0;
      for (const auto& position : workload.positions) {
        if (position.combinations > 0 &&
            position.combinations < system.spec.nthr()) {
          ++below_threshold;
        }
      }
      if (snps == 1'000) {
        k1_at_1000 = series.kernel1;
        k2_at_1000 = series.kernel2;
      }
      k2_max = std::max(k2_max, series.kernel2);
      d_max = std::max(d_max, series.dynamic);
      series_json.push_back(omega::core::metrics::JsonValue::object()
                                .set("snps", static_cast<uint64_t>(snps))
                                .set("kernel1_w_per_s", series.kernel1)
                                .set("kernel2_w_per_s", series.kernel2)
                                .set("dynamic_w_per_s", series.dynamic)
                                .set("positions_below_nthr", below_threshold));
      k1_points.emplace_back(static_cast<double>(snps), series.kernel1 / 1e9);
      k2_points.emplace_back(static_cast<double>(snps), series.kernel2 / 1e9);
      d_points.emplace_back(static_cast<double>(snps), series.dynamic / 1e9);
      table.add_row({std::to_string(snps), omega::bench::gps(series.kernel1),
                     omega::bench::gps(series.kernel2),
                     omega::bench::gps(series.dynamic),
                     omega::util::Table::num(series.dynamic / series.kernel1, 2),
                     std::to_string(below_threshold)});
    }
    table.print();
    {
      std::filesystem::create_directories("figures");
      omega::util::SvgChart chart(
          std::string("Fig. 12 — kernel-only throughput, ") + system.label,
          "SNPs", "Gw/s");
      chart.add_series("Kernel I", k1_points);
      chart.add_series("Kernel II", k2_points);
      chart.add_series("Dynamic", d_points);
      const std::string path =
          system.spec.warp_size == 32 ? "figures/fig12_system2_k80.svg"
                                      : "figures/fig12_system1_radeon.svg";
      chart.write(path);
      std::printf("figure written to %s\n", path.c_str());
    }
    std::printf("anchors: K1/K2 at 1,000 SNPs = %.2fx (paper: ~1.10x); "
                "max K2 = %.1f Gw/s; max D = %.1f Gw/s\n",
                k1_at_1000 / k2_at_1000, k2_max / 1e9, d_max / 1e9);
    json.set(system.spec.warp_size == 32 ? "system2_tesla_k80"
                                         : "system1_radeon_hd8750m",
             omega::core::metrics::JsonValue::object()
                 .set("device", system.spec.name)
                 .set("nthr", system.spec.nthr())
                 .set("k1_over_k2_at_1000_snps", k1_at_1000 / k2_at_1000)
                 .set("max_kernel2_w_per_s", k2_max)
                 .set("max_dynamic_w_per_s", d_max)
                 .set("series", std::move(series_json)));
  }
  json.write();
  return 0;
}
