// LD-engine shootout: r2 cell throughput (cells/second, one cell = one r2
// value) of every LD engine across missing-rate x sample-count, on the same
// random dataset. Writes BENCH_LD.json (consumed by the bench_ld_diff ctest
// gate and docs/METRICS.md trajectory tooling).
//
// Exit code: 1 when the AVX2 packed microkernel is available and its
// steady-state throughput on the deepest clean config (2,048 samples, no
// missing data) is below 5x the byte-panel GEMM engine — the ISSUE 8
// acceptance floor. 0 otherwise; a host/binary without AVX2 cannot express
// the packed speedup, so the gate only arms where the hardware can.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/dataset.h"
#include "ld/gemm.h"
#include "ld/ld_engine.h"
#include "ld/packed.h"
#include "ld/snp_matrix.h"
#include "util/prng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

omega::io::Dataset ld_dataset(std::size_t sites, std::size_t samples,
                              double missing_rate, std::uint64_t seed) {
  omega::util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> positions(sites);
  std::vector<std::vector<std::uint8_t>> rows(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    positions[s] = static_cast<std::int64_t>(s + 1) * 100;
    rows[s].resize(samples);
    const double p = 0.05 + 0.9 * rng.uniform();
    for (std::size_t h = 0; h < samples; ++h) {
      if (missing_rate > 0.0 && rng.uniform() < missing_rate) {
        rows[s][h] = omega::io::Dataset::kMissing;
      } else {
        rows[s][h] = rng.uniform() < p ? 1 : 0;
      }
    }
  }
  return omega::io::Dataset(std::move(positions), std::move(rows),
                            static_cast<std::int64_t>(sites + 1) * 100);
}

/// Steady-state r2_block throughput in cells/second: one warmup pass (packs
/// panels / faults pages), then repeated full-matrix blocks until the
/// measured span exceeds `min_seconds`.
double measure_cells_per_second(const omega::ld::LdEngine& engine,
                                std::size_t sites,
                                double min_seconds = 0.15) {
  std::vector<float> out(sites * sites);
  engine.r2_block(0, sites, 0, sites, out.data(), sites);  // warmup
  std::size_t reps = 1;
  for (;;) {
    const omega::util::Timer timer;
    for (std::size_t r = 0; r < reps; ++r) {
      engine.r2_block(0, sites, 0, sites, out.data(), sites);
    }
    const double seconds = timer.seconds();
    if (seconds >= min_seconds) {
      return static_cast<double>(sites) * static_cast<double>(sites) *
             static_cast<double>(reps) / seconds;
    }
    reps *= 2;
  }
}

std::string rate_str(double cells_per_second) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f Mcells/s",
                cells_per_second / 1e6);
  return buffer;
}

}  // namespace

int main() {
  constexpr std::size_t kSites = 384;
  const std::vector<std::size_t> sample_counts = {64, 256, 2048};
  const std::vector<double> missing_rates = {0.0, 0.1};

  const bool avx2 = omega::ld::packed_avx2_available();
  std::printf("LD engine shootout (%zu x %zu r2 cells per pass)\n", kSites,
              kSites);
  std::printf("packed ISA (auto): %s\n\n",
              omega::ld::packed_isa_name(omega::ld::PackedIsa::Auto));

  omega::bench::BenchJson json("LD");
  json.results().set("sites", static_cast<std::int64_t>(kSites));
  json.results().set("packed_isa",
                     omega::ld::packed_isa_name(omega::ld::PackedIsa::Auto));

  omega::util::Table table({"samples", "missing", "naive", "popcount", "gemm",
                            "packed/scalar", "packed", "packed/gemm"});
  double gate_ratio = 0.0;  // packed vs gemm at 2,048 samples, no missing
  for (const std::size_t samples : sample_counts) {
    for (const double missing : missing_rates) {
      const auto dataset =
          ld_dataset(kSites, samples, missing, 9000 + samples);
      const omega::ld::SnpMatrix snps(dataset);
      const omega::ld::NaiveLd naive(dataset);
      const omega::ld::PopcountLd popcount(snps);
      const omega::ld::GemmLd gemm(snps);
      const omega::ld::PackedLd packed_scalar(snps, {},
                                              omega::ld::PackedIsa::Scalar);
      const omega::ld::PackedLd packed(snps);

      const double naive_rate = measure_cells_per_second(naive, kSites);
      const double popcount_rate = measure_cells_per_second(popcount, kSites);
      const double gemm_rate = measure_cells_per_second(gemm, kSites);
      const double packed_scalar_rate =
          measure_cells_per_second(packed_scalar, kSites);
      const double packed_rate = measure_cells_per_second(packed, kSites);
      const double ratio = gemm_rate > 0.0 ? packed_rate / gemm_rate : 0.0;
      if (samples == 2048 && missing == 0.0) gate_ratio = ratio;

      char missing_str[16];
      std::snprintf(missing_str, sizeof(missing_str), "%.0f%%",
                    missing * 100.0);
      table.add_row({std::to_string(samples), missing_str,
                     rate_str(naive_rate), rate_str(popcount_rate),
                     rate_str(gemm_rate), rate_str(packed_scalar_rate),
                     rate_str(packed_rate),
                     omega::util::Table::num(ratio, 1) + "x"});

      char key[48];
      std::snprintf(key, sizeof(key), "s%zu_m%02d", samples,
                    static_cast<int>(missing * 100.0));
      auto entry = omega::core::metrics::JsonValue::object();
      entry.set("samples", static_cast<std::int64_t>(samples));
      entry.set("missing_rate", missing);
      auto engines = omega::core::metrics::JsonValue::object();
      engines.set("naive", naive_rate);
      engines.set("popcount", popcount_rate);
      engines.set("gemm", gemm_rate);
      engines.set("packed_scalar", packed_scalar_rate);
      engines.set("packed", packed_rate);
      entry.set("cells_per_second", std::move(engines));
      entry.set("packed_vs_gemm_ratio", ratio);
      json.results().set(key, std::move(entry));
    }
  }
  table.print();

  auto gate = omega::core::metrics::JsonValue::object();
  gate.set("armed", avx2);
  gate.set("threshold_ratio", 5.0);
  gate.set("measured_ratio", gate_ratio);
  json.results().set("gate", std::move(gate));
  json.write();

  if (avx2 && gate_ratio < 5.0) {
    std::printf("\nFAIL: packed AVX2 is %.1fx GEMM at 2,048 samples "
                "(acceptance floor: 5x)\n", gate_ratio);
    return 1;
  }
  std::printf("\npacked vs gemm at 2,048 samples: %.1fx%s\n", gate_ratio,
              avx2 ? "" : " (gate disarmed: no AVX2)");
  return 0;
}
