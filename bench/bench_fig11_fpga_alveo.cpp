// Reproduces Fig. 11: omega-accelerator throughput on the Alveo U200
// (unroll 32, 250 MHz) as a function of right-side loop iterations, up to
// the paper's evaluated maximum of 30,500 iterations. Expected shape: rises
// toward the 8 Gw/s theoretical maximum, crossing the 90% line near the top
// of the evaluated range.

#include <cstdio>
#include <filesystem>

#include "bench_fpga_throughput.h"
#include "hw/device_specs.h"

int main() {
  std::printf("Fig. 11 — FPGA omega throughput vs right-side loop iterations "
              "(Alveo U200)\n\n");
  std::filesystem::create_directories("figures");
  omega::bench::BenchJson json("fig11_fpga_alveo");
  omega::bench::run_fpga_throughput_figure(omega::hw::alveo_u200(), 500,
                                           30'500, 14,
                                           "figures/fig11_alveo_u200.svg",
                                           &json);
  json.write();
  return 0;
}
