// Reproduces Table IV: omega throughput of the generic multithreaded
// OmegaPlus scheme (contiguous grid chunks per thread, one DP matrix each)
// for 1..8 threads.
//
// Two columns are reported:
//   * measured — actual wall-clock scaling on THIS machine (note: the CI box
//     may have a single core, in which case measured scaling is flat);
//   * model    — the published machine (Intel i7-6700HQ, 4 cores / 8 threads
//     with SMT) applying the measured 1-thread rate: linear to 4 cores, with
//     the paper's observed ~11% SMT bonus spread over threads 5..8
//     (Table IV: 390 -> 433 Mw/s from 4 to 8 threads).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "hw/device_specs.h"
#include "util/table.h"

int main() {
  const auto dataset = omega::bench::figure_dataset(4'000, 50);
  omega::core::OmegaConfig config;
  config.grid_size = 200;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 3'000;
  config.min_window = 500;

  std::printf("Table IV — multithreaded OmegaPlus omega throughput "
              "(4,000 SNPs x 50 sequences, grid 200)\n");
  std::printf("host: %u hardware threads\n\n",
              std::thread::hardware_concurrency());

  const auto cpu = omega::hw::core_i7_6700hq();
  omega::bench::BenchJson json("table4_multithreaded");
  omega::util::Table table({"Threads", "measured Mw/s", "measured speedup",
                            "i7-6700HQ model Mw/s"});
  double base_rate = 0.0;
  for (const std::size_t threads : {1, 2, 3, 4, 8}) {
    omega::core::ScannerOptions options;
    options.config = config;
    options.threads = threads;
    const auto result = omega::core::scan(dataset, options);
    const double rate = result.profile.omega_throughput();
    if (threads == 1) base_rate = rate;
    // Model: linear scaling over physical cores; hyperthreads add the
    // paper's observed ~11% on top of the 4-core rate.
    const double cores_used =
        std::min<double>(static_cast<double>(threads), cpu.cores);
    double model = base_rate * cores_used;
    if (threads > static_cast<std::size_t>(cpu.cores)) {
      model *= 1.11;
    }
    table.add_row({std::to_string(threads),
                   omega::bench::mps(rate),
                   omega::util::Table::num(rate / base_rate, 2) + "x",
                   omega::bench::mps(model)});
    const std::string key = "threads_" + std::to_string(threads);
    json.add_scan_profile(key, result.profile);
    json.results().at(key).set("measured_speedup", rate / base_rate)
        .set("i7_6700hq_model_w_per_s", model);
  }
  table.print();
  json.write();
  std::printf("\npaper (i7-6700HQ): 99.8 / 198.1 / 300.1 / 390.0 / 433.1 "
              "Mw/s for 1/2/3/4/8 threads\n");
  return 0;
}
