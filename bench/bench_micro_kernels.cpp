// google-benchmark microbenchmarks of the hot paths: the omega nested loop,
// DP matrix extension under both LD engines, position packing, the GPU
// functional kernels, and the FPGA pipeline tick.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_math.h"
#include "core/omega_search.h"
#include "hw/fpga/pipeline.h"
#include "hw/gpu/omega_kernels.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"

namespace {

struct Fixture {
  omega::io::Dataset dataset;
  omega::ld::SnpMatrix snps;
  omega::core::GridPosition position;
  omega::core::DpMatrix m;

  explicit Fixture(std::size_t sites, std::size_t samples,
                   std::int64_t max_side, std::int64_t min_side)
      : dataset(omega::sim::make_dataset({.snps = sites,
                                          .samples = samples,
                                          .locus_length_bp = 1'000'000,
                                          .rho = 20.0,
                                          .seed = 31337})),
        snps(dataset) {
    omega::core::OmegaConfig config;
    config.grid_size = 1;
    config.window_unit = omega::core::WindowUnit::Snps;
    config.max_window = 2 * max_side;
    config.min_window = 2 * min_side;
    position = omega::core::build_grid(dataset, config).front();
    const omega::ld::PopcountLd engine(snps);
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
  }
};

Fixture& shared_fixture() {
  static Fixture fixture(2'000, 50, 900, 200);
  return fixture;
}

void BM_MaxOmegaSearch(benchmark::State& state) {
  auto& fixture = shared_fixture();
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    const auto result =
        omega::core::max_omega_search(fixture.m, fixture.position);
    benchmark::DoNotOptimize(result.max_omega);
    evaluated += result.evaluated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluated));
  state.counters["Mw/s"] = benchmark::Counter(
      static_cast<double>(evaluated) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MaxOmegaSearch);

void BM_PackPosition(benchmark::State& state) {
  auto& fixture = shared_fixture();
  for (auto _ : state) {
    const auto buffers =
        omega::core::pack_position(fixture.m, fixture.position);
    benchmark::DoNotOptimize(buffers.total.data());
  }
}
BENCHMARK(BM_PackPosition);

template <typename Engine>
void extend_benchmark(benchmark::State& state) {
  auto& fixture = shared_fixture();
  const Engine engine(fixture.snps);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  std::uint64_t fetched = 0;
  for (auto _ : state) {
    omega::core::DpMatrix m;
    m.reset(0);
    m.extend(width, engine);
    fetched += m.r2_fetches();
    benchmark::DoNotOptimize(m.range_sum(0, width - 1));
  }
  state.counters["Mr2/s"] = benchmark::Counter(
      static_cast<double>(fetched) / 1e6, benchmark::Counter::kIsRate);
}

void BM_DpExtend_Popcount(benchmark::State& state) {
  extend_benchmark<omega::ld::PopcountLd>(state);
}
void BM_DpExtend_Gemm(benchmark::State& state) {
  extend_benchmark<omega::ld::GemmLd>(state);
}
BENCHMARK(BM_DpExtend_Popcount)->Arg(256)->Arg(1024);
BENCHMARK(BM_DpExtend_Gemm)->Arg(256)->Arg(1024);

void BM_GpuKernel1(benchmark::State& state) {
  auto& fixture = shared_fixture();
  static omega::par::ThreadPool pool;
  const auto buffers = omega::core::pack_position(fixture.m, fixture.position);
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    const auto result = omega::hw::gpu::run_kernel1(pool, buffers, 256);
    benchmark::DoNotOptimize(result.max_omega);
    evaluated += result.evaluated;
  }
  state.counters["Mw/s"] = benchmark::Counter(
      static_cast<double>(evaluated) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GpuKernel1);

void BM_GpuKernel2(benchmark::State& state) {
  auto& fixture = shared_fixture();
  static omega::par::ThreadPool pool;
  const auto buffers = omega::core::pack_position(fixture.m, fixture.position);
  std::uint64_t evaluated = 0;
  for (auto _ : state) {
    const auto result = omega::hw::gpu::run_kernel2(pool, buffers, 256, 13'312);
    benchmark::DoNotOptimize(result.max_omega);
    evaluated += result.evaluated;
  }
  state.counters["Mw/s"] = benchmark::Counter(
      static_cast<double>(evaluated) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GpuKernel2);

void BM_FpgaPipelineTick(benchmark::State& state) {
  omega::hw::fpga::OmegaPipeline pipeline;
  omega::hw::fpga::PipelineInput input;
  input.left_sum = 1.0f;
  input.right_sum = 0.5f;
  input.total_sum = 1.7f;
  input.l = 5;
  input.r = 7;
  input.k = static_cast<float>(omega::core::choose2(5));
  input.m = static_cast<float>(omega::core::choose2(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.tick(&input));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FpgaPipelineTick);

/// Console output plus a BENCH_micro_kernels.json capture of every run
/// (per-iteration real time and the rate counters), matching the other
/// bench targets' machine-readable output.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      auto entry = omega::core::metrics::JsonValue::object()
                       .set("iterations", run.iterations)
                       .set("real_time_per_iter", run.GetAdjustedRealTime())
                       .set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [name, counter] : run.counters) {
        entry.set(name, counter.value);
      }
      results.push_back(std::pair{run.benchmark_name(), std::move(entry)});
    }
  }

  std::vector<std::pair<std::string, omega::core::metrics::JsonValue>> results;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  omega::bench::BenchJson json("micro_kernels");
  for (auto& [name, entry] : reporter.results) {
    json.set(name, std::move(entry));
  }
  json.write();
  return 0;
}
