// Reproduces the §I profiling claim that motivates the whole paper:
// "computing LD and omega values collectively consume over 98% of the
// tool's total execution time, with LD computation becoming the execution
// bottleneck when the number of samples increases, and omega computation
// dominating ... when a small number of sequences that contain a large
// number of polymorphic sites is analyzed."
//
// The scan driver's stopwatch buckets give the split directly on real runs.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "util/table.h"

int main() {
  struct Shape {
    std::size_t snps;
    std::size_t samples;
  };
  const std::vector<Shape> shapes{
      {2'000, 20}, {2'000, 2'000}, {2'000, 20'000},  // sample sweep
      {500, 50},   {2'000, 50},  {6'000, 50},     // SNP sweep
  };

  omega::core::OmegaConfig config;
  config.grid_size = 150;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 1'200;
  config.min_window = 100;

  std::printf("Profiling breakdown (paper §I): share of scan time in LD and "
              "omega computation\n\n");
  omega::bench::BenchJson json("profile_breakdown");
  omega::util::Table table({"SNPs", "samples", "LD %", "omega %", "other %",
                            "LD+omega %"});
  for (const auto& shape : shapes) {
    const auto dataset =
        omega::bench::figure_dataset(shape.snps, shape.samples, 777);
    omega::core::ScannerOptions options;
    options.config = config;
    const auto result = omega::core::scan(dataset, options);
    const double ld = result.profile.ld_seconds;
    const double omega_time = result.profile.omega_seconds;
    const double total = result.profile.total_seconds;
    const double other = std::max(0.0, total - ld - omega_time);
    table.add_row({std::to_string(shape.snps), std::to_string(shape.samples),
                   omega::util::Table::num(100.0 * ld / total, 1),
                   omega::util::Table::num(100.0 * omega_time / total, 1),
                   omega::util::Table::num(100.0 * other / total, 1),
                   omega::util::Table::num(100.0 * (ld + omega_time) / total, 1)});
    const std::string key = std::to_string(shape.snps) + "snps_x_" +
                            std::to_string(shape.samples) + "samples";
    json.add_scan_profile(key, result.profile);
    json.results().at(key).set("ld_share", ld / total)
        .set("omega_share", omega_time / total);
  }
  table.print();
  json.write();
  std::printf("\nexpected: LD share grows down the sample sweep; omega share "
              "grows down the SNP sweep; LD+omega stays >> other.\n");
  return 0;
}
