// Perf-regression harness for the vectorized scan hot path (docs/PERF.md):
//
//   1. omega-kernel microbenchmark — ns per Eq. (2) evaluation for every
//      compiled kernel body (scalar reference, portable fused loop, AVX2)
//      on the largest grid position of a figure-style dataset. The headline
//      regression gate is dispatched-vs-scalar speedup (expected >= 2x on
//      any AVX2 host; the fused form alone gives a measurable win even on
//      baseline hosts).
//   2. DP-matrix extend throughput — Eq. (3) cells per second through the
//      suffix-scan extend (r2 fetch included), the second hot loop.
//   3. End-to-end scans — identical scans with --cpu-kernel=scalar vs the
//      dispatched kernel; positions/s and the whole ScanProfile embedded.
//
// Output: stdout tables + BENCH_SCAN.json (schema omega.bench).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_kernel_cpu.h"
#include "core/scanner.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "util/cpu_features.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using omega::core::CpuKernelKind;

/// ns per omega evaluation for one kernel body on the largest valid grid
/// position (the measure_omega_rate protocol, kernel-parametrized).
double measure_kernel_ns(const omega::io::Dataset& dataset,
                         const omega::core::OmegaConfig& config,
                         CpuKernelKind kind, double min_seconds = 0.4) {
  const auto grid = omega::core::build_grid(dataset, config);
  const omega::core::GridPosition* position = nullptr;
  for (const auto& candidate : grid) {
    if (candidate.valid && (position == nullptr ||
                            candidate.combinations() > position->combinations())) {
      position = &candidate;
    }
  }
  if (position == nullptr) throw std::runtime_error("no valid grid position");

  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);
  omega::core::DpMatrix m;
  m.reset(position->lo);
  m.extend(position->hi + 1, engine);

  omega::core::OmegaKernelScratch scratch;
  std::uint64_t evaluated = 0;
  double best = 0.0;
  omega::util::Timer timer;
  do {
    const auto result =
        omega::core::omega_kernel_search(m, *position, kind, scratch);
    evaluated += result.evaluated;
    best = result.max_omega;  // defeat dead-code elimination
  } while (timer.seconds() < min_seconds);
  (void)best;
  return timer.seconds() * 1e9 / static_cast<double>(evaluated);
}

/// Eq. (3) cells per second through reset + suffix-scan extend (includes the
/// engine's r2 block fetch, as in a real scan).
double measure_extend_rate(const omega::io::Dataset& dataset,
                           std::size_t region_rows,
                           double min_seconds = 0.4) {
  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);
  omega::core::DpMatrix m;
  std::uint64_t cells = 0;
  omega::util::Timer timer;
  do {
    m.reset(0);
    m.extend(region_rows, engine);
    cells += region_rows * (region_rows - 1) / 2;
  } while (timer.seconds() < min_seconds);
  return static_cast<double>(cells) / timer.seconds();
}

std::string ns_str(double ns) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", ns);
  return buffer;
}

}  // namespace

int main() {
  const bool avx2 = omega::core::cpu_kernel_avx2_available();
  const CpuKernelKind dispatched =
      omega::core::resolve_cpu_kernel(CpuKernelKind::Auto);
  std::printf("scan hot path benchmark — host ISA: %s, dispatched kernel: %s\n\n",
              omega::util::cpu_isa_summary().c_str(),
              omega::core::cpu_kernel_name(dispatched));

  omega::bench::BenchJson json("SCAN");
  json.set("isa", omega::util::cpu_isa_summary())
      .set("dispatched", omega::core::cpu_kernel_name(dispatched))
      .set("avx2_available", avx2);

  // --- 1. omega-kernel microbenchmark ------------------------------------
  // Figure-style dataset, SNP windows: one large position dominated by the
  // inner Eq. (2) loop, the regime of the paper's Fig. 8/Fig. 9 kernels.
  const auto micro_dataset = omega::bench::figure_dataset(4'000, 50);
  omega::core::OmegaConfig micro_config;
  micro_config.grid_size = 40;
  micro_config.window_unit = omega::core::WindowUnit::Snps;
  micro_config.max_window = 3'000;
  micro_config.min_window = 4;

  const double scalar_ns =
      measure_kernel_ns(micro_dataset, micro_config, CpuKernelKind::Scalar);
  const double portable_ns =
      measure_kernel_ns(micro_dataset, micro_config, CpuKernelKind::Portable);
  const double avx2_ns =
      avx2 ? measure_kernel_ns(micro_dataset, micro_config, CpuKernelKind::Avx2)
           : 0.0;
  const double dispatched_ns = dispatched == CpuKernelKind::Avx2
                                   ? avx2_ns
                                   : portable_ns;
  const double speedup = scalar_ns / dispatched_ns;

  omega::util::Table micro_table({"kernel", "ns/omega", "speedup vs scalar"});
  micro_table.add_row({"scalar", ns_str(scalar_ns), "1.00"});
  micro_table.add_row({"portable", ns_str(portable_ns),
                       ns_str(scalar_ns / portable_ns)});
  if (avx2) {
    micro_table.add_row({"avx2", ns_str(avx2_ns),
                         ns_str(scalar_ns / avx2_ns)});
  }
  std::printf("omega kernel (4000 SNPs x 50 samples, largest position):\n");
  micro_table.print();
  std::printf("dispatched (%s) speedup vs scalar: %.2fx %s\n\n",
              omega::core::cpu_kernel_name(dispatched), speedup,
              speedup >= 2.0 ? "[OK >= 2x]" : "[BELOW 2x TARGET]");

  auto micro = omega::core::metrics::JsonValue::object();
  micro.set("scalar_ns_per_eval", scalar_ns);
  micro.set("portable_ns_per_eval", portable_ns);
  if (avx2) micro.set("avx2_ns_per_eval", avx2_ns);
  micro.set("dispatched_ns_per_eval", dispatched_ns);
  micro.set("speedup_dispatched_vs_scalar", speedup);
  json.set("omega_kernel", std::move(micro));

  // --- 2. DP-matrix extend throughput ------------------------------------
  const auto extend_dataset = omega::bench::figure_dataset(3'000, 50);
  const double cells_per_s = measure_extend_rate(extend_dataset, 2'500);
  std::printf("dp-matrix extend (2500-row region, r2 fetch included): "
              "%.1f Mcells/s\n\n", cells_per_s / 1e6);
  auto extend = omega::core::metrics::JsonValue::object();
  extend.set("region_rows", 2'500);
  extend.set("cells_per_s", cells_per_s);
  json.set("extend", std::move(extend));

  // --- 3. end-to-end scans ------------------------------------------------
  const auto scan_dataset = omega::bench::figure_dataset(10'000, 50);
  omega::core::OmegaConfig scan_config;
  scan_config.grid_size = 150;
  scan_config.window_unit = omega::core::WindowUnit::Snps;
  scan_config.max_window = 2'000;
  scan_config.min_window = 4;

  omega::core::ScannerOptions scalar_options;
  scalar_options.config = scan_config;
  scalar_options.cpu_kernel = CpuKernelKind::Scalar;
  const auto scalar_scan = omega::core::scan(scan_dataset, scalar_options);

  omega::core::ScannerOptions auto_options = scalar_options;
  auto_options.cpu_kernel = CpuKernelKind::Auto;
  const auto auto_scan = omega::core::scan(scan_dataset, auto_options);

  const double scalar_pps =
      static_cast<double>(scalar_scan.profile.positions_scanned) /
      scalar_scan.profile.total_seconds;
  const double auto_pps =
      static_cast<double>(auto_scan.profile.positions_scanned) /
      auto_scan.profile.total_seconds;

  omega::util::Table scan_table(
      {"kernel", "positions/s", "scan s", "omega share %"});
  scan_table.add_row({"scalar", ns_str(scalar_pps),
                      ns_str(scalar_scan.profile.total_seconds),
                      ns_str(100.0 * scalar_scan.profile.omega_share())});
  scan_table.add_row({auto_scan.profile.kernel.selected.c_str(),
                      ns_str(auto_pps),
                      ns_str(auto_scan.profile.total_seconds),
                      ns_str(100.0 * auto_scan.profile.omega_share())});
  std::printf("end-to-end scan (10000 SNPs x 50 samples, 150 positions, "
              "SNP windows <= 2000):\n");
  scan_table.print();
  std::printf("end-to-end speedup (positions/s): %.2fx\n", auto_pps / scalar_pps);

  json.add_scan_profile("scan_scalar", scalar_scan.profile);
  json.add_scan_profile("scan_dispatched", auto_scan.profile);
  auto end_to_end = omega::core::metrics::JsonValue::object();
  end_to_end.set("scalar_positions_per_s", scalar_pps);
  end_to_end.set("dispatched_positions_per_s", auto_pps);
  end_to_end.set("speedup", auto_pps / scalar_pps);
  json.set("end_to_end", std::move(end_to_end));

  json.write();
  return speedup >= 2.0 || !avx2 ? 0 : 1;
}
