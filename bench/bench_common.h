#pragma once
// Shared helpers for the bench binaries: the paper's standard evaluation
// configuration (§VI-A), dataset construction with on-disk caching of
// nothing (datasets are cheap to regenerate deterministically), and rate
// measurement utilities.

#include <cstdint>
#include <string>

#include "core/metrics_json.h"
#include "core/omega_config.h"
#include "core/scanner.h"
#include "core/workload.h"
#include "io/dataset.h"

namespace omega::bench {

/// Machine-readable bench results: every bench target owns one BenchJson and
/// writes BENCH_<name>.json next to its stdout tables, using the stable
/// core::metrics schema (docs/METRICS.md):
///
///   { "schema": "omega.bench", "schema_version": N, "bench": "<name>",
///     "results": { ... target-specific entries ... } }
///
/// Scan profiles are embedded with add_scan_profile (full per-stage /
/// per-backend breakdown); scalar headline numbers go in with set().
///
/// Every document also carries a "host" block (hostname, CPU model, ISA
/// level, build type, git SHA, hardware threads) so omega_metrics_diff can
/// refuse comparisons between numbers measured on different machines.
class BenchJson {
 public:
  explicit BenchJson(std::string name);

  /// Adds/overwrites a scalar or structured entry under "results".
  BenchJson& set(const std::string& key, core::metrics::JsonValue value);
  /// Embeds a full scan-metrics document under "results".<key>.
  BenchJson& add_scan_profile(const std::string& key,
                              const core::ScanProfile& profile);

  /// Mutable access to the "results" object for bespoke structures.
  [[nodiscard]] core::metrics::JsonValue& results();

  /// Writes BENCH_<name>.json into `directory`; returns the path written.
  std::string write(const std::string& directory = ".");

 private:
  std::string name_;
  core::metrics::JsonValue root_;
};

/// The execution-context block stamped into every BenchJson root: hostname,
/// CPU model (util::cpu_model), ISA summary, build type, git SHA (baked in at
/// configure time; "unknown" outside a git checkout), hardware threads.
[[nodiscard]] core::metrics::JsonValue host_context();

/// The paper's GPU evaluation setup (§VI-A): 1,000 equidistant omega
/// positions, window sizes in SNPs — maximum 20,000 and minimum 1,000.
core::OmegaConfig paper_gpu_config();

/// Builds the "S SNPs x n sequences" simulated dataset the figures use.
io::Dataset figure_dataset(std::size_t snps, std::size_t samples,
                           std::uint64_t seed = 4242);

/// Measured single-core LD rate (r2 values/second) on this machine for the
/// given dataset, via the popcount engine on ~`target_pairs` pairs.
double measure_ld_rate(const io::Dataset& dataset,
                       std::uint64_t target_pairs = 2'000'000);

/// Measured single-core omega evaluation rate (omega/second) on this
/// machine: repeated max-omega searches over a real region of the dataset.
double measure_omega_rate(const io::Dataset& dataset,
                          const core::OmegaConfig& config,
                          double min_seconds = 0.3);

/// Pretty throughput strings.
std::string gps(double per_second);  // Gomega/s with 2 decimals
std::string mps(double per_second);  // Momega/s with 1 decimal

}  // namespace omega::bench
