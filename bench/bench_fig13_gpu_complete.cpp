// Reproduces Fig. 13: throughput of the *complete* GPU-accelerated omega
// computation — host buffer preparation, padding, PCIe transfer (with
// partial compute overlap) and kernel execution — in Mw/s, with the dynamic
// two-kernel deployment, for 50 sequences and 1,000..20,000 SNPs.
//
// Expected shape (paper §VI-C): throughput rises with SNPs while kernels
// gain occupancy, peaks around ~7,000 SNPs, then *decreases* as per-position
// buffer preparation and movement grow ("larger buffers initialized and
// transferred per kernel call").

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/gpu/timing_model.h"
#include "util/svg.h"
#include "util/table.h"

int main() {
  std::filesystem::create_directories("figures");
  omega::bench::BenchJson json("fig13_gpu_complete");
  omega::util::SvgChart chart("Fig. 13 — complete GPU omega computation",
                              "SNPs", "Mw/s");
  const auto config = omega::bench::paper_gpu_config();
  const std::vector<std::size_t> snp_counts{1'000,  2'000,  4'000, 7'000,
                                            10'000, 14'000, 20'000};
  struct SystemUnderTest {
    const char* label;
    omega::hw::GpuDeviceSpec spec;
  };
  const SystemUnderTest systems[] = {
      {"System I (Radeon HD8750M)", omega::hw::radeon_hd8750m()},
      {"System II (Tesla K80)", omega::hw::tesla_k80()},
  };

  for (const auto& system : systems) {
    std::printf("\nFig. 13 — %s: complete GPU omega computation (Mw/s), "
                "dynamic kernels, 50 sequences\n",
                system.label);
    omega::util::Table table({"SNPs", "D (Mw/s)", "prep %", "xfer %",
                              "kernel %", "GB moved"});
    double peak = 0.0;
    std::size_t peak_snps = 0;
    std::vector<std::pair<double, double>> points;
    auto series_json = omega::core::metrics::JsonValue::array();
    for (const std::size_t snps : snp_counts) {
      const auto dataset = omega::bench::figure_dataset(snps, 50);
      const auto workload = omega::core::analyze_workload(dataset, config);
      double total = 0.0, prep = 0.0, transfer = 0.0, kernel = 0.0;
      double bytes = 0.0;
      for (const auto& position : workload.positions) {
        if (position.combinations == 0) continue;
        const auto choice =
            omega::hw::gpu::dispatch(system.spec, position.combinations);
        const auto cost = omega::hw::gpu::complete_position_cost(
            system.spec, choice, position.combinations,
            position.omega_payload_bytes);
        total += cost.total_s;
        prep += cost.prep_s;
        transfer += cost.transfer_s;
        kernel += cost.kernel_s;
        bytes += static_cast<double>(omega::hw::gpu::padded_bytes(
            system.spec, position.omega_payload_bytes));
      }
      const double throughput =
          static_cast<double>(workload.total_combinations) / total;
      if (throughput > peak) {
        peak = throughput;
        peak_snps = snps;
      }
      points.emplace_back(static_cast<double>(snps), throughput / 1e6);
      series_json.push_back(omega::core::metrics::JsonValue::object()
                                .set("snps", static_cast<uint64_t>(snps))
                                .set("dynamic_w_per_s", throughput)
                                .set("prep_s", prep)
                                .set("transfer_s", transfer)
                                .set("kernel_s", kernel)
                                .set("bytes_moved", bytes));
      const double gross = prep + transfer + kernel;
      table.add_row({std::to_string(snps), omega::bench::mps(throughput),
                     omega::util::Table::num(100.0 * prep / gross, 1),
                     omega::util::Table::num(100.0 * transfer / gross, 1),
                     omega::util::Table::num(100.0 * kernel / gross, 1),
                     omega::util::Table::num(bytes / 1e9, 2)});
    }
    table.print();
    chart.add_series(system.label, points);
    std::printf("peak %.1f Mw/s at %zu SNPs (paper: peak near 7,000 SNPs, "
                "declining beyond)\n",
                peak / 1e6, peak_snps);
    json.set(system.spec.warp_size == 32 ? "system2_tesla_k80"
                                         : "system1_radeon_hd8750m",
             omega::core::metrics::JsonValue::object()
                 .set("device", system.spec.name)
                 .set("peak_w_per_s", peak)
                 .set("peak_snps", static_cast<uint64_t>(peak_snps))
                 .set("series", std::move(series_json)));
  }
  chart.write("figures/fig13_complete_gpu.svg");
  std::printf("\nfigure written to figures/fig13_complete_gpu.svg\n");
  json.write();
  return 0;
}
