// Ablation study over the design choices DESIGN.md calls out:
//   1. M relocation reuse on/off          (OmegaPlus data-reuse optimization)
//   2. GEMM vs popcount LD engines        (DLA cast of LD)
//   3. GPU sub-region order switch        (coalescing; value-neutral)
//   4. GPU buffer padding                 (transfer cost vs access pattern)
//   5. Kernel II work-item load (WILD)    (functional sanity across loads)
//   6. FPGA unroll factor sweep           (throughput vs resources)
//   7. FPGA TS stream source              (on-chip vs DRAM throttling)

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/dp_matrix.h"
#include "core/omega_search.h"
#include "core/scanner.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/cycle_model.h"
#include "hw/fpga/resource_model.h"
#include "hw/fpga/scheduler.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/gpu/omega_kernels.h"
#include "hw/gpu/timing_model.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

void ablate_reuse(omega::bench::BenchJson& json) {
  std::printf("\n[1] M relocation reuse (2,500 SNPs x 50 seqs, grid 120):\n");
  const auto dataset = omega::bench::figure_dataset(2'500, 50);
  omega::core::ScannerOptions options;
  options.config.grid_size = 120;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 1'000;
  options.config.min_window = 200;
  omega::util::Table table({"reuse", "r2 fetched", "LD seconds", "scan seconds"});
  for (const bool reuse : {true, false}) {
    options.reuse = reuse;
    const auto result = omega::core::scan(dataset, options);
    json.add_scan_profile(reuse ? "reuse_on" : "reuse_off", result.profile);
    table.add_row({reuse ? "on" : "off",
                   std::to_string(result.profile.r2_fetched),
                   omega::util::Table::num(result.profile.ld_seconds, 3),
                   omega::util::Table::num(result.profile.total_seconds, 3)});
  }
  table.print();
}

void ablate_ld_engine(omega::bench::BenchJson& json) {
  std::printf("\n[2] LD engine (r2 values/second, single core):\n");
  omega::util::Table table({"samples", "popcount", "gemm", "gemm/popcount"});
  auto engines = omega::core::metrics::JsonValue::array();
  for (const std::size_t samples : {64, 512, 4'096}) {
    const auto dataset = omega::bench::figure_dataset(1'200, samples, 555);
    const omega::ld::SnpMatrix snps(dataset);
    const std::size_t block = 400;
    std::vector<float> out(block * block);
    auto rate = [&](const omega::ld::LdEngine& engine) {
      omega::util::Timer timer;
      engine.r2_block(0, block, block, 2 * block, out.data(), block);
      return static_cast<double>(block * block) / timer.seconds();
    };
    const omega::ld::PopcountLd popcount(snps);
    const omega::ld::GemmLd gemm(snps);
    const double pop_rate = rate(popcount);
    const double gemm_rate = rate(gemm);
    engines.push_back(omega::core::metrics::JsonValue::object()
                          .set("samples", static_cast<uint64_t>(samples))
                          .set("popcount_r2_per_s", pop_rate)
                          .set("gemm_r2_per_s", gemm_rate));
    table.add_row({std::to_string(samples), omega::bench::mps(pop_rate) + "M",
                   omega::bench::mps(gemm_rate) + "M",
                   omega::util::Table::num(gemm_rate / pop_rate, 2) + "x"});
  }
  table.print();
  json.set("ld_engines", std::move(engines));
}

void ablate_gpu_choices() {
  std::printf("\n[3/4] GPU order switch & padding (modeled, K80, per-position "
              "workload 2^20 omegas, 4 MB payload):\n");
  auto spec = omega::hw::tesla_k80();
  const std::uint64_t n = 1ull << 20;
  const std::uint64_t payload = 4ull << 20;
  const auto padded = omega::hw::gpu::padded_bytes(spec, payload);
  std::printf("  padding adds %.2f%% wire bytes; buys coalesced access on "
              "both kernels (paper: outweighed by the better pattern)\n",
              100.0 * (static_cast<double>(padded) - static_cast<double>(payload)) /
                  static_cast<double>(payload));
  const auto cost = omega::hw::gpu::complete_position_cost(
      spec, omega::hw::gpu::KernelChoice::Kernel2, n, payload);
  std::printf("  complete position cost: prep %.1f us, transfer %.1f us, "
              "kernel %.1f us, total %.1f us\n",
              cost.prep_s * 1e6, cost.transfer_s * 1e6, cost.kernel_s * 1e6,
              cost.total_s * 1e6);

  // Order switch: functional check that swapping sides leaves values intact,
  // and measurement of the packing overhead of the transpose.
  const auto dataset = omega::bench::figure_dataset(800, 50, 666);
  omega::core::OmegaConfig config;
  config.grid_size = 5;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 700;
  config.min_window = 100;
  omega::core::ScannerOptions options;
  options.config = config;
  omega::par::ThreadPool pool;
  for (const bool order_switch : {true, false}) {
    omega::hw::gpu::GpuBackendOptions gpu_options;
    gpu_options.order_switch = order_switch;
    omega::util::Timer timer;
    const auto result = omega::core::scan(dataset, options, [&] {
      return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                               gpu_options);
    });
    std::printf("  order switch %-3s: best omega %.4f, wall %.3fs\n",
                order_switch ? "on" : "off", result.best().max_omega,
                timer.seconds());
  }
}

void ablate_kernel2_wild() {
  std::printf("\n[5] Kernel II work-item load (functional, identical results "
              "required):\n");
  const auto dataset = omega::bench::figure_dataset(600, 50, 888);
  omega::core::OmegaConfig config;
  config.grid_size = 3;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 500;
  config.min_window = 100;
  const auto grid = omega::core::build_grid(dataset, config);
  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);
  omega::par::ThreadPool pool;
  for (const auto& position : grid) {
    if (!position.valid) continue;
    omega::core::DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
    const auto buffers = omega::core::pack_position(m, position);
    std::printf("  position @%lld (%llu omegas):",
                static_cast<long long>(position.position_bp),
                static_cast<unsigned long long>(buffers.combinations()));
    for (const std::size_t items : {64, 1024, 13'312}) {
      const auto result = omega::hw::gpu::run_kernel2(pool, buffers, 256, items);
      std::printf(" Gs=%zu -> %.5f", items, result.max_omega);
    }
    std::printf("\n");
    break;  // one position suffices for the demonstration
  }
}

void ablate_fpga(omega::bench::BenchJson& json) {
  std::printf("\n[6] FPGA unroll factor sweep (Alveo fabric, 1e6 right-side "
              "iterations):\n");
  omega::util::Table table({"unroll", "Mw/s (on-chip)", "DSP used", "LUT used"});
  auto unroll_sweep = omega::core::metrics::JsonValue::array();
  auto spec = omega::hw::alveo_u200();
  for (const int unroll : {1, 2, 4, 8, 16, 32, 64}) {
    auto variant = spec;
    variant.unroll_factor = unroll;
    const double throughput =
        omega::hw::fpga::invocation_throughput(variant, 1'000'000);
    const auto rows = omega::hw::fpga::utilization_at(spec, unroll);
    unroll_sweep.push_back(omega::core::metrics::JsonValue::object()
                               .set("unroll", unroll)
                               .set("w_per_s", throughput)
                               .set("dsp_used", rows[1].used)
                               .set("lut_used", rows[3].used));
    table.add_row({std::to_string(unroll),
                   omega::util::Table::num(throughput / 1e6, 0),
                   omega::util::Table::num(rows[1].used, 0),
                   omega::util::Table::num(rows[3].used, 0)});
  }
  table.print();
  json.set("fpga_unroll_sweep", std::move(unroll_sweep));

  std::printf("\n[7] FPGA TS stream source (position: 2,000 outer x 2,016 "
              "inner):\n");
  for (const bool dram : {false, true}) {
    const auto cycles =
        omega::hw::fpga::position_cycles(spec, 2'000, 2'016, dram);
    const double seconds = static_cast<double>(cycles.hw_cycles) / spec.clock_hz;
    std::printf("  %-8s: stall x%.2f, %.2f Mcycles, %.1f ms, %.2f Gw/s\n",
                dram ? "DRAM" : "on-chip", cycles.stall_factor,
                static_cast<double>(cycles.hw_cycles) / 1e6, seconds * 1e3,
                static_cast<double>(cycles.hw_omegas) / seconds / 1e9);
  }
}

void ablate_scheduler() {
  std::printf("\n[8] FPGA multi-instance scaling (grid 256, list-scheduled; "
              "instances share the card's DDR):\n");
  const auto dataset = omega::bench::figure_dataset(3'000, 50, 999);
  omega::core::OmegaConfig config;
  config.grid_size = 256;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 1'500;
  config.min_window = 200;
  const auto workload = omega::core::analyze_workload(dataset, config);

  for (const auto& spec : {omega::hw::zcu102(), omega::hw::alveo_u200()}) {
    std::printf("  %s (fits %d instances at 80%% budget):\n", spec.name.c_str(),
                omega::hw::fpga::max_instances(spec));
    omega::util::Table table(
        {"instances", "makespan (ms)", "speedup", "util %", "DDR stall"});
    double base = 0.0;
    for (const int instances : {1, 2, 4, 8}) {
      omega::hw::fpga::SchedulerOptions options;
      options.instances = instances;
      const auto result =
          omega::hw::fpga::schedule_positions(spec, workload, options);
      if (instances == 1) base = result.makespan_s;
      table.add_row({std::to_string(instances),
                     omega::util::Table::num(result.makespan_s * 1e3, 2),
                     omega::util::Table::num(base / result.makespan_s, 2) + "x",
                     omega::util::Table::num(100.0 * result.utilization(), 1),
                     omega::util::Table::num(result.shared_stall_factor, 2) + "x"});
    }
    table.print();
  }
  std::printf("  reading: the ZCU102 (narrow unroll) scales with instances; "
              "the U200 is already bandwidth-bound at one instance — the "
              "Bozikas et al. finding that transfers limit multi-accelerator "
              "deployments.\n");
}

}  // namespace

int main() {
  std::printf("Design-choice ablations\n");
  omega::bench::BenchJson json("ablation_design");
  ablate_reuse(json);
  ablate_ld_engine(json);
  ablate_gpu_choices();
  ablate_kernel2_wild();
  ablate_fpga(json);
  ablate_scheduler();
  json.write();
  return 0;
}
