// Heterogeneous co-scheduler end-to-end wall clock: one scan split across
// the CPU span engine and both simulated accelerators (auto split and fixed
// ratios) against each backend running the same workload alone on the same
// thread budget. Writes BENCH_HETERO.json (consumed by the bench_hetero_diff
// ctest gate) with the full schema v10 "hetero" block per run — planned vs
// actual positions, span counts, modeled vs measured partition seconds.
//
// Exit code: 1 when this host has >= 4 hardware threads and the auto-split
// hetero wall exceeds the best single-backend wall by more than 15% (the
// co-scheduler must never lose to the best of its own parts); 0 otherwise —
// on a small host the partitions serialize and the gate cannot arm.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/hetero_scheduler.h"
#include "core/scanner.h"
#include "hw/hetero_profile.h"
#include "par/thread_pool.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  const auto dataset = omega::bench::figure_dataset(4'000, 50);
  omega::core::OmegaConfig config;
  config.grid_size = 200;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 3'000;
  config.min_window = 500;

  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t threads =
      std::max<std::size_t>(4, std::min<unsigned>(hw_threads, 8));
  std::printf("Heterogeneous co-scheduler (4,000 SNPs x 50 sequences, "
              "grid 200, %zu threads)\n", threads);
  std::printf("host: %u hardware threads\n\n", hw_threads);

  omega::par::ThreadPool gpu_pool(2);
  omega::bench::BenchJson json("HETERO");
  omega::util::Table table(
      {"Run", "wall s", "vs best single", "re-dispatched", "partitions"});

  struct Run {
    std::string key;
    std::string split;  // empty = plain CPU scan (no co-scheduler)
  };
  const std::vector<Run> runs = {
      {"cpu_only", ""},        {"gpu_sim_only", "0:1:0"},
      {"fpga_sim_only", "0:0:1"}, {"hetero_auto", "auto"},
      {"hetero_1_1_1", "1:1:1"},
  };

  double best_single = 0.0;
  double hetero_auto_wall = 0.0;
  for (const Run& run : runs) {
    omega::core::ScannerOptions options;
    options.config = config;
    options.threads = threads;
    omega::hw::HeteroProfileOptions profile_options;
    omega::core::HeteroConfig hetero_config;
    if (!run.split.empty()) {
      profile_options.split = omega::core::HeteroSplit::parse(run.split);
      hetero_config = omega::hw::default_hetero_config(profile_options,
                                                       gpu_pool);
      options.hetero = &hetero_config;
    }

    const omega::util::Timer timer;
    const auto result = omega::core::scan(dataset, options);
    const double seconds = timer.seconds();
    // Single-backend baselines: the plain MT CPU scan plus each accelerator
    // carrying the whole grid alone (zero-weight CPU/peer partitions).
    const bool single = run.key != "hetero_auto" && run.key != "hetero_1_1_1";
    if (single) {
      best_single = best_single == 0.0 ? seconds
                                       : std::min(best_single, seconds);
    }
    if (run.key == "hetero_auto") hetero_auto_wall = seconds;

    const auto& stats = result.profile.hetero;
    std::string partitions;
    for (const auto& partition : stats.partitions) {
      if (!partitions.empty()) partitions += " ";
      partitions += partition.backend.substr(0, partition.backend.find(':')) +
                    "=" + std::to_string(partition.actual_positions);
    }
    table.add_row({run.key, omega::util::Table::num(seconds, 3),
                   best_single > 0.0
                       ? omega::util::Table::num(seconds / best_single, 2) + "x"
                       : "-",
                   std::to_string(stats.redispatched_positions),
                   partitions.empty() ? "-" : partitions});

    json.add_scan_profile(run.key, result.profile);
    json.results().at(run.key).set("wall_seconds", seconds);
  }
  json.results().set("best_single_wall_seconds", best_single);
  json.results().set("hetero_auto_wall_seconds", hetero_auto_wall);
  json.results().set("hetero_vs_best_single_ratio",
                     best_single > 0.0 ? hetero_auto_wall / best_single : 0.0);
  json.results().set("hardware_threads",
                     static_cast<std::int64_t>(hw_threads));
  table.print();
  json.write();

  if (hw_threads >= 4 && hetero_auto_wall > best_single * 1.15) {
    std::printf("\nFAIL: hetero auto wall %.3fs exceeds best single backend "
                "%.3fs by more than 15%% on a %u-thread host\n",
                hetero_auto_wall, best_single, hw_threads);
    return 1;
  }
  std::printf("\nhetero auto vs best single: %.2fx%s\n",
              best_single > 0.0 ? hetero_auto_wall / best_single : 0.0,
              hw_threads < 4 ? " (gate disarmed: < 4 hardware threads)" : "");
  return 0;
}
