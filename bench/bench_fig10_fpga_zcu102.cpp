// Reproduces Fig. 10: omega-accelerator throughput on the ZCU102 (unroll 4,
// 100 MHz) as a function of right-side loop iterations, up to the paper's
// evaluated maximum of 4,500 iterations. Expected shape: rises toward the
// 0.4 Gw/s theoretical maximum, crossing the 90% line near the top of the
// evaluated range.

#include <cstdio>
#include <filesystem>

#include "bench_fpga_throughput.h"
#include "hw/device_specs.h"

int main() {
  std::printf("Fig. 10 — FPGA omega throughput vs right-side loop iterations "
              "(ZCU102)\n\n");
  std::filesystem::create_directories("figures");
  omega::bench::BenchJson json("fig10_fpga_zcu102");
  omega::bench::run_fpga_throughput_figure(omega::hw::zcu102(), 50, 4'500, 14,
                                           "figures/fig10_zcu102.svg", &json);
  json.write();
  return 0;
}
