// Streaming-pipeline benchmark (docs/STREAMING.md):
//
//   1. Writes a figure-style simulated dataset to an ms fixture on disk
//      (stream_fixture.ms — generated, gitignored) so the streamed path
//      exercises the real two-pass file reader.
//   2. Scans it twice: the classic in-memory load + core::scan, and the
//      memory-bounded core::stream_scan over an MsChunkReader.
//   3. Verifies the two result vectors are bitwise identical (max_omega,
//      best_a/best_b, evaluated) — the streaming contract — and reports
//      wall times plus the residency numbers that prove the memory bound:
//      peak resident sites vs total sites, chunk count, overlap, and the
//      fraction of IO hidden behind compute.
//
// Output: stdout tables + BENCH_STREAM.json (schema omega.bench). Exit 1 if
// any position diverges from the in-memory scan.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "io/chunk_reader.h"
#include "io/ms_format.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

std::string fmt(double value, const char* spec = "%.3f") {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

/// Positions where the two score vectors differ bitwise.
std::size_t count_mismatches(const omega::core::ScanResult& a,
                             const omega::core::ScanResult& b) {
  if (a.scores.size() != b.scores.size()) return a.scores.size() + 1;
  std::size_t mismatches = 0;
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    const auto& x = a.scores[g];
    const auto& y = b.scores[g];
    const bool same = x.valid == y.valid && x.position_bp == y.position_bp &&
                      x.best_a == y.best_a && x.best_b == y.best_b &&
                      x.evaluated == y.evaluated &&
                      std::memcmp(&x.max_omega, &y.max_omega,
                                  sizeof(double)) == 0;
    if (!same) ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t snps = argc > 1 ? std::stoul(argv[1]) : 20'000;
  const std::size_t samples = argc > 2 ? std::stoul(argv[2]) : 50;
  const std::size_t chunk_sites = argc > 3 ? std::stoul(argv[3]) : 4'000;
  const std::string fixture = "stream_fixture.ms";

  // --- fixture ------------------------------------------------------------
  const auto source = omega::bench::figure_dataset(snps, samples);
  omega::io::write_ms_file(fixture, {source}, "bench_stream_scan fixture");
  omega::io::MsReadOptions ms_options;
  ms_options.locus_length_bp = source.locus_length_bp();
  std::printf("stream scan benchmark — fixture %s (%zu SNPs x %zu samples, "
              "chunk target %zu sites)\n\n",
              fixture.c_str(), snps, samples, chunk_sites);

  omega::core::OmegaConfig config;
  config.grid_size = 400;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 2'000;
  config.min_window = 4;

  omega::core::ScannerOptions options;
  options.config = config;

  // --- in-memory reference ------------------------------------------------
  const omega::util::Timer mem_timer;
  const auto replicates = omega::io::read_ms_file(fixture, ms_options);
  const auto mem_result = omega::core::scan(replicates.at(0), options);
  const double mem_seconds = mem_timer.seconds();

  // --- streamed -----------------------------------------------------------
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = chunk_sites;
  const omega::util::Timer stream_timer;
  omega::io::MsChunkReader reader(fixture, ms_options);
  const auto stream_result =
      omega::core::stream_scan(reader, options, stream_options);
  const double stream_seconds = stream_timer.seconds();

  const std::size_t mismatches = count_mismatches(mem_result, stream_result);
  const auto& stream = stream_result.profile.stream;
  const double residency_ratio =
      stream.total_sites > 0
          ? static_cast<double>(stream.peak_resident_sites) /
                static_cast<double>(stream.total_sites)
          : 0.0;

  omega::util::Table table({"path", "wall s", "resident sites", "chunks"});
  table.add_row({"in-memory (load + scan)", fmt(mem_seconds),
                 std::to_string(stream.total_sites), "1"});
  table.add_row({"streamed (index + scan)", fmt(stream_seconds),
                 std::to_string(stream.peak_resident_sites),
                 std::to_string(stream.chunks)});
  table.print();
  std::printf(
      "\npeak residency: %zu of %zu sites (%.1f%%), overlap %llu sites\n"
      "io %.3fs (stall %.3fs) -> %.0f%% hidden behind compute\n"
      "bitwise vs in-memory: %s\n",
      static_cast<std::size_t>(stream.peak_resident_sites),
      static_cast<std::size_t>(stream.total_sites), 100.0 * residency_ratio,
      static_cast<unsigned long long>(stream.overlap_sites), stream.io_seconds,
      stream.io_stall_seconds, 100.0 * stream.io_overlap_ratio(),
      mismatches == 0 ? "IDENTICAL"
                      : (std::to_string(mismatches) + " positions diverge").c_str());

  omega::bench::BenchJson json("STREAM");
  json.set("fixture", fixture)
      .set("snps", static_cast<std::uint64_t>(snps))
      .set("samples", static_cast<std::uint64_t>(samples))
      .set("chunk_sites", static_cast<std::uint64_t>(chunk_sites))
      .set("in_memory_seconds", mem_seconds)
      .set("streamed_seconds", stream_seconds)
      .set("streamed_over_in_memory", stream_seconds / mem_seconds)
      .set("peak_resident_sites", stream.peak_resident_sites)
      .set("total_sites", stream.total_sites)
      .set("residency_ratio", residency_ratio)
      .set("chunks", stream.chunks)
      .set("overlap_sites", stream.overlap_sites)
      .set("io_overlap_ratio", stream.io_overlap_ratio())
      .set("bitwise_identical", mismatches == 0);
  json.add_scan_profile("in_memory", mem_result.profile);
  json.add_scan_profile("streamed", stream_result.profile);
  json.write();
  return mismatches == 0 ? 0 : 1;
}
