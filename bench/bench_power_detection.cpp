// Statistical power study for the detector, mirroring the evaluation style
// of the power studies the paper builds on (Crisci et al.: "the LD-based
// OmegaPlus performs best in terms of power to reject the neutral model").
//
// Protocol: N neutral replicates fix the detection threshold at the 95th
// percentile of their max-omega distribution (5% false positive rate); N
// sweep replicates per selection strength are then scored against it.
// Reported: power (true positive rate) and median localization error, per
// carrier fraction of the beneficial allele.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "sim/dataset_factory.h"
#include "sim/coalescent.h"
#include "sim/demography.h"
#include "sim/sweep_coalescent.h"
#include "sim/sweep_overlay.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::size_t kReplicates = 40;
constexpr std::int64_t kSweepPosition = 500'000;

omega::core::ScannerOptions scan_options() {
  omega::core::ScannerOptions options;
  options.config.grid_size = 32;
  options.config.max_window = 200'000;
  options.config.min_window = 20'000;
  options.config.max_snps_per_side = 150;
  return options;
}

omega::io::Dataset neutral_replicate(std::uint64_t seed) {
  return omega::sim::make_dataset({.snps = 500,
                                   .samples = 50,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 120.0,
                                   .seed = seed});
}

struct ReplicateScore {
  double max_omega = 0.0;
  std::int64_t argmax_bp = 0;
};

ReplicateScore score(const omega::io::Dataset& dataset) {
  const auto result = omega::core::scan(dataset, scan_options());
  const auto& best = result.best();
  return {best.max_omega, best.position_bp};
}

}  // namespace

int main() {
  std::printf("Detection power study: %zu replicates per point, FPR fixed at "
              "5%% on neutral data\n\n",
              kReplicates);

  // Neutral null distribution of the max-omega statistic.
  std::vector<double> neutral_maxima;
  for (std::size_t rep = 0; rep < kReplicates; ++rep) {
    neutral_maxima.push_back(score(neutral_replicate(1'000 + rep)).max_omega);
  }
  const double threshold = omega::util::percentile(neutral_maxima, 0.95);
  std::printf("neutral max-omega: median %.2f, 95th percentile (threshold) "
              "%.2f\n\n",
              omega::util::percentile(neutral_maxima, 0.5), threshold);

  omega::bench::BenchJson json("power_detection");
  json.set("replicates", static_cast<uint64_t>(kReplicates))
      .set("neutral_threshold_95pct", threshold);
  auto overlay_rows = omega::core::metrics::JsonValue::array();

  omega::util::Table table({"carrier fraction", "power", "median |error| (bp)",
                            "median max-omega"});
  for (const double carriers : {0.5, 0.7, 0.85, 0.95, 1.0}) {
    std::size_t detected = 0;
    std::vector<double> errors;
    std::vector<double> maxima;
    for (std::size_t rep = 0; rep < kReplicates; ++rep) {
      omega::sim::SweepConfig sweep;
      sweep.sweep_position_bp = kSweepPosition;
      sweep.carrier_fraction = carriers;
      sweep.tract_mean_bp = 200'000.0;
      sweep.seed = 5'000 + rep;
      const auto dataset =
          omega::sim::apply_sweep(neutral_replicate(2'000 + rep), sweep);
      const auto result = score(dataset);
      maxima.push_back(result.max_omega);
      if (result.max_omega > threshold) {
        ++detected;
        errors.push_back(static_cast<double>(
            std::abs(result.argmax_bp - kSweepPosition)));
      }
    }
    overlay_rows.push_back(
        omega::core::metrics::JsonValue::object()
            .set("carrier_fraction", carriers)
            .set("power", static_cast<double>(detected) / kReplicates)
            .set("median_abs_error_bp",
                 errors.empty() ? 0.0 : omega::util::percentile(errors, 0.5))
            .set("median_max_omega", omega::util::percentile(maxima, 0.5)));
    table.add_row(
        {omega::util::Table::num(carriers, 2),
         omega::util::Table::num(
             static_cast<double>(detected) / kReplicates, 2),
         errors.empty() ? "-" : omega::util::Table::num(
                                    omega::util::percentile(errors, 0.5), 0),
         omega::util::Table::num(omega::util::percentile(maxima, 0.5), 2)});
  }
  table.print();
  json.set("overlay_sweeps", std::move(overlay_rows));
  std::printf("\nexpected: power increases with carrier fraction; strong "
              "sweeps are detected essentially always and localized within "
              "the window scale.\n");

  // Non-equilibrium control (the Crisci et al. concern): neutral data from a
  // bottlenecked population scored against the *equilibrium* threshold. The
  // bottleneck mimics sweep signatures, so the realized FPR exceeds the
  // nominal 5% — quantifying how much is exactly what the power studies the
  // paper cites measure.
  std::size_t false_positives = 0;
  for (std::size_t rep = 0; rep < kReplicates; ++rep) {
    auto spec = omega::sim::DatasetSpec{.snps = 500,
                                        .samples = 50,
                                        .locus_length_bp = 1'000'000,
                                        .rho = 120.0,
                                        .seed = 9'000 + rep};
    spec.demography = omega::sim::Demography::bottleneck(0.05, 0.3, 0.05);
    if (score(omega::sim::make_dataset(spec)).max_omega > threshold) {
      ++false_positives;
    }
  }
  std::printf("\nnon-equilibrium control: bottlenecked neutral data vs the "
              "equilibrium threshold -> realized FPR %.0f%% (nominal 5%%)\n",
              100.0 * static_cast<double>(false_positives) / kReplicates);
  json.set("bottleneck_realized_fpr",
           static_cast<double>(false_positives) / kReplicates);

  // --- Structured-coalescent sweeps: power vs selection strength ---------
  // Unlike the overlay (a fixed imposed signature), the structured simulator
  // derives the footprint from alpha = 2Ns, so this table is the canonical
  // "power curve vs selection coefficient" of the sweep-detection
  // literature. Threshold: 95th percentile of matched neutral replicates
  // (theta/rho identical, no sweep phase via final_frequency ~ 0 is not
  // representable, so neutral = coalescent with the same expected S).
  std::printf("\nStructured-coalescent sweeps (theta=150, rho=400, 50 "
              "samples):\n");
  auto structured_score = [&](std::uint64_t seed, double alpha) {
    omega::sim::SweepCoalescentConfig config;
    config.samples = 50;
    config.theta = 150.0;
    config.rho = 400.0;
    config.alpha = alpha;
    config.seed = seed;
    return score(omega::sim::simulate_sweep_coalescent(config));
  };
  std::vector<double> structured_neutral;
  for (std::size_t rep = 0; rep < kReplicates; ++rep) {
    omega::sim::CoalescentConfig neutral;
    neutral.samples = 50;
    neutral.theta = 150.0;
    neutral.rho = 400.0;
    neutral.seed = 20'000 + rep;
    structured_neutral.push_back(
        score(omega::sim::simulate(neutral)).max_omega);
  }
  const double structured_threshold =
      omega::util::percentile(structured_neutral, 0.95);
  omega::util::Table alpha_table(
      {"alpha = 2Ns", "power", "median |error| (bp)"});
  auto alpha_rows = omega::core::metrics::JsonValue::array();
  for (const double alpha : {100.0, 500.0, 2'000.0, 10'000.0}) {
    std::size_t detected = 0;
    std::vector<double> errors;
    for (std::size_t rep = 0; rep < kReplicates; ++rep) {
      const auto result = structured_score(30'000 + rep, alpha);
      if (result.max_omega > structured_threshold) {
        ++detected;
        errors.push_back(static_cast<double>(
            std::abs(result.argmax_bp - kSweepPosition)));
      }
    }
    alpha_rows.push_back(
        omega::core::metrics::JsonValue::object()
            .set("alpha", alpha)
            .set("power", static_cast<double>(detected) / kReplicates)
            .set("median_abs_error_bp",
                 errors.empty() ? 0.0 : omega::util::percentile(errors, 0.5)));
    alpha_table.add_row(
        {omega::util::Table::num(alpha, 0),
         omega::util::Table::num(static_cast<double>(detected) / kReplicates, 2),
         errors.empty() ? "-" : omega::util::Table::num(
                                    omega::util::percentile(errors, 0.5), 0)});
  }
  alpha_table.print();
  json.set("structured_sweeps", std::move(alpha_rows));
  json.write();
  return 0;
}
