// Work-stealing scan engine scaling: end-to-end wall-clock speedup of the
// span scheduler at 1/2/4 workers on the Table IV bench shape, plus the
// sched.* load-balance accounting (spans, steals, per-worker busy seconds).
// Writes BENCH_MT.json (consumed by the bench_mt_diff ctest gate).
//
// Exit code: 1 when this host has >= 4 hardware threads and the measured
// 4-worker end-to-end speedup is below 2x (the acceptance floor); 0
// otherwise — a single-core CI box cannot measure parallel speedup, so the
// gate only arms where the hardware can express it.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  const auto dataset = omega::bench::figure_dataset(4'000, 50);
  omega::core::OmegaConfig config;
  config.grid_size = 200;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 3'000;
  config.min_window = 500;

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("Work-stealing scan scaling (4,000 SNPs x 50 sequences, "
              "grid 200)\n");
  std::printf("host: %u hardware threads\n\n", hw_threads);

  omega::bench::BenchJson json("MT");
  omega::util::Table table({"Workers", "wall s", "speedup", "spans", "steals",
                            "busy imbalance"});
  double base_seconds = 0.0;
  double speedup_at_4 = 0.0;
  for (const std::size_t threads : {1, 2, 4}) {
    omega::core::ScannerOptions options;
    options.config = config;
    options.threads = threads;
    const omega::util::Timer timer;
    const auto result = omega::core::scan(dataset, options);
    const double seconds = timer.seconds();
    if (threads == 1) base_seconds = seconds;
    const double speedup = base_seconds / seconds;
    if (threads == 4) speedup_at_4 = speedup;

    // Busy-time imbalance: max worker busy over mean busy (1.0 = perfectly
    // level). Serial runs have no scheduler and report 1.0.
    const auto& sched = result.profile.sched;
    double busy_max = 0.0, busy_sum = 0.0;
    for (const auto& worker : sched.workers_detail) {
      busy_max = std::max(busy_max, worker.busy_seconds);
      busy_sum += worker.busy_seconds;
    }
    const double imbalance =
        sched.workers_detail.empty() || busy_sum <= 0.0
            ? 1.0
            : busy_max * static_cast<double>(sched.workers_detail.size()) /
                  busy_sum;

    table.add_row({std::to_string(threads),
                   omega::util::Table::num(seconds, 3),
                   omega::util::Table::num(speedup, 2) + "x",
                   std::to_string(sched.spans),
                   std::to_string(sched.steals),
                   omega::util::Table::num(imbalance, 2)});
    const std::string key = "workers_" + std::to_string(threads);
    json.add_scan_profile(key, result.profile);
    json.results().at(key).set("wall_seconds", seconds)
        .set("speedup_ratio", speedup)
        .set("busy_imbalance", imbalance);
  }
  json.results().set("speedup_at_4_ratio", speedup_at_4);
  json.results().set("hardware_threads",
                     static_cast<std::int64_t>(hw_threads));
  table.print();
  json.write();

  if (hw_threads >= 4 && speedup_at_4 < 2.0) {
    std::printf("\nFAIL: 4-worker speedup %.2fx below the 2x floor on a "
                "%u-thread host\n", speedup_at_4, hw_threads);
    return 1;
  }
  std::printf("\n4-worker speedup: %.2fx%s\n", speedup_at_4,
              hw_threads < 4 ? " (gate disarmed: < 4 hardware threads)" : "");
  return 0;
}
