#include "bench_fpga_throughput.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/omega_math.h"
#include "hw/fpga/cycle_model.h"
#include "hw/fpga/pipeline.h"
#include "util/svg.h"
#include "util/table.h"

namespace omega::bench {
namespace {

/// Functional cross-check: drive U simulated pipelines through `iterations`
/// inputs and count actual clock ticks (max over lanes) including drain.
double functional_throughput(const hw::FpgaDeviceSpec& spec,
                             std::uint64_t iterations) {
  const auto unroll = static_cast<std::uint64_t>(spec.unroll_factor);
  const std::uint64_t per_lane = iterations / unroll;
  hw::fpga::OmegaPipeline lane;  // all lanes are identical clocks; model one
  hw::fpga::PipelineInput input;
  input.left_sum = 1.5f;
  input.right_sum = 1.25f;
  input.total_sum = 3.0f;
  input.l = 10;
  input.r = 12;
  input.k = static_cast<float>(core::choose2(10));
  input.m = static_cast<float>(core::choose2(12));
  std::uint64_t produced = 0;
  for (std::uint64_t i = 0; i < per_lane; ++i) {
    if (lane.tick(&input)) ++produced;
  }
  while (!lane.drained()) {
    if (lane.tick(nullptr)) ++produced;
  }
  const double cycles = static_cast<double>(lane.cycles()) +
                        static_cast<double>(spec.prefetch_cycles);
  (void)produced;
  return static_cast<double>(iterations) / (cycles / spec.clock_hz);
}

}  // namespace

std::uint64_t run_fpga_throughput_figure(const hw::FpgaDeviceSpec& spec,
                                         std::uint64_t from, std::uint64_t to,
                                         int steps, const std::string& svg_path,
                                         BenchJson* json) {
  const double peak = spec.peak_omega_per_s();
  const double ninety = 0.9 * peak;
  std::printf("%s: unroll %d @ %.0f MHz — theoretical max %.2f Gw/s, "
              "90%% line at %.2f Gw/s\n",
              spec.name.c_str(), spec.unroll_factor, spec.clock_hz / 1e6,
              peak / 1e9, ninety / 1e9);

  util::Table table({"right-side iters", "model Mw/s", "functional Mw/s",
                     "% of max"});
  std::vector<std::pair<double, double>> model_points, functional_points;
  auto series = core::metrics::JsonValue::array();
  std::uint64_t first_at_90 = 0;
  const double ratio = std::pow(static_cast<double>(to) / static_cast<double>(from),
                                1.0 / (steps - 1));
  double x = static_cast<double>(from);
  for (int step = 0; step < steps; ++step, x *= ratio) {
    // Round to a multiple of the unroll factor (the microbenchmark feeds
    // full groups; remainders belong to the software path, Table III).
    std::uint64_t iterations = static_cast<std::uint64_t>(x);
    iterations = std::max<std::uint64_t>(
        spec.unroll_factor,
        iterations / spec.unroll_factor * spec.unroll_factor);
    const double model = hw::fpga::invocation_throughput(spec, iterations);
    const double functional = functional_throughput(spec, iterations);
    model_points.emplace_back(static_cast<double>(iterations), model / 1e6);
    functional_points.emplace_back(static_cast<double>(iterations),
                                   functional / 1e6);
    if (first_at_90 == 0 && model >= ninety) first_at_90 = iterations;
    series.push_back(core::metrics::JsonValue::object()
                         .set("iterations", iterations)
                         .set("model_w_per_s", model)
                         .set("functional_w_per_s", functional));
    table.add_row({std::to_string(iterations),
                   util::Table::num(model / 1e6, 1),
                   util::Table::num(functional / 1e6, 1),
                   util::Table::num(100.0 * model / peak, 1)});
  }
  table.print();
  if (!svg_path.empty()) {
    util::SvgChart chart("omega throughput — " + spec.name,
                         "right-side loop iterations", "Mw/s");
    chart.add_series("cycle model", std::move(model_points));
    chart.add_series("functional pipeline", std::move(functional_points));
    chart.add_hline(ninety / 1e6, "90% of theoretical max");
    chart.write(svg_path);
    std::printf("figure written to %s\n", svg_path.c_str());
  }
  if (first_at_90 != 0) {
    std::printf("90%% of theoretical max first reached at ~%llu iterations\n",
                static_cast<unsigned long long>(first_at_90));
  } else {
    std::printf("90%% of theoretical max not reached in the evaluated range\n");
  }
  if (json != nullptr) {
    json->set("device", spec.name)
        .set("unroll_factor", spec.unroll_factor)
        .set("clock_hz", spec.clock_hz)
        .set("peak_w_per_s", peak)
        .set("first_at_90pct_iterations", first_at_90)
        .set("series", std::move(series));
  }
  return first_at_90;
}

}  // namespace omega::bench
