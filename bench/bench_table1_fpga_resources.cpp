// Reproduces Table I: resource utilization of the omega accelerator on the
// ZCU102 (unroll 4) and the Alveo U200 (unroll 32), from the fitted
// base + per-instance resource model, side by side with the published
// figures. Also prints the design-space answer the model enables: the
// largest unroll factor each device could host at 80% budget.

#include <cstdio>

#include "bench_common.h"
#include "hw/device_specs.h"
#include "hw/fpga/resource_model.h"
#include "util/table.h"

namespace {

struct Published {
  double bram, dsp, ff, lut;
};

void print_device(const omega::hw::FpgaDeviceSpec& spec,
                  const Published& published, omega::bench::BenchJson& json) {
  std::printf("\n== %s (logic cells: %dk, unroll factor: %d, %.0f MHz) ==\n",
              spec.name.c_str(), spec.logic_cells_k, spec.unroll_factor,
              spec.clock_hz / 1e6);
  omega::util::Table table(
      {"Resource", "Model used", "Available", "Model %", "Paper used"});
  const auto rows = omega::hw::fpga::utilization(spec);
  const double paper[4] = {published.bram, published.dsp, published.ff,
                           published.lut};
  auto resources = omega::core::metrics::JsonValue::object();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    table.add_row({rows[r].resource, omega::util::Table::num(rows[r].used, 0),
                   omega::util::Table::num(rows[r].available, 0),
                   omega::util::Table::num(rows[r].percent(), 2) + "%",
                   omega::util::Table::num(paper[r], 0)});
    resources.set(rows[r].resource,
                  omega::core::metrics::JsonValue::object()
                      .set("model_used", rows[r].used)
                      .set("available", rows[r].available)
                      .set("paper_used", paper[r]));
  }
  table.print();
  const int max_unroll = omega::hw::fpga::max_unroll_factor(spec);
  std::printf("max unroll factor at 80%% resource budget: %d\n", max_unroll);
  json.set(spec.name, omega::core::metrics::JsonValue::object()
                          .set("unroll_factor", spec.unroll_factor)
                          .set("max_unroll_at_80pct", max_unroll)
                          .set("resources", std::move(resources)));
}

}  // namespace

int main() {
  std::printf("Table I — FPGA accelerator resource utilization "
              "(model vs published)\n");
  omega::bench::BenchJson json("table1_fpga_resources");
  print_device(omega::hw::zcu102(), {36, 48, 12003, 12847}, json);
  print_device(omega::hw::alveo_u200(), {40, 215, 50841, 50584}, json);

  std::printf("\nUnroll-factor sweep on the Alveo U200 (ablation):\n");
  omega::util::Table sweep({"Unroll", "DSP", "FF", "LUT", "Peak Gw/s"});
  const auto alveo = omega::hw::alveo_u200();
  for (int unroll = 1; unroll <= 128; unroll *= 2) {
    const auto rows = omega::hw::fpga::utilization_at(alveo, unroll);
    sweep.add_row({std::to_string(unroll),
                   omega::util::Table::num(rows[1].used, 0),
                   omega::util::Table::num(rows[2].used, 0),
                   omega::util::Table::num(rows[3].used, 0),
                   omega::util::Table::num(unroll * alveo.clock_hz / 1e9, 2)});
  }
  sweep.print();
  json.write();
  return 0;
}
