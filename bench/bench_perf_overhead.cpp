// Overhead harness for the hardware-counter profiling layer
// (docs/OBSERVABILITY.md § Hardware counters): the instrumented scan must
// cost within a few percent of the uninstrumented one, or nobody leaves
// --perf-counters on.
//
// Modes (argv[1]):
//   off   — scan with collection disabled; BENCH_PERF.json carries the
//           best-of-N wall seconds under results.scan.*
//   on    — identical scan with util::perf::enable() armed first; same JSON
//           keys, so omega_metrics_diff gates off-vs-on directly
//           (tools/bench_perf_diff.cmake watches best_wall_seconds at 3%)
//   both  — default for interactive use: runs off then on in this process
//           and prints the measured overhead next to the counter source.
//
// Wall time is best-of-N (not mean): the minimum is the least noisy
// estimator of intrinsic cost on a shared host, and the overhead of the
// scopes themselves is deterministic.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/scanner.h"
#include "util/perf_counters.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

constexpr int kRepetitions = 3;

struct Measurement {
  double best_wall_seconds = 0.0;
  double mean_wall_seconds = 0.0;
  omega::core::ScanProfile profile;  // last repetition's profile
};

omega::core::ScannerOptions bench_options() {
  omega::core::ScannerOptions options;
  options.config.grid_size = 120;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 1'500;
  options.config.min_window = 4;
  return options;
}

Measurement measure(const omega::io::Dataset& dataset) {
  Measurement m;
  m.best_wall_seconds = 1e300;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const omega::util::Timer timer;
    auto result = omega::core::scan(dataset, bench_options());
    const double seconds = timer.seconds();
    m.best_wall_seconds = std::min(m.best_wall_seconds, seconds);
    m.mean_wall_seconds += seconds / kRepetitions;
    if (rep == kRepetitions - 1) m.profile = std::move(result.profile);
  }
  return m;
}

void add_results(omega::bench::BenchJson& json, const char* mode,
                 const Measurement& m) {
  json.set("mode", mode).set("source", omega::util::perf::source())
      .set("repetitions", kRepetitions);
  auto scan = omega::core::metrics::JsonValue::object();
  scan.set("best_wall_seconds", m.best_wall_seconds);
  scan.set("mean_wall_seconds", m.mean_wall_seconds);
  scan.set("positions_per_s",
           static_cast<double>(m.profile.positions_scanned) /
               m.best_wall_seconds);
  json.set("scan", std::move(scan));
  json.add_scan_profile("scan_profile", m.profile);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "both";
  if (mode != "off" && mode != "on" && mode != "both") {
    std::fprintf(stderr, "usage: bench_perf_overhead [off|on|both]\n");
    return 2;
  }

  const auto dataset = omega::bench::figure_dataset(8'000, 50);
  omega::bench::BenchJson json("PERF");

  if (mode == "off" || mode == "on") {
    if (mode == "on") omega::util::perf::enable();
    const Measurement m = measure(dataset);
    std::printf("perf overhead bench — counters %s (source: %s): "
                "best %.4f s over %d reps\n",
                mode.c_str(), omega::util::perf::source(),
                m.best_wall_seconds, kRepetitions);
    add_results(json, mode.c_str(), m);
    json.write();
    return 0;
  }

  // both: off first (collection is process-wide and sticky once enabled).
  const Measurement off = measure(dataset);
  omega::util::perf::enable();
  const Measurement on = measure(dataset);
  const double overhead =
      off.best_wall_seconds > 0.0
          ? on.best_wall_seconds / off.best_wall_seconds - 1.0
          : 0.0;

  omega::util::Table table({"counters", "best s", "mean s", "source"});
  char best[32], mean[32];
  std::snprintf(best, sizeof(best), "%.4f", off.best_wall_seconds);
  std::snprintf(mean, sizeof(mean), "%.4f", off.mean_wall_seconds);
  table.add_row({"off", best, mean, "off"});
  std::snprintf(best, sizeof(best), "%.4f", on.best_wall_seconds);
  std::snprintf(mean, sizeof(mean), "%.4f", on.mean_wall_seconds);
  table.add_row({"on", best, mean, omega::util::perf::source()});
  table.print();
  std::printf("counter overhead (best-of-%d wall): %+.2f%% %s\n", kRepetitions,
              overhead * 100.0,
              overhead <= 0.03 ? "[OK <= 3%]" : "[ABOVE 3% TARGET]");

  add_results(json, "on", on);
  auto off_scan = omega::core::metrics::JsonValue::object();
  off_scan.set("best_wall_seconds", off.best_wall_seconds);
  off_scan.set("mean_wall_seconds", off.mean_wall_seconds);
  json.set("scan_off", std::move(off_scan));
  json.set("overhead_fraction", overhead);
  json.write();
  // Advisory in both-mode: the CI gate is the off-vs-on metrics diff
  // (tools/bench_perf_diff.cmake), which best-of-N makes stable.
  return 0;
}
