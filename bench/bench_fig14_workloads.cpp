// Reproduces Fig. 14 and Table III: complete LD-based sweep detection on
// CPU, GPU and FPGA for three workload mixes —
//   balanced  (~50/50 LD/omega CPU time):   13,000 SNPs x  7,000 sequences
//   high-omega (~90% omega):                15,000 SNPs x    500 sequences
//   high-LD   (~90% LD):                     5,000 SNPs x 60,000 sequences
//
// Methodology mirrors the paper's (§VI-D): CPU rates are *measured* on this
// machine (single core) on the real datasets; the GPU omega cost comes from
// the complete-cost model (prep + padding + transfer + kernel, §IV); the
// GPU LD side applies the BLIS/GEMM speedup profile of Binder et al.; the
// FPGA omega side comes from the cycle model with TS streamed from DRAM and
// unroll remainders in software (§V); the FPGA LD side uses the published
// Bozikas et al. throughputs — exactly what the paper itself does ("due to
// the fact that the FPGA LD implementation ... is not publicly available").
// Absolute seconds therefore differ from the paper's testbeds, but the
// relative pattern — who wins on which workload — is the reproduced claim.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/cycle_model.h"
#include "hw/gpu/timeline_pipeline.h"
#include "hw/gpu/timing_model.h"
#include "hw/ld_models.h"
#include "par/thread_pool.h"
#include "util/table.h"

namespace {

struct WorkloadShape {
  const char* label;
  std::size_t snps;
  std::size_t samples;
  std::int64_t max_side_snps;  // window extents per side, in SNPs
  std::int64_t min_side_snps;
};

struct PlatformTimes {
  double ld_s = 0.0;
  double omega_s = 0.0;
  [[nodiscard]] double total() const { return ld_s + omega_s; }
};

struct Row {
  std::string label;
  PlatformTimes cpu, gpu, fpga;
  double cpu_omega_rate = 0.0, cpu_ld_rate = 0.0;
  double gpu_omega_rate = 0.0, gpu_ld_rate = 0.0;
  double fpga_omega_rate = 0.0, fpga_ld_rate = 0.0;
};

Row evaluate(const WorkloadShape& shape) {
  Row row;
  row.label = shape.label;

  const auto dataset =
      omega::bench::figure_dataset(shape.snps, shape.samples, 9000 + shape.snps);
  omega::core::OmegaConfig config;
  config.grid_size = 1'000;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 2 * shape.max_side_snps;
  config.min_window = 2 * shape.min_side_snps;

  const auto workload = omega::core::analyze_workload(dataset, config);
  const auto total_omega = static_cast<double>(workload.total_combinations);
  const auto total_ld = static_cast<double>(workload.total_r2_with_reuse);

  // --- CPU: measured single-core rates on the real data -------------------
  row.cpu_ld_rate = omega::bench::measure_ld_rate(dataset);
  row.cpu_omega_rate = omega::bench::measure_omega_rate(dataset, config);
  row.cpu.ld_s = total_ld / row.cpu_ld_rate;
  row.cpu.omega_s = total_omega / row.cpu_omega_rate;

  // --- GPU ----------------------------------------------------------------
  const auto gpu = omega::hw::tesla_k80();
  for (const auto& position : workload.positions) {
    if (position.combinations == 0) continue;
    const auto choice = omega::hw::gpu::dispatch(gpu, position.combinations);
    row.gpu.omega_s += omega::hw::gpu::complete_position_cost(
                           gpu, choice, position.combinations,
                           position.omega_payload_bytes)
                           .total_s;
  }
  // Cross-check the closed-form sum against the event-timeline schedule
  // (dual DMA engines, host packing lane, per-position dependencies).
  {
    static omega::par::ThreadPool pool(0);
    const auto timeline =
        omega::hw::gpu::schedule_complete_omega(gpu, pool, workload);
    std::printf("  [timeline] GPU omega makespan %.2fs vs closed-form %.2fs "
                "(overlap hides %.2fs of transfers)\n",
                timeline.makespan_s, row.gpu.omega_s, timeline.overlap_s);
  }
  row.gpu_ld_rate = row.cpu_ld_rate * omega::hw::gpu_ld_speedup(shape.samples);
  row.gpu.ld_s = total_ld / row.gpu_ld_rate;
  row.gpu_omega_rate = total_omega / row.gpu.omega_s;

  // --- FPGA ----------------------------------------------------------------
  const auto fpga = omega::hw::alveo_u200();
  for (const auto& position : workload.positions) {
    const auto& geometry = position.geometry;
    if (!geometry.valid) continue;
    const auto cycles = omega::hw::fpga::position_cycles(
        fpga, geometry.a_max - geometry.lo + 1, geometry.hi - geometry.b_min + 1,
        /*ts_from_dram=*/true);
    row.fpga.omega_s += static_cast<double>(cycles.hw_cycles) / fpga.clock_hz +
                        static_cast<double>(cycles.sw_omegas) / row.cpu_omega_rate;
  }
  row.fpga_ld_rate = omega::hw::fpga_ld_throughput(shape.samples);
  row.fpga.ld_s = total_ld / row.fpga_ld_rate;
  row.fpga_omega_rate = total_omega / row.fpga.omega_s;

  std::printf(
      "%s: %zu SNPs x %zu seqs — %.2e omega evals, %.2e r2 values; "
      "CPU split LD/omega = %.0f%%/%.0f%%\n",
      shape.label, shape.snps, shape.samples, total_omega, total_ld,
      100.0 * row.cpu.ld_s / row.cpu.total(),
      100.0 * row.cpu.omega_s / row.cpu.total());
  return row;
}

}  // namespace

int main() {
  // Window extents are tuned so the single-core CPU time split between LD
  // and omega lands on each workload's label (the paper defines the
  // workloads by that split, not by scan parameters, which it does not
  // report for this experiment).
  const std::vector<WorkloadShape> shapes{
      {"balanced (50/50)", 13'000, 7'000, 1'200, 680},
      {"high-omega (90/10)", 15'000, 500, 1'500, 600},
      {"high-LD (10/90)", 5'000, 60'000, 1'000, 690},
  };

  std::printf("Fig. 14 / Table III — complete sweep detection: CPU vs GPU vs "
              "FPGA\n\n");
  std::vector<Row> rows;
  for (const auto& shape : shapes) rows.push_back(evaluate(shape));

  omega::bench::BenchJson json("fig14_workloads");
  for (const auto& row : rows) {
    auto platform = [](const PlatformTimes& times) {
      return omega::core::metrics::JsonValue::object()
          .set("ld_s", times.ld_s)
          .set("omega_s", times.omega_s)
          .set("total_s", times.total());
    };
    json.set(row.label,
             omega::core::metrics::JsonValue::object()
                 .set("cpu", platform(row.cpu))
                 .set("gpu", platform(row.gpu))
                 .set("fpga", platform(row.fpga))
                 .set("cpu_omega_w_per_s", row.cpu_omega_rate)
                 .set("cpu_ld_r2_per_s", row.cpu_ld_rate)
                 .set("gpu_omega_w_per_s", row.gpu_omega_rate)
                 .set("gpu_ld_r2_per_s", row.gpu_ld_rate)
                 .set("fpga_omega_w_per_s", row.fpga_omega_rate)
                 .set("fpga_ld_r2_per_s", row.fpga_ld_rate)
                 .set("fpga_speedup", row.cpu.total() / row.fpga.total())
                 .set("gpu_speedup", row.cpu.total() / row.gpu.total()));
  }
  json.write();

  std::printf("\nFig. 14 — execution time (seconds) at paper scale "
              "(grid = 1,000):\n");
  omega::util::Table times({"Workload", "CPU LD", "CPU w", "GPU LD", "GPU w",
                            "FPGA LD", "FPGA w", "CPU tot", "GPU tot",
                            "FPGA tot"});
  for (const auto& row : rows) {
    times.add_row({row.label, omega::util::Table::num(row.cpu.ld_s, 1),
                   omega::util::Table::num(row.cpu.omega_s, 1),
                   omega::util::Table::num(row.gpu.ld_s, 1),
                   omega::util::Table::num(row.gpu.omega_s, 1),
                   omega::util::Table::num(row.fpga.ld_s, 1),
                   omega::util::Table::num(row.fpga.omega_s, 1),
                   omega::util::Table::num(row.cpu.total(), 1),
                   omega::util::Table::num(row.gpu.total(), 1),
                   omega::util::Table::num(row.fpga.total(), 1)});
  }
  times.print();

  std::printf("\nTable III — throughput (million scores/second) and speedup "
              "vs one CPU core:\n");
  omega::util::Table table3({"Workload", "CPU w", "CPU LD", "FPGA w", "FPGA LD",
                             "GPU w", "GPU LD", "FPGA w x", "FPGA LD x",
                             "GPU w x", "GPU LD x"});
  for (const auto& row : rows) {
    table3.add_row(
        {row.label, omega::bench::mps(row.cpu_omega_rate),
         omega::bench::mps(row.cpu_ld_rate),
         omega::bench::mps(row.fpga_omega_rate),
         omega::bench::mps(row.fpga_ld_rate),
         omega::bench::mps(row.gpu_omega_rate),
         omega::bench::mps(row.gpu_ld_rate),
         omega::util::Table::num(row.fpga_omega_rate / row.cpu_omega_rate, 1) + "x",
         omega::util::Table::num(row.fpga_ld_rate / row.cpu_ld_rate, 1) + "x",
         omega::util::Table::num(row.gpu_omega_rate / row.cpu_omega_rate, 1) + "x",
         omega::util::Table::num(row.gpu_ld_rate / row.cpu_ld_rate, 1) + "x"});
  }
  table3.print();

  std::printf("\nComplete sweep-detection speedup vs one CPU core, measured "
              "CPU rates (paper: FPGA 21.4x/57.1x/11.8x, GPU 4.5x/2.8x/12.9x):\n");
  omega::util::Table speedups({"Workload", "FPGA", "GPU"});
  for (const auto& row : rows) {
    speedups.add_row(
        {row.label,
         omega::util::Table::num(row.cpu.total() / row.fpga.total(), 1) + "x",
         omega::util::Table::num(row.cpu.total() / row.gpu.total(), 1) + "x"});
  }
  speedups.print();

  // The measured CPU above is a modern core, ~3x faster than the paper's
  // 2013-era AMD A10 on omega and far faster on LD (bit-packed popcount vs
  // OmegaPlus's parser-coupled LD). Normalizing the CPU component rates to
  // the paper's published Table III values makes the accelerator speedups
  // directly comparable to the paper's.
  struct PaperCpu {
    double omega_rate, ld_rate;
  };
  const PaperCpu paper_rates[3] = {
      {71.26e6, 2.98e6}, {60.76e6, 13.91e6}, {72.50e6, 0.41e6}};
  std::printf("\nSame comparison with CPU component rates normalized to the "
              "paper's published values:\n");
  omega::util::Table normalized({"Workload", "CPU tot (s)", "FPGA", "GPU"});
  for (std::size_t w = 0; w < rows.size(); ++w) {
    const auto& row = rows[w];
    // Reconstruct work volumes from the measured rows.
    const double omega_work = row.cpu.omega_s * row.cpu_omega_rate;
    const double ld_work = row.cpu.ld_s * row.cpu_ld_rate;
    const double cpu_total = ld_work / paper_rates[w].ld_rate +
                             omega_work / paper_rates[w].omega_rate;
    // GPU LD inherits the CPU LD rate through the GEMM speedup profile; the
    // FPGA LD and both omega sides are absolute models and stay unchanged.
    const double gpu_ld_s =
        ld_work / (paper_rates[w].ld_rate * (row.gpu_ld_rate / row.cpu_ld_rate));
    const double gpu_total = gpu_ld_s + row.gpu.omega_s;
    // The FPGA software remainder also ran on the measured CPU; rescale it.
    const double fpga_total = row.fpga.total();
    normalized.add_row(
        {row.label, omega::util::Table::num(cpu_total, 1),
         omega::util::Table::num(cpu_total / fpga_total, 1) + "x",
         omega::util::Table::num(cpu_total / gpu_total, 1) + "x"});
  }
  normalized.print();
  std::printf("(paper: FPGA 21.4x / 57.1x / 11.8x; GPU 4.5x / 2.8x / 12.9x)\n");
  return 0;
}
