#pragma once
// Shared implementation of the Figs. 10/11 FPGA throughput curves: omega
// throughput as a function of right-side loop iterations, with the
// 90%-of-theoretical-maximum line, driven by the cycle model and
// cross-checked against a functional pipeline run at a few points.

#include <string>

#include "bench_common.h"
#include "hw/device_specs.h"

namespace omega::bench {

/// Prints the throughput series for `spec` from `from` to `to` iterations in
/// `steps` steps (geometric), and writes the figure as an SVG into
/// `svg_path` when non-empty. Returns the iteration count at which 90% of
/// the theoretical maximum is first reached. When `json` is non-null, the
/// series and headline numbers are recorded under its "results" object.
std::uint64_t run_fpga_throughput_figure(const hw::FpgaDeviceSpec& spec,
                                         std::uint64_t from, std::uint64_t to,
                                         int steps,
                                         const std::string& svg_path = {},
                                         BenchJson* json = nullptr);

}  // namespace omega::bench
