// Quantifies the paper's §III argument about the FPL'18 integer-based FPGA
// detector: its reported 62x speedup "does not represent the actual
// performance potential of FPGAs" for OmegaPlus because the *method* is
// different. We score the same grid with the exact omega statistic and with
// the integer stand-in (core/integer_method.h) and report:
//   * how strongly the two landscapes agree (Spearman rank correlation),
//   * how often they crown the same winner,
//   * the raw single-core speed difference of the two formulations.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/integer_method.h"
#include "core/scanner.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

omega::core::OmegaConfig config() {
  omega::core::OmegaConfig c;
  c.grid_size = 60;
  c.max_window = 200'000;
  c.min_window = 20'000;
  c.max_snps_per_side = 150;
  return c;
}

}  // namespace

int main() {
  std::printf("Integer-method baseline vs exact omega (paper §III)\n\n");
  omega::bench::BenchJson json("integer_baseline");
  omega::util::Table table({"dataset", "Spearman", "same argmax",
                            "omega Mw/s", "integer Mw/s", "integer speed"});

  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    auto dataset = omega::sim::make_dataset({.snps = 900,
                                             .samples = 50,
                                             .locus_length_bp = 1'000'000,
                                             .rho = 120.0,
                                             .seed = seed});
    if (seed % 2 == 0) {
      omega::sim::SweepConfig sweep;
      sweep.sweep_position_bp = 500'000;
      sweep.carrier_fraction = 0.95;
      sweep.seed = seed + 1;
      dataset = omega::sim::apply_sweep(dataset, sweep);
    }

    omega::core::ScannerOptions options;
    options.config = config();
    const auto exact = omega::core::scan(dataset, options);
    const auto integer = omega::core::integer_method_scan(dataset, config());

    std::vector<double> exact_scores, integer_scores;
    for (std::size_t g = 0; g < exact.scores.size(); ++g) {
      if (!exact.scores[g].valid || !integer.scores[g].valid) continue;
      exact_scores.push_back(exact.scores[g].max_omega);
      integer_scores.push_back(integer.scores[g].max_omega);
    }
    const double correlation =
        omega::util::spearman(exact_scores, integer_scores);
    const bool same_argmax =
        exact.best().position_bp == integer.best().position_bp;

    const double exact_rate =
        static_cast<double>(exact.profile.omega_evaluations) /
        exact.profile.omega_seconds / 1e6;
    const double integer_rate =
        static_cast<double>(integer.profile.omega_evaluations) /
        integer.profile.omega_seconds / 1e6;

    table.add_row({(seed % 2 == 0 ? "swept #" : "neutral #") +
                       std::to_string(seed),
                   omega::util::Table::num(correlation, 3),
                   same_argmax ? "yes" : "no",
                   omega::util::Table::num(exact_rate, 1),
                   omega::util::Table::num(integer_rate, 1),
                   omega::util::Table::num(integer_rate / exact_rate, 2) + "x"});
    json.set((seed % 2 == 0 ? "swept_" : "neutral_") + std::to_string(seed),
             omega::core::metrics::JsonValue::object()
                 .set("spearman", correlation)
                 .set("same_argmax", same_argmax)
                 .set("exact_w_per_s", exact_rate * 1e6)
                 .set("integer_w_per_s", integer_rate * 1e6));
  }
  table.print();
  json.write();
  std::printf("\nreading: the integer formulation correlates with omega but "
              "is not it — landscapes diverge and argmaxes can differ, which "
              "is the paper's point that its speedups are not comparable to "
              "an exact OmegaPlus accelerator. (The CPU rate column includes "
              "the integer path's per-position rebuild — no relocation reuse; "
              "FPL'18's advantage comes from mapping discrete integer ops to "
              "reconfigurable logic, which a superscalar CPU with an FP "
              "pipeline does not reward.)\n");
  return 0;
}
