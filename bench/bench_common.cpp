#include "bench_common.h"

#include <cstdio>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_search.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "sim/dataset_factory.h"
#include "util/cpu_features.h"
#include "util/timer.h"

#ifndef OMEGA_GIT_SHA
#define OMEGA_GIT_SHA "unknown"
#endif

namespace omega::bench {

namespace {

std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buffer[256] = {};
  if (::gethostname(buffer, sizeof(buffer) - 1) == 0 && buffer[0] != '\0') {
    return buffer;
  }
#endif
  return "unknown";
}

}  // namespace

core::metrics::JsonValue host_context() {
  auto host = core::metrics::JsonValue::object();
  host.set("hostname", hostname());
  host.set("cpu", util::cpu_model());
  host.set("isa", util::cpu_isa_summary());
#if defined(NDEBUG)
  host.set("build_type", "release");
#else
  host.set("build_type", "debug");
#endif
  host.set("git_sha", OMEGA_GIT_SHA);
  host.set("threads",
           static_cast<int>(std::thread::hardware_concurrency()));
  return host;
}

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  root_ = core::metrics::JsonValue::object();
  root_.set("schema", core::metrics::kBenchSchema);
  root_.set("schema_version", core::metrics::kSchemaVersion);
  root_.set("bench", name_);
  root_.set("host", host_context());
  root_.set("results", core::metrics::JsonValue::object());
}

core::metrics::JsonValue& BenchJson::results() { return root_.at("results"); }

BenchJson& BenchJson::set(const std::string& key,
                          core::metrics::JsonValue value) {
  results().set(key, std::move(value));
  return *this;
}

BenchJson& BenchJson::add_scan_profile(const std::string& key,
                                       const core::ScanProfile& profile) {
  results().set(key, core::metrics::scan_metrics(key, profile));
  return *this;
}

std::string BenchJson::write(const std::string& directory) {
  const std::string path = directory + "/BENCH_" + name_ + ".json";
  core::metrics::write_json_file(path, root_);
  std::printf("metrics written to %s\n", path.c_str());
  return path;
}

core::OmegaConfig paper_gpu_config() {
  core::OmegaConfig config;
  config.grid_size = 1'000;
  config.window_unit = core::WindowUnit::Snps;
  config.max_window = 20'000;
  // The paper quotes a "minimum window size of 1,000 SNPs" but also states
  // the settings "allow to exhaustively analyze every grid position"; with a
  // hard 500-SNP-per-side border a 1,000-SNP dataset would have almost no
  // window combinations at all, contradicting Fig. 12's measurable
  // throughput at that size. We therefore read the minimum as not
  // constraining interior combinations and evaluate exhaustively
  // (min_window = 4, i.e. l, r >= 2). See EXPERIMENTS.md.
  config.min_window = 4;
  return config;
}

io::Dataset figure_dataset(std::size_t snps, std::size_t samples,
                           std::uint64_t seed) {
  sim::DatasetSpec spec;
  spec.snps = snps;
  spec.samples = samples;
  spec.locus_length_bp = static_cast<std::int64_t>(snps) * 100;  // ~1 SNP/100bp
  spec.rho = 40.0;
  spec.seed = seed;
  return sim::make_dataset(spec);
}

double measure_ld_rate(const io::Dataset& dataset, std::uint64_t target_pairs) {
  const ld::SnpMatrix snps(dataset);
  const ld::PopcountLd engine(snps);
  const std::size_t sites = snps.num_sites();
  std::size_t rows = 1, cols = sites;
  while (rows * cols < target_pairs && rows < sites) {
    ++rows;
  }
  std::vector<float> out(rows * cols);
  util::Timer timer;
  engine.r2_block(0, rows, 0, cols, out.data(), cols);
  const double seconds = timer.seconds();
  if (seconds <= 0.0) throw std::runtime_error("LD measurement too fast");
  return static_cast<double>(rows * cols) / seconds;
}

double measure_omega_rate(const io::Dataset& dataset,
                          const core::OmegaConfig& config, double min_seconds) {
  const auto grid = core::build_grid(dataset, config);
  // Pick the central grid position (largest workload) and time repeated
  // searches over its real M matrix.
  const core::GridPosition* position = nullptr;
  for (const auto& candidate : grid) {
    if (candidate.valid &&
        (position == nullptr ||
         candidate.combinations() > position->combinations())) {
      position = &candidate;
    }
  }
  if (position == nullptr) throw std::runtime_error("no valid grid position");

  const ld::SnpMatrix snps(dataset);
  const ld::PopcountLd engine(snps);
  core::DpMatrix m;
  m.reset(position->lo);
  m.extend(position->hi + 1, engine);

  std::uint64_t evaluated = 0;
  util::Timer timer;
  double best = 0.0;
  do {
    const auto result = core::max_omega_search(m, *position);
    evaluated += result.evaluated;
    best = result.max_omega;  // defeat dead-code elimination
  } while (timer.seconds() < min_seconds);
  (void)best;
  return static_cast<double>(evaluated) / timer.seconds();
}

std::string gps(double per_second) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", per_second / 1e9);
  return buffer;
}

std::string mps(double per_second) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", per_second / 1e6);
  return buffer;
}

}  // namespace omega::bench
