// Tests for the coalescent simulator substrate: tree structure invariants,
// Kingman expectations, SMC' moves preserving the marginal distribution,
// Watterson's segregating-sites expectation, fixed-segsites mode, the sweep
// overlay's LD signature, and the dataset factory.

#include <gtest/gtest.h>

#include <cmath>

#include "io/dataset.h"
#include "ld/r2.h"
#include "sim/coalescent.h"
#include "sim/dataset_factory.h"
#include "sim/demography.h"
#include "sim/sweep_overlay.h"
#include "sim/tree.h"
#include "util/prng.h"
#include "util/stats.h"

namespace {

using omega::sim::Tree;
using omega::util::Xoshiro256;

TEST(Tree, KingmanStructureIsValid) {
  Xoshiro256 rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    const Tree tree = Tree::kingman(2 + rep, rng);
    tree.check_invariants();
    EXPECT_EQ(tree.num_nodes(), 2 * tree.num_leaves() - 1);
  }
}

TEST(Tree, KingmanExpectedTotalLength) {
  // E[total length] = 2 * H_{n-1} in units of 2N generations.
  const std::size_t n = 10;
  Xoshiro256 rng(2);
  omega::util::RunningStats stats;
  for (int rep = 0; rep < 4000; ++rep) {
    stats.add(Tree::kingman(n, rng).total_length());
  }
  const double expected = 2.0 * omega::util::harmonic(n - 1);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.05);
}

TEST(Tree, DescendantLeavesPartitionAtRoot) {
  Xoshiro256 rng(3);
  const Tree tree = Tree::kingman(12, rng);
  std::vector<int> leaves;
  tree.descendant_leaves(tree.root(), leaves);
  EXPECT_EQ(leaves.size(), 12u);
}

TEST(Tree, SmcMovePreservesInvariants) {
  Xoshiro256 rng(4);
  Tree tree = Tree::kingman(20, rng);
  for (int move = 0; move < 200; ++move) {
    tree.smc_prune_recoalesce(rng);
    tree.check_invariants();
  }
}

TEST(Tree, LengthRateMoveChainPreservesKingmanExpectation) {
  // SMC' transitions applied at a rate proportional to the current tree
  // length (how the coalescent walks the locus) leave the Kingman marginal
  // invariant: mean total length stays at 2 * H_{n-1}. Note that applying a
  // *fixed* number of moves would instead converge to the length-biased
  // distribution — that distinction is exactly why the simulator samples
  // breakpoint distances from Exp(rate ~ length).
  const std::size_t n = 8;
  const double expected = 2.0 * omega::util::harmonic(n - 1);
  Xoshiro256 rng(5);
  omega::util::RunningStats stats;
  for (int rep = 0; rep < 400; ++rep) {
    Tree tree = Tree::kingman(n, rng);
    // Advance a fixed "distance" along the sequence; moves arrive with
    // probability proportional to length via exponential distance draws.
    double remaining = 10.0;
    for (;;) {
      const double step = rng.exponential(tree.total_length() / expected);
      if (step > remaining) break;
      remaining -= step;
      tree.smc_prune_recoalesce(rng);
    }
    stats.add(tree.total_length());
  }
  EXPECT_NEAR(stats.mean(), expected, expected * 0.08);
}

TEST(Coalescent, WattersonHoldsUnderRecombination) {
  // The marginal genealogy must stay Kingman along the sequence, so
  // Watterson's E[S] = theta * H_{n-1} has to hold with rho > 0 too.
  omega::sim::CoalescentConfig config;
  config.samples = 12;
  config.theta = 50.0;
  config.rho = 30.0;
  omega::util::RunningStats stats;
  for (std::uint64_t rep = 0; rep < 250; ++rep) {
    config.seed = 1000 + rep;
    stats.add(static_cast<double>(omega::sim::simulate(config).num_sites()));
  }
  const double expected = config.theta * omega::util::harmonic(config.samples - 1);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.08);
}

TEST(Coalescent, WattersonSegsites) {
  // E[S] = theta * H_{n-1}.
  omega::sim::CoalescentConfig config;
  config.samples = 20;
  config.theta = 40.0;
  config.rho = 0.0;
  omega::util::RunningStats stats;
  for (std::uint64_t rep = 0; rep < 300; ++rep) {
    config.seed = rep + 1;
    omega::sim::CoalescentConfig one = config;
    // Keep monomorphic sites: none should exist anyway.
    const auto dataset = omega::sim::simulate(one);
    stats.add(static_cast<double>(dataset.num_sites()));
  }
  const double expected = config.theta * omega::util::harmonic(config.samples - 1);
  EXPECT_NEAR(stats.mean(), expected, expected * 0.08);
}

TEST(Coalescent, AllSitesPolymorphic) {
  omega::sim::CoalescentConfig config;
  config.samples = 12;
  config.theta = 60.0;
  config.seed = 99;
  const auto dataset = omega::sim::simulate(config);
  for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
    const std::size_t derived = dataset.derived_count(s);
    ASSERT_GT(derived, 0u);
    ASSERT_LT(derived, dataset.num_samples());
  }
  dataset.validate();
}

TEST(Coalescent, FixedSegsitesIsExact) {
  omega::sim::CoalescentConfig config;
  config.samples = 15;
  config.fixed_segsites = 250;
  config.rho = 10.0;
  config.seed = 7;
  const auto dataset = omega::sim::simulate(config);
  EXPECT_EQ(dataset.num_sites(), 250u);
}

TEST(Coalescent, DeterministicForSeed) {
  omega::sim::CoalescentConfig config;
  config.samples = 10;
  config.fixed_segsites = 50;
  config.seed = 1234;
  const auto a = omega::sim::simulate(config);
  const auto b = omega::sim::simulate(config);
  ASSERT_EQ(a.num_sites(), b.num_sites());
  for (std::size_t s = 0; s < a.num_sites(); ++s) {
    ASSERT_EQ(a.position(s), b.position(s));
    ASSERT_EQ(a.site(s), b.site(s));
  }
}

TEST(Coalescent, RecombinationReducesLongRangeLd) {
  // Without recombination one genealogy spans the locus: distant SNPs stay
  // correlated. With many breakpoints, distant-pair LD should drop.
  auto mean_distant_r2 = [](double rho, std::uint64_t seed) {
    omega::sim::CoalescentConfig config;
    config.samples = 30;
    config.fixed_segsites = 120;
    config.rho = rho;
    config.seed = seed;
    const auto dataset = omega::sim::simulate(config);
    omega::util::RunningStats stats;
    const std::size_t sites = dataset.num_sites();
    for (std::size_t i = 0; i < sites / 4; ++i) {
      stats.add(omega::ld::r2_naive(dataset, i, sites - 1 - i));
    }
    return stats.mean();
  };
  omega::util::RunningStats no_recomb, heavy_recomb;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    no_recomb.add(mean_distant_r2(0.0, 100 + rep));
    heavy_recomb.add(mean_distant_r2(200.0, 100 + rep));
  }
  EXPECT_GT(no_recomb.mean(), heavy_recomb.mean());
}

TEST(Coalescent, ReplicatesAreIndependent) {
  omega::sim::CoalescentConfig config;
  config.samples = 8;
  config.fixed_segsites = 30;
  const auto replicates = omega::sim::simulate_replicates(config, 3);
  ASSERT_EQ(replicates.size(), 3u);
  EXPECT_FALSE(replicates[0].positions() == replicates[1].positions() &&
               replicates[1].positions() == replicates[2].positions());
}

// ---------------------------------------------------------------------------
// Demography (non-equilibrium scenarios)
// ---------------------------------------------------------------------------

TEST(Demography, SizeLookup) {
  const auto model = omega::sim::Demography(
      {{0.0, 1.0}, {0.5, 0.1}, {1.0, 2.0}});
  EXPECT_DOUBLE_EQ(model.size_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(model.size_at(0.49), 1.0);
  EXPECT_DOUBLE_EQ(model.size_at(0.5), 0.1);
  EXPECT_DOUBLE_EQ(model.size_at(0.99), 0.1);
  EXPECT_DOUBLE_EQ(model.size_at(5.0), 2.0);
}

TEST(Demography, RejectsInvalidEpochs) {
  using omega::sim::Demography;
  using omega::sim::Epoch;
  EXPECT_THROW(Demography(std::vector<Epoch>{}), std::invalid_argument);
  EXPECT_THROW(Demography({{0.1, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Demography({{0.0, 1.0}, {0.5, -1.0}}), std::invalid_argument);
  EXPECT_THROW(Demography({{0.0, 1.0}, {0.5, 1.0}, {0.5, 2.0}}),
               std::invalid_argument);
}

TEST(Demography, WaitingTimeMatchesConstantRateWhenEquilibrium) {
  const omega::sim::Demography equilibrium;
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    const double via_model = equilibrium.waiting_time(0.3, 4.0, a);
    const double direct = b.exponential(4.0);
    ASSERT_DOUBLE_EQ(via_model, direct);
  }
}

TEST(Demography, SmallPopulationCoalescesFaster) {
  // A tiny recent epoch compresses the genealogy.
  const auto shrunk = omega::sim::Demography({{0.0, 0.05}});
  Xoshiro256 rng(7);
  omega::util::RunningStats constant, small;
  for (int rep = 0; rep < 500; ++rep) {
    constant.add(Tree::kingman(10, rng).total_length());
    small.add(Tree::kingman(10, rng, shrunk).total_length());
  }
  EXPECT_LT(small.mean(), 0.2 * constant.mean());
}

TEST(Demography, BottleneckReducesDiversity) {
  // Watterson under a bottleneck: fewer segregating sites than equilibrium.
  omega::sim::CoalescentConfig config;
  config.samples = 14;
  config.theta = 40.0;
  config.rho = 10.0;
  omega::util::RunningStats equilibrium, bottleneck;
  for (std::uint64_t rep = 0; rep < 150; ++rep) {
    config.seed = 3'000 + rep;
    config.demography = omega::sim::Demography();
    equilibrium.add(static_cast<double>(omega::sim::simulate(config).num_sites()));
    config.demography = omega::sim::Demography::bottleneck(0.05, 0.4, 0.02);
    bottleneck.add(static_cast<double>(omega::sim::simulate(config).num_sites()));
  }
  EXPECT_LT(bottleneck.mean(), 0.8 * equilibrium.mean());
}

TEST(Demography, ExpansionIncreasesDeepDiversity) {
  // Large ancestral size -> longer deep branches -> more segregating sites.
  omega::sim::CoalescentConfig config;
  config.samples = 12;
  config.theta = 30.0;
  omega::util::RunningStats equilibrium, expansion;
  for (std::uint64_t rep = 0; rep < 150; ++rep) {
    config.seed = 4'000 + rep;
    config.demography = omega::sim::Demography();
    equilibrium.add(static_cast<double>(omega::sim::simulate(config).num_sites()));
    config.demography = omega::sim::Demography::expansion(0.5, 4.0);
    expansion.add(static_cast<double>(omega::sim::simulate(config).num_sites()));
  }
  EXPECT_GT(expansion.mean(), 1.3 * equilibrium.mean());
}

TEST(Demography, SmcInvariantsHoldUnderBottleneck) {
  const auto model = omega::sim::Demography::bottleneck(0.1, 0.3, 0.05);
  Xoshiro256 rng(17);
  Tree tree = Tree::kingman(16, rng, model);
  for (int move = 0; move < 150; ++move) {
    tree.smc_prune_recoalesce(rng, model);
    tree.check_invariants();
  }
}

TEST(SweepOverlay, ThinsVariationNearSweep) {
  const auto neutral = omega::sim::make_dataset({.snps = 800,
                                                 .samples = 40,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 30.0,
                                                 .seed = 11});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = 500'000;
  sweep.thinning_max = 0.9;
  const auto swept = omega::sim::apply_sweep(neutral, sweep);
  ASSERT_LT(swept.num_sites(), neutral.num_sites());

  auto count_near = [&](const omega::io::Dataset& d) {
    return d.slice_bp(450'000, 550'000).num_sites();
  };
  auto count_far = [&](const omega::io::Dataset& d) {
    return d.slice_bp(0, 100'000).num_sites();
  };
  // Retention near the sweep must be lower than far from it.
  const double near_kept = static_cast<double>(count_near(swept)) /
                           std::max<std::size_t>(1, count_near(neutral));
  const double far_kept = static_cast<double>(count_far(swept)) /
                          std::max<std::size_t>(1, count_far(neutral));
  EXPECT_LT(near_kept, far_kept);
}

TEST(SweepOverlay, CreatesKimNielsenLdPattern) {
  const auto neutral = omega::sim::make_dataset({.snps = 600,
                                                 .samples = 50,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 120.0,
                                                 .seed = 21});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = 500'000;
  sweep.carrier_fraction = 0.9;
  sweep.tract_mean_bp = 200'000.0;
  sweep.thinning_max = 0.3;
  const auto swept = omega::sim::apply_sweep(neutral, sweep);

  // Mean r2 within each flank vs across the sweep site, over nearby pairs.
  omega::util::RunningStats within, across;
  std::vector<std::size_t> left, right;
  for (std::size_t s = 0; s < swept.num_sites(); ++s) {
    const auto pos = swept.position(s);
    if (pos > 350'000 && pos < 500'000) left.push_back(s);
    if (pos > 500'000 && pos < 650'000) right.push_back(s);
  }
  ASSERT_GT(left.size(), 10u);
  ASSERT_GT(right.size(), 10u);
  auto sample_pairs = [&](const std::vector<std::size_t>& a,
                          const std::vector<std::size_t>& b,
                          omega::util::RunningStats& stats) {
    for (std::size_t i = 0; i < a.size(); i += 3) {
      for (std::size_t j = 0; j < b.size(); j += 3) {
        if (a[i] == b[j]) continue;
        stats.add(omega::ld::r2_naive(swept, a[i], b[j]));
      }
    }
  };
  sample_pairs(left, left, within);
  sample_pairs(right, right, within);
  sample_pairs(left, right, across);
  // Signature (c): elevated LD within flanks, depressed across the site.
  EXPECT_GT(within.mean(), 1.5 * across.mean());
}

TEST(DatasetFactory, ProducesRequestedShape) {
  const auto dataset = omega::sim::make_dataset(
      {.snps = 500, .samples = 64, .locus_length_bp = 2'000'000, .rho = 20.0, .seed = 3});
  EXPECT_EQ(dataset.num_sites(), 500u);
  EXPECT_EQ(dataset.num_samples(), 64u);
  dataset.validate();
}

TEST(DatasetFactory, RejectsZeroSnps) {
  EXPECT_THROW(omega::sim::make_dataset({.snps = 0}), std::invalid_argument);
}

}  // namespace
