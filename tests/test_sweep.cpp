// End-to-end detection tests: the library must localize a planted selective
// sweep near its true position on every backend, and the ms round-trip must
// not perturb the scan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "io/ms_format.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "sweep/detector.h"

namespace {

omega::io::Dataset swept_dataset(std::uint64_t seed) {
  const auto neutral = omega::sim::make_dataset({.snps = 700,
                                                 .samples = 50,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 150.0,
                                                 .seed = seed});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = 600'000;
  sweep.carrier_fraction = 0.97;
  sweep.tract_mean_bp = 250'000.0;
  sweep.thinning_max = 0.4;
  sweep.seed = seed + 1;
  return omega::sim::apply_sweep(neutral, sweep);
}

omega::sweep::DetectorOptions detector_options(omega::sweep::Backend backend) {
  omega::sweep::DetectorOptions options;
  options.backend = backend;
  options.config.grid_size = 40;
  options.config.max_window = 200'000;
  options.config.min_window = 10'000;
  options.config.max_snps_per_side = 120;
  return options;
}

class DetectsPlantedSweep
    : public ::testing::TestWithParam<omega::sweep::Backend> {};

TEST_P(DetectsPlantedSweep, TopCandidateNearTruth) {
  const auto dataset = swept_dataset(101);
  const auto report = omega::sweep::detect_sweeps(
      dataset, detector_options(GetParam()), 5);
  ASSERT_FALSE(report.candidates.empty());
  const auto& best = report.candidates.front();
  // The winning grid position must sit in the sweep's neighbourhood.
  EXPECT_NEAR(static_cast<double>(best.position_bp), 600'000.0, 150'000.0)
      << report.backend_name;
  EXPECT_LE(best.window_start_bp, best.position_bp);
  EXPECT_GE(best.window_end_bp, best.position_bp);
  EXPECT_GT(best.omega, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, DetectsPlantedSweep,
                         ::testing::Values(omega::sweep::Backend::Cpu,
                                           omega::sweep::Backend::CpuThreaded,
                                           omega::sweep::Backend::GpuSim,
                                           omega::sweep::Backend::FpgaSim));

TEST(Detector, BackendsRankTheSameWinner) {
  const auto dataset = swept_dataset(202);
  const auto cpu = omega::sweep::detect_sweeps(
      dataset, detector_options(omega::sweep::Backend::Cpu), 3);
  const auto gpu = omega::sweep::detect_sweeps(
      dataset, detector_options(omega::sweep::Backend::GpuSim), 3);
  const auto fpga = omega::sweep::detect_sweeps(
      dataset, detector_options(omega::sweep::Backend::FpgaSim), 3);
  ASSERT_FALSE(cpu.candidates.empty());
  EXPECT_EQ(cpu.candidates.front().position_bp,
            gpu.candidates.front().position_bp);
  EXPECT_EQ(cpu.candidates.front().position_bp,
            fpga.candidates.front().position_bp);
  EXPECT_NEAR(cpu.candidates.front().omega, gpu.candidates.front().omega,
              1e-4 * (1.0 + cpu.candidates.front().omega));
}

TEST(Detector, SweptLocusScoresAboveItsNeutralCounterpart) {
  // The sweep overlay must raise omega *at the sweep locus* relative to the
  // same neutral data. Averaged over replicates: single-replicate global
  // maxima are dominated by the heavy right tail of neutral omega.
  const auto options = detector_options(omega::sweep::Backend::Cpu);
  auto best_near_sweep = [&](const omega::io::Dataset& dataset) {
    const auto report = omega::sweep::detect_sweeps(dataset, options, 100);
    double best = 0.0;
    for (const auto& candidate : report.candidates) {
      if (std::abs(candidate.position_bp - 600'000) <= 150'000) {
        best = std::max(best, candidate.omega);
      }
    }
    return best;
  };
  double swept_total = 0.0, neutral_total = 0.0;
  for (std::uint64_t seed : {301ull, 302ull, 303ull}) {
    const auto neutral = omega::sim::make_dataset({.snps = 700,
                                                   .samples = 50,
                                                   .locus_length_bp = 1'000'000,
                                                   .rho = 150.0,
                                                   .seed = seed});
    neutral_total += best_near_sweep(neutral);
    swept_total += best_near_sweep(swept_dataset(seed));
  }
  EXPECT_GT(swept_total, neutral_total);
}

TEST(Detector, AboveThresholdFilters) {
  const auto dataset = swept_dataset(404);
  const auto report = omega::sweep::detect_sweeps(
      dataset, detector_options(omega::sweep::Backend::Cpu), 10);
  const auto all = report.above(0.0);
  const auto none = report.above(1e18);
  EXPECT_EQ(all.size(), report.candidates.size());
  EXPECT_TRUE(none.empty());
}

TEST(Detector, MsRoundTripPreservesScan) {
  const auto dataset = swept_dataset(505);
  std::ostringstream out;
  omega::io::write_ms(out, {dataset});
  std::istringstream in(out.str());
  omega::io::MsReadOptions ms_options;
  ms_options.locus_length_bp = dataset.locus_length_bp();
  const auto replicates = omega::io::read_ms(in, ms_options);
  ASSERT_EQ(replicates.size(), 1u);

  const auto options = detector_options(omega::sweep::Backend::Cpu);
  const auto direct = omega::sweep::detect_sweeps(dataset, options, 1);
  const auto round_trip = omega::sweep::detect_sweeps(replicates[0], options, 1);
  ASSERT_FALSE(direct.candidates.empty());
  ASSERT_FALSE(round_trip.candidates.empty());
  // Positions survive up to 1 bp rounding; scores to float-level noise.
  EXPECT_NEAR(static_cast<double>(direct.candidates.front().position_bp),
              static_cast<double>(round_trip.candidates.front().position_bp),
              2000.0);
  EXPECT_NEAR(direct.candidates.front().omega,
              round_trip.candidates.front().omega,
              0.05 * (1.0 + direct.candidates.front().omega));
}

TEST(Detector, ProfileIsPopulated) {
  const auto dataset = swept_dataset(606);
  const auto report = omega::sweep::detect_sweeps(
      dataset, detector_options(omega::sweep::Backend::Cpu), 3);
  EXPECT_GT(report.profile.omega_evaluations, 0u);
  EXPECT_GT(report.profile.r2_fetched, 0u);
  EXPECT_GT(report.profile.total_seconds, 0.0);
  EXPECT_EQ(report.backend_name, "cpu");
}

}  // namespace
