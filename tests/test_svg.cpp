// Tests for the SVG chart writer: document structure, data mapping, log
// axes, reference lines, and error handling.

#include <gtest/gtest.h>

#include <regex>

#include "util/svg.h"

namespace {

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(Svg, EmitsWellFormedSkeleton) {
  omega::util::SvgChart chart("Title", "x axis", "y axis");
  chart.add_series("s1", {{1, 1}, {2, 4}, {3, 9}});
  const std::string svg = chart.str();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Title"), std::string::npos);
  EXPECT_NE(svg.find("x axis"), std::string::npos);
  EXPECT_NE(svg.find("y axis"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  // One marker circle per point.
  EXPECT_EQ(count_occurrences(svg, "<circle"), 3u);
  // Legend entry.
  EXPECT_NE(svg.find(">s1<"), std::string::npos);
}

TEST(Svg, MultipleSeriesGetDistinctColors) {
  omega::util::SvgChart chart("t", "x", "y");
  chart.add_series("a", {{0, 1}, {1, 2}});
  chart.add_series("b", {{0, 2}, {1, 3}});
  const std::string svg = chart.str();
  EXPECT_EQ(count_occurrences(svg, "<polyline"), 2u);
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
}

TEST(Svg, HlineRendersDashed) {
  omega::util::SvgChart chart("t", "x", "y");
  chart.add_series("a", {{0, 1}, {1, 10}});
  chart.add_hline(9.0, "90% line");
  const std::string svg = chart.str();
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
  EXPECT_NE(svg.find("90% line"), std::string::npos);
}

TEST(Svg, DataMapsInsidePlotRectangle) {
  omega::util::SvgChart chart("t", "x", "y");
  chart.add_series("a", {{10, 0}, {20, 5}, {30, 10}});
  const std::string svg = chart.str();
  // Every circle center must land inside the plot area [80,660]x[50,380].
  const std::regex circle_re("<circle cx='([0-9.]+)' cy='([0-9.]+)'");
  for (auto it = std::sregex_iterator(svg.begin(), svg.end(), circle_re);
       it != std::sregex_iterator(); ++it) {
    const double cx = std::stod((*it)[1]);
    const double cy = std::stod((*it)[2]);
    EXPECT_GE(cx, 80.0 - 1e-9);
    EXPECT_LE(cx, 660.0 + 1e-9);
    EXPECT_GE(cy, 50.0 - 1e-9);
    EXPECT_LE(cy, 380.0 + 1e-9);
  }
}

TEST(Svg, LogAxisOrdersDecades) {
  omega::util::SvgChart chart("t", "x", "y");
  chart.set_log_x(true);
  chart.add_series("a", {{10, 1}, {100, 2}, {1000, 3}});
  const std::string svg = chart.str();
  // Decade ticks appear as labels.
  EXPECT_NE(svg.find(">10<"), std::string::npos);
  EXPECT_NE(svg.find(">100<"), std::string::npos);
  EXPECT_NE(svg.find(">1000<"), std::string::npos);
}

TEST(Svg, EmptyChartThrows) {
  omega::util::SvgChart chart("t", "x", "y");
  EXPECT_THROW((void)chart.str(), std::logic_error);
  chart.add_series("empty", {});
  EXPECT_THROW((void)chart.str(), std::logic_error);
}

}  // namespace
