// Work-stealing parallel scan engine tests: the StealScheduler claim
// protocol, valid-position span budgeting (the static-split regression), the
// thread-count resolution convention, MT↔serial bitwise identity across
// backends (clean and under fault injection), multithreaded streaming, the
// schema v7 "sched" accounting, and concurrent ProgressReporter use from
// pool workers. Built with OMEGA_SANITIZE in the sanitized_parallel_scan
// ctest entry to catch data races in the steal path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/scanner.h"
#include "core/span_engine.h"
#include "core/stream_scanner.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "io/chunk_reader.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/fault.h"
#include "util/progress.h"

namespace {

using omega::core::GridPosition;
using omega::core::ScannerOptions;
using omega::core::ScanResult;
using omega::core::detail::build_scan_spans;
using omega::core::detail::ScanSpan;
using omega::par::StealScheduler;
using omega::util::fault::FaultMode;
using omega::util::fault::FaultPlan;

// ---------------------------------------------------------------------------
// StealScheduler
// ---------------------------------------------------------------------------

TEST(StealScheduler, OwnerClaimsInOrderFromFront) {
  StealScheduler scheduler(2);
  scheduler.assign(0, {10, 11, 12});
  for (const std::size_t expected : {10u, 11u, 12u}) {
    const auto claim = scheduler.claim(0);
    ASSERT_TRUE(claim.has_value());
    EXPECT_EQ(claim->item, expected);
    EXPECT_FALSE(claim->stolen);
  }
  EXPECT_FALSE(scheduler.claim(0).has_value());
}

TEST(StealScheduler, ThiefStealsFromBackAndMarksClaim) {
  StealScheduler scheduler(2);
  scheduler.assign(0, {1, 2, 3});
  // Worker 1's own queue is empty; it steals the item farthest from the
  // victim's locality (the back).
  const auto stolen = scheduler.claim(1);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->item, 3u);
  EXPECT_TRUE(stolen->stolen);
  // The victim still walks its remaining run in order.
  EXPECT_EQ(scheduler.claim(0)->item, 1u);
  EXPECT_EQ(scheduler.claim(0)->item, 2u);
  EXPECT_FALSE(scheduler.claim(0).has_value());
  EXPECT_FALSE(scheduler.claim(1).has_value());
}

TEST(StealScheduler, EveryItemClaimedExactlyOnceUnderContention) {
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kItems = 2'000;
  StealScheduler scheduler(kWorkers);
  // Deliberately unbalanced: all items seeded to worker 0.
  std::vector<std::size_t> items(kItems);
  for (std::size_t i = 0; i < kItems; ++i) items[i] = i;
  scheduler.assign(0, std::move(items));

  std::vector<std::vector<std::size_t>> claimed(kWorkers);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&scheduler, &claimed, w] {
      while (const auto claim = scheduler.claim(w)) {
        claimed[w].push_back(claim->item);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::size_t> all;
  std::size_t total = 0;
  for (const auto& list : claimed) {
    total += list.size();
    all.insert(list.begin(), list.end());
  }
  EXPECT_EQ(total, kItems);        // nothing claimed twice...
  EXPECT_EQ(all.size(), kItems);   // ...and nothing dropped
}

// ---------------------------------------------------------------------------
// Span construction: budget by VALID positions (the static-split regression)
// ---------------------------------------------------------------------------

std::vector<GridPosition> skewed_grid(std::size_t invalid_count,
                                      std::size_t valid_count) {
  // Invalid positions clustered at the front — the layout that broke the old
  // grid.size()/workers split (half the workers owned zero real work).
  std::vector<GridPosition> grid;
  for (std::size_t i = 0; i < invalid_count; ++i) {
    GridPosition p;
    p.position_bp = static_cast<std::int64_t>(i);
    grid.push_back(p);  // valid = false
  }
  for (std::size_t i = 0; i < valid_count; ++i) {
    GridPosition p;
    p.position_bp = static_cast<std::int64_t>(invalid_count + i);
    p.lo = i * 10;
    p.hi = p.lo + 20;
    p.c = p.lo + 10;
    p.a_max = p.lo + 8;
    p.b_min = p.lo + 12;
    p.valid = true;
    grid.push_back(p);
  }
  return grid;
}

TEST(ScanSpans, BudgetsByValidPositionsNotGridSize) {
  const auto grid = skewed_grid(/*invalid_count=*/60, /*valid_count=*/20);
  const std::size_t workers = 4;
  const auto spans = build_scan_spans(grid, 0, grid.size(), workers);

  ASSERT_FALSE(spans.empty());
  // Spans exactly tile [0, grid.size()).
  EXPECT_EQ(spans.front().begin, 0u);
  EXPECT_EQ(spans.back().end, grid.size());
  for (std::size_t s = 1; s < spans.size(); ++s) {
    EXPECT_EQ(spans[s].begin, spans[s - 1].end);
  }
  // Every span carries real work and the valid-position budget split them —
  // a grid.size()-based split at 4 workers would put all 20 valid positions
  // (indices 60..79) into the last quarter.
  std::uint64_t total_valid = 0;
  for (const ScanSpan& span : spans) {
    EXPECT_GE(span.valid_positions, 1u);
    EXPECT_GT(span.cost, 0u);
    total_valid += span.valid_positions;
  }
  EXPECT_EQ(total_valid, 20u);
  EXPECT_GE(spans.size(), workers);
  // Balance: no span carries more than ~2x the average cost share.
  std::uint64_t total_cost = 0;
  for (const ScanSpan& span : spans) total_cost += span.cost;
  for (const ScanSpan& span : spans) {
    EXPECT_LE(span.cost, 2 * total_cost / spans.size() + total_cost / 10);
  }
}

TEST(ScanSpans, AllInvalidRangeYieldsNoSpans) {
  const auto grid = skewed_grid(/*invalid_count=*/30, /*valid_count=*/5);
  EXPECT_TRUE(build_scan_spans(grid, 0, 30, 4).empty());
  EXPECT_TRUE(build_scan_spans(grid, 0, 0, 4).empty());
}

TEST(ScanSpans, PerPositionCostIsZeroOnlyForInvalid) {
  const auto grid = skewed_grid(3, 3);
  EXPECT_EQ(omega::core::estimate_position_cost(grid[0]), 0u);
  EXPECT_GT(omega::core::estimate_position_cost(grid[3]), 0u);
}

// ---------------------------------------------------------------------------
// Thread-count resolution (the --threads 0 bugfix)
// ---------------------------------------------------------------------------

TEST(ResolveScanThreads, ZeroMeansHardwareConcurrency) {
  const std::size_t resolved = omega::core::resolve_scan_threads(0);
  EXPECT_GE(resolved, 1u);
  EXPECT_EQ(resolved, std::max<std::size_t>(
                          1, std::thread::hardware_concurrency()));
  EXPECT_EQ(omega::core::resolve_scan_threads(1), 1u);
  EXPECT_EQ(omega::core::resolve_scan_threads(7), 7u);
}

omega::io::Dataset parallel_dataset(std::uint64_t seed = 4242) {
  return omega::sim::make_dataset({.snps = 320,
                                   .samples = 24,
                                   .locus_length_bp = 320'000,
                                   .rho = 40.0,
                                   .seed = seed});
}

ScannerOptions parallel_options() {
  ScannerOptions options;
  options.config.grid_size = 48;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 260;
  options.config.min_window = 30;
  return options;
}

TEST(ResolveScanThreads, ScanWithThreadsZeroAutoDetectsAndStampsProfile) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  options.threads = 0;
  const auto result = omega::core::scan(dataset, options);
  EXPECT_EQ(result.profile.sched.requested_threads, 0u);
  EXPECT_EQ(result.profile.sched.workers,
            omega::core::resolve_scan_threads(0));
  EXPECT_TRUE(result.has_valid());
}

// ---------------------------------------------------------------------------
// MT ↔ serial bitwise identity across backends
// ---------------------------------------------------------------------------

void expect_identical(const ScanResult& mt, const ScanResult& serial) {
  ASSERT_EQ(mt.scores.size(), serial.scores.size());
  for (std::size_t i = 0; i < mt.scores.size(); ++i) {
    EXPECT_EQ(mt.scores[i].position_bp, serial.scores[i].position_bp) << i;
    EXPECT_EQ(mt.scores[i].valid, serial.scores[i].valid) << i;
    EXPECT_EQ(mt.scores[i].quarantined, serial.scores[i].quarantined) << i;
    if (!mt.scores[i].valid) continue;
    // Bit-for-bit: span boundaries and steal order must not change results.
    EXPECT_EQ(mt.scores[i].max_omega, serial.scores[i].max_omega) << i;
    EXPECT_EQ(mt.scores[i].best_a, serial.scores[i].best_a) << i;
    EXPECT_EQ(mt.scores[i].best_b, serial.scores[i].best_b) << i;
    EXPECT_EQ(mt.scores[i].evaluated, serial.scores[i].evaluated) << i;
  }
  EXPECT_EQ(mt.profile.positions_scanned, serial.profile.positions_scanned);
  EXPECT_EQ(mt.profile.omega_evaluations, serial.profile.omega_evaluations);
}

ScanResult gpu_sim_scan(const omega::io::Dataset& dataset,
                        const ScannerOptions& options,
                        const FaultPlan& plan = {}) {
  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  return omega::core::scan(dataset, options, [&] {
    omega::hw::gpu::GpuBackendOptions backend_options;
    backend_options.fault_plan = plan;
    return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                             backend_options);
  });
}

ScanResult fpga_sim_scan(const omega::io::Dataset& dataset,
                         const ScannerOptions& options,
                         const FaultPlan& plan = {}) {
  return omega::core::scan(dataset, options, [&] {
    omega::hw::fpga::FpgaBackendOptions backend_options;
    backend_options.fault_plan = plan;
    return std::make_unique<omega::hw::fpga::FpgaOmegaBackend>(
        omega::hw::alveo_u200(), backend_options);
  });
}

TEST(ParallelScanIdentity, CpuMatchesSerialBitwise) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  const auto serial = omega::core::scan(dataset, options);
  for (const std::size_t threads : {2u, 3u, 5u, 8u}) {
    options.threads = threads;
    const auto mt = omega::core::scan(dataset, options);
    expect_identical(mt, serial);
    EXPECT_EQ(mt.profile.sched.workers, threads);
    EXPECT_GT(mt.profile.sched.spans, 0u);
  }
}

TEST(ParallelScanIdentity, GpuSimMatchesSerialBitwise) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  const auto serial = gpu_sim_scan(dataset, options);
  options.threads = 4;
  const auto mt = gpu_sim_scan(dataset, options);
  expect_identical(mt, serial);
}

TEST(ParallelScanIdentity, FpgaSimMatchesSerialBitwise) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  const auto serial = fpga_sim_scan(dataset, options);
  options.threads = 4;
  const auto mt = fpga_sim_scan(dataset, options);
  expect_identical(mt, serial);
}

// ---------------------------------------------------------------------------
// MT ↔ serial identity under fault injection
// ---------------------------------------------------------------------------

TEST(ParallelScanFaults, CertainKernelFailureQuarantinesIdentically) {
  // rate = 1.0: every backend call fails regardless of PRNG consumption
  // order, so the outcome is schedule-independent — every valid position is
  // quarantined and the merged counters match serial exactly.
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  options.recovery.fallback_to_cpu = false;
  FaultPlan plan;
  plan.mode = FaultMode::KernelLaunch;
  plan.rate = 1.0;
  plan.seed = 7;

  const auto serial = gpu_sim_scan(dataset, options, plan);
  options.threads = 4;
  const auto mt = gpu_sim_scan(dataset, options, plan);

  expect_identical(mt, serial);
  EXPECT_FALSE(mt.has_valid());
  EXPECT_EQ(mt.profile.faults.errors_caught,
            serial.profile.faults.errors_caught);
  EXPECT_EQ(mt.profile.faults.retries, serial.profile.faults.retries);
  EXPECT_EQ(mt.profile.faults.quarantined_positions,
            serial.profile.faults.quarantined_positions);
}

TEST(ParallelScanFaults, FlakyNanRetriesConvergeToCleanScores) {
  // Transient NaNs at 50% with generous retries: every position eventually
  // produces the clean result (validate_results rejects the NaNs), so the MT
  // scores are bitwise equal to a fault-free scan even though each worker's
  // injector consumes a schedule-dependent PRNG sequence.
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  options.recovery.max_retries = 64;
  const auto clean = gpu_sim_scan(dataset, options);

  FaultPlan plan;
  plan.mode = FaultMode::TransientNan;
  plan.rate = 0.5;
  plan.seed = 21;
  options.threads = 4;
  const auto mt = gpu_sim_scan(dataset, options, plan);

  ASSERT_EQ(mt.scores.size(), clean.scores.size());
  for (std::size_t i = 0; i < mt.scores.size(); ++i) {
    EXPECT_EQ(mt.scores[i].valid, clean.scores[i].valid) << i;
    if (!mt.scores[i].valid) continue;
    EXPECT_EQ(mt.scores[i].max_omega, clean.scores[i].max_omega) << i;
    EXPECT_EQ(mt.scores[i].best_a, clean.scores[i].best_a) << i;
    EXPECT_EQ(mt.scores[i].best_b, clean.scores[i].best_b) << i;
  }
  EXPECT_EQ(mt.profile.faults.quarantined_positions, 0u);
  EXPECT_GT(mt.profile.faults.invalid_results, 0u);
}

// ---------------------------------------------------------------------------
// Sched accounting
// ---------------------------------------------------------------------------

TEST(SchedStats, WorkerDetailAddsUpAndBusyTimeIsPositive) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  options.threads = 4;
  const auto result = omega::core::scan(dataset, options);

  const auto& sched = result.profile.sched;
  EXPECT_EQ(sched.requested_threads, 4u);
  EXPECT_EQ(sched.workers, 4u);
  ASSERT_EQ(sched.workers_detail.size(), 4u);

  std::uint64_t spans = 0, steals = 0, positions = 0;
  double busy = 0.0;
  for (const auto& worker : sched.workers_detail) {
    spans += worker.spans;
    steals += worker.steals;
    positions += worker.positions;
    busy += worker.busy_seconds;
  }
  EXPECT_EQ(spans, sched.spans);
  EXPECT_EQ(steals, sched.steals);
  EXPECT_EQ(positions, result.profile.positions_scanned);
  EXPECT_GT(busy, 0.0);
  EXPECT_GE(sched.active_workers(), 1u);
  EXPECT_LE(sched.active_workers(), 4u);
  // Telemetry mirrors the profile: the span histogram and counters were
  // recorded during this scan.
  EXPECT_GE(result.profile.telemetry.counter_value("sched.spans_total"),
            sched.spans);
}

TEST(SchedStats, SerialScanReportsOneWorkerNoSpans) {
  const auto dataset = parallel_dataset();
  const auto options = parallel_options();
  const auto result = omega::core::scan(dataset, options);
  EXPECT_EQ(result.profile.sched.requested_threads, 1u);
  EXPECT_EQ(result.profile.sched.workers, 1u);
  EXPECT_EQ(result.profile.sched.spans, 0u);
  EXPECT_EQ(result.profile.sched.steals, 0u);
  EXPECT_TRUE(result.profile.sched.workers_detail.empty());
}

// ---------------------------------------------------------------------------
// Multithreaded streaming
// ---------------------------------------------------------------------------

TEST(ParallelStream, ChunkedMtMatchesSerialStreamBitwise) {
  const auto dataset = parallel_dataset(1717);
  auto options = parallel_options();

  omega::io::DatasetChunkReader serial_reader(dataset);
  const auto serial = omega::core::stream_scan(serial_reader, options);

  for (const std::size_t chunk_sites : {1000u, 90u}) {
    omega::core::StreamScanOptions stream_options;
    stream_options.chunk_sites = chunk_sites;
    options.threads = 4;
    omega::io::DatasetChunkReader reader(dataset);
    const auto mt = omega::core::stream_scan(reader, options, stream_options);
    expect_identical(mt, serial);
    EXPECT_EQ(mt.profile.sched.workers, 4u);
    // MT streams keep one matrix per worker; the serial seam observable
    // stays zero by contract.
    EXPECT_EQ(mt.profile.stream.seam_carryovers, 0u);
  }
}

TEST(ParallelStream, ThreadsZeroAutoDetects) {
  const auto dataset = parallel_dataset(99);
  auto options = parallel_options();
  options.threads = 0;
  omega::io::DatasetChunkReader reader(dataset);
  const auto result = omega::core::stream_scan(reader, options);
  EXPECT_EQ(result.profile.sched.workers,
            omega::core::resolve_scan_threads(0));
  EXPECT_TRUE(result.has_valid());
}

// ---------------------------------------------------------------------------
// ProgressReporter under concurrent pool workers
// ---------------------------------------------------------------------------

TEST(ParallelProgress, ConcurrentAdvanceFromPoolWorkersLosesNothing) {
  std::atomic<std::uint64_t> sink_calls{0};
  omega::util::ProgressReporter reporter(
      [&sink_calls](const omega::util::ProgressUpdate&) { ++sink_calls; },
      /*interval_seconds=*/0.0);
  constexpr std::uint64_t kWorkers = 8;
  constexpr std::uint64_t kPerWorker = 5'000;
  reporter.begin(kWorkers * kPerWorker);

  omega::par::ThreadPool pool(kWorkers - 1);
  std::vector<std::function<void()>> tasks;
  for (std::uint64_t w = 0; w < kWorkers; ++w) {
    tasks.emplace_back([&reporter] {
      for (std::uint64_t i = 0; i < kPerWorker; ++i) {
        omega::util::ProgressReporter::Delta delta;
        delta.positions = 1;
        delta.faults = i % 3 == 0 ? 1 : 0;
        reporter.advance(delta);
      }
    });
  }
  pool.run_blocking(std::move(tasks));
  reporter.finish();

  const auto last = reporter.last_update();
  EXPECT_EQ(last.positions_done, kWorkers * kPerWorker);
  EXPECT_EQ(last.faults, kWorkers * ((kPerWorker + 2) / 3));
  EXPECT_TRUE(last.final);
  EXPECT_GT(sink_calls.load(), 0u);
}

TEST(ParallelProgress, MtScanReportsEveryValidPosition) {
  const auto dataset = parallel_dataset();
  auto options = parallel_options();
  options.threads = 4;
  omega::util::ProgressReporter reporter(
      [](const omega::util::ProgressUpdate&) {}, /*interval_seconds=*/1e9);
  options.progress = &reporter;
  const auto result = omega::core::scan(dataset, options);
  const auto last = reporter.last_update();
  EXPECT_EQ(last.positions_done,
            result.profile.positions_scanned +
                result.profile.faults.quarantined_positions);
  EXPECT_TRUE(last.final);
}

}  // namespace
