// Tests for omega::io: Dataset invariants, ms format round-trips and error
// handling, FASTA SNP extraction, and the VCF-lite importer.

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "io/dataset.h"
#include "io/fasta.h"
#include "io/ms_format.h"
#include "io/plink.h"
#include "io/vcf_lite.h"

namespace {

using omega::io::Dataset;

Dataset tiny_dataset() {
  return Dataset({100, 200, 300},
                 {{0, 1, 1, 0}, {1, 1, 0, 0}, {0, 0, 0, 1}}, 1000);
}

TEST(Dataset, ShapeAccessors) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.num_sites(), 3u);
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.locus_length_bp(), 1000);
  EXPECT_EQ(d.position(1), 200);
  EXPECT_EQ(d.allele(0, 1), 1);
  EXPECT_EQ(d.derived_count(0), 2u);
  EXPECT_NE(d.shape_string().find("4 samples"), std::string::npos);
}

TEST(Dataset, ValidateRejectsBadInput) {
  EXPECT_THROW(Dataset({100, 100}, {{0, 1}, {1, 0}}, 1000),
               std::invalid_argument);  // non-increasing positions
  EXPECT_THROW(Dataset({100, 200}, {{0, 1}, {1}}, 1000),
               std::invalid_argument);  // ragged
  EXPECT_THROW(Dataset({100}, {{0, 3}}, 1000),
               std::invalid_argument);  // invalid allele code (2 = missing ok)
  EXPECT_THROW(Dataset({100, 2000}, {{0, 1}, {1, 0}}, 1000),
               std::invalid_argument);  // position beyond locus
}

TEST(Dataset, RemoveMonomorphic) {
  Dataset d({10, 20, 30, 40},
            {{0, 0, 0}, {0, 1, 0}, {1, 1, 1}, {1, 0, 1}}, 100);
  EXPECT_EQ(d.remove_monomorphic(), 2u);
  EXPECT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.position(0), 20);
  EXPECT_EQ(d.position(1), 40);
}

TEST(Dataset, MinorAlleleFilter) {
  // MAFs over 5 samples: 1/5 = 0.2, 2/5 = 0.4 (three derived -> minor is
  // ancestral), 0.2 with a missing call (1 of 4 valid -> 0.25).
  Dataset d({10, 20, 30},
            {{1, 0, 0, 0, 0}, {1, 1, 1, 0, 0}, {1, 0, 0, 0, Dataset::kMissing}},
            100);
  Dataset strict = d;
  EXPECT_EQ(strict.filter_minor_allele(0.3), 2u);
  ASSERT_EQ(strict.num_sites(), 1u);
  EXPECT_EQ(strict.position(0), 20);

  Dataset lenient = d;
  EXPECT_EQ(lenient.filter_minor_allele(0.05), 0u);
  EXPECT_THROW(lenient.filter_minor_allele(0.6), std::invalid_argument);
}

TEST(Dataset, SliceByPosition) {
  const Dataset d = tiny_dataset();
  const Dataset mid = d.slice_bp(150, 250);
  EXPECT_EQ(mid.num_sites(), 1u);
  EXPECT_EQ(mid.position(0), 200);
  const Dataset all = d.slice_bp(0, 1000);
  EXPECT_EQ(all.num_sites(), 3u);
  const Dataset none = d.slice_bp(400, 500);
  EXPECT_EQ(none.num_sites(), 0u);
}

TEST(MsFormat, ParsesCanonicalReplicate) {
  const std::string text =
      "ms 4 1 -t 5\n"
      "1 2 3\n"
      "\n"
      "//\n"
      "segsites: 3\n"
      "positions: 0.10 0.50 0.90\n"
      "010\n"
      "110\n"
      "001\n"
      "011\n";
  std::istringstream in(text);
  omega::io::MsReadOptions options;
  options.locus_length_bp = 1000;
  const auto replicates = omega::io::read_ms(in, options);
  ASSERT_EQ(replicates.size(), 1u);
  const Dataset& d = replicates[0];
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.num_sites(), 3u);
  EXPECT_EQ(d.position(0), 100);
  EXPECT_EQ(d.position(2), 900);
  EXPECT_EQ(d.allele(0, 1), 1);  // column 0 of haplotype 1
}

TEST(MsFormat, MultipleReplicates) {
  const std::string text =
      "//\nsegsites: 1\npositions: 0.5\n1\n0\n"
      "//\nsegsites: 2\npositions: 0.25 0.75\n10\n01\n";
  std::istringstream in(text);
  const auto replicates = omega::io::read_ms(in);
  ASSERT_EQ(replicates.size(), 2u);
  EXPECT_EQ(replicates[0].num_sites(), 1u);
  EXPECT_EQ(replicates[1].num_sites(), 2u);
}

TEST(MsFormat, RejectsMalformedInput) {
  {
    std::istringstream in("//\nsegsites: 2\npositions: 0.1 0.2\n10\n1\n");
    EXPECT_THROW(omega::io::read_ms(in), std::runtime_error);  // ragged row
  }
  {
    std::istringstream in("//\nsegsites: 2\npositions: 0.1\n");
    EXPECT_THROW(omega::io::read_ms(in), std::runtime_error);  // count mismatch
  }
  {
    std::istringstream in("//\nsegsites: 1\npositions: 0.1\n2\n");
    EXPECT_THROW(omega::io::read_ms(in), std::runtime_error);  // bad allele
  }
}

TEST(MsFormat, DropsMonomorphicByDefault) {
  std::istringstream in("//\nsegsites: 2\npositions: 0.1 0.2\n10\n10\n");
  const auto replicates = omega::io::read_ms(in);
  ASSERT_EQ(replicates.size(), 1u);
  // Site 0: both derived... both samples have 1 -> monomorphic; site 1 all 0.
  EXPECT_EQ(replicates[0].num_sites(), 0u);
}

TEST(MsFormat, DeduplicatesCollidingPositions) {
  std::istringstream in(
      "//\nsegsites: 2\npositions: 0.50001 0.50002\n10\n01\n");
  omega::io::MsReadOptions options;
  options.locus_length_bp = 100;  // both round to 50
  const auto replicates = omega::io::read_ms(in, options);
  ASSERT_EQ(replicates[0].num_sites(), 2u);
  EXPECT_LT(replicates[0].position(0), replicates[0].position(1));
}

TEST(MsFormat, WriteReadRoundTrip) {
  const Dataset d = tiny_dataset();
  std::ostringstream out;
  omega::io::write_ms(out, {d});
  std::istringstream in(out.str());
  omega::io::MsReadOptions options;
  options.locus_length_bp = d.locus_length_bp();
  options.drop_monomorphic = false;
  const auto replicates = omega::io::read_ms(in, options);
  ASSERT_EQ(replicates.size(), 1u);
  const Dataset& back = replicates[0];
  ASSERT_EQ(back.num_sites(), d.num_sites());
  ASSERT_EQ(back.num_samples(), d.num_samples());
  for (std::size_t s = 0; s < d.num_sites(); ++s) {
    EXPECT_NEAR(static_cast<double>(back.position(s)),
                static_cast<double>(d.position(s)), 1.0);
    for (std::size_t h = 0; h < d.num_samples(); ++h) {
      EXPECT_EQ(back.allele(s, h), d.allele(s, h));
    }
  }
}

TEST(MsFormat, WriteRestoresStreamFormatting) {
  // write_ms needs fixed 6-digit fractions internally but must not leak that
  // state: a caller printing doubles afterwards should see its own format.
  std::ostringstream out;
  out << std::scientific << std::setprecision(3);
  omega::io::write_ms(out, {tiny_dataset()});
  out << 1.5;
  const std::string text = out.str();
  EXPECT_NE(text.find("1.500e+00"), std::string::npos)
      << "caller formatting clobbered by write_ms";

  std::ostringstream defaults;
  omega::io::write_ms(defaults, {tiny_dataset()});
  defaults << 1e-10;  // fixed precision 6 would print 0.000000
  EXPECT_NE(defaults.str().find("1e-10"), std::string::npos)
      << "write_ms left std::fixed on the stream";
}

TEST(Fasta, ParsesRecordsAndExtractsSnps) {
  const std::string text =
      ">s1\nACGTA\n"
      ">s2\nACGTT\n"
      ">s3\nACCTA\n";
  std::istringstream in(text);
  const auto records = omega::io::read_fasta(in);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "s1");
  const Dataset d = omega::io::fasta_to_dataset(records);
  // Column 2 (G/G/C) and column 4 (A/T/A) are biallelic SNPs.
  ASSERT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.position(0), 3);  // 1-based column
  EXPECT_EQ(d.position(1), 5);
  EXPECT_EQ(d.allele(0, 2), 1);  // s3 carries the minor allele C
  EXPECT_EQ(d.allele(1, 1), 1);  // s2 carries the minor allele T
}

TEST(Fasta, RaggedAlignmentThrows) {
  std::istringstream in(">a\nACGT\n>b\nAC\n");
  EXPECT_THROW(omega::io::read_fasta(in), std::runtime_error);
}

TEST(Fasta, GapsImputedAsMajorAllele) {
  std::istringstream in(">a\nA\n>b\nT\n>c\n-\n>d\nA\n");
  const auto records = omega::io::read_fasta(in);
  const Dataset d = omega::io::fasta_to_dataset(records);
  ASSERT_EQ(d.num_sites(), 1u);
  EXPECT_EQ(d.allele(0, 2), 0);  // the gap became the major allele A
  EXPECT_EQ(d.allele(0, 1), 1);
}

TEST(Plink, ParsesPedMapPair) {
  const std::string map_text =
      "1 rs1 0 1000\n"
      "1 rs2 0 2000\n"
      "1 rs3 0 3000\n";
  // Two individuals = four haplotypes.
  // rs1: A A | A G -> minor G; rs2: C C | C C -> monomorphic (dropped later);
  // rs3: T 0 | G G -> missing call + minor T.
  const std::string ped_text =
      "f1 i1 0 0 1 0  A A  C C  T 0\n"
      "f2 i2 0 0 2 0  A G  C C  G G\n";
  std::istringstream ped(ped_text), map_in(map_text);
  omega::io::PlinkLoadReport report;
  const Dataset d = omega::io::read_plink(ped, map_in, &report);
  EXPECT_EQ(report.individuals, 2u);
  EXPECT_EQ(report.sites_total, 3u);
  ASSERT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.position(0), 1000);
  EXPECT_EQ(d.position(1), 3000);
  // rs1 haplotypes: A A A G -> 0 0 0 1.
  EXPECT_EQ(d.allele(0, 3), 1);
  EXPECT_EQ(d.derived_count(0), 1u);
  // rs3 haplotypes: T . G G -> minor T: 1 missing 0 0.
  EXPECT_EQ(d.allele(1, 0), 1);
  EXPECT_EQ(d.allele(1, 1), Dataset::kMissing);
}

TEST(Plink, RejectsMalformedPed) {
  std::istringstream map_in("1 rs1 0 100\n");
  {
    std::istringstream ped("f1 i1 0 0 1 0  A\n");  // odd allele count
    EXPECT_THROW(omega::io::read_plink(ped, map_in), std::runtime_error);
  }
  std::istringstream map2("1 rs1 0 100\n");
  {
    std::istringstream ped("f1 i1 0 0 1 0  A A  C C\n");  // too many
    EXPECT_THROW(omega::io::read_plink(ped, map2), std::runtime_error);
  }
}

TEST(Plink, DropsMultiAllelicSites) {
  std::istringstream map_in("1 rs1 0 100\n1 rs2 0 200\n");
  std::istringstream ped(
      "f1 i1 0 0 1 0  A C  A G\n"
      "f2 i2 0 0 1 0  G T  A G\n");  // rs1 has 4 alleles -> dropped
  omega::io::PlinkLoadReport report;
  const Dataset d = omega::io::read_plink(ped, map_in, &report);
  EXPECT_EQ(report.sites_dropped, 1u);
  EXPECT_EQ(d.num_sites(), 1u);
  EXPECT_EQ(d.position(0), 200);
}

TEST(VcfLite, ParsesPhasedDiploid) {
  const std::string text =
      "##fileformat=VCFv4.2\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n"
      "1\t100\t.\tA\tT\t.\tPASS\t.\tGT\t0|1\t1|1\n"
      "1\t200\t.\tC\tG\t.\tPASS\t.\tGT\t0|0\t0|1\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const Dataset d = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_total, 2u);
  EXPECT_EQ(report.records_skipped, 0u);
  EXPECT_EQ(d.num_samples(), 4u);  // 2 samples x 2 haplotypes
  EXPECT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.allele(0, 1), 1);
  EXPECT_EQ(d.allele(1, 3), 1);
}

TEST(VcfLite, WriteReadRoundTripDiploid) {
  // 4 haplotypes -> 2 phased diploid samples; includes a missing call.
  const Dataset d({100, 250},
                  {{0, 1, 1, 0}, {1, Dataset::kMissing, 0, 1}}, 1000);
  std::ostringstream out;
  omega::io::write_vcf(out, d);
  std::istringstream in(out.str());
  omega::io::VcfLoadReport report;
  const Dataset back = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_skipped, 0u);
  ASSERT_EQ(back.num_sites(), d.num_sites());
  ASSERT_EQ(back.num_samples(), d.num_samples());
  for (std::size_t s = 0; s < d.num_sites(); ++s) {
    EXPECT_EQ(back.position(s), d.position(s));
    for (std::size_t h = 0; h < d.num_samples(); ++h) {
      EXPECT_EQ(back.allele(s, h), d.allele(s, h)) << s << "," << h;
    }
  }
}

TEST(VcfLite, WriteHaploidColumns) {
  const Dataset d({10}, {{0, 1, 1}}, 100);
  std::ostringstream out;
  omega::io::VcfWriteOptions options;
  options.pair_into_diploids = false;
  omega::io::write_vcf(out, d, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("H0\tH1\tH2"), std::string::npos);
  EXPECT_NE(text.find("GT\t0\t1\t1"), std::string::npos);
}

TEST(VcfLite, OddHaplotypeCountTrailingHaploid) {
  const Dataset d({10}, {{0, 1, 1}}, 100);
  std::ostringstream out;
  omega::io::write_vcf(out, d);
  std::istringstream in(out.str());
  const Dataset back = omega::io::read_vcf(in);
  EXPECT_EQ(back.num_samples(), 3u);  // one diploid pair + one haploid
  EXPECT_EQ(back.allele(0, 2), 1);
}

TEST(VcfLite, CrlfLineEndingsLoseNoRecords) {
  // Windows-edited / http-transferred VCFs terminate every line with \r\n.
  // The trailing \r must be stripped before field splitting — otherwise the
  // last genotype column parses as (e.g.) "1|1\r" and every record is
  // silently skipped.
  const std::string text =
      "##fileformat=VCFv4.2\r\n"
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\r\n"
      "1\t100\t.\tA\tT\t.\tPASS\t.\tGT\t0|1\t1|1\r\n"
      "1\t200\t.\tC\tG\t.\tPASS\t.\tGT\t0|0\t0|1\r\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const Dataset d = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_total, 2u);
  EXPECT_EQ(report.records_skipped, 0u);
  ASSERT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.num_samples(), 4u);
  EXPECT_EQ(d.position(1), 200);
  EXPECT_EQ(d.allele(0, 3), 1);  // S2's second haplotype, the \r-adjacent call
}

TEST(VcfLite, ShortRecordsCountTowardTotals) {
  // A data line with fewer than 10 fields is unloadable; it must show up in
  // BOTH records_total and records_skipped so total == loaded + skipped
  // holds and the loss is visible.
  const std::string text =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n"
      "1\t100\t.\tA\tT\t.\tPASS\t.\tGT\t0|1\n"
      "1\t150\t.\tA\tT\t.\tPASS\t.\n"  // truncated: 8 fields
      "1\t200\t.\tC\tG\t.\tPASS\t.\tGT\t0|1\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const Dataset d = omega::io::read_vcf(in, &report);
  EXPECT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_EQ(report.records_total, 3u);
  EXPECT_EQ(report.records_total, d.num_sites() + report.records_skipped);
}

TEST(VcfLite, SkipsNonBiallelicKeepsMissingCalls) {
  const std::string text =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n"
      "1\t100\t.\tA\tT,G\t.\t.\t.\tGT\t0|1\t0|0\n"
      "1\t150\t.\tAT\tA\t.\t.\t.\tGT\t0|1\t0|0\n"
      "1\t200\t.\tA\tT\t.\t.\t.\tGT\t.|1\t0|0\n"
      "1\t300\t.\tA\tT\t.\t.\t.\tGT\t0|1\t0|0\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const Dataset d = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_skipped, 2u);  // multi-allelic + indel
  ASSERT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.position(0), 200);
  EXPECT_EQ(d.allele(0, 0), Dataset::kMissing);  // the '.' haplotype call
  EXPECT_EQ(d.allele(0, 1), 1);
  EXPECT_TRUE(d.has_missing());
}

TEST(Fasta, KeepMissingOption) {
  std::istringstream in(">a\nAT\n>b\nTT\n>c\n-A\n>d\nAA\n");
  const auto records = omega::io::read_fasta(in);
  omega::io::FastaOptions options;
  options.impute_missing_as_major = false;
  const Dataset d = omega::io::fasta_to_dataset(records, options);
  ASSERT_EQ(d.num_sites(), 2u);
  EXPECT_EQ(d.allele(0, 2), Dataset::kMissing);
  EXPECT_TRUE(d.has_missing());
  EXPECT_EQ(d.valid_count(0), 3u);
}

TEST(MsFormat, RefusesToWriteMissing) {
  const Dataset d({10}, {{0, 1, Dataset::kMissing}}, 100);
  std::ostringstream out;
  EXPECT_THROW(omega::io::write_ms(out, {d}), std::runtime_error);
}

TEST(Dataset, MissingAwareCounts) {
  const Dataset d({10, 20}, {{0, 1, Dataset::kMissing, 1},
                             {1, 1, 1, Dataset::kMissing}}, 100);
  EXPECT_TRUE(d.has_missing());
  EXPECT_EQ(d.derived_count(0), 2u);
  EXPECT_EQ(d.valid_count(0), 3u);
  // Site 1 is monomorphic over its valid calls (all derived).
  Dataset copy = d;
  EXPECT_EQ(copy.remove_monomorphic(), 1u);
  EXPECT_EQ(copy.num_sites(), 1u);
  EXPECT_EQ(copy.position(0), 10);
}

}  // namespace
