// Tests for the FPGA simulator: pipeline latency and II=1 behaviour,
// arithmetic agreement with the GPU kernels, the cycle model's asymptotics
// (Figs. 10/11 anchors), the Table I resource model, and the backend inside
// the scanner.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_matrix.h"
#include "core/omega_math.h"
#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/cycle_model.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/fpga/pipeline.h"
#include "hw/fpga/resource_model.h"
#include "hw/gpu/omega_kernels.h"
#include "par/thread_pool.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "sim/dataset_factory.h"

namespace {

using omega::hw::fpga::OmegaPipeline;
using omega::hw::fpga::PipelineInput;

PipelineInput sample_input(int i) {
  PipelineInput input;
  input.left_sum = 1.0f + 0.1f * static_cast<float>(i);
  input.right_sum = 0.5f + 0.05f * static_cast<float>(i);
  input.total_sum = input.left_sum + input.right_sum + 0.3f;
  input.l = 3 + static_cast<std::uint32_t>(i % 4);
  input.r = 2 + static_cast<std::uint32_t>(i % 3);
  input.k = static_cast<float>(omega::core::choose2(input.l));
  input.m = static_cast<float>(omega::core::choose2(input.r));
  input.tag = static_cast<std::uint64_t>(i);
  return input;
}

TEST(Pipeline, LatencyAndInitiationInterval) {
  OmegaPipeline pipeline;
  // Feed two back-to-back inputs; outputs must appear exactly one cycle
  // apart after the pipeline latency.
  const PipelineInput first = sample_input(0);
  const PipelineInput second = sample_input(1);
  int first_out = -1, second_out = -1;
  for (int cycle = 0; cycle < OmegaPipeline::kPipelineDepth + 10; ++cycle) {
    const PipelineInput* input = nullptr;
    if (cycle == 0) input = &first;
    if (cycle == 1) input = &second;
    const auto out = pipeline.tick(input);
    if (out && out->tag == 0 && first_out < 0) first_out = cycle;
    if (out && out->tag == 1 && second_out < 0) second_out = cycle;
  }
  ASSERT_GE(first_out, OmegaPipeline::kPipelineDepth);
  EXPECT_EQ(second_out, first_out + 1);  // II = 1
}

TEST(Pipeline, MatchesReferenceArithmetic) {
  OmegaPipeline pipeline;
  std::vector<PipelineInput> inputs;
  for (int i = 0; i < 200; ++i) inputs.push_back(sample_input(i));
  std::vector<float> outputs(inputs.size(), -1.0f);
  std::size_t fed = 0;
  while (true) {
    const PipelineInput* input = fed < inputs.size() ? &inputs[fed] : nullptr;
    if (input != nullptr) ++fed;
    const auto out = pipeline.tick(input);
    if (out) outputs[static_cast<std::size_t>(out->tag)] = out->omega;
    if (fed == inputs.size() && pipeline.drained()) break;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const float expected = omega::hw::fpga::pipeline_arithmetic(inputs[i]);
    ASSERT_EQ(outputs[i], expected) << i;
    // And the arithmetic itself equals the shared float reference (cross sum
    // formed symmetrically, as the datapath does; small cancellation noise
    // is amplified through the division, hence the 1e-4 band).
    const float reference = omega::core::omega_from_sums_f(
        inputs[i].left_sum, inputs[i].right_sum,
        inputs[i].total_sum - (inputs[i].left_sum + inputs[i].right_sum),
        inputs[i].l, inputs[i].r);
    ASSERT_NEAR(outputs[i], reference, std::abs(reference) * 1e-4f);
  }
}

TEST(Pipeline, BubblesPreserveOrder) {
  OmegaPipeline pipeline;
  std::vector<std::uint64_t> tags;
  int fed = 0;
  for (int cycle = 0; cycle < 600 && tags.size() < 5; ++cycle) {
    PipelineInput input = sample_input(fed);
    // Inject an input only every third cycle (bubbles in between).
    const bool feed = (cycle % 3 == 0) && fed < 5;
    const auto out = pipeline.tick(feed ? &input : nullptr);
    if (feed) ++fed;
    if (out) tags.push_back(out->tag);
  }
  ASSERT_EQ(tags.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(tags[i], i);
}

// ---------------------------------------------------------------------------
// Cycle model
// ---------------------------------------------------------------------------

TEST(CycleModel, ApproachesPeakThroughput) {
  for (const auto& spec : {omega::hw::zcu102(), omega::hw::alveo_u200()}) {
    const double peak = spec.peak_omega_per_s();
    const double at_huge = omega::hw::fpga::invocation_throughput(
        spec, 10'000'000);
    EXPECT_GT(at_huge, 0.99 * peak) << spec.name;
    EXPECT_LE(at_huge, peak) << spec.name;
  }
}

TEST(CycleModel, NinetyPercentPointsMatchFigures10And11) {
  // Fig. 10: ZCU102 reaches ~90% of max within the evaluated range of up to
  // 4,500 right-side iterations.
  const auto zcu = omega::hw::zcu102();
  EXPECT_GE(omega::hw::fpga::invocation_throughput(zcu, 4'500),
            0.89 * zcu.peak_omega_per_s());
  EXPECT_LT(omega::hw::fpga::invocation_throughput(zcu, 1'000),
            0.89 * zcu.peak_omega_per_s());
  // Fig. 11: Alveo U200 reaches ~90% near 30,500 iterations.
  const auto alveo = omega::hw::alveo_u200();
  EXPECT_GE(omega::hw::fpga::invocation_throughput(alveo, 30'500),
            0.89 * alveo.peak_omega_per_s());
  EXPECT_LT(omega::hw::fpga::invocation_throughput(alveo, 8'000),
            0.89 * alveo.peak_omega_per_s());
}

TEST(CycleModel, PositionCyclesAccounting) {
  const auto spec = omega::hw::alveo_u200();  // U = 32
  const auto cycles = omega::hw::fpga::position_cycles(spec, 10, 100, false);
  // 100 = 3*32 + 4: hardware takes 96 per outer iteration, 4 to software.
  EXPECT_EQ(cycles.hw_omegas, 10u * 96u);
  EXPECT_EQ(cycles.sw_omegas, 10u * 4u);
  EXPECT_EQ(cycles.stall_factor, 1.0);
  EXPECT_EQ(cycles.hw_cycles,
            static_cast<std::uint64_t>(spec.pipeline_latency_cycles +
                                       spec.prefetch_cycles) +
                10u * 3u);
}

TEST(CycleModel, DramStreamingThrottles) {
  const auto spec = omega::hw::alveo_u200();
  const auto on_chip = omega::hw::fpga::position_cycles(spec, 50, 3'200, false);
  const auto dram = omega::hw::fpga::position_cycles(spec, 50, 3'200, true);
  EXPECT_GE(dram.stall_factor, 1.0);
  EXPECT_GE(dram.hw_cycles, on_chip.hw_cycles);
  // 32 pipelines * 4 B * 250 MHz = 32 GB/s demand vs 19 GB/s effective.
  EXPECT_NEAR(dram.stall_factor, 32.0 / 19.0, 1e-9);
}

TEST(CycleModel, EmptyPositionIsFree) {
  const auto spec = omega::hw::zcu102();
  const auto cycles = omega::hw::fpga::position_cycles(spec, 0, 100, true);
  EXPECT_EQ(cycles.hw_cycles, 0u);
  EXPECT_EQ(cycles.hw_omegas, 0u);
}

// ---------------------------------------------------------------------------
// Resource model (Table I)
// ---------------------------------------------------------------------------

TEST(ResourceModel, ReproducesTableI) {
  // Published utilization: ZCU102 @ U=4: BRAM 36, DSP 48, FF 12003,
  // LUT 12847. Alveo @ U=32: BRAM 40, DSP 215, FF 50841, LUT 50584.
  const auto zcu_rows = omega::hw::fpga::utilization(omega::hw::zcu102());
  EXPECT_NEAR(zcu_rows[0].used, 36, 1.0);
  EXPECT_NEAR(zcu_rows[1].used, 48, 1.0);
  EXPECT_NEAR(zcu_rows[2].used, 12003, 60);
  EXPECT_NEAR(zcu_rows[3].used, 12847, 60);
  // Percentages as printed in Table I.
  EXPECT_NEAR(zcu_rows[0].percent(), 1.97, 0.15);
  EXPECT_NEAR(zcu_rows[1].percent(), 1.90, 0.15);

  const auto alveo_rows = omega::hw::fpga::utilization(omega::hw::alveo_u200());
  EXPECT_NEAR(alveo_rows[0].used, 40, 1.0);
  EXPECT_NEAR(alveo_rows[1].used, 215, 2.0);
  EXPECT_NEAR(alveo_rows[2].used, 50841, 300);
  EXPECT_NEAR(alveo_rows[3].used, 50584, 300);
  EXPECT_NEAR(alveo_rows[0].percent(), 0.93, 0.1);
  EXPECT_NEAR(alveo_rows[1].percent(), 3.14, 0.2);
}

TEST(ResourceModel, UtilizationScalesWithUnroll) {
  const auto spec = omega::hw::alveo_u200();
  const auto at8 = omega::hw::fpga::utilization_at(spec, 8);
  const auto at64 = omega::hw::fpga::utilization_at(spec, 64);
  for (std::size_t r = 0; r < at8.size(); ++r) {
    EXPECT_LT(at8[r].used, at64[r].used);
  }
}

TEST(ResourceModel, MaxUnrollIsPowerOfTwoAndFits) {
  for (const auto& spec : {omega::hw::zcu102(), omega::hw::alveo_u200()}) {
    const int max_unroll = omega::hw::fpga::max_unroll_factor(spec);
    EXPECT_GE(max_unroll, spec.unroll_factor) << spec.name;
    for (const auto& row : omega::hw::fpga::utilization_at(spec, max_unroll)) {
      EXPECT_LE(row.used, 0.8 * row.available) << spec.name << " " << row.resource;
    }
  }
}

// ---------------------------------------------------------------------------
// Backend in the scanner
// ---------------------------------------------------------------------------

TEST(FpgaBackend, ScanMatchesCpu) {
  const auto dataset = omega::sim::make_dataset({.snps = 110,
                                                 .samples = 26,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 18.0,
                                                 .seed = 91});
  omega::core::ScannerOptions options;
  options.config.grid_size = 8;
  options.config.max_window = 300'000;
  options.config.min_window = 10'000;

  const auto cpu = omega::core::scan(dataset, options);

  omega::hw::fpga::FpgaOmegaBackend backend{omega::hw::zcu102()};
  const auto fpga = omega::core::scan(
      dataset, options, [&] { return omega::core::borrow_backend(backend); });
  for (std::size_t g = 0; g < cpu.scores.size(); ++g) {
    ASSERT_NEAR(cpu.scores[g].max_omega, fpga.scores[g].max_omega,
                1e-4 * (1.0 + cpu.scores[g].max_omega))
        << "grid " << g;
  }
  const auto& accounting = backend.accounting();
  EXPECT_EQ(accounting.hw_omegas + accounting.sw_omegas,
            cpu.profile.omega_evaluations);
  EXPECT_GT(accounting.modeled_total_seconds(), 0.0);
}

TEST(FpgaBackend, MatchesGpuKernelsBitwise) {
  // FPGA pipeline and GPU kernels implement the same float expression in the
  // same order; their per-position maxima must be bit-identical.
  const auto dataset = omega::sim::make_dataset({.snps = 70,
                                                 .samples = 22,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 8.0,
                                                 .seed = 92});
  omega::core::OmegaConfig config;
  config.grid_size = 5;
  config.max_window = 400'000;
  config.min_window = 20'000;
  const auto grid = omega::core::build_grid(dataset, config);
  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);
  omega::par::ThreadPool pool(2);

  omega::hw::fpga::FpgaOmegaBackend fpga(omega::hw::zcu102());
  for (const auto& position : grid) {
    if (!position.valid) continue;
    omega::core::DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
    const auto buffers = omega::core::pack_position(m, position);
    const auto gpu = omega::hw::gpu::run_kernel1(pool, buffers, 64);
    const auto fpga_result = fpga.max_omega(m, position);
    ASSERT_EQ(static_cast<double>(gpu.max_omega), fpga_result.max_omega);
  }
}

}  // namespace
